// Delivery-fleet dispatch: §4's group-location problem on a concrete
// scenario.
//
// A courier company has 10 vans (a process group) working a city of 12
// radio cells. Dispatch broadcasts a job sheet to the whole fleet every
// few minutes while vans drive between cells — mostly within the two
// downtown cells where the work is (non-significant moves), sometimes
// out to the suburbs (significant moves). The example runs the same
// shift under all three §4 strategies and shows why the dispatcher
// should keep a location view rather than per-van locations.
//
//   $ ./examples/fleet_tracking

#include <iostream>

#include "core/mobidist.hpp"

using namespace mobidist;
using group::Group;
using net::MhId;
using net::MssId;

namespace {

constexpr std::uint64_t kJobSheets = 30;

net::NetConfig city_config() {
  net::NetConfig cfg;
  cfg.num_mss = 12;
  cfg.num_mh = 24;  // vans 0..9 plus other subscribers on the network
  cfg.latency.wired_min = cfg.latency.wired_max = 2;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.placement = net::InitialPlacement::kAllInCell0;
  cfg.seed = 555;
  return cfg;
}

Group fleet() {
  std::vector<MhId> vans;
  for (std::uint32_t i = 0; i < 10; ++i) vans.push_back(MhId(i));
  return Group::of(vans);
}

/// Put half the fleet downtown cell 1 before the shift starts, keeping
/// determinism (everyone starts in cell 0 by config).
void stage_fleet(net::Network& net) {
  for (std::uint32_t i = 5; i < 10; ++i) {
    net.sched().schedule(1 + i, [&net, i] { net.mh(MhId(i)).move_to(MssId(1), 2); });
  }
}

/// One van (van 9) does the driving: hops between the downtown cells,
/// with an occasional suburb run.
template <typename SendFn>
void run_shift(net::Network& net, SendFn send) {
  stage_fleet(net);
  workload::MobMsgDriver::Config shift;
  shift.messages = kJobSheets;
  shift.mob_per_msg = 3.0;           // vans move a lot more than dispatch talks
  shift.significant_fraction = 0.25; // mostly downtown hops
  shift.step = 30;
  shift.transit = 2;
  workload::MobMsgDriver driver(net, shift, {MssId(0), MssId(1)},
                                {MssId(8), MssId(9), MssId(10), MssId(11)}, MhId(9),
                                [send](std::uint64_t) { send(); });
  net.start();
  // Delay the shift until the staging moves settle.
  net.sched().schedule(40, [&driver] { driver.start(); });
  net.run();
}

struct ShiftReport {
  std::string strategy;
  bool every_sheet_delivered = false;
  double cost_per_sheet = 0;
  std::uint64_t wired = 0;
  std::uint64_t wireless = 0;
  std::uint64_t searches = 0;
};

}  // namespace

int main() {
  std::cout << "Courier fleet shift: 10 vans, 12 cells, " << kJobSheets
            << " job sheets from dispatch (van 0), van 9 constantly driving\n\n";

  const cost::CostParams p;
  std::vector<ShiftReport> reports;

  {
    net::Network net(city_config());
    group::PureSearchGroup comm(net, fleet());
    run_shift(net, [&] { comm.send_group_message(MhId(0)); });
    reports.push_back({"pure search", comm.monitor().exactly_once(comm.group()),
                       net.ledger().total(p) / kJobSheets, net.ledger().fixed_msgs(),
                       net.ledger().wireless_msgs(), net.ledger().searches()});
  }
  {
    net::Network net(city_config());
    group::AlwaysInformGroup comm(net, fleet());
    run_shift(net, [&] { comm.send_group_message(MhId(0)); });
    reports.push_back({"always inform", comm.monitor().exactly_once(comm.group()),
                       net.ledger().total(p) / kJobSheets, net.ledger().fixed_msgs(),
                       net.ledger().wireless_msgs(), net.ledger().searches()});
  }
  {
    net::Network net(city_config());
    group::LocationViewGroup comm(net, fleet());
    run_shift(net, [&] { comm.send_group_message(MhId(0)); });
    reports.push_back({"location view", comm.monitor().exactly_once(comm.group()),
                       net.ledger().total(p) / kJobSheets, net.ledger().fixed_msgs(),
                       net.ledger().wireless_msgs(), net.ledger().searches()});
    std::cout << "location view details: |LV|max = " << comm.max_view_size()
              << ", significant moves = " << comm.significant_moves()
              << ", mid-flight chases = " << comm.chases() << "\n\n";
  }

  core::Table table({"strategy", "all sheets delivered", "cost/sheet", "wired msgs",
                     "wireless msgs", "searches"});
  for (const auto& report : reports) {
    table.row({report.strategy, report.every_sheet_delivered ? "yes" : "NO",
               core::num(report.cost_per_sheet),
               core::num(static_cast<double>(report.wired)),
               core::num(static_cast<double>(report.wireless)),
               core::num(static_cast<double>(report.searches))});
  }
  table.print(std::cout);

  std::cout << "\nWith the fleet clustered in two downtown cells, the location view\n"
               "fans each sheet out to |LV| stations instead of |G| vans' individually\n"
               "tracked cells, and only suburb runs touch the view at all.\n";
  return 0;
}
