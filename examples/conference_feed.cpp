// Conference session feed: exactly-once multicast to roaming attendees
// (the paper's reference [1], running on this library's §2 substrate).
//
// A conference venue has 5 session rooms (cells). The organizers push
// schedule updates to all registered attendees' badges. Attendees wander
// between rooms, badge radios doze, and some people leave the venue for
// lunch (disconnect) — yet every badge must end the day with every
// update exactly once, and the venue network must never fall back to
// paging/searching for individual badges.
//
//   $ ./examples/conference_feed

#include <iostream>

#include "core/mobidist.hpp"
#include "multicast/multicast.hpp"

using namespace mobidist;
using group::Group;
using net::MhId;
using net::MssId;

int main() {
  net::NetConfig cfg;
  cfg.num_mss = 5;   // session rooms
  cfg.num_mh = 20;   // badges
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 6;
  cfg.seed = 20260704;
  net::Network net(cfg);

  // Every badge is registered for the feed.
  std::vector<MhId> badges;
  for (std::uint32_t i = 0; i < cfg.num_mh; ++i) badges.push_back(MhId(i));
  multicast::McastService feed(net, Group::of(badges));

  // Attendees drift between rooms all day; one in five excursions is a
  // lunch break (disconnect + reconnect).
  mobility::MobilityConfig wandering;
  wandering.mean_pause = 90;
  wandering.mean_transit = 8;
  wandering.max_moves_per_host = 5;
  wandering.disconnect_prob = 0.2;
  wandering.mean_disconnect = 200;
  mobility::MobilityDriver crowd(net, wandering);

  net.start();
  crowd.start();

  // Ten schedule updates from the organizers' desk (room 0) over the day.
  constexpr int kUpdates = 10;
  workload::paced_calls(net, kUpdates, 120, 10,
                        [&](std::uint64_t) { feed.publish(MssId(0)); });

  net.run();

  const cost::CostParams p;
  const bool perfect = feed.monitor().exactly_once(feed.recipients());
  std::cout << "updates published        : " << kUpdates << "\n"
            << "badges                   : " << cfg.num_mh << "\n"
            << "moves / lunch breaks     : " << crowd.moves() << " / "
            << crowd.disconnects() << "\n"
            << "every update everywhere  : " << (perfect ? "exactly once" : "NO") << "\n"
            << "duplicates suppressed    : " << feed.duplicates_suppressed() << "\n"
            << "searches issued          : " << net.ledger().searches()
            << " (the whole point: zero)\n"
            << "communication            : " << core::summarize(net.ledger(), p) << "\n";

  // What the same day would have cost with per-badge search delivery.
  const double naive = kUpdates * cfg.num_mh * (p.c_search + p.c_wireless);
  std::cout << "per-badge-search estimate: " << core::num(naive) << " vs actual "
            << core::num(net.ledger().total(p)) << "\n";
  return perfect ? 0 : 1;
}
