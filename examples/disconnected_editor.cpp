// Collaborative editing lock with flaky clients: §5's proxy framework
// plus the §2 disconnection protocol in one scenario.
//
// Five field engineers share a config file guarded by a write lock.
// Their tablets doze between edits, disconnect in dead zones, and
// reconnect in whatever cell they surface in — sometimes without even
// knowing where they disconnected. The lock is plain static-host Lamport
// run at fixed home proxies (ProxiedLamport); every mobility event is
// absorbed by the proxy layer and the substrate.
//
//   $ ./examples/disconnected_editor

#include <iostream>

#include "core/mobidist.hpp"

using namespace mobidist;
using net::MhId;
using net::MssId;

int main() {
  net::NetConfig cfg;
  cfg.num_mss = 5;
  cfg.num_mh = 5;
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 6;
  cfg.seed = 31337;
  net::Network net(cfg);

  proxy::ProxyOptions options;
  options.scope = proxy::ProxyScope::kFixedHome;
  proxy::ProxyService proxies(net, options);

  mutex::CsMonitor monitor;
  mutex::MutexOptions lock_opts;
  lock_opts.cs_hold = 20;  // an edit takes a while
  proxy::ProxiedLamport lock(net, proxies, monitor, lock_opts);

  net.start();

  // A timeline of a rough afternoon. Engineer 0 edits, then drives off.
  net.sched().schedule(5, [&] { lock.request(MhId(0)); });
  net.sched().schedule(8, [&] { lock.request(MhId(1)); });
  net.sched().schedule(60, [&] { net.mh(MhId(0)).move_to(MssId(3), 10); });

  // Engineer 2 requests the lock and immediately hits a dead zone; the
  // grant bounces off the disconnected flag and is aborted by the proxy.
  net.sched().schedule(100, [&] { lock.request(MhId(2)); });
  net.sched().schedule(101, [&] { net.mh(MhId(2)).disconnect(); });

  // Engineer 3 dozes all day and is never disturbed.
  net.mh(MhId(3)).set_doze(true);

  // Engineer 4 edits from a borrowed cell after reconnecting WITHOUT
  // remembering the previous station (forces the find-disconnect sweep).
  net.sched().schedule(150, [&] { net.mh(MhId(4)).disconnect(); });
  net.sched().schedule(300, [&] {
    net.mh(MhId(4)).reconnect_at(MssId(2), 5, /*supply_prev=*/false);
  });
  net.sched().schedule(360, [&] { lock.request(MhId(4)); });

  // Engineer 2 resurfaces much later and edits successfully this time.
  net.sched().schedule(500, [&] { net.mh(MhId(2)).reconnect_at(MssId(1), 5); });
  net.sched().schedule(560, [&] { lock.request(MhId(2)); });

  net.run();

  const cost::CostParams p;
  std::cout << "edits completed          : " << lock.completed() << " (expected 4)\n"
            << "requests aborted         : " << lock.aborted()
            << " (engineer 2's dead-zone request)\n"
            << "mutual exclusion held    : " << (monitor.violations() == 0 ? "yes" : "NO")
            << "\n"
            << "dozing engineer woken    : "
            << (net.stats().doze_interruptions == 0 ? "never" : "yes?!") << "\n"
            << "proxy informs sent       : " << proxies.informs() << "\n"
            << "disconnect round-trips   : " << net.stats().disconnects << " disconnects, "
            << net.stats().reconnects << " reconnects\n"
            << "communication            : " << core::summarize(net.ledger(), p) << "\n";

  std::cout << "\nGrant log:\n";
  for (const auto& grant : monitor.history()) {
    std::cout << "  t=" << grant.entered << ".." << grant.exited << "  "
              << net::to_string(grant.mh) << "\n";
  }
  return monitor.violations() == 0 && lock.completed() == 4 ? 0 : 1;
}
