// Campus license server: the workload the paper's introduction motivates.
//
// A campus has 6 buildings (cells), each with a support station, and 30
// student laptops that move between lectures. Everyone occasionally
// needs the single floating license (a critical section). This example
// runs the identical day on all four §3 algorithms — L1/R1 executed
// directly on the laptops versus the restructured L2/R2' — and reports
// cost, battery drain, and how dozing laptops fared.
//
//   $ ./examples/campus_mutex

#include <iostream>

#include "core/mobidist.hpp"

using namespace mobidist;
using net::MhId;
using net::MssId;

namespace {

constexpr std::uint32_t kBuildings = 6;
constexpr std::uint32_t kLaptops = 30;
constexpr std::uint32_t kLicenseRequests = 12;

net::NetConfig campus_config() {
  net::NetConfig cfg;
  cfg.num_mss = kBuildings;
  cfg.num_mh = kLaptops;
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 8;
  cfg.seed = 90210;
  return cfg;
}

struct DayReport {
  std::string algorithm;
  std::uint64_t granted = 0;
  bool safe = false;
  double total_cost = 0;
  std::uint64_t wireless = 0;
  double battery = 0;           // total MH energy
  std::uint64_t dozer_wakeups = 0;
  double mean_latency = 0;      // request -> grant, virtual ticks
};

/// Run one "day": lectures end every ~80 ticks (students move), license
/// requests arrive Poisson, a third of the laptops doze throughout.
template <typename RequestFn>
DayReport run_day(const std::string& name, net::Network& net, mutex::CsMonitor& monitor,
                  RequestFn request, std::uint64_t granted_count) {
  mobility::MobilityConfig lectures;
  lectures.mean_pause = 80;
  lectures.mean_transit = 6;
  lectures.max_moves_per_host = 3;
  lectures.pattern = mobility::MovePattern::kNeighbor;  // next building over
  // Only the first 12 laptops wander; the rest stay parked in the library.
  std::vector<MhId> wanderers;
  for (std::uint32_t i = 0; i < 12; ++i) wanderers.push_back(MhId(i));
  mobility::MobilityDriver timetable(net, lectures, wanderers);

  for (std::uint32_t i = 20; i < kLaptops; ++i) net.mh(MhId(i)).set_doze(true);

  net.start();
  timetable.start();
  workload::poisson_calls(net, kLicenseRequests, 60.0, 5,
                          [&](std::uint64_t seq) { request(MhId(seq % 12)); });
  net.run();

  const cost::CostParams p;
  DayReport report;
  report.algorithm = name;
  report.granted = granted_count == 0 ? monitor.grants() : granted_count;
  report.safe = monitor.violations() == 0;
  report.total_cost = net.ledger().total(p);
  report.wireless = net.ledger().wireless_msgs();
  report.battery = net.ledger().total_energy(p);
  report.dozer_wakeups = net.stats().doze_interruptions;
  report.mean_latency = monitor.mean_grant_latency();
  return report;
}

}  // namespace

int main() {
  std::cout << "Campus floating-license day: " << kBuildings << " buildings, " << kLaptops
            << " laptops (10 dozing), " << kLicenseRequests << " license requests\n\n";

  std::vector<DayReport> reports;

  {
    net::Network net(campus_config());
    mutex::CsMonitor monitor;
    mutex::L1Mutex algo(net, monitor);
    reports.push_back(
        run_day("L1 (Lamport on laptops)", net, monitor, [&](MhId mh) { algo.request(mh); }, 0));
  }
  {
    net::Network net(campus_config());
    mutex::CsMonitor monitor;
    mutex::L2Mutex algo(net, monitor);
    reports.push_back(run_day("L2 (Lamport on stations)", net, monitor,
                              [&](MhId mh) { algo.request(mh); }, 0));
  }
  {
    net::Network net(campus_config());
    mutex::CsMonitor monitor;
    mutex::R1Mutex algo(net, monitor);
    net.sched().schedule(1, [&] { algo.start_token(6); });  // circulate all day
    reports.push_back(
        run_day("R1 (token ring of laptops)", net, monitor, [&](MhId mh) { algo.request(mh); }, 0));
  }
  {
    net::Network net(campus_config());
    mutex::CsMonitor monitor;
    mutex::R2Mutex algo(net, monitor, mutex::RingVariant::kCounter);
    // The token circulates all day (idle traversals included in the
    // cost, as the paper charges them); at closing time it parks at the
    // first idle pass.
    net.sched().schedule(1, [&] { algo.start_token(100000); });
    net.sched().schedule(1200, [&] { algo.set_absorb_when_idle(true); });
    reports.push_back(run_day("R2' (token ring of stations)", net, monitor,
                              [&](MhId mh) { algo.request(mh); }, 0));
  }

  core::Table table({"algorithm", "granted", "safe", "total cost", "wireless msgs",
                     "battery", "dozer wakeups", "mean latency"});
  for (const auto& report : reports) {
    table.row({report.algorithm, core::num(static_cast<double>(report.granted)),
               report.safe ? "yes" : "NO", core::num(report.total_cost),
               core::num(static_cast<double>(report.wireless)), core::num(report.battery),
               core::num(static_cast<double>(report.dozer_wakeups)),
               core::num(report.mean_latency)});
  }
  table.print(std::cout);

  std::cout << "\nThe restructured algorithms (L2, R2') serve the same day for a\n"
               "fraction of the cost, drain an order of magnitude less battery, and\n"
               "never wake a dozing laptop that didn't ask for the license.\n";
  return 0;
}
