// Quickstart: the smallest complete mobidist program.
//
// Builds the §2 system model (4 support stations, 12 mobile hosts),
// runs the paper's restructured mutual exclusion (L2) while one host
// changes cells mid-request, and prints what it cost.
//
//   $ ./examples/quickstart

#include <iostream>

#include "core/mobidist.hpp"

using namespace mobidist;

int main() {
  // 1. Describe the system: M = 4 fixed support stations, N = 12 mobile
  //    hosts, deterministic seed so every run is identical.
  net::NetConfig config;
  config.num_mss = 4;
  config.num_mh = 12;
  config.seed = 2024;

  net::Network network(config);

  // 2. Attach an algorithm. L2 runs Lamport's mutual exclusion among the
  //    support stations on behalf of the mobile hosts (§3.1.1).
  mutex::CsMonitor monitor;  // asserts mutual exclusion & records grants
  mutex::L2Mutex lock(network, monitor);

  // 3. Script a workload: three hosts want the critical section; one of
  //    them wanders to another cell while waiting.
  network.start();
  network.sched().schedule(1, [&] { lock.request(net::MhId(0)); });
  network.sched().schedule(2, [&] { lock.request(net::MhId(5)); });
  network.sched().schedule(3, [&] { lock.request(net::MhId(9)); });
  network.sched().schedule(6, [&] {
    network.mh(net::MhId(0)).move_to(net::MssId(2), /*transit=*/4);
  });

  // 4. Run to quiescence.
  network.run();

  // 5. Inspect the outcome.
  const cost::CostParams params;  // c_fixed=1, c_wireless=10, c_search=4
  std::cout << "completed CS executions : " << lock.completed() << "\n"
            << "mutual-exclusion holds  : " << (monitor.violations() == 0 ? "yes" : "NO")
            << "\n"
            << "grant order respected   : "
            << (monitor.order_inversions() == 0 ? "yes" : "NO") << "\n"
            << "communication           : " << core::summarize(network.ledger(), params)
            << "\n"
            << "paper formula (3 execs) : "
            << core::num(3 * analysis::l2_execution_cost(config.num_mss, params))
            << " (+1 c_fixed for the mover's release relay)\n";
  return 0;
}
