// Metrics registry (src/obs) and JSON bench-artifact (core::BenchReport)
// tests: metric semantics, registration rules, serializer validity, and
// the byte-identical-for-identical-seeds determinism contract.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/mobidist.hpp"

namespace mobidist::test {
namespace {

using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

// --------------------------------------------------------------------------
// A minimal JSON validator (objects/arrays/strings/numbers/literals),
// enough to prove the serializer emits well-formed documents.
// --------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& text) { return JsonChecker(text).valid(); }

// --------------------------------------------------------------------------
// Counter / Gauge / Histogram semantics
// --------------------------------------------------------------------------

TEST(Counter, IncrementAndImplicitConversion) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  ++counter;
  counter += 4;
  counter.inc();
  EXPECT_EQ(counter.value(), 6u);
  const std::uint64_t as_int = counter;  // shim for the old uint64_t fields
  EXPECT_EQ(as_int, 6u);
  EXPECT_EQ(counter, 6u);
}

TEST(Gauge, SetAddAndHighWaterMark) {
  obs::Gauge gauge;
  gauge.set(5);
  gauge.add(-8);
  EXPECT_EQ(gauge.value(), -3);
  gauge.set_max(10);
  gauge.set_max(2);  // below the mark: no effect
  EXPECT_EQ(gauge.value(), 10);
}

TEST(Histogram, BucketsSamplesAndTracksMoments) {
  obs::Histogram hist({1, 4, 16});
  hist.record(0);
  hist.record(1);   // both land in the <=1 bucket
  hist.record(3);   // <=4
  hist.record(16);  // <=16
  hist.record(99);  // overflow
  const auto& counts = hist.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 119u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 99u);
  EXPECT_DOUBLE_EQ(hist.mean(), 119.0 / 5.0);
}

TEST(Histogram, EmptyHistogramReportsZeros) {
  obs::Histogram hist(obs::latency_buckets());
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({3, 3}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({5, 2}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

TEST(Registry, RegistrationIsIdempotentAndReferencesAreStable) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x.count");
  ++a;
  // Register many more metrics; `a` must stay valid (node-based storage).
  for (int i = 0; i < 100; ++i) registry.counter("fill." + std::to_string(i));
  obs::Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);

  obs::Histogram& h1 = registry.histogram("x.hist", {1, 2, 3});
  obs::Histogram& h2 = registry.histogram("x.hist", {9, 99});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(Registry, CrossKindNameCollisionThrows) {
  obs::Registry registry;
  registry.counter("dual");
  EXPECT_THROW(registry.gauge("dual"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dual", {1}), std::invalid_argument);
}

// Shard-local telemetry is folded into slice 0 after a sharded run;
// merge_from is the whole mechanism, so the fold must be a plain sum
// per metric kind (and must not care which side registered a name).
TEST(Registry, MergeFromFoldsEveryMetricKind) {
  obs::Registry a;
  obs::Registry b;
  a.counter("msgs") += 3;
  b.counter("msgs") += 4;
  b.counter("only_b") += 2;
  a.gauge("depth").add(5);
  b.gauge("depth").add(7);
  a.histogram("lat", {1, 4}).record(1);
  b.histogram("lat", {1, 4}).record(3);
  b.histogram("lat", {1, 4}).record(99);

  a.merge_from(b);
  EXPECT_EQ(a.counter("msgs").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 2u);
  EXPECT_EQ(a.gauge("depth").value(), 12);
  const auto& hist = a.histogram("lat", {1, 4});
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 103u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 99u);
}

TEST(Histogram, MergeFromRequiresMatchingBounds) {
  obs::Histogram a({1, 4});
  obs::Histogram b({1, 8});
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

// --------------------------------------------------------------------------
// JSON serialization
// --------------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(core::json_escape("plain"), "plain");
  EXPECT_EQ(core::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(core::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(core::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, MetricsJsonIsValidAndNameOrdered) {
  obs::Registry registry;
  registry.counter("b.second").inc(2);
  registry.counter("a.first").inc(1);
  registry.gauge("g.depth").set(-4);
  registry.histogram("h.lat", {1, 10}).record(5);
  const std::string json = core::metrics_json(registry);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_LT(json.find("a.first"), json.find("b.second"));  // map iteration order
  EXPECT_NE(json.find("\"g.depth\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[1,10]"), std::string::npos);
}

TEST(BenchReport, ArtifactIsValidJsonWithTimingSection) {
  core::BenchReport report("unit");
  report.note("k", "v");
  Network net(NetConfig{});
  net.start();
  net.mh(MhId(0)).move_to(MssId(1), 5);
  net.run();
  report.add_run("run0", net, cost::CostParams{});
  const std::string full = report.json();
  EXPECT_TRUE(is_valid_json(full)) << full;
  EXPECT_NE(full.find("\"name\":\"unit\""), std::string::npos);
  EXPECT_NE(full.find("\"timing\":{\"wall_clock_ms\":"), std::string::npos);
  // The deterministic body excludes timing entirely.
  const std::string det = report.deterministic_json();
  EXPECT_TRUE(is_valid_json(det)) << det;
  EXPECT_EQ(det.find("timing"), std::string::npos);
  EXPECT_EQ(det.find("wall_clock"), std::string::npos);
}

// --------------------------------------------------------------------------
// Determinism: identical seeds => byte-identical metric serialization
// --------------------------------------------------------------------------

std::string run_and_serialize(std::uint64_t seed) {
  NetConfig cfg;
  cfg.num_mss = 4;
  cfg.num_mh = 12;
  cfg.search = net::SearchMode::kBroadcast;
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 30;
  cfg.seed = seed;
  Network net(cfg);
  mutex::CsMonitor monitor;
  mutex::L2Mutex l2(net, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 20;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 12; ++i) {
    net.sched().schedule(1 + 2 * i, [&l2, i] { l2.request(MhId(i)); });
  }
  net.run();
  core::BenchReport report("determinism");
  report.add_run("run", net, cost::CostParams{});
  return report.deterministic_json();
}

TEST(BenchReport, IdenticalSeedsSerializeByteIdentically) {
  const std::string first = run_and_serialize(4242);
  const std::string second = run_and_serialize(4242);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(is_valid_json(first));
  // ...and the registry actually recorded activity (not trivially empty).
  EXPECT_NE(first.find("\"net.handoffs\":"), std::string::npos);
  EXPECT_NE(first.find("mutex.cs_wait"), std::string::npos);
}

TEST(BenchReport, DifferentSeedsDiverge) {
  EXPECT_NE(run_and_serialize(1), run_and_serialize(2));
}

TEST(BenchReport, WriteToMissingDirectoryThrows) {
  ::setenv("MOBIDIST_BENCH_DIR", "/nonexistent/mobidist-bench-dir", 1);
  core::BenchReport report("throws_on_bad_dir");
  EXPECT_THROW((void)report.write(), std::runtime_error);
  ::unsetenv("MOBIDIST_BENCH_DIR");
}

}  // namespace
}  // namespace mobidist::test
