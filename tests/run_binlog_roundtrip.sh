#!/usr/bin/env bash
# Binlog round-trip gate, registered with ctest as `binlog_roundtrip`.
# Runs the deterministic scale_smoke and mutex_smoke sweeps twice — once
# with the default JSONL exporter, once with MOBIDIST_TRACE_FORMAT=binlog
# — then decodes every TRACE_*.binlog with tools/trace_dump and requires
# the output to be byte-identical to the directly exported .jsonl. This
# is the contract that makes the compact binary path safe to use for
# artifact capture: nothing is lost, reordered, or re-rendered.
# Also sanity-checks trace_dump --perfetto and its corrupt-input exit.
set -euo pipefail

build_dir=${1:?usage: run_binlog_roundtrip.sh <build-dir> <source-dir>}
source_dir=${2:?usage: run_binlog_roundtrip.sh <build-dir> <source-dir>}
cli="$build_dir/tools/mobidist_sweep"
dump="$build_dir/tools/trace_dump"
for bin in "$cli" "$dump"; do
  if [ ! -x "$bin" ]; then
    echo "run_binlog_roundtrip: missing binary $bin (build first)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir "$tmp/jsonl" "$tmp/binlog"

for scenario in scale_smoke mutex_smoke; do
  spec="$source_dir/scenarios/$scenario.json"
  MOBIDIST_TRACE_DIR="$tmp/jsonl/" "$cli" --scenario "$spec" \
    --jobs 2 --deterministic --out "$tmp/jsonl/ARTIFACT_$scenario.json" > /dev/null
  MOBIDIST_TRACE_DIR="$tmp/binlog/" MOBIDIST_TRACE_FORMAT=binlog "$cli" --scenario "$spec" \
    --jobs 2 --deterministic --out "$tmp/binlog/ARTIFACT_$scenario.json" > /dev/null
done

shopt -s nullglob
binlogs=("$tmp"/binlog/TRACE_*.binlog)
if [ "${#binlogs[@]}" -eq 0 ]; then
  echo "run_binlog_roundtrip: binlog run produced no TRACE_*.binlog" >&2
  exit 1
fi
# The binlog run must not ALSO write jsonl (the formats are exclusive).
leaked=("$tmp"/binlog/TRACE_*.jsonl)
if [ "${#leaked[@]}" -ne 0 ]; then
  echo "run_binlog_roundtrip: binlog mode leaked jsonl artifacts: ${leaked[*]}" >&2
  exit 1
fi

status=0
for binlog in "${binlogs[@]}"; do
  name=$(basename "$binlog" .binlog)
  direct="$tmp/jsonl/$name.jsonl"
  if [ ! -f "$direct" ]; then
    echo "run_binlog_roundtrip: jsonl run produced no $name.jsonl" >&2
    status=1
    continue
  fi
  if ! "$dump" "$binlog" > "$tmp/decoded.jsonl"; then
    echo "run_binlog_roundtrip: trace_dump failed on $binlog" >&2
    status=1
    continue
  fi
  if ! cmp -s "$direct" "$tmp/decoded.jsonl"; then
    echo "run_binlog_roundtrip: $name: decoded binlog differs from direct jsonl:" >&2
    diff "$direct" "$tmp/decoded.jsonl" | head -5 >&2 || true
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "run_binlog_roundtrip: binary path is not lossless" >&2
  exit "$status"
fi

# Perfetto mode decodes the same records through to_chrome_trace.
"$dump" --perfetto "${binlogs[0]}" > "$tmp/decoded.trace.json"
grep -q '"traceEvents":\[' "$tmp/decoded.trace.json"

# Corrupt input must fail loudly with exit 2, not decode garbage.
head -c 16 "${binlogs[0]}" > "$tmp/truncated.binlog"
if "$dump" "$tmp/truncated.binlog" > /dev/null 2>&1; then
  echo "run_binlog_roundtrip: trace_dump accepted a truncated binlog" >&2
  exit 1
fi

echo "run_binlog_roundtrip: ${#binlogs[@]} binlogs decoded byte-identical to direct jsonl"
