#!/usr/bin/env bash
# Shard-count-independence gate, registered with ctest as
# `shard_independence`. The headline guarantee of the sharded engine:
# for every scenario in scenarios/ and every seed its sweep grid tests,
# the deterministic artifact AND every per-run merged event trace must
# be byte-identical across shards {1,2,4,8}.
#
# Two distinct properties are pinned per scenario:
#   * shard-safe workloads (scale) actually run the sharded engine, so
#     equality proves the conservative-window protocol + canonical merge
#     are grouping-invariant;
#   * everything else (mobility / faults / on-demand sends) collapses to
#     the legacy engine regardless of --shards, so equality proves the
#     flag is a strict no-op there rather than a silent behavior change.
set -euo pipefail

build_dir=${1:?usage: run_shard_independence.sh <build-dir> <source-dir>}
source_dir=${2:?usage: run_shard_independence.sh <build-dir> <source-dir>}
cli="$build_dir/tools/mobidist_sweep"
if [ ! -x "$cli" ]; then
  echo "run_shard_independence: missing binary $cli (build first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

status=0
for scenario in "$source_dir"/scenarios/*.json; do
  name=$(basename "$scenario" .json)
  for shards in 1 2 4 8; do
    mkdir -p "$tmp/$name/s$shards"
    MOBIDIST_TRACE_DIR="$tmp/$name/s$shards/" "$cli" --scenario "$scenario" \
      --jobs 2 --deterministic --shards "$shards" \
      --out "$tmp/$name/s$shards/ARTIFACT.json" > /dev/null
  done
  for shards in 2 4 8; do
    if ! cmp -s "$tmp/$name/s1/ARTIFACT.json" "$tmp/$name/s$shards/ARTIFACT.json"; then
      echo "run_shard_independence: $name artifact differs shards=1 vs shards=$shards" >&2
      diff "$tmp/$name/s1/ARTIFACT.json" "$tmp/$name/s$shards/ARTIFACT.json" | head -5 >&2 || true
      status=1
    fi
  done
  traces=$(cd "$tmp/$name/s1" && ls TRACE_*.jsonl 2>/dev/null || true)
  if [ -z "$traces" ]; then
    echo "run_shard_independence: $name produced no traces" >&2
    status=1
    continue
  fi
  for trace in $traces; do
    for shards in 2 4 8; do
      if ! cmp -s "$tmp/$name/s1/$trace" "$tmp/$name/s$shards/$trace"; then
        echo "run_shard_independence: $name/$trace differs shards=1 vs shards=$shards" >&2
        diff "$tmp/$name/s1/$trace" "$tmp/$name/s$shards/$trace" | head -5 >&2 || true
        status=1
      fi
    done
  done
done

if [ "$status" -ne 0 ]; then
  echo "run_shard_independence: per-seed results depend on the shard count" >&2
  exit "$status"
fi
echo "run_shard_independence: artifacts and merged traces byte-identical across shards {1,2,4,8}"
