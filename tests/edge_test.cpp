// Edge cases and error contracts across the library: id formatting,
// envelope typing, agent registration, dispatch errors, event-limit
// behaviour, strategy misuse, and disconnect behaviour of the §4
// strategies.

#include <gtest/gtest.h>

#include "group/always_inform.hpp"
#include "group/location_view.hpp"
#include "group/pure_search.hpp"
#include "mutex/l2.hpp"
#include "mutex/r1.hpp"
#include "mutex/r2.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::Group;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// ids / envelope
// --------------------------------------------------------------------------

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(to_string(mss_id(3)), "mss:3");
  EXPECT_EQ(to_string(mh_id(12)), "mh:12");
  EXPECT_EQ(to_string(kInvalidMss), "mss:?");
  EXPECT_EQ(to_string(kInvalidMh), "mh:?");
}

TEST(Ids, NodeRefDiscriminatesKinds) {
  const NodeRef station = mss_id(1);
  const NodeRef host = mh_id(1);
  EXPECT_TRUE(station.is_mss());
  EXPECT_FALSE(station.is_mh());
  EXPECT_TRUE(host.is_mh());
  EXPECT_NE(station, host);  // same index, different kind
  EXPECT_EQ(NodeRef(mss_id(1)), NodeRef(mss_id(1)));
  EXPECT_EQ(to_string(NodeRef{}), "none");
}

TEST(Envelope, BodyAsReturnsNullOnTypeMismatch) {
  const auto env = net::make_envelope(net::protocol::kUserBase, NodeRef(mss_id(0)),
                                      NodeRef(mss_id(1)), std::string("x"));
  EXPECT_NE(net::body_as<std::string>(env), nullptr);
  EXPECT_EQ(net::body_as<int>(env), nullptr);
  EXPECT_FALSE(env.control);
  const auto ctl = net::make_control(NodeRef(mss_id(0)), NodeRef(mss_id(1)), 5);
  EXPECT_TRUE(ctl.control);
}

// --------------------------------------------------------------------------
// registration & dispatch contracts
// --------------------------------------------------------------------------

TEST(Registration, DuplicateProtocolThrows) {
  Network net(small_config());
  auto a = std::make_shared<RecordingMssAgent>();
  auto b = std::make_shared<RecordingMssAgent>();
  net.mss(mss_id(0)).register_agent(kTestProto, a);
  EXPECT_THROW(net.mss(mss_id(0)).register_agent(kTestProto, b), std::invalid_argument);
  auto ha = std::make_shared<RecordingMhAgent>();
  auto hb = std::make_shared<RecordingMhAgent>();
  net.mh(mh_id(0)).register_agent(kTestProto, ha);
  EXPECT_THROW(net.mh(mh_id(0)).register_agent(kTestProto, hb), std::invalid_argument);
}

TEST(Registration, NullAgentThrows) {
  Network net(small_config());
  EXPECT_THROW(net.mss(mss_id(0)).register_agent(kTestProto, nullptr),
               std::invalid_argument);
  EXPECT_THROW(net.mh(mh_id(0)).register_agent(kTestProto, nullptr),
               std::invalid_argument);
}

TEST(Dispatch, UnknownProtocolAtMssThrows) {
  Network net(small_config());
  net.start();
  Envelope env = net::make_envelope(net::protocol::kUserBase + 3, NodeRef(mss_id(0)),
                                    NodeRef(mss_id(1)), 1);
  EXPECT_THROW(net.mss(mss_id(1)).dispatch(env), std::logic_error);
}

TEST(Dispatch, AgentLookupByProtocol) {
  Network net(small_config());
  auto agent = std::make_shared<RecordingMssAgent>();
  net.mss(mss_id(0)).register_agent(kTestProto, agent);
  EXPECT_EQ(net.mss(mss_id(0)).agent(kTestProto), agent.get());
  EXPECT_EQ(net.mss(mss_id(0)).agent(kTestProto + 1), nullptr);
}

// --------------------------------------------------------------------------
// network limits & accessors
// --------------------------------------------------------------------------

TEST(NetworkLimits, EventLimitFlagSurfaces) {
  Network net(small_config());
  Harness h(net);
  net.start();
  // Self-perpetuating ping-pong between two stations.
  h.mss[0]->on_msg = [&](const Envelope&) { h.mss[0]->do_send_wired(mss_id(1), 0); };
  h.mss[1]->on_msg = [&](const Envelope&) { h.mss[1]->do_send_wired(mss_id(0), 0); };
  h.mss[0]->do_send_wired(mss_id(1), 0);
  net.run(/*event_limit=*/500);
  EXPECT_TRUE(net.sched().hit_event_limit());
}

TEST(NetworkAccessors, StateQueriesAgreeWithLifecycle) {
  Network net(small_config(3, 3));
  net.start();
  EXPECT_FALSE(net.is_in_transit(mh_id(0)));
  EXPECT_FALSE(net.is_disconnected(mh_id(0)));
  net.mh(mh_id(0)).move_to(mss_id(1), 50);
  EXPECT_TRUE(net.is_in_transit(mh_id(0)));
  net.run();
  net.mh(mh_id(0)).disconnect();
  net.run();
  EXPECT_TRUE(net.is_disconnected(mh_id(0)));
  EXPECT_EQ(net.mh(mh_id(0)).last_mss(), mss_id(1));
}

TEST(NetworkAccessors, JoinsCompletedCountsMovesAndReconnects) {
  Network net(small_config(3, 3));
  net.start();
  EXPECT_EQ(net.mh(mh_id(0)).joins_completed(), 0u);
  net.mh(mh_id(0)).move_to(mss_id(1), 2);
  net.run();
  EXPECT_EQ(net.mh(mh_id(0)).joins_completed(), 1u);
  net.mh(mh_id(0)).disconnect();
  net.run();
  net.mh(mh_id(0)).reconnect_at(mss_id(2), 2);
  net.run();
  EXPECT_EQ(net.mh(mh_id(0)).joins_completed(), 2u);
}

TEST(MobileHostErrors, RelayWhileInTransitThrows) {
  Network net(small_config(3, 4));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 100);
  EXPECT_THROW(net.mh(mh_id(0)).send_relay(mh_id(1), kTestProto, 1, true),
               std::logic_error);
  net.run();
}

// --------------------------------------------------------------------------
// group strategy contracts & disconnect behaviour
// --------------------------------------------------------------------------

TEST(GroupContracts, NonMemberSenderThrows) {
  Network net(small_config(4, 8));
  const auto group = Group::of({mh_id(0), mh_id(1)});
  group::PureSearchGroup ps(net, group, net::protocol::kUserBase + 1);
  group::AlwaysInformGroup ai(net, group, net::protocol::kUserBase + 2);
  group::LocationViewGroup lv(net, group, mss_id(0), net::protocol::kUserBase + 3);
  net.start();
  EXPECT_THROW(ps.send_group_message(mh_id(5)), std::invalid_argument);
  EXPECT_THROW(ai.send_group_message(mh_id(5)), std::invalid_argument);
  EXPECT_THROW(lv.send_group_message(mh_id(5)), std::invalid_argument);
}

TEST(GroupDisconnect, PureSearchParksForDisconnectedMember) {
  Network net(small_config(4, 8));
  const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2)});
  group::PureSearchGroup comm(net, group);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(2)).disconnect(); });
  net.sched().schedule(20, [&] { comm.send_group_message(mh_id(0)); });
  net.sched().schedule(400, [&] { net.mh(mh_id(2)).reconnect_at(mss_id(3), 5); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(group));
}

TEST(GroupDisconnect, AlwaysInformDeliversAfterReconnect) {
  Network net(small_config(4, 8));
  const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2)});
  group::AlwaysInformGroup comm(net, group);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(2)).disconnect(); });
  net.sched().schedule(20, [&] { comm.send_group_message(mh_id(0)); });
  net.sched().schedule(400, [&] { net.mh(mh_id(2)).reconnect_at(mss_id(1), 5); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(group));
}

TEST(GroupDisconnect, SenderDeferredWhileInTransit) {
  // send_group_message on a host that is mid-move goes out after it
  // lands (all three strategies share the deferral helper; spot-check
  // pure search).
  Network net(small_config(4, 8));
  const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2)});
  group::PureSearchGroup comm(net, group);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(0)).move_to(mss_id(3), 100); });
  net.sched().schedule(10, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(group));
}

// --------------------------------------------------------------------------
// multiple outstanding requests from one MH (L2)
// --------------------------------------------------------------------------

TEST(L2Edge, SameHostMayQueueSeveralRequests) {
  Network net(small_config(3, 6));
  mutex::CsMonitor monitor;
  mutex::L2Mutex l2(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  net.sched().schedule(2, [&] { l2.request(mh_id(0)); });
  net.sched().schedule(3, [&] { l2.request(mh_id(0)); });
  net.run();
  EXPECT_EQ(l2.completed(), 3u);
  EXPECT_EQ(monitor.grants(), 3u);
  EXPECT_EQ(monitor.violations(), 0u);
}

// --------------------------------------------------------------------------
// wired self-send ordering and control accounting
// --------------------------------------------------------------------------

TEST(WiredEdge, SelfSendDoesNotReenterSynchronously) {
  Network net(small_config());
  Harness h(net);
  net.start();
  bool received_during_send = false;
  bool sent = false;
  h.mss[0]->on_msg = [&](const Envelope&) { received_during_send = !sent; };
  net.sched().schedule(1, [&] {
    h.mss[0]->do_send_wired(mss_id(0), 1);
    sent = true;  // runs before the delivery event fires
  });
  net.run();
  ASSERT_EQ(h.mss[0]->received.size(), 1u);
  EXPECT_FALSE(received_during_send);
}

TEST(StatsEdge, ControlAndChargedTrafficSeparate) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 3);   // control only
  net.sched().schedule(50, [&] { h.mss[0]->do_send_wired(mss_id(2), 1); });  // charged
  net.run();
  EXPECT_EQ(net.ledger().fixed_msgs(), 1u);
  EXPECT_GT(net.stats().control_msgs, 0u);
}

// --------------------------------------------------------------------------
// CsMonitor / R1 odds and ends
// --------------------------------------------------------------------------

TEST(R1Edge, TokenWithZeroTraversalsAbsorbsImmediately) {
  Network net(small_config(3, 4));
  mutex::CsMonitor monitor;
  mutex::R1Mutex r1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { r1.start_token(0); });
  net.run();
  // One full loop happens before the counter is checked at mh0.
  EXPECT_TRUE(r1.token_absorbed());
}

TEST(R2Edge, TokenSurvivesRequesterlessTraversals) {
  Network net(small_config(3, 4));
  mutex::CsMonitor monitor;
  mutex::R2Mutex r2(net, monitor, mutex::RingVariant::kTokenList);
  net.start();
  net.sched().schedule(1, [&] { r2.start_token(5); });
  net.run();
  EXPECT_TRUE(r2.token_absorbed());
  EXPECT_EQ(r2.traversals_done(), 5u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 5u * 3u);
}

}  // namespace
}  // namespace mobidist::test
