// Unit tests for the reusable Lamport mutual-exclusion engine and the
// critical-section monitor, independent of the network substrate.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mutex/lamport_engine.hpp"
#include "mutex/monitor.hpp"

namespace mobidist::mutex {
namespace {

/// Synchronous message fabric wiring n engines together. The global FIFO
/// queue preserves per-pair FIFO, which is all Lamport requires.
class EngineNet {
 public:
  explicit EngineNet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      engines_.push_back(std::make_unique<LamportEngine>(i, n));
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      engines_[i]->set_send([this, i](std::uint32_t peer, const LamportMsg& msg) {
        queue_.push_back({i, peer, msg});
      });
      engines_[i]->set_on_acquired([this, i](std::uint64_t req_id, std::uint64_t ts) {
        grants.push_back({i, req_id, ts});
      });
    }
  }

  LamportEngine& at(std::uint32_t i) { return *engines_[i]; }

  /// Deliver queued messages until quiescent.
  void pump() {
    while (!queue_.empty()) {
      const auto [from, to, msg] = queue_.front();
      queue_.pop_front();
      engines_[to]->on_message(from, msg);
    }
  }

  /// Deliver exactly one message (for interleaving tests).
  bool step() {
    if (queue_.empty()) return false;
    const auto [from, to, msg] = queue_.front();
    queue_.pop_front();
    engines_[to]->on_message(from, msg);
    return true;
  }

  struct GrantEvent {
    std::uint32_t owner;
    std::uint64_t req_id;
    std::uint64_t ts;
  };
  std::vector<GrantEvent> grants;

 private:
  struct InFlight {
    std::uint32_t from;
    std::uint32_t to;
    LamportMsg msg;
  };
  std::vector<std::unique_ptr<LamportEngine>> engines_;
  std::deque<InFlight> queue_;
};

TEST(LamportEngine, SingleParticipantGrantsImmediately) {
  EngineNet net(1);
  net.at(0).submit(1);
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].owner, 0u);
  EXPECT_EQ(net.grants[0].req_id, 1u);
}

TEST(LamportEngine, TwoParticipantsGrantAfterReplies) {
  EngineNet net(2);
  net.at(0).submit(1);
  EXPECT_TRUE(net.grants.empty());  // no replies yet
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].owner, 0u);
}

TEST(LamportEngine, ReleaseHandsLockToNextRequest) {
  EngineNet net(3);
  net.at(0).submit(1);
  net.pump();
  net.at(1).submit(7);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);  // participant 1 blocked behind 0
  net.at(0).release(1);
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].owner, 1u);
  EXPECT_EQ(net.grants[1].req_id, 7u);
}

TEST(LamportEngine, ConcurrentRequestsServedInTimestampOrder) {
  EngineNet net(4);
  // All submit before any messages move: identical clocks, so the tie
  // breaks by participant id — grants must come 0, 1, 2, 3.
  for (std::uint32_t i = 0; i < 4; ++i) net.at(i).submit(100 + i);
  net.pump();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(net.grants.size(), i + 1);
    EXPECT_EQ(net.grants[i].owner, i);
    net.at(i).release(100 + i);
    net.pump();
  }
  // Order keys strictly increase.
  for (std::size_t i = 1; i < net.grants.size(); ++i) {
    const auto prev = std::pair{net.grants[i - 1].ts, net.grants[i - 1].owner};
    const auto cur = std::pair{net.grants[i].ts, net.grants[i].owner};
    EXPECT_LT(prev, cur);
  }
}

TEST(LamportEngine, LaterRequestHasLaterTimestamp) {
  EngineNet net(2);
  const auto ts0 = net.at(0).submit(1);
  net.pump();
  net.at(0).release(1);
  net.pump();
  const auto ts1 = net.at(1).submit(2);
  EXPECT_GT(ts1, ts0);  // clocks advanced through the message exchange
}

TEST(LamportEngine, NeverTwoConcurrentGrants) {
  // Random-ish interleaving via partial pumping; at most one unreleased
  // grant may exist at any prefix of the run.
  EngineNet net(5);
  for (std::uint32_t i = 0; i < 5; ++i) net.at(i).submit(i);
  std::size_t released = 0;
  while (true) {
    // Release as soon as a grant appears; count concurrency.
    ASSERT_LE(net.grants.size(), released + 1) << "two grants outstanding";
    if (net.grants.size() == released + 1) {
      const auto& grant = net.grants[released];
      net.at(grant.owner).release(grant.req_id);
      ++released;
      continue;
    }
    if (!net.step()) break;
  }
  EXPECT_EQ(released, 5u);
}

TEST(LamportEngine, SupportsMultipleOutstandingRequestsPerParticipant) {
  // The L2 case: one MSS requests on behalf of several MHs.
  EngineNet net(2);
  net.at(0).submit(1);
  net.at(0).submit(2);
  net.at(1).submit(3);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].req_id, 1u);
  net.at(0).release(1);
  net.pump();
  // Entry order is (ts, participant): (1,0,req1) < (1,1,req3) < (2,0,req2).
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].owner, 1u);
  EXPECT_EQ(net.grants[1].req_id, 3u);
  net.at(1).release(3);
  net.pump();
  ASSERT_EQ(net.grants.size(), 3u);
  EXPECT_EQ(net.grants[2].owner, 0u);
  EXPECT_EQ(net.grants[2].req_id, 2u);
  net.at(0).release(2);
  net.pump();
}

TEST(LamportEngine, MessageCountsMatchPaperFormula) {
  // One full execution among n participants: (n-1) requests + (n-1)
  // replies + (n-1) releases.
  constexpr std::uint32_t kN = 6;
  EngineNet net(kN);
  net.at(2).submit(1);
  net.pump();
  net.at(2).release(1);
  net.pump();
  EXPECT_EQ(net.at(2).sent_requests(), kN - 1);
  EXPECT_EQ(net.at(2).sent_releases(), kN - 1);
  std::uint64_t replies = 0;
  for (std::uint32_t i = 0; i < kN; ++i) replies += net.at(i).sent_replies();
  EXPECT_EQ(replies, kN - 1);
}

TEST(LamportEngine, QueueDrainsAfterAllReleases) {
  EngineNet net(3);
  for (std::uint32_t i = 0; i < 3; ++i) net.at(i).submit(i);
  net.pump();
  for (std::uint32_t i = 0; i < 3; ++i) {
    // Grants arrive in id order here.
    net.at(i).release(i);
    net.pump();
  }
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(net.at(i).queue_size(), 0u);
}

TEST(LamportEngine, DuplicateLocalReqIdThrows) {
  EngineNet net(2);
  net.at(0).submit(1);
  EXPECT_THROW(net.at(0).submit(1), std::logic_error);
}

TEST(LamportEngine, ReleaseOfUnknownReqIdThrows) {
  EngineNet net(2);
  EXPECT_THROW(net.at(0).release(42), std::logic_error);
}

TEST(LamportEngine, SelfOutOfRangeThrows) {
  EXPECT_THROW(LamportEngine(3, 3), std::invalid_argument);
}

TEST(LamportEngine, ReleaseBeforeGrantAbortsPendingRequest) {
  // L2's disconnect path: the home MSS releases a request that was never
  // granted; the other participant must still make progress.
  EngineNet net(2);
  net.at(0).submit(1);
  net.at(1).submit(2);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);  // 0 holds
  net.at(0).release(1);              // normal release
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);  // 1 holds
  // Now abort a fresh not-yet-granted request from 0.
  net.at(0).submit(5);
  net.pump();
  net.at(0).release(5);  // aborted before grant (1 still holds)
  net.pump();
  net.at(1).release(2);
  net.pump();
  EXPECT_EQ(net.grants.size(), 2u);  // the aborted request never granted
  EXPECT_EQ(net.at(0).queue_size(), 0u);
  EXPECT_EQ(net.at(1).queue_size(), 0u);
}

// --------------------------------------------------------------------------
// CsMonitor
// --------------------------------------------------------------------------

TEST(CsMonitor, RecordsGrantLifecycle) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(3), 7, 100);
  EXPECT_TRUE(monitor.busy());
  EXPECT_EQ(monitor.holder(), static_cast<net::MhId>(3));
  monitor.exit(grant, 110);
  EXPECT_FALSE(monitor.busy());
  ASSERT_EQ(monitor.grants(), 1u);
  EXPECT_EQ(monitor.history()[0].entered, 100u);
  EXPECT_EQ(monitor.history()[0].exited, 110u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(CsMonitor, DetectsOverlap) {
  CsMonitor monitor;
  monitor.enter(static_cast<net::MhId>(1), 1, 10);
  monitor.enter(static_cast<net::MhId>(2), 2, 11);  // overlap!
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, DetectsDoubleExit) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(1), 1, 10);
  monitor.exit(grant, 20);
  monitor.exit(grant, 21);
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, DetectsBogusExit) {
  CsMonitor monitor;
  monitor.exit(99, 5);
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, CountsOrderInversions) {
  CsMonitor monitor;
  auto enter_exit = [&](std::uint64_t key) {
    const auto grant = monitor.enter(static_cast<net::MhId>(0), key, 0);
    monitor.exit(grant, 1);
  };
  enter_exit(1);
  enter_exit(3);
  enter_exit(2);  // inversion
  enter_exit(5);
  EXPECT_EQ(monitor.order_inversions(), 1u);
}

TEST(CsMonitor, InOrderGrantsHaveNoInversions) {
  CsMonitor monitor;
  for (std::uint64_t key = 1; key <= 10; ++key) {
    const auto grant = monitor.enter(static_cast<net::MhId>(0), key, key);
    monitor.exit(grant, key);
  }
  EXPECT_EQ(monitor.order_inversions(), 0u);
}


TEST(CsMonitor, MatchesRequestsToGrantsFifo) {
  CsMonitor monitor;
  const auto mh = static_cast<net::MhId>(4);
  monitor.note_request(mh, 10);
  monitor.note_request(mh, 20);
  const auto g1 = monitor.enter(mh, 1, 50);
  monitor.exit(g1, 55);
  const auto g2 = monitor.enter(mh, 2, 100);
  monitor.exit(g2, 105);
  ASSERT_EQ(monitor.grants(), 2u);
  EXPECT_TRUE(monitor.history()[0].has_request_time);
  EXPECT_EQ(monitor.history()[0].requested, 10u);
  EXPECT_EQ(monitor.history()[1].requested, 20u);
  // Latencies: 40 and 80 -> mean 60.
  EXPECT_DOUBLE_EQ(monitor.mean_grant_latency(), 60.0);
}

TEST(CsMonitor, GrantsWithoutRequestsHaveNoLatency) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(0), 1, 5);
  monitor.exit(grant, 6);
  EXPECT_FALSE(monitor.history()[0].has_request_time);
  EXPECT_DOUBLE_EQ(monitor.mean_grant_latency(), 0.0);
}

}  // namespace
}  // namespace mobidist::mutex
