// Unit tests for the reusable mutual-exclusion engines (Lamport,
// Naimi-Trehel path reversal) and the critical-section monitor, plus
// the trace-driven token-holder-conservation regression for the
// network-wired path-reversal mutex.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "mutex/lamport_engine.hpp"
#include "mutex/monitor.hpp"
#include "mutex/path_reversal.hpp"
#include "test_support.hpp"

namespace mobidist::mutex {
namespace {

/// Synchronous message fabric wiring n engines together. The global FIFO
/// queue preserves per-pair FIFO, which is all Lamport requires.
class EngineNet {
 public:
  explicit EngineNet(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      engines_.push_back(std::make_unique<LamportEngine>(i, n));
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      engines_[i]->set_send([this, i](std::uint32_t peer, const LamportMsg& msg) {
        queue_.push_back({i, peer, msg});
      });
      engines_[i]->set_on_acquired([this, i](std::uint64_t req_id, std::uint64_t ts) {
        grants.push_back({i, req_id, ts});
      });
    }
  }

  LamportEngine& at(std::uint32_t i) { return *engines_[i]; }

  /// Deliver queued messages until quiescent.
  void pump() {
    while (!queue_.empty()) {
      const auto [from, to, msg] = queue_.front();
      queue_.pop_front();
      engines_[to]->on_message(from, msg);
    }
  }

  /// Deliver exactly one message (for interleaving tests).
  bool step() {
    if (queue_.empty()) return false;
    const auto [from, to, msg] = queue_.front();
    queue_.pop_front();
    engines_[to]->on_message(from, msg);
    return true;
  }

  struct GrantEvent {
    std::uint32_t owner;
    std::uint64_t req_id;
    std::uint64_t ts;
  };
  std::vector<GrantEvent> grants;

 private:
  struct InFlight {
    std::uint32_t from;
    std::uint32_t to;
    LamportMsg msg;
  };
  std::vector<std::unique_ptr<LamportEngine>> engines_;
  std::deque<InFlight> queue_;
};

TEST(LamportEngine, SingleParticipantGrantsImmediately) {
  EngineNet net(1);
  net.at(0).submit(1);
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].owner, 0u);
  EXPECT_EQ(net.grants[0].req_id, 1u);
}

TEST(LamportEngine, TwoParticipantsGrantAfterReplies) {
  EngineNet net(2);
  net.at(0).submit(1);
  EXPECT_TRUE(net.grants.empty());  // no replies yet
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].owner, 0u);
}

TEST(LamportEngine, ReleaseHandsLockToNextRequest) {
  EngineNet net(3);
  net.at(0).submit(1);
  net.pump();
  net.at(1).submit(7);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);  // participant 1 blocked behind 0
  net.at(0).release(1);
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].owner, 1u);
  EXPECT_EQ(net.grants[1].req_id, 7u);
}

TEST(LamportEngine, ConcurrentRequestsServedInTimestampOrder) {
  EngineNet net(4);
  // All submit before any messages move: identical clocks, so the tie
  // breaks by participant id — grants must come 0, 1, 2, 3.
  for (std::uint32_t i = 0; i < 4; ++i) net.at(i).submit(100 + i);
  net.pump();
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_EQ(net.grants.size(), i + 1);
    EXPECT_EQ(net.grants[i].owner, i);
    net.at(i).release(100 + i);
    net.pump();
  }
  // Order keys strictly increase.
  for (std::size_t i = 1; i < net.grants.size(); ++i) {
    const auto prev = std::pair{net.grants[i - 1].ts, net.grants[i - 1].owner};
    const auto cur = std::pair{net.grants[i].ts, net.grants[i].owner};
    EXPECT_LT(prev, cur);
  }
}

TEST(LamportEngine, LaterRequestHasLaterTimestamp) {
  EngineNet net(2);
  const auto ts0 = net.at(0).submit(1);
  net.pump();
  net.at(0).release(1);
  net.pump();
  const auto ts1 = net.at(1).submit(2);
  EXPECT_GT(ts1, ts0);  // clocks advanced through the message exchange
}

TEST(LamportEngine, NeverTwoConcurrentGrants) {
  // Random-ish interleaving via partial pumping; at most one unreleased
  // grant may exist at any prefix of the run.
  EngineNet net(5);
  for (std::uint32_t i = 0; i < 5; ++i) net.at(i).submit(i);
  std::size_t released = 0;
  while (true) {
    // Release as soon as a grant appears; count concurrency.
    ASSERT_LE(net.grants.size(), released + 1) << "two grants outstanding";
    if (net.grants.size() == released + 1) {
      const auto& grant = net.grants[released];
      net.at(grant.owner).release(grant.req_id);
      ++released;
      continue;
    }
    if (!net.step()) break;
  }
  EXPECT_EQ(released, 5u);
}

TEST(LamportEngine, SupportsMultipleOutstandingRequestsPerParticipant) {
  // The L2 case: one MSS requests on behalf of several MHs.
  EngineNet net(2);
  net.at(0).submit(1);
  net.at(0).submit(2);
  net.at(1).submit(3);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].req_id, 1u);
  net.at(0).release(1);
  net.pump();
  // Entry order is (ts, participant): (1,0,req1) < (1,1,req3) < (2,0,req2).
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].owner, 1u);
  EXPECT_EQ(net.grants[1].req_id, 3u);
  net.at(1).release(3);
  net.pump();
  ASSERT_EQ(net.grants.size(), 3u);
  EXPECT_EQ(net.grants[2].owner, 0u);
  EXPECT_EQ(net.grants[2].req_id, 2u);
  net.at(0).release(2);
  net.pump();
}

TEST(LamportEngine, MessageCountsMatchPaperFormula) {
  // One full execution among n participants: (n-1) requests + (n-1)
  // replies + (n-1) releases.
  constexpr std::uint32_t kN = 6;
  EngineNet net(kN);
  net.at(2).submit(1);
  net.pump();
  net.at(2).release(1);
  net.pump();
  EXPECT_EQ(net.at(2).sent_requests(), kN - 1);
  EXPECT_EQ(net.at(2).sent_releases(), kN - 1);
  std::uint64_t replies = 0;
  for (std::uint32_t i = 0; i < kN; ++i) replies += net.at(i).sent_replies();
  EXPECT_EQ(replies, kN - 1);
}

TEST(LamportEngine, QueueDrainsAfterAllReleases) {
  EngineNet net(3);
  for (std::uint32_t i = 0; i < 3; ++i) net.at(i).submit(i);
  net.pump();
  for (std::uint32_t i = 0; i < 3; ++i) {
    // Grants arrive in id order here.
    net.at(i).release(i);
    net.pump();
  }
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(net.at(i).queue_size(), 0u);
}

TEST(LamportEngine, DuplicateLocalReqIdThrows) {
  EngineNet net(2);
  net.at(0).submit(1);
  EXPECT_THROW(net.at(0).submit(1), std::logic_error);
}

TEST(LamportEngine, ReleaseOfUnknownReqIdThrows) {
  EngineNet net(2);
  EXPECT_THROW(net.at(0).release(42), std::logic_error);
}

TEST(LamportEngine, SelfOutOfRangeThrows) {
  EXPECT_THROW(LamportEngine(3, 3), std::invalid_argument);
}

TEST(LamportEngine, ReleaseBeforeGrantAbortsPendingRequest) {
  // L2's disconnect path: the home MSS releases a request that was never
  // granted; the other participant must still make progress.
  EngineNet net(2);
  net.at(0).submit(1);
  net.at(1).submit(2);
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);  // 0 holds
  net.at(0).release(1);              // normal release
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);  // 1 holds
  // Now abort a fresh not-yet-granted request from 0.
  net.at(0).submit(5);
  net.pump();
  net.at(0).release(5);  // aborted before grant (1 still holds)
  net.pump();
  net.at(1).release(2);
  net.pump();
  EXPECT_EQ(net.grants.size(), 2u);  // the aborted request never granted
  EXPECT_EQ(net.at(0).queue_size(), 0u);
  EXPECT_EQ(net.at(1).queue_size(), 0u);
}

// --------------------------------------------------------------------------
// PathRevEngine
// --------------------------------------------------------------------------

/// Synchronous fabric wiring m path-reversal engines. Claims and token
/// transfers queue in one FIFO; grants are recorded and the test
/// completes them explicitly with grant_done().
class PathRevNet {
 public:
  explicit PathRevNet(std::uint32_t m) {
    for (std::uint32_t i = 0; i < m; ++i) {
      engines_.push_back(std::make_unique<PathRevEngine>(
          i, /*has_token=*/i == 0,
          i == 0 ? PathRevEngine::kNoNode : 0,
          PathRevEngine::Hooks{
              [this, i](std::uint32_t to, std::uint32_t origin) {
                ++claim_hops;
                queue_.push_back({Op::kClaim, to, origin});
              },
              [this, i](std::uint32_t to) {
                ++token_passes;
                queue_.push_back({Op::kToken, to, i});
              },
              [this, i](net::MhId mh) { grants.push_back({i, mh}); },
              [this, i](std::uint32_t to) { reversals.push_back({i, to}); },
          }));
    }
  }

  PathRevEngine& at(std::uint32_t i) { return *engines_[i]; }

  /// Deliver queued messages until quiescent, asserting token
  /// conservation at every step: the token is at exactly one node or in
  /// exactly one in-flight transfer, never both, never neither.
  void pump() {
    while (!queue_.empty()) {
      check_conservation();
      const auto [op, to, arg] = queue_.front();
      queue_.pop_front();
      if (op == Op::kClaim) engines_[to]->on_claim(arg);
      else engines_[to]->on_token();
    }
    check_conservation();
  }

  void check_conservation() {
    std::size_t holders = 0;
    for (const auto& engine : engines_) holders += engine->token_here() ? 1 : 0;
    std::size_t in_flight = 0;
    for (const auto& msg : queue_) in_flight += msg.op == Op::kToken ? 1 : 0;
    ASSERT_EQ(holders + in_flight, 1u)
        << holders << " holders, " << in_flight << " transfers in flight";
  }

  struct Grant {
    std::uint32_t node;
    net::MhId mh;
  };
  std::vector<Grant> grants;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> reversals;
  std::uint64_t claim_hops = 0;
  std::uint64_t token_passes = 0;

 private:
  enum class Op { kClaim, kToken };
  struct InFlight {
    Op op;
    std::uint32_t to;
    std::uint32_t arg;  // claim origin; token sender (unused)
  };
  std::vector<std::unique_ptr<PathRevEngine>> engines_;
  std::deque<InFlight> queue_;
};

net::MhId pr_mh(std::uint32_t i) { return static_cast<net::MhId>(i); }
net::MssId pr_mss(std::uint32_t i) { return static_cast<net::MssId>(i); }

TEST(PathRevEngine, RootGrantsLocalRequestWithoutMessages) {
  PathRevNet net(4);
  net.at(0).local_request(pr_mh(0));
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].node, 0u);
  EXPECT_EQ(net.claim_hops, 0u);
  EXPECT_EQ(net.token_passes, 0u);
}

TEST(PathRevEngine, ClaimReachesRootInOneHopAndTokenTransfers) {
  PathRevNet net(4);
  net.at(2).local_request(pr_mh(2));
  EXPECT_EQ(net.at(2).father(), PathRevEngine::kNoNode);  // claim in flight
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);
  EXPECT_EQ(net.grants[0].node, 2u);
  EXPECT_EQ(net.claim_hops, 1u);   // 2 -> 0
  EXPECT_EQ(net.token_passes, 1u);  // 0 -> 2
  EXPECT_TRUE(net.at(2).token_here());
  // Path reversal: the old root's father now points at the claimant.
  EXPECT_EQ(net.at(0).father(), 2u);
}

TEST(PathRevEngine, BusyTailRecordsNextAndHandsOffOnGrantDone) {
  PathRevNet net(3);
  net.at(0).local_request(pr_mh(0));  // token busy at node 0
  net.at(1).local_request(pr_mh(1));
  net.pump();
  ASSERT_EQ(net.grants.size(), 1u);         // node 1 blocked behind node 0
  EXPECT_EQ(net.at(0).next_node(), 1u);     // recorded successor
  net.at(0).grant_done();
  net.pump();
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].node, 1u);
  net.at(1).grant_done();
  net.pump();
}

TEST(PathRevEngine, SequentialClaimsChaseTheMovingTail) {
  // After node 1's claim, node 1 is the probable tail: node 2's claim
  // must route 2 -> 0 -> 1 (two hops, crossing the stale father), and
  // every crossed node reverses onto the origin.
  PathRevNet net(3);
  net.at(1).local_request(pr_mh(1));
  net.pump();
  net.at(1).grant_done();
  net.pump();
  EXPECT_EQ(net.at(0).father(), 1u);  // reversed by node 1's claim
  const auto hops_before = net.claim_hops;
  net.at(2).local_request(pr_mh(2));
  net.pump();
  EXPECT_EQ(net.claim_hops - hops_before, 2u);  // 2 -> 0, 0 -> 1
  EXPECT_EQ(net.at(0).father(), 2u);            // reversed again
  ASSERT_EQ(net.grants.size(), 2u);
  EXPECT_EQ(net.grants[1].node, 2u);
  net.at(2).grant_done();
  net.pump();
}

TEST(PathRevEngine, RepeatRequesterPaysNoWiredMessages) {
  // The tree collapses toward the last requester: once node 3 holds the
  // token, its further entries are free of claim/transfer traffic.
  PathRevNet net(8);
  net.at(3).local_request(pr_mh(3));
  net.pump();
  net.at(3).grant_done();
  net.pump();
  const auto hops = net.claim_hops;
  const auto passes = net.token_passes;
  for (int round = 0; round < 5; ++round) {
    net.at(3).local_request(pr_mh(3));
    net.pump();
    net.at(3).grant_done();
    net.pump();
  }
  EXPECT_EQ(net.claim_hops, hops);
  EXPECT_EQ(net.token_passes, passes);
  EXPECT_EQ(net.grants.size(), 6u);
}

TEST(PathRevEngine, AllNodesRequestingAllGetServed) {
  constexpr std::uint32_t kM = 6;
  PathRevNet net(kM);
  for (std::uint32_t i = 0; i < kM; ++i) net.at(i).local_request(pr_mh(i));
  net.pump();
  std::size_t done = 0;
  while (net.grants.size() > done) {
    net.at(net.grants[done].node).grant_done();
    ++done;
    net.pump();
  }
  EXPECT_EQ(net.grants.size(), kM);
  // Exactly one distinct grant per node.
  std::vector<bool> seen(kM, false);
  for (const auto& grant : net.grants) {
    EXPECT_FALSE(seen[grant.node]);
    seen[grant.node] = true;
  }
}

TEST(PathRevEngine, WithdrawDropsQueuedRequests) {
  PathRevNet net(2);
  net.at(0).local_request(pr_mh(0));  // granted immediately (token here)
  net.at(0).local_request(pr_mh(1));
  net.at(0).local_request(pr_mh(1));
  EXPECT_EQ(net.at(0).queued(), 2u);
  EXPECT_EQ(net.at(0).withdraw(pr_mh(1)), 2u);
  EXPECT_EQ(net.at(0).queued(), 0u);
  EXPECT_EQ(net.at(0).withdraw(pr_mh(1)), 0u);
  net.at(0).grant_done();
  net.pump();
  EXPECT_EQ(net.grants.size(), 1u);  // the withdrawn requests never grant
}

// --------------------------------------------------------------------------
// PathRevMutex: trace-driven token-holder conservation
// --------------------------------------------------------------------------

/// Regression gate for the network wiring: replay the "NT" token events
/// from the trace stream and require that arrivals and departures
/// strictly alternate (one holder at a time) and that the run ends with
/// every departure matched or exactly one transfer in flight.
void ExpectTokenHolderConservation(const net::Network& net) {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  bool held = false;  // true between an arrive and the next depart
  for (const auto& event : net.events().snapshot()) {
    if (event.detail != mutex::PathRevMutex::label()) continue;
    if (event.kind == obs::EventKind::kTokenArrive) {
      EXPECT_FALSE(held) << "two token arrivals without a departure at event "
                         << event.id;
      held = true;
      ++arrivals;
    } else if (event.kind == obs::EventKind::kTokenDepart) {
      EXPECT_TRUE(held) << "token departed while not held at event " << event.id;
      held = false;
      ++departures;
    }
  }
  EXPECT_GE(arrivals, 1u) << "no NT token events in the trace";
  // Exactly one holder at rest, or one in-flight transfer at cutoff.
  EXPECT_TRUE(arrivals - departures == 1 || arrivals == departures)
      << arrivals << " arrivals vs " << departures << " departures";
}

TEST(PathRevMutex, ServesContendersAndConservesTheToken) {
  net::Network net(test::small_config(4, 8));
  CsMonitor monitor;
  PathRevMutex mutex(net, monitor);
  net.start();
  for (std::uint32_t i = 0; i < 8; ++i) {
    net.sched().schedule_at(1 + 5 * i, [&mutex, i] { mutex.request(pr_mh(i)); });
  }
  net.run();
  test::ExpectCleanEventStream(net);
  ExpectTokenHolderConservation(net);
  EXPECT_EQ(mutex.completed(), 8u);
  EXPECT_EQ(monitor.grants(), 8u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(mutex.queued_total(), 0u);
  EXPECT_EQ(mutex.bounced_grants(), 0u);
  EXPECT_EQ(mutex.skipped_disconnected(), 0u);
}

TEST(PathRevMutex, MovingRequesterRehomesItsRequest) {
  // mh0 requests at cell 0 while the token is busy elsewhere, then
  // moves to cell 2 mid-wait: the old cell withdraws the request, the
  // new cell re-files it, and the entry still happens exactly once.
  net::Network net(test::small_config(4, 8));
  CsMonitor monitor;
  PathRevMutex mutex(net, monitor);
  net.start();
  net.sched().schedule_at(1, [&] { mutex.request(pr_mh(4)); });  // cell 0 busy
  net.sched().schedule_at(2, [&] { mutex.request(pr_mh(0)); });  // queued behind
  net.sched().schedule_at(3, [&] { net.mh(pr_mh(0)).move_to(pr_mss(2), 4); });
  net.run();
  test::ExpectCleanEventStream(net);
  ExpectTokenHolderConservation(net);
  EXPECT_EQ(mutex.completed(), 2u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GE(mutex.rehomed(), 1u);
  EXPECT_EQ(mutex.queued_total(), 0u);
}

// --------------------------------------------------------------------------
// CsMonitor
// --------------------------------------------------------------------------

TEST(CsMonitor, RecordsGrantLifecycle) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(3), 7, 100);
  EXPECT_TRUE(monitor.busy());
  EXPECT_EQ(monitor.holder(), static_cast<net::MhId>(3));
  monitor.exit(grant, 110);
  EXPECT_FALSE(monitor.busy());
  ASSERT_EQ(monitor.grants(), 1u);
  EXPECT_EQ(monitor.history()[0].entered, 100u);
  EXPECT_EQ(monitor.history()[0].exited, 110u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(CsMonitor, DetectsOverlap) {
  CsMonitor monitor;
  monitor.enter(static_cast<net::MhId>(1), 1, 10);
  monitor.enter(static_cast<net::MhId>(2), 2, 11);  // overlap!
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, DetectsDoubleExit) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(1), 1, 10);
  monitor.exit(grant, 20);
  monitor.exit(grant, 21);
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, DetectsBogusExit) {
  CsMonitor monitor;
  monitor.exit(99, 5);
  EXPECT_EQ(monitor.violations(), 1u);
}

TEST(CsMonitor, CountsOrderInversions) {
  CsMonitor monitor;
  auto enter_exit = [&](std::uint64_t key) {
    const auto grant = monitor.enter(static_cast<net::MhId>(0), key, 0);
    monitor.exit(grant, 1);
  };
  enter_exit(1);
  enter_exit(3);
  enter_exit(2);  // inversion
  enter_exit(5);
  EXPECT_EQ(monitor.order_inversions(), 1u);
}

TEST(CsMonitor, InOrderGrantsHaveNoInversions) {
  CsMonitor monitor;
  for (std::uint64_t key = 1; key <= 10; ++key) {
    const auto grant = monitor.enter(static_cast<net::MhId>(0), key, key);
    monitor.exit(grant, key);
  }
  EXPECT_EQ(monitor.order_inversions(), 0u);
}


TEST(CsMonitor, MatchesRequestsToGrantsFifo) {
  CsMonitor monitor;
  const auto mh = static_cast<net::MhId>(4);
  monitor.note_request(mh, 10);
  monitor.note_request(mh, 20);
  const auto g1 = monitor.enter(mh, 1, 50);
  monitor.exit(g1, 55);
  const auto g2 = monitor.enter(mh, 2, 100);
  monitor.exit(g2, 105);
  ASSERT_EQ(monitor.grants(), 2u);
  EXPECT_TRUE(monitor.history()[0].has_request_time);
  EXPECT_EQ(monitor.history()[0].requested, 10u);
  EXPECT_EQ(monitor.history()[1].requested, 20u);
  // Latencies: 40 and 80 -> mean 60.
  EXPECT_DOUBLE_EQ(monitor.mean_grant_latency(), 60.0);
}

TEST(CsMonitor, GrantsWithoutRequestsHaveNoLatency) {
  CsMonitor monitor;
  const auto grant = monitor.enter(static_cast<net::MhId>(0), 1, 5);
  monitor.exit(grant, 6);
  EXPECT_FALSE(monitor.history()[0].has_request_time);
  EXPECT_DOUBLE_EQ(monitor.mean_grant_latency(), 0.0);
}

}  // namespace
}  // namespace mobidist::mutex
