// Tests for the three §4 group-location strategies: exact per-message
// costs, update protocols, view coherence, and delivery guarantees under
// mobility and disconnection.

#include <gtest/gtest.h>

#include "group/always_inform.hpp"
#include "group/location_view.hpp"
#include "group/pure_search.hpp"
#include "mobility/mobility_model.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::AlwaysInformGroup;
using group::DeliveryMonitor;
using group::Group;
using group::LocationViewGroup;
using group::PureSearchGroup;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

Group four_members() { return Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3)}); }

// With M = 6, N = 6 and round-robin placement, mh i sits in cell i: the
// four members occupy four distinct cells.
NetConfig spread_config() { return small_config(6, 6); }

// --------------------------------------------------------------------------
// Group / DeliveryMonitor basics
// --------------------------------------------------------------------------

TEST(Group, OfSortsAndDeduplicates) {
  const auto group = Group::of({mh_id(3), mh_id(1), mh_id(3), mh_id(0)});
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group.members[0], mh_id(0));
  EXPECT_EQ(group.members[2], mh_id(3));
  EXPECT_TRUE(group.contains(mh_id(1)));
  EXPECT_FALSE(group.contains(mh_id(2)));
}

TEST(DeliveryMonitorT, TracksExactlyOnce) {
  const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2)});
  DeliveryMonitor monitor;
  monitor.sent(1, mh_id(0));
  monitor.delivered(1, mh_id(1));
  EXPECT_FALSE(monitor.exactly_once(group));
  EXPECT_EQ(monitor.missing(group), 1u);
  monitor.delivered(1, mh_id(2));
  EXPECT_TRUE(monitor.exactly_once(group));
  monitor.delivered(1, mh_id(2));  // duplicate
  EXPECT_FALSE(monitor.exactly_once(group));
  EXPECT_EQ(monitor.over_delivered(group), 1u);
}

// --------------------------------------------------------------------------
// Pure search
// --------------------------------------------------------------------------

TEST(PureSearch, MessageCostMatchesFormula) {
  Network net(spread_config());
  PureSearchGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  // (|G|-1) relayed messages, each 2 wireless + 1 search.
  EXPECT_EQ(net.ledger().wireless_msgs(), 2u * 3);
  EXPECT_EQ(net.ledger().searches(), 3u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
}

TEST(PureSearch, MovesGenerateNoProtocolTraffic) {
  Network net(spread_config());
  PureSearchGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.sched().schedule(2, [&] { net.mh(mh_id(2)).move_to(mss_id(5), 5); });
  net.run();
  EXPECT_EQ(net.ledger().wireless_msgs(), 0u);
  EXPECT_EQ(net.ledger().searches(), 0u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
}

TEST(PureSearch, PerMessageCostUnchangedByPriorMobility) {
  Network net(spread_config());
  PureSearchGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.sched().schedule(50, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_EQ(net.ledger().wireless_msgs(), 6u);
  EXPECT_EQ(net.ledger().searches(), 3u);
}

TEST(PureSearch, DeliversToMovingMembers) {
  auto cfg = spread_config();
  Network net(cfg);
  PureSearchGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 100); });
  net.sched().schedule(5, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
}

// --------------------------------------------------------------------------
// Always inform
// --------------------------------------------------------------------------

TEST(AlwaysInform, MessageCostMatchesFormula) {
  Network net(spread_config());
  AlwaysInformGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  // (|G|-1) units of 2 wireless + 1 fixed — and no searches at all.
  EXPECT_EQ(net.ledger().wireless_msgs(), 2u * 3);
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u);
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(AlwaysInform, MoveTriggersDirectoryUpdateFanOut) {
  Network net(spread_config());
  AlwaysInformGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.run();
  EXPECT_EQ(comm.location_updates(), 1u);
  // The update fan-out costs the same as a group message.
  EXPECT_EQ(net.ledger().wireless_msgs(), 6u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u);
}

TEST(AlwaysInform, TotalCostIsMobPlusMsgTimesUnit) {
  // MOB = 2 moves, MSG = 3 messages => 5 fan-outs of (|G|-1) units.
  Network net(spread_config());
  AlwaysInformGroup comm(net, four_members());
  net.start();
  net.sched().schedule(10, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.sched().schedule(100, [&] { net.mh(mh_id(2)).move_to(mss_id(5), 5); });
  for (int i = 0; i < 3; ++i) {
    net.sched().schedule(200 + 50 * i, [&] { comm.send_group_message(mh_id(0)); });
  }
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_EQ(comm.stale_chases(), 0u);  // updates quiesced before sends
  EXPECT_EQ(net.ledger().wireless_msgs(), (2u + 3u) * 3u * 2u);
  EXPECT_EQ(net.ledger().fixed_msgs(), (2u + 3u) * 3u);
}

TEST(AlwaysInform, DirectoryStaysCorrectAcrossMoves) {
  Network net(spread_config());
  AlwaysInformGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(3)).move_to(mss_id(5), 5); });
  net.sched().schedule(100, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_EQ(comm.stale_chases(), 0u);  // LD(G) pointed at the right cell
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(AlwaysInform, StaleDirectoryEntryIsChased) {
  // Send while the target's move is still in flight: the recorded MSS
  // must chase with a search (footnote 1's "second copy").
  Network net(spread_config());
  AlwaysInformGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 200); });
  net.sched().schedule(10, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_GE(comm.stale_chases(), 1u);
  EXPECT_GE(net.ledger().searches(), 1u);
}

// --------------------------------------------------------------------------
// Location view
// --------------------------------------------------------------------------

TEST(LocationView, InitialViewMatchesPlacement) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  const auto& view = comm.current_view();
  EXPECT_EQ(view.size(), 4u);  // four members, four distinct cells
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(view.contains(mss_id(i)));
}

TEST(LocationView, CompactViewWhenMembersShareCells) {
  // All members in cell 0: |LV| = 1 regardless of |G|.
  auto cfg = small_config(6, 8);
  cfg.placement = InitialPlacement::kAllInCell0;
  Network net(cfg);
  LocationViewGroup comm(net, Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3), mh_id(4)}));
  net.start();
  EXPECT_EQ(comm.current_view().size(), 1u);
}

TEST(LocationView, MessageCostMatchesFormula) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  // (|LV|-1) fixed + |G| wireless (1 uplink + 3 downlinks), no searches.
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 4u);
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(LocationView, WiredCostScalesWithViewNotGroupSize) {
  // Nine members piled into two cells: a group message costs |LV|-1 = 1
  // fixed message, versus |G|-1 = 8 under always-inform.
  auto cfg = small_config(6, 18);  // round-robin: mhs 0..17 over 6 cells
  Network net(cfg);
  // Members in cells 0 and 1 only: mhs {0, 6, 12} cell0, {1, 7, 13} cell1.
  const auto group = Group::of(
      {mh_id(0), mh_id(6), mh_id(12), mh_id(1), mh_id(7), mh_id(13)});
  LocationViewGroup comm(net, group);
  net.start();
  EXPECT_EQ(comm.current_view().size(), 2u);
  net.sched().schedule(1, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_EQ(net.ledger().fixed_msgs(), 1u);       // |LV|-1
  EXPECT_EQ(net.ledger().wireless_msgs(), 6u);    // |G|
}

TEST(LocationView, MoveBetweenPopulatedViewCellsChangesNothing) {
  auto cfg = small_config(6, 18);
  Network net(cfg);
  // Cells 0 and 1 hold three members each.
  const auto group = Group::of(
      {mh_id(0), mh_id(6), mh_id(12), mh_id(1), mh_id(7), mh_id(13)});
  LocationViewGroup comm(net, group);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 5); });
  net.run();
  EXPECT_EQ(comm.significant_moves(), 0u);
  EXPECT_EQ(comm.current_view().size(), 2u);
  // The M -> M' notification still flows (one fixed message), but no
  // coordinator round.
  EXPECT_EQ(net.ledger().fixed_msgs(), 1u);
}

TEST(LocationView, MoveToFreshCellIsCombinedAddDelete) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  // mh1 is the sole member of cell 1; moving to empty cell 4 both adds
  // cell 4 and deletes cell 1. Ground-truth reporting serializes that as
  // two view-change events (the new cell reports the add, the old cell
  // the delete) — see DESIGN.md for why the paper's combined request is
  // not race-free.
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.run();
  EXPECT_EQ(comm.significant_moves(), 2u);
  const auto& view = comm.current_view();
  EXPECT_EQ(view.size(), 4u);
  EXPECT_TRUE(view.contains(mss_id(4)));
  EXPECT_FALSE(view.contains(mss_id(1)));
}

TEST(LocationView, JoiningPopulatedCellOnlyDeletes) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  // mh1 (sole member of cell 1) joins member-holding cell 2: delete-only.
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(2), 5); });
  net.run();
  EXPECT_EQ(comm.significant_moves(), 1u);
  const auto& view = comm.current_view();
  EXPECT_EQ(view.size(), 3u);
  EXPECT_FALSE(view.contains(mss_id(1)));
}

TEST(LocationView, UpdateCostWithinPaperBound) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  const auto before = net.ledger();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.run();
  const auto delta = net.ledger().delta_since(before);
  // Paper: at most (|LV|+3) fixed messages per view change. Our
  // race-free split protocol issues the add and the delete as separate
  // serialized changes, so a sole-member fresh-cell move costs at most
  // 2*|LV| + 4 (measured: exactly 10 for |LV| = 4).
  EXPECT_LE(delta.fixed_msgs(), 2u * 4u + 4u);
  EXPECT_EQ(delta.wireless_msgs(), 0u);  // updates never touch the air
}

TEST(LocationView, MessagesDeliverAfterViewChange) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.sched().schedule(100, [&] { comm.send_group_message(mh_id(2)); });
  net.sched().schedule(150, [&] { comm.send_group_message(mh_id(1)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_EQ(comm.chases(), 0u);  // quiesced before sending
}

TEST(LocationView, InFlightMoveIsChasedAndDeduped) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 300); });
  net.sched().schedule(10, [&] { comm.send_group_message(mh_id(0)); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
  EXPECT_GE(comm.chases(), 1u);
}

TEST(LocationView, DisconnectionLeavesViewUntouched) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).disconnect(); });
  net.run();
  EXPECT_EQ(comm.significant_moves(), 0u);
  EXPECT_EQ(comm.current_view().size(), 4u);
  EXPECT_TRUE(comm.current_view().contains(mss_id(1)));
}

TEST(LocationView, DisconnectedMemberReceivesOnReconnect) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).disconnect(); });
  net.sched().schedule(20, [&] { comm.send_group_message(mh_id(0)); });
  net.sched().schedule(500, [&] { net.mh(mh_id(1)).reconnect_at(mss_id(1), 5); });
  net.run();
  EXPECT_TRUE(comm.monitor().exactly_once(comm.group()));
}

TEST(LocationView, ConcurrentSignificantMovesSerializeAtCoordinator) {
  Network net(spread_config());
  LocationViewGroup comm(net, four_members());
  net.start();
  // Two sole-member cells vacate simultaneously into two fresh cells.
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(4), 5); });
  net.sched().schedule(1, [&] { net.mh(mh_id(2)).move_to(mss_id(5), 7); });
  net.run();
  EXPECT_EQ(comm.significant_moves(), 4u);  // two adds + two deletes, serialized
  const auto& view = comm.current_view();
  EXPECT_EQ(view.size(), 4u);
  EXPECT_TRUE(view.contains(mss_id(4)));
  EXPECT_TRUE(view.contains(mss_id(5)));
  EXPECT_FALSE(view.contains(mss_id(1)));
  EXPECT_FALSE(view.contains(mss_id(2)));
  // All replicas converge to the master view.
  net.sched().run_until(net.sched().now() + 1000);
}

TEST(LocationView, ExactlyOnceUnderSustainedChurn) {
  auto cfg = small_config(8, 16);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 8;
  Network net(cfg);
  const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3), mh_id(4), mh_id(5)});
  LocationViewGroup comm(net, group);
  mobility::MobilityConfig mob;
  mob.mean_pause = 80;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 4;
  mobility::MobilityDriver driver(net, mob, group.members);
  net.start();
  driver.start();
  for (int i = 0; i < 10; ++i) {
    const auto sender = group.members[static_cast<std::size_t>(i) % group.size()];
    net.sched().schedule(30 + 40 * i, [&, sender] {
      if (net.mh(sender).connected()) comm.send_group_message(sender);
    });
  }
  net.run();
  EXPECT_EQ(comm.monitor().missing(comm.group()), 0u);
  EXPECT_EQ(comm.monitor().over_delivered(comm.group()), 0u);
  EXPECT_GT(driver.moves(), 0u);
}

TEST(LocationView, CheaperOnWireThanAlwaysInformForClusteredGroups) {
  // Same workload under both strategies; clustered members => far fewer
  // wired messages via the view.
  auto run_strategy = [](auto make_comm) {
    // Round-robin over 6 cells: this membership occupies cells 0 and 1
    // only (|LV| = 2 while |G| = 8).
    auto cfg = small_config(6, 20);
    Network net(cfg);
    const auto group = Group::of({mh_id(0), mh_id(6), mh_id(12), mh_id(18), mh_id(1),
                                  mh_id(7), mh_id(13), mh_id(19)});
    auto comm = make_comm(net, group);
    net.start();
    for (int i = 0; i < 5; ++i) {
      net.sched().schedule(1 + 20 * i, [&] { comm->send_group_message(mh_id(0)); });
    }
    net.run();
    EXPECT_TRUE(comm->monitor().exactly_once(group));
    return net.ledger().fixed_msgs();
  };
  const auto lv_fixed = run_strategy([](Network& net, const Group& group) {
    return std::make_unique<LocationViewGroup>(net, group);
  });
  const auto ai_fixed = run_strategy([](Network& net, const Group& group) {
    return std::make_unique<AlwaysInformGroup>(net, group);
  });
  EXPECT_LT(lv_fixed, ai_fixed);
}

}  // namespace
}  // namespace mobidist::test
