// Tests for the binary telemetry path (src/obs/binlog.*): BinRecord
// layout + Event round trip across every kind at max field width,
// InternTable bounds/overflow accounting, BinLog ring arithmetic under
// wrap, the binlog file format (serialize -> decode -> byte-identical
// JSONL), corrupt-input rejection, JSON escaping of hostile detail
// tags, and MOBIDIST_TRACE_FORMAT resolution.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/binlog.hpp"
#include "obs/events.hpp"

namespace mobidist::test {
namespace {

using obs::BinLog;
using obs::BinRecord;
using obs::Entity;
using obs::Event;
using obs::EventKind;
using obs::EventStream;
using obs::InternTable;

constexpr EventKind kLastKind = EventKind::kPathReversal;

// --------------------------------------------------------------------------
// Layout: the numbers quoted in the header comments must stay true.
// --------------------------------------------------------------------------

TEST(BinRecord, LayoutMatchesDocumentedArithmetic) {
  EXPECT_EQ(sizeof(BinRecord), 64u);
  // EventStream::kDefaultCapacity documents "16 MiB of retained
  // telemetry"; pin the arithmetic so the comment cannot go stale again.
  EXPECT_EQ(EventStream::kDefaultCapacity * sizeof(BinRecord), 16u * 1024u * 1024u);
  // EventKind must fit the u8 slot in BinRecord.
  EXPECT_LE(static_cast<unsigned>(kLastKind), 0xffu);
}

// --------------------------------------------------------------------------
// Event <-> BinRecord at maximum field width, for every kind.
// --------------------------------------------------------------------------

TEST(BinRecord, RoundTripsEveryKindWithMaxWidthFields) {
  constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();
  constexpr std::uint32_t kMax32 = std::numeric_limits<std::uint32_t>::max();
  const std::string detail(200, 'x');  // longer than any real tag
  for (unsigned k = 0; k <= static_cast<unsigned>(kLastKind); ++k) {
    Event ev;
    ev.id = kMax64;
    ev.at = kMax64 - 1;
    ev.kind = static_cast<EventKind>(k);
    ev.entity = Entity::mss(kMax32);
    ev.peer = Entity::mh(kMax32 - 1);
    ev.seq = kMax64 - 2;
    ev.lamport = kMax64 - 3;
    ev.cause = kMax64 - 4;
    ev.channel = kMax64 - 5;
    ev.arg = kMax64 - 6;
    ev.detail = detail;

    const BinRecord rec = obs::encode(ev, 7);
    EXPECT_EQ(rec.detail_id, 7u);
    const Event back = obs::decode(rec, ev.id, detail);
    // Byte-identical JSONL is the contract the offline decoder relies
    // on, so compare through the serializer rather than field by field.
    EXPECT_EQ(obs::event_json(back), obs::event_json(ev)) << "kind " << k;
  }
}

// --------------------------------------------------------------------------
// InternTable: reserved ids, bounded growth, overflow visibility.
// --------------------------------------------------------------------------

TEST(InternTable, ReservedIdsAndStableLookups) {
  InternTable table;
  EXPECT_EQ(table.intern(""), InternTable::kEmptyId);
  EXPECT_EQ(table.view(InternTable::kEmptyId), "");
  EXPECT_EQ(table.view(InternTable::kOverflowId), InternTable::kOverflowText);
  const auto a = table.intern("R2'");
  const auto b = table.intern("broadcast");
  EXPECT_NE(a, b);
  EXPECT_GE(a, 2u);  // reserved ids are never handed out for real tags
  EXPECT_EQ(table.intern("R2'"), a);  // idempotent
  EXPECT_EQ(table.view(a), "R2'");
  EXPECT_EQ(table.size(), 4u);  // "", overflow, and the two tags
  EXPECT_EQ(table.overflows(), 0u);
}

TEST(InternTable, OverflowMapsToReservedIdAndIsCounted) {
  InternTable table(4);  // room for the 2 reserved entries + 2 tags
  EXPECT_EQ(table.capacity(), 4u);
  const auto a = table.intern("a");
  const auto b = table.intern("b");
  EXPECT_EQ(table.size(), 4u);
  // Table is full: a third distinct tag degrades to the overflow id.
  EXPECT_EQ(table.intern("c"), InternTable::kOverflowId);
  EXPECT_EQ(table.intern("d"), InternTable::kOverflowId);
  EXPECT_EQ(table.overflows(), 2u);
  // Known tags still resolve normally after overflow.
  EXPECT_EQ(table.intern("a"), a);
  EXPECT_EQ(table.intern("b"), b);
  EXPECT_EQ(table.overflows(), 2u);
  // Truncation is visible in exports, not silent.
  EXPECT_EQ(table.view(InternTable::kOverflowId), "!intern-overflow");

  table.clear();
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.overflows(), 0u);
  EXPECT_EQ(table.intern("fresh"), 2u);
}

// --------------------------------------------------------------------------
// BinLog ring arithmetic under wrap.
// --------------------------------------------------------------------------

TEST(BinLog, WrapKeepsIdsContiguousAndDroppedExact) {
  BinLog ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    BinRecord rec;
    rec.at = i * 100;  // distinguishable payload
    ring.append(rec);
    EXPECT_EQ(ring.head(), i);
    EXPECT_EQ(ring.dropped(), i > 4 ? i - 4 : 0u);
    EXPECT_EQ(ring.retained(), i > 4 ? 4u : static_cast<std::size_t>(i));
  }
  // Retained ids are exactly [dropped+1, head] and map to their records.
  for (std::uint64_t id = ring.dropped() + 1; id <= ring.head(); ++id) {
    EXPECT_EQ(ring.record_of(id).at, id * 100);
  }
  ring.clear();
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.retained(), 0u);
}

TEST(BinLog, NonPowerOfTwoCapacityRoundsUp) {
  EXPECT_EQ(BinLog(5).capacity(), 8u);
  EXPECT_EQ(BinLog(1).capacity(), 1u);
  EXPECT_EQ(BinLog(64).capacity(), 64u);
}

TEST(EventStream, WrappedStreamSnapshotsContiguousTail) {
  EventStream stream(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    stream.emit(i, {.kind = EventKind::kSend, .entity = Entity::mss(0)});
  }
  EXPECT_EQ(stream.emitted(), 20u);
  EXPECT_EQ(stream.dropped(), 12u);
  const auto events = stream.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, 13u + i);  // contiguous, oldest first
  }
}

// --------------------------------------------------------------------------
// Binlog file format round trip.
// --------------------------------------------------------------------------

// Emit a deterministic pseudo-random mix of kinds/fields/details (a
// fixed-seed LCG: test output must not vary run to run).
void fill_stream(EventStream& stream, std::size_t count) {
  const std::vector<std::string_view> details = {
      "", "R2'", "broadcast", "L1", "R2' \"quoted\"\\", "tab\ttab",
      "\x01ctrl", "\",\"arg\":", "newline\nnewline",
  };
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  };
  for (std::size_t i = 0; i < count; ++i) {
    EventStream::Emit spec;
    spec.kind = static_cast<EventKind>(next() % (static_cast<unsigned>(kLastKind) + 1));
    spec.entity = (next() % 2 == 0) ? Entity::mss(static_cast<std::uint32_t>(next() % 7))
                                    : Entity::mh(static_cast<std::uint32_t>(next() % 7));
    if (next() % 3 == 0) spec.peer = Entity::mh(static_cast<std::uint32_t>(next() % 7));
    if (stream.emitted() > 0 && next() % 4 == 0) {
      spec.cause = stream.dropped() + 1 + next() % stream.retained();
    }
    spec.channel = next() % 5;
    spec.arg = next();
    spec.detail = details[next() % details.size()];
    stream.emit(i, spec);
  }
}

TEST(BinlogFile, RoundTripsToByteIdenticalJsonl) {
  EventStream stream;
  fill_stream(stream, 300);
  const std::string bytes = obs::serialize_binlog(stream);

  const auto decoded = obs::decode_binlog(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->emitted, stream.emitted());
  EXPECT_EQ(decoded->dropped, stream.dropped());
  EXPECT_EQ(decoded->overflows, stream.interner().overflows());
  ASSERT_EQ(decoded->events.size(), stream.retained());
  // The decoded stream must serialize to exactly what the direct JSONL
  // exporter writes — this is the trace_dump contract.
  EXPECT_EQ(obs::to_jsonl(decoded->events), obs::to_jsonl(stream));
}

TEST(BinlogFile, RoundTripsAWrappedRingPreservingCounts) {
  EventStream stream(16);
  fill_stream(stream, 100);
  EXPECT_EQ(stream.dropped(), 84u);
  const auto decoded = obs::decode_binlog(obs::serialize_binlog(stream));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->emitted, 100u);
  EXPECT_EQ(decoded->dropped, 84u);
  ASSERT_EQ(decoded->events.size(), 16u);
  EXPECT_EQ(decoded->events.front().id, 85u);
  EXPECT_EQ(decoded->events.back().id, 100u);
  EXPECT_EQ(obs::to_jsonl(decoded->events), obs::to_jsonl(stream));
}

TEST(BinlogFile, RoundTripsAnEmptyStream) {
  EventStream stream;
  const auto decoded = obs::decode_binlog(obs::serialize_binlog(stream));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->emitted, 0u);
  EXPECT_TRUE(decoded->events.empty());
}

TEST(BinlogFile, RejectsCorruptInput) {
  EventStream stream;
  fill_stream(stream, 50);
  const std::string good = obs::serialize_binlog(stream);
  ASSERT_TRUE(obs::decode_binlog(good).has_value());

  EXPECT_FALSE(obs::decode_binlog("").has_value());
  EXPECT_FALSE(obs::decode_binlog(good.substr(0, 10)).has_value());  // truncated header
  EXPECT_FALSE(obs::decode_binlog(good.substr(0, good.size() - 10)).has_value());
  EXPECT_FALSE(obs::decode_binlog(good + "x").has_value());  // trailing garbage

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(obs::decode_binlog(bad).has_value());
  bad = good;
  bad[4] = 99;  // version
  EXPECT_FALSE(obs::decode_binlog(bad).has_value());
  bad = good;
  bad[8] = 63;  // record_size
  EXPECT_FALSE(obs::decode_binlog(bad).has_value());
  bad = good;
  bad[12] = static_cast<char>(0xff);  // string_count inflated
  bad[13] = static_cast<char>(0xff);
  bad[14] = static_cast<char>(0xff);
  EXPECT_FALSE(obs::decode_binlog(bad).has_value());
}

// --------------------------------------------------------------------------
// JSON escaping of hostile detail tags (audit regression tests).
// --------------------------------------------------------------------------

TEST(JsonEscaping, HostileDetailsRoundTripThroughJsonl) {
  const std::vector<std::string_view> hostile = {
      "\"", "\\", "\\\"", "\n\r\t", std::string_view("\x01\x02\x1f", 3),
      "\",\"arg\":0,\"detail\":\"",  // key-shaped: must not confuse the parser
      "back\\slash and \"quote\"",
  };
  InternTable strings;
  for (const auto detail : hostile) {
    Event ev;
    ev.id = 1;
    ev.entity = Entity::mh(0);
    ev.detail = detail;
    const std::string line = obs::event_json(ev);
    // A correctly escaped line contains no raw control characters.
    for (const char c : line) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control char in: " << line;
    }
    const auto back = obs::event_from_json(line, strings);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(back->detail, detail) << line;
    // Numeric fields must not be shadowed by the key-shaped payload.
    EXPECT_EQ(back->id, 1u) << line;
    EXPECT_EQ(back->arg, 0u) << line;
  }
}

TEST(JsonEscaping, ChromeTraceEscapesDetailInArgs) {
  Event ev;
  ev.id = 1;
  ev.at = 10;
  ev.kind = EventKind::kCsEnter;
  ev.entity = Entity::mh(0);
  ev.detail = "L1 \"quoted\"\\\n";
  const std::vector<Event> events = {ev};
  const std::string trace = obs::to_chrome_trace(events);
  EXPECT_NE(trace.find("L1 \\\"quoted\\\"\\\\\\n"), std::string::npos);
  for (const char c : trace) {
    // \n between trace records is the only raw control char allowed.
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

// --------------------------------------------------------------------------
// MOBIDIST_TRACE_FORMAT resolution.
// --------------------------------------------------------------------------

TEST(TraceFormat, EnvValuesResolveOrThrow) {
  ::unsetenv("MOBIDIST_TRACE_FORMAT");
  EXPECT_EQ(core::resolve_trace_format(), core::TraceFormat::kJsonl);
  ::setenv("MOBIDIST_TRACE_FORMAT", "", 1);
  EXPECT_EQ(core::resolve_trace_format(), core::TraceFormat::kJsonl);
  ::setenv("MOBIDIST_TRACE_FORMAT", "jsonl", 1);
  EXPECT_EQ(core::resolve_trace_format(), core::TraceFormat::kJsonl);
  ::setenv("MOBIDIST_TRACE_FORMAT", "binlog", 1);
  EXPECT_EQ(core::resolve_trace_format(), core::TraceFormat::kBinlog);
  ::setenv("MOBIDIST_TRACE_FORMAT", "binary", 1);  // a typo must fail loudly
  EXPECT_THROW(static_cast<void>(core::resolve_trace_format()), std::runtime_error);
  ::unsetenv("MOBIDIST_TRACE_FORMAT");
}

}  // namespace
}  // namespace mobidist::test
