// Formation-layer tests: trigger policy (count/bytes/deadline/barrier),
// cost amortization of the per-packet wired charge, packet-event FIFO
// checking, equivalence of delivered traffic with and without batching,
// plus the wire-path bugfix regressions that ride this layer's PR:
// saturating retransmit backoff and the bounded wseq dedup window.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "net/formation.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

/// small_config with batching enabled.
NetConfig batching_config(std::uint32_t deadline, std::uint32_t max_msgs = 16,
                          std::uint32_t max_bytes = 4096) {
  auto cfg = small_config();
  cfg.formation.flush_deadline = deadline;
  cfg.formation.max_packet_msgs = max_msgs;
  cfg.formation.max_packet_bytes = max_bytes;
  return cfg;
}

std::size_t count_kind(const Network& net, obs::EventKind kind) {
  std::size_t n = 0;
  for (const auto& ev : net.events().snapshot()) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

// --------------------------------------------------------------------------
// Construction / passthrough
// --------------------------------------------------------------------------

TEST(Formation, PassthroughHasNoLayer) {
  Network net(small_config());
  EXPECT_EQ(net.formation(), nullptr);
  EXPECT_TRUE(net.config().formation.passthrough());
}

TEST(Formation, BatchingConstructsLayer) {
  Network net(batching_config(10));
  ASSERT_NE(net.formation(), nullptr);
  EXPECT_EQ(net.formation()->packets_formed(), 0u);
}

TEST(Formation, ZeroMaxMsgsRejected) {
  auto cfg = batching_config(10, /*max_msgs=*/0);
  EXPECT_THROW(Network net(cfg), std::invalid_argument);
}

TEST(Formation, PassthroughEmitsNoPacketEvents) {
  Network net(small_config());
  Harness h(net);
  net.start();
  for (int i = 0; i < 8; ++i) h.mss[0]->do_send_wired(mss_id(1), i);
  net.run();
  EXPECT_EQ(count_kind(net, obs::EventKind::kPacketSend), 0u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kPacketFlush), 0u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Triggers
// --------------------------------------------------------------------------

TEST(Formation, CountTriggerFlushesFullPacket) {
  Network net(batching_config(/*deadline=*/1000, /*max_msgs=*/4));
  Harness h(net);
  net.start();
  for (int i = 0; i < 4; ++i) h.mss[0]->do_send_wired(mss_id(1), i);
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 4u);
  // The 4th message filled the packet at t=0: everyone rides one wire
  // transmission and lands together at the wired latency, not at the
  // deadline.
  for (const auto& r : h.mss[1]->received) EXPECT_EQ(r.at, 5u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kPacketSend), 1u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kPacketFlush), 1u);
  EXPECT_EQ(net.formation()->size_flushes(), 1u);
  EXPECT_EQ(net.formation()->msgs_enqueued(), 4u);
  EXPECT_EQ(net.formation()->pending_msgs(), 0u);
  ExpectCleanEventStream(net);
}

TEST(Formation, BytesTriggerFlushesImmediately) {
  // Every message exceeds the byte budget on its own: each becomes its
  // own packet, so batching degenerates to passthrough costs.
  Network net(batching_config(/*deadline=*/1000, /*max_msgs=*/100, /*max_bytes=*/1));
  Harness h(net);
  net.start();
  for (int i = 0; i < 3; ++i) h.mss[0]->do_send_wired(mss_id(1), i);
  net.run();
  EXPECT_EQ(h.mss[1]->received.size(), 3u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kPacketSend), 3u);
  EXPECT_EQ(net.ledger().wired_packets(), 3u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u);
  ExpectCleanEventStream(net);
}

TEST(Formation, DeadlineTriggerFlushesPartialPacket) {
  Network net(batching_config(/*deadline=*/100, /*max_msgs=*/16));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(1), 1);
  h.mss[0]->do_send_wired(mss_id(1), 2);
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 2u);
  // Flushed by the deadline timer at t=100, arriving one wired latency
  // later.
  for (const auto& r : h.mss[1]->received) EXPECT_EQ(r.at, 105u);
  EXPECT_EQ(net.formation()->deadline_flushes(), 1u);
  EXPECT_EQ(net.formation()->size_flushes(), 0u);
  ExpectCleanEventStream(net);
}

TEST(Formation, StaleDeadlineTimerIsNoOp) {
  // Fill a packet (count flush) before its deadline: the armed timer
  // must find a newer epoch and flush nothing twice.
  Network net(batching_config(/*deadline=*/100, /*max_msgs=*/2));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(1), 1);
  h.mss[0]->do_send_wired(mss_id(1), 2);  // count flush at t=0
  net.run();
  EXPECT_EQ(h.mss[1]->received.size(), 2u);
  EXPECT_EQ(net.formation()->packets_formed(), 1u);
  EXPECT_EQ(net.formation()->deadline_flushes(), 0u);
  ExpectCleanEventStream(net);
}

TEST(Formation, PerPairQueuesAreIndependent) {
  Network net(batching_config(/*deadline=*/50, /*max_msgs=*/8));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(1), 1);
  h.mss[0]->do_send_wired(mss_id(2), 2);
  h.mss[1]->do_send_wired(mss_id(2), 3);
  net.run();
  // Three (src,dst) pairs -> three deadline packets.
  EXPECT_EQ(net.formation()->packets_formed(), 3u);
  EXPECT_EQ(h.mss[1]->received.size(), 1u);
  EXPECT_EQ(h.mss[2]->received.size(), 2u);
  ExpectCleanEventStream(net);
}

TEST(Formation, SelfSendBypassesFormation) {
  Network net(batching_config(/*deadline=*/1000));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(0), 42);
  net.run();
  ASSERT_EQ(h.mss[0]->received.size(), 1u);
  EXPECT_EQ(h.mss[0]->received[0].at, 0u);  // local dispatch, no deadline wait
  EXPECT_EQ(net.formation()->msgs_enqueued(), 0u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Cost amortization
// --------------------------------------------------------------------------

TEST(Formation, BatchingAmortizesPerPacketCost) {
  constexpr int kMsgs = 10;
  cost::CostParams params;  // c_fixed=1, c_wired_msg=0

  Network plain(small_config());
  Harness hp(plain);
  plain.start();
  for (int i = 0; i < kMsgs; ++i) hp.mss[0]->do_send_wired(mss_id(1), i);
  plain.run();

  Network batched(batching_config(/*deadline=*/50, /*max_msgs=*/100));
  Harness hb(batched);
  batched.start();
  for (int i = 0; i < kMsgs; ++i) hb.mss[0]->do_send_wired(mss_id(1), i);
  batched.run();

  EXPECT_EQ(plain.ledger().fixed_msgs(), kMsgs);
  EXPECT_EQ(plain.ledger().wired_packets(), kMsgs);
  EXPECT_EQ(batched.ledger().fixed_msgs(), kMsgs);
  EXPECT_EQ(batched.ledger().wired_packets(), 1u);
  EXPECT_DOUBLE_EQ(plain.ledger().total(params), kMsgs * params.c_fixed);
  EXPECT_DOUBLE_EQ(batched.ledger().total(params), 1.0 * params.c_fixed);
  EXPECT_LT(batched.ledger().total(params), plain.ledger().total(params));

  // With a per-message marginal cost the batched total still undercuts
  // passthrough by (kMsgs - 1) * c_fixed.
  cost::CostParams split = params;
  split.c_wired_msg = 0.25;
  EXPECT_DOUBLE_EQ(batched.ledger().total(split),
                   params.c_fixed + kMsgs * split.c_wired_msg);
  EXPECT_LT(batched.ledger().total(split), plain.ledger().total(split));
}

TEST(Formation, ControlOnlyPacketIsFree) {
  Network net(batching_config(/*deadline=*/50, /*max_msgs=*/100));
  net.start();
  // Broadcast-search queries are control-charged separately; simplest
  // control-only wired traffic here: drive the substrate via a handoff.
  net.mh(mh_id(0)).move_to(mss_id(1), 1);
  net.run();
  // Handoff control traffic batched into packets, but nothing charged.
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  EXPECT_EQ(net.ledger().wired_packets(), 0u);
  EXPECT_GT(net.formation()->packets_formed(), 0u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Ordering: barrier + checker integration
// --------------------------------------------------------------------------

TEST(Formation, ForwardLegBarrierPreservesChannelFifo) {
  Network net(batching_config(/*deadline=*/1000, /*max_msgs=*/16));
  Harness h(net);
  net.start();
  // Queue wired messages on (0 -> 1), then send_to_mh to a MH living in
  // cell 1: the forward leg shares the (0 -> 1) channel and must flush
  // the pending packet first (barrier) or it would overtake them.
  h.mss[0]->do_send_wired(mss_id(1), 1);
  h.mss[0]->do_send_wired(mss_id(1), 2);
  h.mss[0]->do_send_to_mh(mh_id(1), std::string("fwd"));
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 2u);
  EXPECT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(net.formation()->barrier_flushes(), 1u);
  bool saw_barrier_packet = false;
  for (const auto& ev : net.events().snapshot()) {
    if (ev.kind == obs::EventKind::kPacketSend && ev.detail == "barrier") {
      saw_barrier_packet = true;
    }
  }
  EXPECT_TRUE(saw_barrier_packet);
  // check_channel_fifo + check_packet_fifo together prove no reorder
  // across the flush boundary.
  ExpectCleanEventStream(net);
}

TEST(Formation, BatchedAndPlainDeliverSamePerChannelSequence) {
  const auto drive = [](Network& net) {
    Harness h(net);
    net.start();
    std::vector<int> sent;
    for (int i = 0; i < 20; ++i) {
      h.mss[i % 2]->do_send_wired(mss_id(1 - i % 2), i);
      sent.push_back(i);
    }
    net.run();
    std::vector<int> got0;
    std::vector<int> got1;
    for (const auto& r : h.mss[0]->received) got0.push_back(*body_as<int>(r.env));
    for (const auto& r : h.mss[1]->received) got1.push_back(*body_as<int>(r.env));
    ExpectCleanEventStream(net);
    return std::make_pair(got0, got1);
  };

  Network plain(small_config());
  Network batched(batching_config(/*deadline=*/30, /*max_msgs=*/5));
  const auto expected = drive(plain);
  const auto actual = drive(batched);
  // Batching changes arrival instants, never content or per-channel
  // order.
  EXPECT_EQ(actual.first, expected.first);
  EXPECT_EQ(actual.second, expected.second);
}

TEST(Formation, MutexWorkloadRidesFormationTransparently) {
  // Algorithm traffic (L2-style wired messages via agents) batched
  // end-to-end: everything delivered, all checkers clean, strictly
  // fewer packets than messages.
  Network net(batching_config(/*deadline=*/20, /*max_msgs=*/8));
  Harness h(net);
  net.start();
  for (int round = 0; round < 10; ++round) {
    h.mss[0]->do_send_wired(mss_id(1), round);
    h.mss[1]->do_send_wired(mss_id(2), round);
    h.mss[2]->do_send_wired(mss_id(0), round);
  }
  net.run();
  EXPECT_EQ(h.mss[0]->received.size(), 10u);
  EXPECT_EQ(h.mss[1]->received.size(), 10u);
  EXPECT_EQ(h.mss[2]->received.size(), 10u);
  EXPECT_LT(net.ledger().wired_packets(), net.ledger().fixed_msgs());
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Bugfix regression: saturating retransmit backoff
// --------------------------------------------------------------------------

TEST(RetransmitBackoff, HugeRtoBaseSaturatesAtCap) {
  // rto_base near the top of the 64-bit range: before the fix,
  // backoff(attempt=1) computed base << 1 which wraps to ~0, collapsing
  // the retry delay to 1 tick (retransmission spam). Saturation must
  // pin every retry at rto_cap instead.
  auto cfg = small_config(2, 2);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.drop_first_wireless = 2;  // deterministic: lose attempts 0 and 1
  profile.rto_base = 1ULL << 63;
  profile.rto_cap = 500;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_local(mh_id(0), std::string("frame"));
  net.run();
  ASSERT_EQ(h.mh[0]->received.size(), 1u);
  // attempt 0 at t=0 (dropped), retry at 500 (dropped), retry at 1000,
  // delivered one wireless latency (2) later. The wrapped backoff would
  // have delivered at t=504.
  EXPECT_EQ(h.mh[0]->received[0].at, 1002u);
  ExpectCleanEventStream(net);
}

TEST(RetransmitBackoff, NormalExponentialScheduleUnchanged) {
  auto cfg = small_config(2, 2);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.drop_first_wireless = 3;
  profile.rto_base = 16;
  profile.rto_cap = 256;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_local(mh_id(0), std::string("frame"));
  net.run();
  ASSERT_EQ(h.mh[0]->received.size(), 1u);
  // Drops at t=0, 16, 48; delivery attempt at 112 lands at 114.
  EXPECT_EQ(h.mh[0]->received[0].at, 114u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Bugfix regression: bounded wseq dedup window
// --------------------------------------------------------------------------

TEST(WseqDedup, InOrderFloorAdvance) {
  WseqDedup d;
  EXPECT_TRUE(d.deliver(1));
  EXPECT_TRUE(d.deliver(2));
  EXPECT_EQ(d.floor, 2u);
  EXPECT_TRUE(d.above.empty());
}

TEST(WseqDedup, WseqAtFloorIsDuplicate) {
  WseqDedup d;
  EXPECT_TRUE(d.deliver(1));
  EXPECT_FALSE(d.deliver(1));  // == floor
  EXPECT_FALSE(d.deliver(0));  // below floor
}

TEST(WseqDedup, DuplicateAboveFloorSuppressed) {
  WseqDedup d;
  EXPECT_TRUE(d.deliver(5));
  EXPECT_FALSE(d.deliver(5));
  EXPECT_EQ(d.above.size(), 1u);
}

TEST(WseqDedup, OutOfOrderCatchUpDrainsAbove) {
  WseqDedup d;
  EXPECT_TRUE(d.deliver(3));
  EXPECT_TRUE(d.deliver(2));
  EXPECT_EQ(d.above.size(), 2u);
  EXPECT_EQ(d.floor, 0u);
  EXPECT_TRUE(d.deliver(1));  // fills the gap: floor jumps past the parked run
  EXPECT_EQ(d.floor, 3u);
  EXPECT_TRUE(d.above.empty());
}

TEST(WseqDedup, PermanentHoleNoLongerBalloonsParkedSet) {
  // The ballooning pattern: wseq 1 abandoned (never delivered), every
  // later frame delivered. Before the bound, `above` grew by one entry
  // per frame forever; now it stays within the retransmit window and
  // the floor advances past the dead gap.
  WseqDedup d;
  for (std::uint64_t w = 2; w <= 1000; ++w) {
    EXPECT_TRUE(d.deliver(w)) << "fresh frame " << w << " must deliver";
    EXPECT_LE(d.above.size(), WseqDedup::kRetransmitWindow);
  }
  EXPECT_GE(d.floor, 1000u - WseqDedup::kRetransmitWindow - 1);
  // The abandoned frame's wseq is now below the advanced floor: a
  // pathologically late copy is suppressed as a duplicate (the
  // documented trade for bounded memory).
  EXPECT_FALSE(d.deliver(1));
}

TEST(WseqDedup, ChaosProfileKeepsWindowBoundedEndToEnd) {
  // Network-level version of the balloon: lossy wireless with a mobile
  // host hopping cells abandons downlink frames mid-retry, punching
  // permanent holes in the (mss,mh) downlink channels. The run must
  // stay checker-clean with the bound in force.
  auto cfg = small_config(2, 2);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.wireless_loss = 0.3;
  profile.rto_base = 2;
  profile.rto_cap = 8;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  for (int i = 0; i < 40; ++i) {
    net.sched().schedule(static_cast<sim::Duration>(10 * i + 1), [&h, i] {
      h.mss[0]->do_send_to_mh(mh_id(0), i);
    });
    if (i % 4 == 3) {
      net.sched().schedule(static_cast<sim::Duration>(10 * i + 2), [&net, i] {
        net.mh(mh_id(0)).move_to(mss_id((i / 4 + 1) % 2), 3);
      });
    }
  }
  net.run();
  EXPECT_GT(h.mh[0]->received.size(), 0u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Formation under faults
// --------------------------------------------------------------------------

TEST(Formation, PacketDeferredAcrossMssCrash) {
  auto cfg = batching_config(/*deadline=*/10, /*max_msgs=*/4);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.crashes.push_back(fault::MssCrash{1, /*at=*/5, /*down_for=*/100});
  profile.evacuate_on_crash = false;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  for (int i = 0; i < 4; ++i) h.mss[0]->do_send_wired(mss_id(1), i);  // count flush at t=0
  net.run();
  // Packet arrives at t=5 into the crash window [5, 105): held at the
  // interface and disgorged at recovery.
  ASSERT_EQ(h.mss[1]->received.size(), 4u);
  for (const auto& r : h.mss[1]->received) EXPECT_EQ(r.at, 105u);
  ExpectCleanEventStream(net);
}

}  // namespace
}  // namespace mobidist::test
