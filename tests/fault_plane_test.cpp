// Unit tests for the fault plane itself: schedule determinism, the
// zero-probability no-op guarantee, and exact crash/partition timing.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "fault/fault_plane.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

fault::FaultProfile noisy_profile() {
  fault::FaultProfile profile;
  profile.wireless_loss = 0.2;
  profile.wireless_dup = 0.1;
  profile.wireless_reorder = 0.15;
  profile.wired_spike = 0.1;
  return profile;
}

/// One row of the fault schedule, wide enough to catch any divergence.
struct Draw {
  bool loss;
  bool dup;
  sim::Duration wireless_spike;
  sim::Duration wired_spike;
  sim::Duration latency;

  friend bool operator==(const Draw&, const Draw&) = default;
};

std::vector<Draw> draw_schedule(fault::FaultPlane& plane, int frames) {
  std::vector<Draw> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    Draw draw{};
    draw.loss = plane.draw_wireless_loss();
    draw.dup = plane.draw_wireless_dup();
    draw.wireless_spike = plane.draw_wireless_spike();
    draw.wired_spike = plane.draw_wired_spike();
    draw.latency = plane.draw_latency(1, 9);
    out.push_back(draw);
  }
  return out;
}

TEST(FaultPlane, SameSeedSameByteIdenticalSchedule) {
  fault::FaultPlane a(fault::fault_stream_seed(42), noisy_profile());
  fault::FaultPlane b(fault::fault_stream_seed(42), noisy_profile());
  EXPECT_EQ(draw_schedule(a, 500), draw_schedule(b, 500));
}

TEST(FaultPlane, DifferentSeedDifferentSchedule) {
  fault::FaultPlane a(fault::fault_stream_seed(42), noisy_profile());
  fault::FaultPlane b(fault::fault_stream_seed(43), noisy_profile());
  EXPECT_NE(draw_schedule(a, 500), draw_schedule(b, 500));
}

TEST(FaultPlane, DropAndDupFirstKnobsAreDeterministic) {
  fault::FaultProfile profile;  // all probabilities zero
  profile.drop_first_wireless = 2;
  profile.dup_first_wireless = 1;
  fault::FaultPlane plane(1, profile);
  EXPECT_TRUE(plane.draw_wireless_loss());
  EXPECT_TRUE(plane.draw_wireless_loss());
  EXPECT_FALSE(plane.draw_wireless_loss());
  EXPECT_TRUE(plane.draw_wireless_dup());
  EXPECT_FALSE(plane.draw_wireless_dup());
}

TEST(FaultPlane, TrivialProfileDetection) {
  EXPECT_TRUE(fault::FaultProfile{}.trivial());
  EXPECT_FALSE(noisy_profile().trivial());
  fault::FaultProfile crash_only;
  crash_only.crashes.push_back({0, 100, 50});
  EXPECT_FALSE(crash_only.trivial());
}

TEST(FaultPlane, CrashWindowsAndWiredRelease) {
  fault::FaultProfile profile;
  profile.crashes.push_back({1, 100, 50});
  profile.partitions.push_back({0, 2, 300, 360});
  fault::FaultPlane plane(7, profile);

  EXPECT_FALSE(plane.crashed(1, 99));
  EXPECT_TRUE(plane.crashed(1, 100));
  EXPECT_TRUE(plane.crashed(1, 149));
  EXPECT_FALSE(plane.crashed(1, 150));
  EXPECT_FALSE(plane.crashed(0, 120));

  // Wired messages into the crashed MSS wait for recovery.
  EXPECT_EQ(plane.wired_release_at(0, 1, 120), 150u);
  EXPECT_EQ(plane.wired_release_at(0, 1, 150), 150u);
  EXPECT_EQ(plane.wired_release_at(1, 0, 120), 120u);  // outbound allowed
  // The partition blocks the (0,2) link symmetrically.
  EXPECT_EQ(plane.wired_release_at(0, 2, 310), 360u);
  EXPECT_EQ(plane.wired_release_at(2, 0, 310), 360u);
  EXPECT_EQ(plane.wired_release_at(0, 2, 360), 360u);
  EXPECT_EQ(plane.wired_release_at(1, 2, 310), 310u);  // other links unaffected
}

/// A small deterministic workload touching every interception point:
/// wired sends, broadcast search with an in-transit target (the
/// rng_-driven retry jitter of Network::handle_search_reply), downlinks,
/// uplinks, and mobility.
void run_workload(Network& net) {
  Harness agents(net);
  net.start();
  auto& sched = net.sched();
  sched.schedule_at(5, [&net, &agents] {
    agents.mss[0]->do_send_wired(static_cast<MssId>(1), std::string("wired"));
    agents.mh[0]->do_send_uplink(std::string("uplink"));
  });
  sched.schedule_at(10, [&net] { net.mh(static_cast<MhId>(4)).move_to(static_cast<MssId>(0), 40); });
  sched.schedule_at(12, [&agents] {
    // Target in transit: broadcast search retries with jittered pauses.
    agents.mss[1]->do_send_to_mh(static_cast<MhId>(4), std::string("chase"));
  });
  sched.schedule_at(80, [&agents] {
    agents.mss[0]->do_send_to_mh(static_cast<MhId>(5), std::string("direct"));
  });
  net.run();
}

TEST(FaultPlane, ZeroProbabilityProfileIsAPerfectNoOp) {
  NetConfig cfg = small_config();
  cfg.latency = LatencyConfig{};  // randomized latencies: rng_ draws matter
  cfg.search = SearchMode::kBroadcast;

  core::BenchReport with_plane("noop");
  core::BenchReport without_plane("noop");
  {
    Network net(cfg);
    net.install_fault_plane(fault::FaultProfile{});
    run_workload(net);
    with_plane.add_run("run", net, cost::CostParams{});
  }
  {
    Network net(cfg);
    run_workload(net);
    without_plane.add_run("run", net, cost::CostParams{});
  }
  EXPECT_EQ(with_plane.deterministic_json(), without_plane.deterministic_json());
}

TEST(FaultPlane, CrashScheduleFiresAtExactSimTimes) {
  NetConfig cfg = small_config(/*m=*/2, /*n=*/0);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.crashes.push_back({1, 100, 50});
  profile.crashes.push_back({0, 400, 25});
  net.install_fault_plane(profile);
  net.run();

  std::vector<std::tuple<sim::SimTime, obs::EventKind, std::uint32_t>> seen;
  for (const auto& ev : net.events().snapshot()) {
    if (ev.kind == obs::EventKind::kMssCrash || ev.kind == obs::EventKind::kMssRecover) {
      seen.emplace_back(ev.at, ev.kind, ev.entity.idx);
    }
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_tuple(sim::SimTime{100}, obs::EventKind::kMssCrash, 1u));
  EXPECT_EQ(seen[1], std::make_tuple(sim::SimTime{150}, obs::EventKind::kMssRecover, 1u));
  EXPECT_EQ(seen[2], std::make_tuple(sim::SimTime{400}, obs::EventKind::kMssCrash, 0u));
  EXPECT_EQ(seen[3], std::make_tuple(sim::SimTime{425}, obs::EventKind::kMssRecover, 0u));
  ExpectCleanEventStream(net);
}

TEST(FaultPlane, WiredMessageIntoCrashedMssDefersToRecovery) {
  NetConfig cfg = small_config(/*m=*/2, /*n=*/0);
  Network net(cfg);
  fault::FaultProfile profile;
  profile.crashes.push_back({1, 100, 100});
  net.install_fault_plane(profile);
  Harness agents(net);
  net.start();
  // Sent at t=110, natural arrival t=115 (fixed wired latency 5) lands
  // inside the outage; the interface holds it until recovery at t=200.
  net.sched().schedule_at(110, [&agents] {
    agents.mss[0]->do_send_wired(static_cast<MssId>(1), std::string("held"));
  });
  net.run();
  ASSERT_EQ(agents.mss[1]->received.size(), 1u);
  EXPECT_EQ(agents.mss[1]->received[0].at, 200u);
  EXPECT_EQ(net.metrics().counters().at("fault.injected_wired_deferral"), 1u);
  ExpectCleanEventStream(net);
}

TEST(FaultPlane, PartitionedLinkDefersUntilHeal) {
  NetConfig cfg = small_config();
  Network net(cfg);
  fault::FaultProfile profile;
  profile.partitions.push_back({0, 1, 50, 120});
  net.install_fault_plane(profile);
  Harness agents(net);
  net.start();
  net.sched().schedule_at(60, [&agents] {
    agents.mss[0]->do_send_wired(static_cast<MssId>(1), std::string("partitioned"));
    agents.mss[0]->do_send_wired(static_cast<MssId>(2), std::string("clear"));
  });
  net.run();
  ASSERT_EQ(agents.mss[1]->received.size(), 1u);
  EXPECT_EQ(agents.mss[1]->received[0].at, 120u);  // held until heal
  ASSERT_EQ(agents.mss[2]->received.size(), 1u);
  EXPECT_EQ(agents.mss[2]->received[0].at, 65u);  // unaffected link
  ExpectCleanEventStream(net);
}

}  // namespace
}  // namespace mobidist::test
