// Supplementary coverage: broadcast-search interactions with
// disconnection, multi-traversal ring behaviour, proxy peer channel,
// relay duplicate suppression, and ledger/report odds and ends.

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "mobility/mobility_model.hpp"
#include "mutex/r2.hpp"
#include "proxy/proxy.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// Broadcast search × disconnection
// --------------------------------------------------------------------------

TEST(BroadcastSearch, FindsDisconnectedFlagAndNotifies) {
  auto cfg = small_config(4, 8);
  cfg.search = net::SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] {
    h.mss[0]->do_send_to_mh(mh_id(1), std::string("x"), SendPolicy::kNotifyIfDisconnected);
  });
  net.run();
  ASSERT_EQ(h.mss[0]->unreachable.size(), 1u);
  EXPECT_EQ(h.mss[0]->unreachable[0].first, mh_id(1));
}

TEST(BroadcastSearch, ParksForDisconnectedAndDeliversOnReconnect) {
  auto cfg = small_config(4, 8);
  cfg.search = net::SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] {
    h.mss[0]->do_send_to_mh(mh_id(1), std::string("later"), SendPolicy::kEventualDelivery);
  });
  net.sched().schedule(300, [&] { net.mh(mh_id(1)).reconnect_at(mss_id(2), 5); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(h.mh[1]->received[0].at, 300u);
}

TEST(BroadcastSearch, SingleCellSystemShortCircuits) {
  auto cfg = small_config(1, 3);
  cfg.search = net::SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(2), 9);
  net.run();
  ASSERT_EQ(h.mh[2]->received.size(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
}

// --------------------------------------------------------------------------
// Ring behaviour across traversals
// --------------------------------------------------------------------------

TEST(RingMultiTraversal, TokenListClearsOnRevisit) {
  // R2'': a host served in traversal 1 becomes eligible again in
  // traversal 2 once the token revisits its serving MSS.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 30;  // ~100 ticks/traversal
  Network net(cfg);
  mutex::CsMonitor monitor;
  mutex::R2Mutex r2(net, monitor, mutex::RingVariant::kTokenList);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(2, [&] { r2.start_token(6); });
  // Second request submitted long after the first is served.
  net.sched().schedule(200, [&] { r2.request(mh_id(0)); });
  net.run();
  EXPECT_EQ(r2.completed(), 2u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(RingMultiTraversal, CounterVariantServesRepeatCustomers) {
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 30;
  Network net(cfg);
  mutex::CsMonitor monitor;
  mutex::R2Mutex r2(net, monitor, mutex::RingVariant::kCounter);
  net.start();
  net.sched().schedule(2, [&] { r2.start_token(8); });
  for (int round = 0; round < 4; ++round) {
    net.sched().schedule(1 + 120 * round, [&] { r2.request(mh_id(3)); });
  }
  net.run();
  EXPECT_EQ(r2.completed(), 4u);
  // Never more than one grant per traversal window.
  for (std::uint64_t traversal = 1; traversal <= 9; ++traversal) {
    EXPECT_LE(r2.grants_for(mh_id(3), traversal), 1u);
  }
}

// --------------------------------------------------------------------------
// Proxy peer channel (direct use, outside ProxiedLamport)
// --------------------------------------------------------------------------

TEST(ProxyPeerChannel, DeliversBetweenProxies) {
  Network net(small_config(4, 4));
  proxy::ProxyOptions opts;
  opts.scope = proxy::ProxyScope::kFixedHome;
  proxy::ProxyService proxies(net, opts);
  std::vector<std::pair<MssId, MssId>> seen;  // (self, from)
  proxies.set_peer_handler([&](MssId self, MssId from, const std::any& body) {
    EXPECT_NE(std::any_cast<int>(&body), nullptr);
    seen.emplace_back(self, from);
  });
  net.start();
  net.sched().schedule(1, [&] { proxies.peer_send(mss_id(0), mss_id(2), 7); });
  net.sched().schedule(2, [&] { proxies.peer_send(mss_id(2), mss_id(0), 8); });
  net.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair{mss_id(2), mss_id(0)}));
  EXPECT_EQ(seen[1], (std::pair{mss_id(0), mss_id(2)}));
  EXPECT_EQ(net.ledger().fixed_msgs(), 2u);
}

TEST(ProxyClientSend, DeferredWhileInTransit) {
  Network net(small_config(4, 4));
  proxy::ProxyOptions opts;
  opts.scope = proxy::ProxyScope::kLocalMss;
  proxy::ProxyService proxies(net, opts);
  std::vector<MhId> upcalls;
  proxies.set_proxy_handler(
      [&](MssId, MhId from, const std::any&) { upcalls.push_back(from); });
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(2), 80);
  net.sched().schedule(10, [&] { proxies.client_send(mh_id(0), 1); });
  net.run();
  ASSERT_EQ(upcalls.size(), 1u);  // sent after landing, not dropped
}

// --------------------------------------------------------------------------
// Relay duplicate suppression
// --------------------------------------------------------------------------

TEST(RelayEdge, DuplicateSequenceNumbersAreDropped) {
  // Deliver the same relay twice by constructing it manually.
  Network net(small_config(3, 4));
  Harness h(net);
  net.start();
  net::msg::Relay relay{mh_id(0), mh_id(1), kTestProto, net::Body(41), 1, true};
  net.sched().schedule(1, [&] { net.relay_to_mh(mss_id(0), relay); });
  net.sched().schedule(50, [&] { net.relay_to_mh(mss_id(0), relay); });  // duplicate
  net.run();
  EXPECT_EQ(h.mh[1]->received.size(), 1u);
}

// --------------------------------------------------------------------------
// Lazy proxy across reconnects
// --------------------------------------------------------------------------

TEST(LazyProxy, JoinCounterSpansReconnects) {
  Network net(small_config(4, 4));
  proxy::ProxyOptions opts;
  opts.scope = proxy::ProxyScope::kLazyHome;
  opts.inform_every = 2;
  proxy::ProxyService proxies(net, opts);
  net.start();
  // join 1: move. join 2: reconnect (should inform, being the 2nd join).
  net.mh(mh_id(0)).move_to(mss_id(1), 5);
  net.sched().schedule(50, [&] { net.mh(mh_id(0)).disconnect(); });
  net.sched().schedule(100, [&] { net.mh(mh_id(0)).reconnect_at(mss_id(2), 5); });
  net.run();
  EXPECT_EQ(proxies.informs(), 1u);  // informed on the reconnect (2nd join)
}

// --------------------------------------------------------------------------
// Mobility pattern sanity
// --------------------------------------------------------------------------

TEST(MobilityPattern, UniformVisitsManyCells) {
  auto cfg = small_config(8, 1);
  Network net(cfg);
  mobility::MobilityConfig mob;
  mob.mean_pause = 5;
  mob.mean_transit = 1;
  mob.max_moves_per_host = 40;
  mobility::MobilityDriver driver(net, mob);
  std::set<std::uint32_t> visited;
  net.start();
  driver.start();
  // Sample position periodically.
  for (int t = 0; t < 600; t += 5) {
    net.sched().schedule(t, [&] {
      if (net.mh(mh_id(0)).connected()) visited.insert(index(net.current_mss_of(mh_id(0))));
    });
  }
  net.run();
  EXPECT_GE(visited.size(), 5u);  // uniform moves roam widely
}

// --------------------------------------------------------------------------
// Report formatting details
// --------------------------------------------------------------------------

TEST(ReportEdge, RatioAndFractionFormatting) {
  EXPECT_EQ(core::num(1234567.0), "1234567");
  EXPECT_EQ(core::ratio(0.5), "x0.5");
  // Fractions keep limited precision rather than exploding digits.
  EXPECT_LE(core::num(1.0 / 3.0).size(), 7u);
}

}  // namespace
}  // namespace mobidist::test
