// Randomized chaos suite: the mutual-exclusion algorithms must stay
// safe AND live under the fault plane. Each test sweeps 64 seeds of one
// {algorithm} x {fault profile} cell with a fixed request/mobility
// workload and asserts that every requested CS execution is eventually
// granted, the monitor saw no exclusion violation, and every trace
// checker (including the fault-delivery checker) passes.
//
// The 64 seeds run concurrently on the exp::ParallelRunner (each seed is
// an isolated Network instance); all assertions happen on the main
// thread over the harvested RunResults, so gtest state is never touched
// from a worker.
//
// These are the slowest tests in the repo and carry the `chaos` ctest
// label so they can be selected (-L chaos) or skipped (-LE chaos).

#include <cstdint>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "exp/exp.hpp"
#include "fault/fault_plane.hpp"

namespace mobidist::test {
namespace {

constexpr std::uint32_t kM = 3;
constexpr std::uint32_t kN = 6;
constexpr int kRequests = 8;
constexpr std::uint64_t kSeeds = 64;
constexpr std::uint64_t kSeedBase = 1000;

enum class Algo : std::uint8_t { kL2, kR2, kR2Prime, kR2DoublePrime, kPathRev };

/// 5% loss + 2% duplication on every wireless frame.
fault::FaultProfile loss_profile() {
  fault::FaultProfile profile;
  profile.wireless_loss = 0.05;
  profile.wireless_dup = 0.02;
  return profile;
}

/// One mid-run MSS crash; its cell's hosts evacuate through the normal
/// leave/join/handoff path.
fault::FaultProfile crash_profile() {
  fault::FaultProfile profile;
  profile.crashes.push_back({1, 120, 80});
  return profile;
}

/// The ISSUE acceptance profile: loss + duplication + delay spikes plus
/// the mid-run crash, all at once.
fault::FaultProfile combined_profile() {
  fault::FaultProfile profile = loss_profile();
  profile.wireless_reorder = 0.03;
  profile.crashes.push_back({1, 120, 80});
  return profile;
}

/// The chaos workload, expressed as a ScenarioSpec for the exp runner.
/// Requests, token fuel, and the three guarded background moves
/// (`chaos_moves`) reproduce the original hand-rolled schedule exactly.
exp::ScenarioSpec chaos_spec(Algo algo, const fault::FaultProfile& profile) {
  exp::ScenarioSpec spec;
  spec.name = "fault_chaos";
  spec.net.num_mss = kM;  // default randomized latencies + oracle search
  spec.net.num_mh = kN;
  spec.fault = profile;
  spec.params["requests"] = kRequests;
  spec.params["request_start"] = 5;
  spec.params["request_gap"] = 40;
  spec.params["chaos_moves"] = 3;
  if (algo == Algo::kL2) {
    spec.workload = "mutex";
    spec.variant = "l2";
  } else if (algo == Algo::kPathRev) {
    // The path-reversal tree needs no token fuel: the token parks at
    // the last server until the next claim. Requests queued at the
    // crashed MSS must re-home with their evacuating hosts.
    spec.workload = "mutex";
    spec.variant = "pathrev";
  } else {
    spec.workload = "ring";
    spec.variant = algo == Algo::kR2        ? "r2"
                   : algo == Algo::kR2Prime ? "r2p"
                                            : "r2pp";
    // Enough traversal fuel that the token outlives the whole request
    // schedule; never absorb-when-idle (an idle window can race an
    // in-flight retransmitted request).
    spec.params["token_at"] = 1;
    spec.params["traversals"] = 60;
  }
  return spec;
}

double metric_or_zero(const exp::RunResult& run, std::string_view name) {
  const auto it = run.metrics.find(name);
  return it == run.metrics.end() ? 0.0 : it->second;
}

void sweep(Algo algo, const fault::FaultProfile& profile) {
  exp::SweepGrid grid;
  for (std::uint64_t i = 0; i < kSeeds; ++i) grid.seeds.push_back(kSeedBase + i);
  const auto plans = grid.expand(chaos_spec(algo, profile));
  const exp::ParallelRunner runner;  // hardware concurrency
  const auto results = runner.run(plans);

  double losses = 0, dups = 0, crashes = 0;
  for (const auto& result : results) {
    SCOPED_TRACE("seed=" + std::to_string(result.seed));
    // ok covers every obs trace checker (including fault delivery).
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(metric_or_zero(result, "sched.hit_event_limit"), 0.0);
    EXPECT_EQ(metric_or_zero(result, "workload.violations"), 0.0);
    EXPECT_EQ(metric_or_zero(result, "workload.grants"), static_cast<double>(kRequests));
    EXPECT_EQ(metric_or_zero(result, "workload.completed"), static_cast<double>(kRequests));
    if (algo == Algo::kL2) {
      EXPECT_EQ(metric_or_zero(result, "workload.aborted"), 0.0);
    }
    losses += metric_or_zero(result, "fault.injected_loss");
    dups += metric_or_zero(result, "fault.injected_dup");
    crashes += metric_or_zero(result, "events.mss_crash");
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      return;  // one seed's diagnosis is enough; don't spam 63 more
    }
  }
  // The sweep must have actually hurt: a silently inert plane would make
  // every liveness assertion above vacuous.
  if (profile.wireless_loss > 0.0) EXPECT_GT(losses, 0.0);
  if (profile.wireless_dup > 0.0) EXPECT_GT(dups, 0.0);
  EXPECT_EQ(crashes, static_cast<double>(profile.crashes.size() * kSeeds));
}

// Sharded-engine chaos: 64 seeds of the scale workload on the sharded
// core at shards=4, each run's merged trace validated by every checker
// (result.ok), and each seed's metrics pinned equal to its shards=1 run
// — the shard-count-independence guarantee under seed diversity. Under
// `run_sanitized.sh --tsan` this is the suite that drives the window
// barriers, the cross-shard mailbox, and the per-slice telemetry from
// real worker threads.
TEST(ChaosSharded, ScaleAtFourShardsMatchesOneShardAcross64Seeds) {
  exp::ScenarioSpec spec;
  spec.name = "shard_chaos";
  spec.workload = "scale";
  spec.variant = "echo";
  spec.net.num_mss = 8;  // default randomized latencies
  spec.net.num_mh = 32;
  spec.params["pings"] = 25;
  spec.params["gap"] = 7;

  exp::SweepGrid grid;
  for (std::uint64_t i = 0; i < kSeeds; ++i) grid.seeds.push_back(kSeedBase + i);
  spec.net.shards = 1;
  const auto base = exp::ParallelRunner().run(grid.expand(spec));
  spec.net.shards = 4;
  const auto sharded = exp::ParallelRunner().run(grid.expand(spec));

  ASSERT_EQ(base.size(), kSeeds);
  ASSERT_EQ(sharded.size(), kSeeds);
  for (std::size_t i = 0; i < kSeeds; ++i) {
    SCOPED_TRACE("seed=" + std::to_string(sharded[i].seed));
    // ok covers every obs trace checker, run over the merged stream.
    ASSERT_TRUE(base[i].ok) << base[i].error;
    ASSERT_TRUE(sharded[i].ok) << sharded[i].error;
    EXPECT_EQ(metric_or_zero(sharded[i], "sched.hit_event_limit"), 0.0);
    EXPECT_GT(metric_or_zero(sharded[i], "events.emitted"), 0.0);
    EXPECT_EQ(sharded[i].metrics, base[i].metrics);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      return;  // one seed's diagnosis is enough; don't spam 63 more
    }
  }
}

TEST(ChaosL2, SurvivesWirelessLoss) { sweep(Algo::kL2, loss_profile()); }
TEST(ChaosL2, SurvivesMssCrash) { sweep(Algo::kL2, crash_profile()); }
TEST(ChaosL2, SurvivesCombinedProfile) { sweep(Algo::kL2, combined_profile()); }

TEST(ChaosR2, SurvivesWirelessLoss) { sweep(Algo::kR2, loss_profile()); }
TEST(ChaosR2, SurvivesMssCrash) { sweep(Algo::kR2, crash_profile()); }
TEST(ChaosR2, SurvivesCombinedProfile) { sweep(Algo::kR2, combined_profile()); }

TEST(ChaosR2Prime, SurvivesWirelessLoss) { sweep(Algo::kR2Prime, loss_profile()); }
TEST(ChaosR2Prime, SurvivesMssCrash) { sweep(Algo::kR2Prime, crash_profile()); }
TEST(ChaosR2Prime, SurvivesCombinedProfile) { sweep(Algo::kR2Prime, combined_profile()); }

TEST(ChaosR2DoublePrime, SurvivesWirelessLoss) { sweep(Algo::kR2DoublePrime, loss_profile()); }
TEST(ChaosR2DoublePrime, SurvivesMssCrash) { sweep(Algo::kR2DoublePrime, crash_profile()); }
TEST(ChaosR2DoublePrime, SurvivesCombinedProfile) {
  sweep(Algo::kR2DoublePrime, combined_profile());
}

TEST(ChaosPathRev, SurvivesWirelessLoss) { sweep(Algo::kPathRev, loss_profile()); }
TEST(ChaosPathRev, SurvivesMssCrash) { sweep(Algo::kPathRev, crash_profile()); }
TEST(ChaosPathRev, SurvivesCombinedProfile) { sweep(Algo::kPathRev, combined_profile()); }

}  // namespace
}  // namespace mobidist::test
