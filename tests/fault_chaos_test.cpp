// Randomized chaos suite: the mutual-exclusion algorithms must stay
// safe AND live under the fault plane. Each test sweeps 64 seeds of one
// {algorithm} x {fault profile} cell with a fixed request/mobility
// workload and asserts that every requested CS execution is eventually
// granted, the monitor saw no exclusion violation, and every trace
// checker (including the fault-delivery checker) passes.
//
// These are the slowest tests in the repo and carry the `chaos` ctest
// label so they can be selected (-L chaos) or skipped (-LE chaos).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plane.hpp"
#include "mutex/l2.hpp"
#include "mutex/monitor.hpp"
#include "mutex/r2.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using mutex::CsMonitor;
using mutex::L2Mutex;
using mutex::R2Mutex;
using mutex::RingVariant;

constexpr std::uint32_t kM = 3;
constexpr std::uint32_t kN = 6;
constexpr int kRequests = 8;
constexpr std::uint64_t kSeeds = 64;
constexpr std::uint64_t kSeedBase = 1000;

enum class Algo : std::uint8_t { kL2, kR2, kR2Prime, kR2DoublePrime };

/// 5% loss + 2% duplication on every wireless frame.
fault::FaultProfile loss_profile() {
  fault::FaultProfile profile;
  profile.wireless_loss = 0.05;
  profile.wireless_dup = 0.02;
  return profile;
}

/// One mid-run MSS crash; its cell's hosts evacuate through the normal
/// leave/join/handoff path.
fault::FaultProfile crash_profile() {
  fault::FaultProfile profile;
  profile.crashes.push_back({1, 120, 80});
  return profile;
}

/// The ISSUE acceptance profile: loss + duplication + delay spikes plus
/// the mid-run crash, all at once.
fault::FaultProfile combined_profile() {
  fault::FaultProfile profile = loss_profile();
  profile.wireless_reorder = 0.03;
  profile.crashes.push_back({1, 120, 80});
  return profile;
}

/// Faults actually injected during one run (summed across a sweep so we
/// can prove the suite exercised the plane rather than a silent no-op).
struct Injected {
  std::uint64_t losses = 0;
  std::uint64_t dups = 0;
  std::uint64_t crashes = 0;

  Injected& operator+=(const Injected& other) {
    losses += other.losses;
    dups += other.dups;
    crashes += other.crashes;
    return *this;
  }
};

std::uint64_t counter_or_zero(const Network& net, const std::string& name) {
  const auto& counters = net.metrics().counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

/// Run one seed of the chaos workload and assert safety + liveness.
Injected run_chaos_seed(Algo algo, const fault::FaultProfile& profile, std::uint64_t seed) {
  NetConfig cfg;  // default randomized latencies + oracle search
  cfg.num_mss = kM;
  cfg.num_mh = kN;
  cfg.seed = seed;
  Network net(cfg);
  net.install_fault_plane(profile);
  CsMonitor monitor;

  std::unique_ptr<L2Mutex> l2;
  std::unique_ptr<R2Mutex> r2;
  std::function<void(MhId)> request;
  if (algo == Algo::kL2) {
    l2 = std::make_unique<L2Mutex>(net, monitor);
    request = [&l2](MhId mh) { l2->request(mh); };
  } else {
    const RingVariant variant = algo == Algo::kR2        ? RingVariant::kBasic
                                : algo == Algo::kR2Prime ? RingVariant::kCounter
                                                         : RingVariant::kTokenList;
    r2 = std::make_unique<R2Mutex>(net, monitor, variant);
    request = [&r2](MhId mh) { r2->request(mh); };
  }
  net.start();
  // Enough traversal fuel that the token outlives the whole request
  // schedule; never absorb-when-idle (an idle window can race an
  // in-flight retransmitted request).
  if (r2) net.sched().schedule_at(1, [&r2] { r2->start_token(60); });
  for (int i = 0; i < kRequests; ++i) {
    const auto mh = static_cast<MhId>(static_cast<std::uint32_t>(i) % kN);
    net.sched().schedule_at(5 + static_cast<sim::SimTime>(i) * 40,
                            [&request, mh] { request(mh); });
  }
  // Background mobility, guarded: a host may be mid-transit (or already
  // evacuated from a crashed cell) when its move comes up.
  const std::pair<sim::SimTime, std::uint32_t> moves[] = {{60, 2}, {140, 4}, {220, 0}};
  for (const auto& [at, idx] : moves) {
    const auto mh = static_cast<MhId>(idx);
    const auto target = static_cast<MssId>((idx + 1) % kM);
    net.sched().schedule_at(at, [&net, mh, target] {
      if (net.mh(mh).connected()) net.mh(mh).move_to(target, 15);
    });
  }
  net.run();

  EXPECT_FALSE(net.sched().hit_event_limit());
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.grants(), static_cast<std::uint64_t>(kRequests));
  if (l2) {
    EXPECT_EQ(l2->completed(), static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(l2->aborted(), 0u);
  } else {
    EXPECT_EQ(r2->completed(), static_cast<std::uint64_t>(kRequests));
  }
  ExpectCleanEventStream(net);

  Injected injected;
  injected.losses = counter_or_zero(net, "fault.injected_loss");
  injected.dups = counter_or_zero(net, "fault.injected_dup");
  for (const auto& ev : net.events().records()) {
    if (ev.kind == obs::EventKind::kMssCrash) ++injected.crashes;
  }
  return injected;
}

void sweep(Algo algo, const fault::FaultProfile& profile) {
  Injected total;
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = kSeedBase + i;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    total += run_chaos_seed(algo, profile, seed);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      return;  // one seed's diagnosis is enough; don't spam 63 more
    }
  }
  // The sweep must have actually hurt: a silently inert plane would make
  // every liveness assertion above vacuous.
  if (profile.wireless_loss > 0.0) EXPECT_GT(total.losses, 0u);
  if (profile.wireless_dup > 0.0) EXPECT_GT(total.dups, 0u);
  EXPECT_EQ(total.crashes, profile.crashes.size() * kSeeds);
}

TEST(ChaosL2, SurvivesWirelessLoss) { sweep(Algo::kL2, loss_profile()); }
TEST(ChaosL2, SurvivesMssCrash) { sweep(Algo::kL2, crash_profile()); }
TEST(ChaosL2, SurvivesCombinedProfile) { sweep(Algo::kL2, combined_profile()); }

TEST(ChaosR2, SurvivesWirelessLoss) { sweep(Algo::kR2, loss_profile()); }
TEST(ChaosR2, SurvivesMssCrash) { sweep(Algo::kR2, crash_profile()); }
TEST(ChaosR2, SurvivesCombinedProfile) { sweep(Algo::kR2, combined_profile()); }

TEST(ChaosR2Prime, SurvivesWirelessLoss) { sweep(Algo::kR2Prime, loss_profile()); }
TEST(ChaosR2Prime, SurvivesMssCrash) { sweep(Algo::kR2Prime, crash_profile()); }
TEST(ChaosR2Prime, SurvivesCombinedProfile) { sweep(Algo::kR2Prime, combined_profile()); }

TEST(ChaosR2DoublePrime, SurvivesWirelessLoss) { sweep(Algo::kR2DoublePrime, loss_profile()); }
TEST(ChaosR2DoublePrime, SurvivesMssCrash) { sweep(Algo::kR2DoublePrime, crash_profile()); }
TEST(ChaosR2DoublePrime, SurvivesCombinedProfile) {
  sweep(Algo::kR2DoublePrime, combined_profile());
}

}  // namespace
}  // namespace mobidist::test
