#!/usr/bin/env bash
# Generator round-trip gate, registered with ctest as `mobidist_gen`.
# Three properties:
#   1. mobidist_gen is a pure function of its flags: the same invocation
#      twice produces byte-identical scenario files.
#   2. The generated document is real ScenarioSpec JSON: mobidist_sweep
#      parses and runs it (the generator also self-validates by
#      re-parsing before writing, but this pins the consumer side).
#   3. At 1e5-MH scale the generated scenario's deterministic artifact
#      is byte-identical across --jobs 1 and --jobs 4 — the same
#      grouping-independence guarantee the hand-written scenarios carry.
set -euo pipefail

build_dir=${1:?usage: run_mobidist_gen.sh <build-dir>}
gen="$build_dir/tools/mobidist_gen"
cli="$build_dir/tools/mobidist_sweep"
for bin in "$gen" "$cli"; do
  if [ ! -x "$bin" ]; then
    echo "run_mobidist_gen: missing binary $bin (build first)" >&2
    exit 1
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# 1. Determinism: identical flags, identical bytes.
"$gen" --model commuter --mh 100000 --seeds 1 --moves-per-host 1 \
  --out "$tmp/gen_a.json" > /dev/null 2>&1
"$gen" --model commuter --mh 100000 --seeds 1 --moves-per-host 1 \
  --out "$tmp/gen_b.json" > /dev/null 2>&1
if ! cmp -s "$tmp/gen_a.json" "$tmp/gen_b.json"; then
  echo "run_mobidist_gen: same flags produced different files" >&2
  exit 1
fi

# Unknown models must be rejected, not silently defaulted.
if "$gen" --model teleport --mh 100 --out "$tmp/bad.json" > /dev/null 2>&1; then
  echo "run_mobidist_gen: unknown model was accepted" >&2
  exit 1
fi

# 2 + 3. The 1e5-MH leg: run the generated scenario end to end at two
# job counts; deterministic artifacts must be byte-identical.
"$cli" --scenario "$tmp/gen_a.json" --jobs 1 --deterministic \
  --out "$tmp/ARTIFACT_j1.json" > /dev/null
"$cli" --scenario "$tmp/gen_a.json" --jobs 4 --deterministic \
  --out "$tmp/ARTIFACT_j4.json" > /dev/null
if ! cmp -s "$tmp/ARTIFACT_j1.json" "$tmp/ARTIFACT_j4.json"; then
  echo "run_mobidist_gen: 1e5-MH artifact differs between --jobs 1 and --jobs 4" >&2
  diff "$tmp/ARTIFACT_j1.json" "$tmp/ARTIFACT_j4.json" | head -5 >&2 || true
  exit 1
fi

echo "run_mobidist_gen: generator deterministic; 1e5-MH scenario byte-identical across job counts"
