// Substrate tests: channels + cost charging, the §2 mobility protocol
// (join/leave/handoff/disconnect/reconnect), search in both modes, the
// MH-to-MH relay with FIFO resequencing, and doze-mode accounting.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>

#include "fault/fault_plane.hpp"
#include "obs/events.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// Topology & placement
// --------------------------------------------------------------------------

TEST(Placement, RoundRobinSpreadsHosts) {
  auto cfg = small_config(3, 7);
  Network net(cfg);
  EXPECT_EQ(net.mss(mss_id(0)).local_mhs().size(), 3u);  // 0, 3, 6
  EXPECT_EQ(net.mss(mss_id(1)).local_mhs().size(), 2u);  // 1, 4
  EXPECT_EQ(net.mss(mss_id(2)).local_mhs().size(), 2u);  // 2, 5
  EXPECT_EQ(net.current_mss_of(mh_id(4)), mss_id(1));
}

TEST(Placement, AllInCell0) {
  auto cfg = small_config(3, 5);
  cfg.placement = InitialPlacement::kAllInCell0;
  Network net(cfg);
  EXPECT_EQ(net.mss(mss_id(0)).local_mhs().size(), 5u);
  EXPECT_TRUE(net.mss(mss_id(1)).local_mhs().empty());
}

TEST(Placement, ZeroMssThrows) {
  NetConfig cfg;
  cfg.num_mss = 0;
  EXPECT_THROW(Network net(cfg), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Wired channel
// --------------------------------------------------------------------------

TEST(WiredChannel, DeliversAndCharges) {
  Network net(small_config());
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(1), std::string("ping"));
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 1u);
  EXPECT_EQ(*h.mss[1]->received[0].env.body.get<std::string>(), "ping");
  EXPECT_EQ(net.ledger().fixed_msgs(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 0u);
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(WiredChannel, SelfSendIsFreeAndDelivered) {
  Network net(small_config());
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(0), 42);
  net.run();
  ASSERT_EQ(h.mss[0]->received.size(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
}

TEST(WiredChannel, FifoUnderRandomLatency) {
  auto cfg = small_config();
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 40;  // heavy jitter
  Network net(cfg);
  Harness h(net);
  net.start();
  for (int i = 0; i < 50; ++i) h.mss[0]->do_send_wired(mss_id(1), i);
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(*h.mss[1]->received[i].env.body.get<int>(), i);
  }
}

TEST(WiredChannel, IndependentPairsDoNotBlockEachOther) {
  Network net(small_config());
  Harness h(net);
  net.start();
  h.mss[0]->do_send_wired(mss_id(1), 1);
  h.mss[2]->do_send_wired(mss_id(1), 2);
  net.run();
  EXPECT_EQ(h.mss[1]->received.size(), 2u);
}

// --------------------------------------------------------------------------
// Wireless channels
// --------------------------------------------------------------------------

TEST(Wireless, UplinkDeliversToCurrentMssAndChargesTx) {
  Network net(small_config(3, 6));  // mh1 in cell 1
  Harness h(net);
  net.start();
  h.mh[1]->do_send_uplink(std::string("up"));
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 1u);
  EXPECT_EQ(net.ledger().wireless_tx(), 1u);
  EXPECT_EQ(net.ledger().energy_at(1, cost::CostParams{}), 1.0);
}

TEST(Wireless, DownlinkToLocalMhChargesRx) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mss[1]->do_send_local(mh_id(1), std::string("down"));
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(net.ledger().wireless_rx(), 1u);
  EXPECT_EQ(net.ledger().energy_at(1, cost::CostParams{}), 1.0);
}

TEST(Wireless, DownlinkLostWhenMhLeavesFirst) {
  // §2 prefix rule: a frame transmitted before the leave but landing
  // after it is never received.
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.sched().schedule(10, [&] {
    h.mss[1]->do_send_local(mh_id(1), std::string("miss"));
    net.mh(mh_id(1)).move_to(mss_id(2), /*transit=*/30);
  });
  net.run();
  EXPECT_TRUE(h.mh[1]->received.empty());
  ASSERT_EQ(h.mss[1]->local_failures.size(), 1u);
  EXPECT_EQ(h.mss[1]->local_failures[0].first, mh_id(1));
  EXPECT_EQ(net.ledger().wireless_rx(), 0u);  // no reception, no rx energy
}

TEST(Wireless, DownlinkToNonLocalMhFailsImmediately) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_local(mh_id(1), std::string("wrong cell"));
  net.run();
  EXPECT_TRUE(h.mh[1]->received.empty());
  EXPECT_EQ(h.mss[0]->local_failures.size(), 1u);
}

TEST(Wireless, UplinkFromDisconnectedThrows) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).disconnect();
  net.run();
  EXPECT_THROW(h.mh[0]->do_send_uplink(1), std::logic_error);
}

TEST(Wireless, ControlTrafficIsNotCharged) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 5);  // leave + join, control only
  net.run();
  EXPECT_EQ(net.ledger().wireless_msgs(), 0u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  EXPECT_GT(net.stats().control_msgs, 0u);
}

// --------------------------------------------------------------------------
// Mobility protocol
// --------------------------------------------------------------------------

TEST(Mobility, MoveUpdatesLocalListsAndNotifiesAgents) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 10);
  net.run();
  EXPECT_FALSE(net.mss(mss_id(0)).is_local(mh_id(0)));
  EXPECT_TRUE(net.mss(mss_id(1)).is_local(mh_id(0)));
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(1));
  // Old cell saw the departure, new cell saw the arrival with prev id.
  EXPECT_NE(std::find(h.mss[0]->events.begin(), h.mss[0]->events.end(), "left:mh:0"),
            h.mss[0]->events.end());
  bool joined_seen = false;
  for (const auto& ev : h.mss[1]->events) {
    joined_seen |= (ev == "joined:mh:0<-mss:0");
  }
  EXPECT_TRUE(joined_seen);
  EXPECT_EQ(h.mh[0]->events.front(), "left");
  EXPECT_EQ(h.mh[0]->events.back(), "joined:mss:1");
  EXPECT_EQ(net.stats().leaves, 1u);
  EXPECT_EQ(net.stats().joins, 1u);
  EXPECT_EQ(net.stats().handoffs, 1u);
}

TEST(Mobility, InTransitHostIsInNoCell) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 100);
  net.sched().run_until(50);  // mid-transit
  EXPECT_TRUE(net.is_in_transit(mh_id(0)));
  EXPECT_EQ(net.current_mss_of(mh_id(0)), kInvalidMss);
  EXPECT_FALSE(net.mss(mss_id(0)).is_local(mh_id(0)));
  EXPECT_FALSE(net.mss(mss_id(1)).is_local(mh_id(0)));
  net.run();
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(1));
}

TEST(Mobility, MoveToCurrentCellIsLeaveAndRejoin) {
  // Coverage lost and regained inside one cell: a real in-transit window
  // followed by a plain (no-handoff) rejoin of the same MSS.
  Network net(small_config(3, 6));
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(0), 50);
  net.sched().run_until(25);
  EXPECT_TRUE(net.is_in_transit(mh_id(0)));
  net.run();
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(0));
  EXPECT_EQ(net.stats().handoffs, 0u);
  EXPECT_EQ(net.stats().leaves, 1u);
  EXPECT_EQ(net.stats().joins, 1u);
}

TEST(Mobility, MoveWhileInTransitThrows) {
  Network net(small_config(3, 6));
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 100);
  EXPECT_THROW(net.mh(mh_id(0)).move_to(mss_id(2), 5), std::logic_error);
  net.run();
}

TEST(Mobility, HandoffTransfersAgentState) {
  Network net(small_config(3, 6));
  Harness h(net);
  h.mss[0]->handoff_blob = std::string("mh0-notes");
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 10);
  net.run();
  ASSERT_TRUE(h.mss[1]->last_handoff_in.has_value());
  EXPECT_EQ(*std::any_cast<std::string>(&h.mss[1]->last_handoff_in), "mh0-notes");
}

TEST(Mobility, RapidDoubleMoveChainsHandoffState) {
  // mh0: cell0 -> cell1 -> cell2 with the second move starting as soon
  // as the first join lands; cell2 must still receive cell0's state via
  // the deferred-handoff path.
  Network net(small_config(3, 6));
  Harness h(net);
  h.mss[0]->handoff_blob = std::string("origin-state");
  // Cell1 re-exports whatever state it receives so the deferred handoff
  // to cell2 carries cell0's blob onward.
  h.mss[1]->forward_handoff = true;
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 10);
  h.mss[1]->on_joined = [&](MhId mh, MssId) {
    // Leave again immediately, before cell0's HandoffState can arrive.
    net.mh(mh).move_to(mss_id(2), 1);
  };
  // Forward state on the middle hop.
  net.run();
  // cell1 received cell0's state...
  ASSERT_TRUE(h.mss[1]->last_handoff_in.has_value());
  EXPECT_EQ(*std::any_cast<std::string>(&h.mss[1]->last_handoff_in), "origin-state");
  // ...and cell2 got a handoff reply from cell1 (deferred until then).
  bool got_in = false;
  for (const auto& ev : h.mss[2]->events) {
    got_in |= ev.rfind("handoff_in:mh:0", 0) == 0;
  }
  EXPECT_TRUE(got_in);
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(2));
}

// --------------------------------------------------------------------------
// send_to_mh / search
// --------------------------------------------------------------------------

TEST(Search, OracleSendChargesSearchPlusWireless) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(1), std::string("hello"));  // mh1 is in cell1
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(net.ledger().searches(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);  // forward leg is inside c_search
}

TEST(Search, LocalTargetStillChargesSearchByDefault) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(0), 7);  // mh0 is local to mss0
  net.run();
  EXPECT_EQ(net.ledger().searches(), 1u);
}

TEST(Search, LocalHitFreeWhenConfigured) {
  auto cfg = small_config(3, 6);
  cfg.charge_search_for_local = false;
  Network net(cfg);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(0), 7);
  net.run();
  EXPECT_EQ(net.ledger().searches(), 0u);
  ASSERT_EQ(h.mh[0]->received.size(), 1u);
}

TEST(Search, PendsForInTransitTargetAndDeliversAfterJoin) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).move_to(mss_id(2), 200);
  net.sched().schedule(20, [&] { h.mss[0]->do_send_to_mh(mh_id(1), std::string("chase")); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(h.mh[1]->received[0].at, 200u);
  EXPECT_EQ(net.stats().searches_pended, 1u);
  EXPECT_EQ(net.current_mss_of(mh_id(1)), mss_id(2));
}

TEST(Search, RetriesWhenTargetMovesMidFlight) {
  // Locate resolves, then the MH moves before the downlink lands; the
  // substrate must re-search and still deliver (footnote 1).
  auto cfg = small_config(3, 6);
  cfg.latency.wireless_min = cfg.latency.wireless_max = 20;  // slow air link
  Network net(cfg);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(1), std::string("moving target"));
  // Oracle resolves at t=4; downlink would land at wired(5)+20. Move at
  // t=12 so the frame misses.
  net.sched().schedule(12, [&] { net.mh(mh_id(1)).move_to(mss_id(2), 5); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(net.stats().delivery_retries, 1u);
  EXPECT_GE(net.ledger().searches(), 2u);  // original + retry
}

TEST(Search, BroadcastModeFindsTargetAndChargesRealMessages) {
  auto cfg = small_config(4, 8);
  cfg.search = SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  h.mss[0]->do_send_to_mh(mh_id(1), std::string("bc"));  // mh1 in cell1
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(net.ledger().searches(), 0u);  // no abstract charge in broadcast mode
  // (M-1)=3 queries + 1 positive reply + 1 forward = 5 fixed messages.
  EXPECT_EQ(net.ledger().fixed_msgs(), 5u);
}

TEST(Search, BroadcastShortCircuitsWhenTargetIsLocal) {
  auto cfg = small_config(4, 8);
  cfg.search = SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  h.mss[1]->do_send_to_mh(mh_id(1), 5);  // local to sender
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
}

TEST(Search, BroadcastRetriesUntilInTransitTargetLands) {
  auto cfg = small_config(4, 8);
  cfg.search = SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).move_to(mss_id(3), 300);
  net.sched().schedule(10, [&] { h.mss[0]->do_send_to_mh(mh_id(1), std::string("late")); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(h.mh[1]->received[0].at, 300u);
}

// --------------------------------------------------------------------------
// Disconnection
// --------------------------------------------------------------------------

TEST(Disconnect, SetsFlagAtLocalMss) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).disconnect();
  net.run();
  EXPECT_FALSE(net.mss(mss_id(0)).is_local(mh_id(0)));
  EXPECT_TRUE(net.mss(mss_id(0)).has_disconnected_flag(mh_id(0)));
  EXPECT_EQ(h.mss[0]->events.back(), "disconnected:mh:0");
  EXPECT_TRUE(net.is_disconnected(mh_id(0)));
}

TEST(Disconnect, NotifyPolicyReturnsBodyToSender) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] {
    h.mss[0]->do_send_to_mh(mh_id(1), std::string("urgent"), SendPolicy::kNotifyIfDisconnected);
  });
  net.run();
  ASSERT_EQ(h.mss[0]->unreachable.size(), 1u);
  EXPECT_EQ(h.mss[0]->unreachable[0].first, mh_id(1));
  EXPECT_EQ(*h.mss[0]->unreachable[0].second.get<std::string>(), "urgent");
  EXPECT_TRUE(h.mh[1]->received.empty());
  EXPECT_EQ(net.stats().unreachable_notices, 1u);
}

TEST(Disconnect, EventualPolicyParksAndDeliversOnReconnect) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] {
    h.mss[0]->do_send_to_mh(mh_id(1), std::string("stored"), SendPolicy::kEventualDelivery);
  });
  net.sched().schedule(100, [&] { net.mh(mh_id(1)).reconnect_at(mss_id(2), 10); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(*h.mh[1]->received[0].env.body.get<std::string>(), "stored");
  EXPECT_GE(h.mh[1]->received[0].at, 110u);
  EXPECT_EQ(net.stats().queued_for_reconnect, 1u);
  EXPECT_EQ(net.current_mss_of(mh_id(1)), mss_id(2));
}

TEST(Disconnect, ReconnectWithPrevClearsFlagViaHandoff) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).disconnect();
  net.sched().schedule(50, [&] { net.mh(mh_id(0)).reconnect_at(mss_id(1), 5, true); });
  net.run();
  EXPECT_FALSE(net.mss(mss_id(0)).has_disconnected_flag(mh_id(0)));
  EXPECT_TRUE(net.mss(mss_id(1)).is_local(mh_id(0)));
  EXPECT_EQ(net.stats().reconnects, 1u);
}

TEST(Disconnect, ReconnectWithoutPrevQueriesEveryFixedHost) {
  Network net(small_config(4, 8));
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).disconnect();
  net.sched().schedule(50, [&] { net.mh(mh_id(0)).reconnect_at(mss_id(2), 5, false); });
  net.run();
  EXPECT_FALSE(net.mss(mss_id(0)).has_disconnected_flag(mh_id(0)));
  EXPECT_TRUE(net.mss(mss_id(2)).is_local(mh_id(0)));
}

TEST(Disconnect, ReconnectWhileConnectedThrows) {
  Network net(small_config(3, 6));
  net.start();
  EXPECT_THROW(net.mh(mh_id(0)).reconnect_at(mss_id(1), 5), std::logic_error);
}

// --------------------------------------------------------------------------
// MH-to-MH relay
// --------------------------------------------------------------------------

TEST(Relay, DeliversWithTwoWirelessHopsAndOneSearch) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mh[0]->do_send_to_mh(mh_id(1), std::string("peer"));
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(*h.mh[1]->received[0].env.body.get<std::string>(), "peer");
  EXPECT_EQ(h.mh[1]->received[0].env.src.mh(), mh_id(0));
  // §2: MH-to-MH costs 2*c_wireless + c_search.
  EXPECT_EQ(net.ledger().wireless_msgs(), 2u);
  EXPECT_EQ(net.ledger().searches(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  // Energy: tx at the source, rx at the destination.
  EXPECT_EQ(net.ledger().energy_at(0, cost::CostParams{}), 1.0);
  EXPECT_EQ(net.ledger().energy_at(1, cost::CostParams{}), 1.0);
}

TEST(Relay, SameCellPeersStillPayFullPath) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mh[0]->do_send_to_mh(mh_id(3), 1);  // both in cell 0
  net.run();
  ASSERT_EQ(h.mh[3]->received.size(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 2u);
  EXPECT_EQ(net.ledger().searches(), 1u);
}

TEST(Relay, FollowsMovingDestination) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).move_to(mss_id(2), 150);
  net.sched().schedule(10, [&] { h.mh[0]->do_send_to_mh(mh_id(1), std::string("find me")); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(h.mh[1]->received[0].at, 150u);
}

TEST(Relay, WaitsForDisconnectedDestination) {
  // R1's vulnerability: relayed traffic to a disconnected MH parks until
  // (if ever) it reconnects.
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] { h.mh[0]->do_send_to_mh(mh_id(1), std::string("wait")); });
  net.sched().schedule(500, [&] { net.mh(mh_id(1)).reconnect_at(mss_id(0), 5); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_GE(h.mh[1]->received[0].at, 500u);
}

TEST(Relay, FifoResequencesAcrossMoves) {
  // Send a burst mid-move so later messages overtake earlier ones in
  // real arrival order; the resequencer must still deliver 0..19 in
  // order.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 30;
  cfg.latency.search_min = 1;
  cfg.latency.search_max = 25;
  Network net(cfg);
  Harness h(net);
  net.start();
  for (int i = 0; i < 10; ++i) h.mh[0]->do_send_to_mh(mh_id(1), i);
  net.sched().schedule(3, [&] { net.mh(mh_id(1)).move_to(mss_id(2), 40); });
  net.sched().schedule(60, [&] {
    for (int i = 10; i < 20; ++i) h.mh[0]->do_send_to_mh(mh_id(1), i);
  });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*h.mh[1]->received[i].env.body.get<int>(), i) << "position " << i;
  }
}

TEST(Relay, NonFifoModeDeliversWithoutBuffering) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mh[0]->do_send_to_mh(mh_id(1), 1, /*fifo=*/false);
  h.mh[0]->do_send_to_mh(mh_id(1), 2, /*fifo=*/false);
  net.run();
  EXPECT_EQ(h.mh[1]->received.size(), 2u);
  EXPECT_EQ(net.stats().relay_reordered, 0u);
}

// --------------------------------------------------------------------------
// Doze mode
// --------------------------------------------------------------------------

TEST(Doze, DeliveriesToDozingHostAreCountedAsInterruptions) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  net.mh(mh_id(1)).set_doze(true);
  h.mss[1]->do_send_local(mh_id(1), 1);
  h.mss[1]->do_send_local(mh_id(1), 2);
  net.run();
  EXPECT_EQ(h.mh[1]->received.size(), 2u);
  EXPECT_EQ(net.stats().doze_interruptions, 2u);
}

TEST(Doze, AwakeHostDoesNotCount) {
  Network net(small_config(3, 6));
  Harness h(net);
  net.start();
  h.mss[1]->do_send_local(mh_id(1), 1);
  net.run();
  EXPECT_EQ(net.stats().doze_interruptions, 0u);
}

// --------------------------------------------------------------------------
// Determinism
// --------------------------------------------------------------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    auto cfg = small_config(4, 12);
    cfg.latency.wired_min = 1;
    cfg.latency.wired_max = 20;
    cfg.seed = seed;
    Network net(cfg);
    Harness h(net);
    net.start();
    for (std::uint32_t i = 0; i < 12; ++i) {
      net.sched().schedule(i * 7, [&, i] {
        const auto from = mh_id(i);
        if (net.mh(from).connected()) {
          h.mh[i]->do_send_to_mh(mh_id((i + 5) % 12), static_cast<int>(i));
        }
      });
      if (i % 3 == 0) {
        net.sched().schedule(i * 11 + 3, [&, i] {
          auto& host = net.mh(mh_id(i));
          if (host.connected()) {
            const auto next =
                static_cast<MssId>((index(host.current_mss()) + 1) % net.num_mss());
            host.move_to(next, 13);
          }
        });
      }
    }
    net.run();
    return std::tuple{net.ledger().fixed_msgs(), net.ledger().wireless_msgs(),
                      net.ledger().searches(), net.stats().joins, net.sched().fired()};
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(std::get<4>(run_once(77)), 0u);
}

// --------------------------------------------------------------------------
// Reliable wireless hop (fault plane installed)
// --------------------------------------------------------------------------

std::size_t count_kind(const Network& net, obs::EventKind kind) {
  std::size_t n = 0;
  for (const auto& ev : net.events().snapshot()) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

TEST(ReliableWireless, DroppedUplinkIsRetransmittedAfterRtoBase) {
  Network net(small_config(3, 6));
  fault::FaultProfile profile;
  profile.drop_first_wireless = 1;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mh[1]->do_send_uplink(std::string("release"));
  net.run();
  // Frame dropped at t=0, retransmitted at t=16 (rto_base), wireless
  // latency 2 — delivered exactly once, never a second copy.
  ASSERT_EQ(h.mss[1]->received.size(), 1u);
  EXPECT_EQ(h.mss[1]->received[0].at, 18u);
  EXPECT_EQ(net.stats().retransmissions, 1u);
  EXPECT_EQ(net.stats().dup_suppressed, 0u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kMsgDropped), 1u);
  ExpectCleanEventStream(net);
}

TEST(ReliableWireless, BackoffDoublesPerAttemptAndRetryDepthIsRecorded) {
  Network net(small_config(3, 6));
  fault::FaultProfile profile;
  profile.drop_first_wireless = 3;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mss[1]->do_send_local(mh_id(1), std::string("grant"));
  net.run();
  // Attempts at t=0, 16, 48; the fourth at t=112 (16+32+64 of capped
  // exponential backoff) finally gets through, +2 wireless latency.
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(h.mh[1]->received[0].at, 114u);
  EXPECT_EQ(net.stats().retransmissions, 3u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kMsgDropped), 3u);
  const auto& depth = net.metrics().histograms().at("net.delivery_retry_depth");
  EXPECT_EQ(depth.count(), 3u);
  EXPECT_EQ(depth.max(), 3u);  // deepest recorded attempt number
  ExpectCleanEventStream(net);
}

TEST(ReliableWireless, DuplicatedDownlinkIsSuppressedExactlyOnce) {
  Network net(small_config(3, 6));
  fault::FaultProfile profile;
  profile.dup_first_wireless = 1;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mss[1]->do_send_local(mh_id(1), std::string("grant"));
  net.run();
  // The link-layer copy reaches the MH but the dedup window kills it:
  // one application delivery, one rx charge, one suppression.
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(net.stats().dup_suppressed, 1u);
  EXPECT_EQ(net.ledger().wireless_rx(), 1u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kMsgDuplicated), 1u);
  std::size_t recvs_at_mh = 0;
  for (const auto& ev : net.events().snapshot()) {
    if (ev.kind == obs::EventKind::kRecv && ev.entity == obs::Entity::mh(1)) ++recvs_at_mh;
  }
  EXPECT_EQ(recvs_at_mh, 1u);  // the suppressed copy emits no recv
  ExpectCleanEventStream(net);
}

TEST(ReliableWireless, DuplicatedUplinkIsSuppressedExactlyOnce) {
  Network net(small_config(3, 6));
  fault::FaultProfile profile;
  profile.dup_first_wireless = 1;
  net.install_fault_plane(profile);
  Harness h(net);
  net.start();
  h.mh[1]->do_send_uplink(std::string("release"));
  net.run();
  ASSERT_EQ(h.mss[1]->received.size(), 1u);
  EXPECT_EQ(net.stats().dup_suppressed, 1u);
  EXPECT_EQ(count_kind(net, obs::EventKind::kMsgDuplicated), 1u);
  ExpectCleanEventStream(net);
}

// --------------------------------------------------------------------------
// Trace instrumentation
// --------------------------------------------------------------------------

TEST(TraceInstrumentation, SubstrateEventsAreRecorded) {
  Network net(small_config(3, 6));
  net.trace().set_min_level(sim::TraceLevel::kDebug);
  Harness h(net);
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 5);
  net.sched().schedule(50, [&] { net.mh(mh_id(2)).disconnect(); });
  net.sched().schedule(60, [&] { h.mss[0]->do_send_to_mh(mh_id(1), 1); });
  net.run();
  EXPECT_GE(net.trace().count_containing("join mh:0"), 1u);
  EXPECT_GE(net.trace().count_containing("leave mh:0"), 0u);  // may be implicit
  EXPECT_GE(net.trace().count_containing("handoff mh:0"), 1u);
  EXPECT_GE(net.trace().count_containing("disconnect mh:2"), 1u);
  EXPECT_GE(net.trace().count_containing("locating mh:1"), 1u);
}

TEST(TraceInstrumentation, SilentAtDefaultLevel) {
  Network net(small_config(3, 6));  // default min level kInfo
  net.start();
  net.mh(mh_id(0)).move_to(mss_id(1), 5);
  net.run();
  EXPECT_EQ(net.trace().count_containing("join"), 0u);  // debug-level records dropped
}

// --------------------------------------------------------------------------
// Config validation
// --------------------------------------------------------------------------

TEST(ConfigValidation, InvertedLatencyRangesThrow) {
  auto wired = small_config();
  wired.latency.wired_min = 10;
  wired.latency.wired_max = 2;
  EXPECT_THROW(Network{wired}, std::invalid_argument);

  auto wireless = small_config();
  wireless.latency.wireless_min = 5;
  wireless.latency.wireless_max = 1;
  EXPECT_THROW(Network{wireless}, std::invalid_argument);

  auto search = small_config();
  search.latency.search_min = 9;
  search.latency.search_max = 3;
  EXPECT_THROW(Network{search}, std::invalid_argument);
}

TEST(ConfigValidation, OversizedIdSpaceThrows) {
  // Ids must fit the 30-bit channel-key fields; the constructor rejects
  // oversized populations before allocating anything.
  auto cfg = small_config();
  cfg.num_mh = Network::kMaxEndpointIndex + 2;
  EXPECT_THROW(Network{cfg}, std::invalid_argument);
}

// --------------------------------------------------------------------------
// Channel-key packing
// --------------------------------------------------------------------------

TEST(ChannelKey, WideIdsDoNotAlias) {
  using CT = Network::ChannelType;
  // The old packing ((type << 48) | (a << 24) | b) collapsed these pairs
  // onto one key; the 4/30/30 split must keep them distinct.
  EXPECT_NE(Network::channel_key(CT::kWired, 1, 0),
            Network::channel_key(CT::kWired, 0, 1u << 24));
  EXPECT_NE(Network::channel_key(CT::kWired, (1u << 24) | 7, 3),
            Network::channel_key(CT::kWired, 7, (3u << 24) | 3));
  // Full 30-bit endpoints stay distinct in both positions.
  const std::uint32_t wide = Network::kMaxEndpointIndex;
  EXPECT_NE(Network::channel_key(CT::kUplink, wide, 0),
            Network::channel_key(CT::kUplink, 0, wide));
  // Direction matters (ordered channels)...
  EXPECT_NE(Network::channel_key(CT::kWired, 2, 5), Network::channel_key(CT::kWired, 5, 2));
  // ...and so does the channel type for the same endpoints.
  EXPECT_NE(Network::channel_key(CT::kUplink, 4, 1),
            Network::channel_key(CT::kDownlink, 4, 1));
  EXPECT_NE(Network::channel_key(CT::kWired, 4, 1), Network::channel_key(CT::kUplink, 4, 1));
}

TEST(ChannelKey, FifoNonOvertakingPerChannelUnderJitter) {
  // Property: with heavy latency jitter, every ordered MSS pair's wired
  // channel delivers in send order, and streams from different senders
  // stay independently ordered at one receiver.
  auto cfg = small_config(5, 5);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 80;
  cfg.seed = 909;
  Network net(cfg);
  Harness h(net);
  net.start();
  constexpr int kPerPair = 25;
  for (int i = 0; i < kPerPair; ++i) {
    net.sched().schedule(1 + 2 * i, [&, i] {
      h.mss[1]->do_send_wired(mss_id(0), 1000 + i);  // stream 1 -> 0
      h.mss[2]->do_send_wired(mss_id(0), 2000 + i);  // stream 2 -> 0
      h.mss[3]->do_send_wired(mss_id(4), 3000 + i);  // stream 3 -> 4
    });
  }
  net.run();
  ASSERT_EQ(h.mss[0]->received.size(), 2u * kPerPair);
  ASSERT_EQ(h.mss[4]->received.size(), static_cast<std::size_t>(kPerPair));
  int last1 = 0, last2 = 0;
  for (const auto& rec : h.mss[0]->received) {
    const int value = *rec.env.body.get<int>();
    if (value < 2000) {
      EXPECT_GT(value, last1) << "stream 1->0 overtook itself";
      last1 = value;
    } else {
      EXPECT_GT(value, last2) << "stream 2->0 overtook itself";
      last2 = value;
    }
  }
  for (int i = 0; i < kPerPair; ++i) {
    EXPECT_EQ(*h.mss[4]->received[i].env.body.get<int>(), 3000 + i);
  }
}

// --------------------------------------------------------------------------
// Single-MSS broadcast search
// --------------------------------------------------------------------------

TEST(Search, SingleMssBroadcastParksForInTransitTarget) {
  // Regression: the single-MSS fast path used to report an in-transit MH
  // as connected, making the downlink fail and retry until the join
  // landed. It must park the resolution like the multi-MSS path does.
  auto cfg = small_config(1, 2);
  cfg.search = SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).move_to(mss_id(0), 120); });
  net.sched().schedule(5, [&] { h.mss[0]->do_send_to_mh(mh_id(1), 42); });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(*h.mh[1]->received[0].env.body.get<int>(), 42);
  EXPECT_GE(h.mh[1]->received[0].at, 121u);  // delivered only after the join
  EXPECT_EQ(net.stats().searches_pended, 1u);
  EXPECT_EQ(net.stats().delivery_retries, 0u);  // no fail/retry spin
}

TEST(Search, SingleMssBroadcastStillResolvesConnectedAndDisconnected) {
  auto cfg = small_config(1, 3);
  cfg.search = SearchMode::kBroadcast;
  Network net(cfg);
  Harness h(net);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(2)).disconnect(); });
  net.sched().schedule(5, [&] {
    h.mss[0]->do_send_to_mh(mh_id(1), 7);  // connected: immediate local delivery
    h.mss[0]->do_send_to_mh(mh_id(2), 8, SendPolicy::kNotifyIfDisconnected);
  });
  net.run();
  ASSERT_EQ(h.mh[1]->received.size(), 1u);
  EXPECT_EQ(h.mh[2]->received.size(), 0u);
  ASSERT_EQ(h.mss[0]->unreachable.size(), 1u);  // disconnected flag honoured
  EXPECT_EQ(net.stats().searches_pended, 0u);
}

// --------------------------------------------------------------------------
// Sharded engine
// --------------------------------------------------------------------------

// Regression: the conservative window width is exactly the wired-latency
// lower bound — the network's only cross-shard channel — and a sharded
// network refuses a zero lower bound (lookahead must be >= 1).
TEST(ShardedEngine, LookaheadIsTheWiredLatencyLowerBound) {
  auto cfg = small_config();  // wired_min = 5
  cfg.shards = 2;
  Network net(cfg);
  EXPECT_TRUE(net.sharded());
  EXPECT_EQ(net.lookahead(), cfg.latency.wired_min);

  cfg.latency.wired_min = 0;
  cfg.latency.wired_max = 4;
  EXPECT_THROW(Network bad(cfg), std::invalid_argument);
  cfg.shards = 0;  // the legacy engine has no lookahead constraint
  Network legacy(cfg);
  EXPECT_FALSE(legacy.sharded());
}

TEST(ShardedEngine, MutatingEntryPointsThrow) {
  auto cfg = small_config();
  cfg.shards = 2;
  Network net(cfg);
  Harness h(net);
  net.start();
  EXPECT_THROW(net.mh(mh_id(1)).move_to(mss_id(0), 10), std::logic_error);
  EXPECT_THROW(net.mh(mh_id(1)).disconnect(), std::logic_error);
  EXPECT_THROW(h.mss[0]->do_send_to_mh(mh_id(4), 1), std::logic_error);
}

namespace sharded {

struct ChainTotals {
  std::string jsonl;          ///< canonical merged stream
  std::uint64_t fixed_msgs = 0;
  std::uint64_t wired_packets = 0;
  std::uint64_t fired = 0;
  std::size_t received = 0;   ///< messages seen by all recording agents
};

/// A wired ring chain: every MSS starts a message that hops around the
/// ring `kHops` times. Static topology, cross-shard wired traffic only —
/// the workload the sharded engine exists for. Latencies keep their
/// jittered defaults so per-lane RNG draws are load-bearing.
ChainTotals run_wired_chain(std::uint32_t shards, FormationConfig formation = {}) {
  constexpr std::uint32_t kMss = 4;
  constexpr int kHops = 12;
  NetConfig cfg;
  cfg.num_mss = kMss;
  cfg.num_mh = 8;
  cfg.seed = 77;
  cfg.shards = shards;
  cfg.formation = formation;
  Network net(cfg);
  Harness h(net);
  for (std::uint32_t i = 0; i < kMss; ++i) {
    // Each bounce runs on the receiving MSS's own shard, so replying
    // through that MSS's agent is shard-local by construction.
    h.mss[i]->on_msg = [&h, i](const Envelope& env) {
      const int v = *env.body.get<int>();
      if (v > 0) h.mss[i]->do_send_wired(mss_id((i + 1) % kMss), v - 1);
    };
  }
  net.start();
  for (std::uint32_t i = 0; i < kMss; ++i) {
    net.schedule_on_lane(i, 1 + i, [&h, i] {
      h.mss[i]->do_send_wired(mss_id((i + 1) % kMss), int{kHops});
    });
  }
  net.run();

  ChainTotals totals;
  const auto merged = net.merged_events();
  for (const auto& failure : obs::check_all(std::span<const obs::Event>(merged))) {
    ADD_FAILURE() << "checker failed (shards=" << shards
                  << "): " << obs::to_string(failure);
  }
  totals.jsonl = obs::to_jsonl(std::span<const obs::Event>(merged));
  totals.fixed_msgs = net.ledger().fixed_msgs();
  totals.wired_packets = net.ledger().wired_packets();
  totals.fired = net.total_fired();
  for (const auto* agent : h.mss) totals.received += agent->received.size();
  return totals;
}

}  // namespace sharded

// The headline guarantee at the unit level: the canonical merged stream,
// the folded cost ledger, and the fired-event total are identical no
// matter how the four lanes are grouped — and the single-shard sharded
// run differs from the legacy engine (per-lane RNG streams), which is
// why the sharded engine keeps its own goldens.
TEST(ShardedEngine, WiredChainIdenticalForEveryShardCount) {
  const auto s1 = sharded::run_wired_chain(1);
  ASSERT_GT(s1.received, 0u);
  ASSERT_NE(s1.jsonl.find("\"kind\":\"recv\""), std::string::npos);
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto sn = sharded::run_wired_chain(shards);
    EXPECT_EQ(sn.jsonl, s1.jsonl);
    EXPECT_EQ(sn.fixed_msgs, s1.fixed_msgs);
    EXPECT_EQ(sn.wired_packets, s1.wired_packets);
    EXPECT_EQ(sn.fired, s1.fired);
    EXPECT_EQ(sn.received, s1.received);
  }
  const auto legacy = sharded::run_wired_chain(0);
  EXPECT_EQ(legacy.received, s1.received);   // same messages delivered...
  EXPECT_NE(legacy.jsonl, s1.jsonl);         // ...on different sampled timings
}

// Same invariance with the formation (packet-batching) layer enabled:
// formation queues are per-slice but keyed per (src,dst) pair, so
// batching decisions are a pure function of each pair's traffic and
// must not depend on the grouping either.
TEST(ShardedEngine, FormationBatchingIdenticalForEveryShardCount) {
  FormationConfig formation;
  formation.max_packet_msgs = 3;
  formation.flush_deadline = 4;
  const auto s1 = sharded::run_wired_chain(1, formation);
  ASSERT_NE(s1.jsonl.find("\"kind\":\"packet_send\""), std::string::npos)
      << "formation layer never formed a packet";
  for (std::uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto sn = sharded::run_wired_chain(shards, formation);
    EXPECT_EQ(sn.jsonl, s1.jsonl);
    EXPECT_EQ(sn.wired_packets, s1.wired_packets);
  }
}

}  // namespace
}  // namespace mobidist::test
