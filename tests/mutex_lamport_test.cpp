// Integration tests for algorithms L1 and L2 on the simulated system
// model: exact cost agreement with the §3.1.1 formulas, safety and
// ordering under concurrency and mobility, and disconnect handling.

#include <gtest/gtest.h>

#include "mobility/mobility_model.hpp"
#include "mutex/l1.hpp"
#include "mutex/l2.hpp"
#include "mutex/monitor.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using mutex::CsMonitor;
using mutex::L1Mutex;
using mutex::L2Mutex;
using mutex::MutexOptions;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// L1
// --------------------------------------------------------------------------

TEST(L1, SingleRequestCompletesWithExactPaperCost) {
  constexpr std::uint32_t kN = 8;
  Network net(small_config(3, kN));
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l1.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);

  EXPECT_EQ(l1.completed(), 1u);
  EXPECT_EQ(monitor.grants(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
  // 3*(N-1) MH-to-MH messages, each 2 wireless hops + 1 search.
  EXPECT_EQ(net.ledger().wireless_msgs(), 6u * (kN - 1));
  EXPECT_EQ(net.ledger().searches(), 3u * (kN - 1));
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  // Initiator energy proportional to 3*(N-1); every other MH pays 3.
  const cost::CostParams unit;
  EXPECT_DOUBLE_EQ(net.ledger().energy_at(0, unit), 3.0 * (kN - 1));
  for (std::uint32_t i = 1; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(net.ledger().energy_at(i, unit), 3.0) << "mh " << i;
  }
}

TEST(L1, TotalCostMatchesClosedFormUnderParams) {
  constexpr std::uint32_t kN = 5;
  Network net(small_config(2, kN));
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l1.request(mh_id(2)); });
  net.run();
  ExpectCleanEventStream(net);
  const cost::CostParams p;  // c_w = 10, c_s = 4
  const double expected = 3.0 * (kN - 1) * (2 * p.c_wireless + p.c_search);
  EXPECT_DOUBLE_EQ(net.ledger().total(p), expected);
}

TEST(L1, ConcurrentRequestersAllCompleteSafely) {
  constexpr std::uint32_t kN = 6;
  Network net(small_config(3, kN));
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  net.start();
  for (std::uint32_t i = 0; i < kN; ++i) {
    net.sched().schedule(1 + i, [&, i] { l1.request(mh_id(i)); });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l1.completed(), kN);
  EXPECT_EQ(monitor.grants(), kN);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.order_inversions(), 0u);  // served in timestamp order
}

TEST(L1, SafeUnderMobility) {
  auto cfg = small_config(4, 8);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 15;
  Network net(cfg);
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 60;
  mob.mean_transit = 8;
  mob.max_moves_per_host = 4;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 8; ++i) {
    net.sched().schedule(5 + 11 * i, [&, i] { l1.request(mh_id(i)); });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l1.completed(), 8u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GT(driver.moves(), 0u);
}

TEST(L1, RequiresEveryHostEvenNonRequesters) {
  // The non-requesting MHs still pay energy (to reply) — the paper's
  // core complaint about L1.
  Network net(small_config(3, 6));
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l1.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  const cost::CostParams unit;
  for (std::uint32_t i = 1; i < 6; ++i) {
    EXPECT_GT(net.ledger().energy_at(i, unit), 0.0) << "mh " << i;
  }
}

TEST(L1, StallsWhileAnyParticipantIsDisconnected) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  L1Mutex l1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(5)).disconnect(); });
  net.sched().schedule(5, [&] { l1.request(mh_id(0)); });
  net.sched().run_until(5000);
  EXPECT_EQ(l1.completed(), 0u);  // mh5 cannot reply
  // Reconnection unblocks the algorithm.
  net.mh(mh_id(5)).reconnect_at(mss_id(1), 1);
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l1.completed(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

// --------------------------------------------------------------------------
// L2
// --------------------------------------------------------------------------

TEST(L2, StationaryRequestCostsThreeWirelessOneSearch) {
  constexpr std::uint32_t kM = 4;
  Network net(small_config(kM, 8));
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 1u);
  EXPECT_EQ(monitor.grants(), 1u);
  // init + grant + release-resource: 3 wireless hops total.
  EXPECT_EQ(net.ledger().wireless_msgs(), 3u);
  EXPECT_EQ(net.ledger().searches(), 1u);
  // Stationary MH: the release is local (free self-send), so only the
  // 3*(M-1) Lamport messages hit the wire.
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u * (kM - 1));
}

TEST(L2, MovedRequesterMatchesPaperFormulaExactly) {
  // The paper's cost expression assumes the MH may have moved: grant
  // needs a search, release-resource is relayed (one fixed message).
  constexpr std::uint32_t kM = 4;
  Network net(small_config(kM, 8));
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  // Move right after init lands (t=3), well before the grant (several
  // wired round-trips away).
  net.sched().schedule(4, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 2); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 3u);
  EXPECT_EQ(net.ledger().searches(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 3u * (kM - 1) + 1);  // + release relay
  const cost::CostParams p;
  const double expected = 3 * p.c_wireless + p.c_fixed + p.c_search +
                          3.0 * (kM - 1) * p.c_fixed;
  EXPECT_DOUBLE_EQ(net.ledger().total(p), expected);
}

TEST(L2, SearchCostIndependentOfN) {
  // Scale N with M fixed: searches per execution stay at 1 (the paper's
  // "constant search cost per execution").
  for (std::uint32_t n : {8u, 32u, 128u}) {
    Network net(small_config(4, n));
    CsMonitor monitor;
    L2Mutex l2(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l2.request(mh_id(n - 1)); });
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_EQ(net.ledger().searches(), 1u) << "N=" << n;
    EXPECT_EQ(net.ledger().wireless_msgs(), 3u) << "N=" << n;
  }
}

TEST(L2, ConcurrentRequestsGrantedInInitTimestampOrder) {
  Network net(small_config(4, 12));
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  net.start();
  for (std::uint32_t i = 0; i < 12; ++i) {
    net.sched().schedule(1 + 3 * i, [&, i] { l2.request(mh_id(i)); });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 12u);
  EXPECT_EQ(monitor.grants(), 12u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.order_inversions(), 0u);
}

TEST(L2, NonParticipantsExchangeNoWirelessTraffic) {
  // The contrast with L1: uninvolved MHs stay silent (doze-friendly).
  Network net(small_config(3, 10));
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  net.start();
  for (std::uint32_t i = 1; i < 10; ++i) net.mh(mh_id(i)).set_doze(true);
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 1u);
  EXPECT_EQ(net.stats().doze_interruptions, 0u);
  const cost::CostParams unit;
  for (std::uint32_t i = 1; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(net.ledger().energy_at(i, unit), 0.0) << "mh " << i;
  }
}

TEST(L2, DisconnectBeforeGrantAbortsAndReleases) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  net.start();
  // mh0 and mh1 both request; mh0 wins the timestamp race then
  // disconnects before its grant arrives. mh1 must still get the lock.
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  net.sched().schedule(2, [&] { l2.request(mh_id(1)); });
  net.sched().schedule(4, [&] { net.mh(mh_id(0)).disconnect(); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.aborted(), 1u);
  EXPECT_EQ(l2.completed(), 1u);
  EXPECT_EQ(monitor.grants(), 1u);  // only mh1 ever entered
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(L2, DisconnectWhileHoldingReleasesAfterReconnect) {
  auto cfg = small_config(3, 6);
  Network net(cfg);
  CsMonitor monitor;
  MutexOptions opts;
  opts.cs_hold = 50;
  L2Mutex l2(net, monitor, opts);
  net.start();
  net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
  net.sched().schedule(2, [&] { l2.request(mh_id(1)); });
  // Disconnect mid-hold (grant lands around t≈25 with these latencies;
  // hold runs 50 ticks).
  net.sched().schedule(40, [&] {
    if (net.mh(mh_id(0)).connected() && monitor.holder() == mh_id(0)) {
      net.mh(mh_id(0)).disconnect();
    }
  });
  net.sched().schedule(400, [&] {
    if (net.is_disconnected(mh_id(0))) net.mh(mh_id(0)).reconnect_at(mss_id(2), 5);
  });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 2u);
  EXPECT_EQ(monitor.violations(), 0u);
  // mh1's grant must come after mh0's reconnect-and-release.
  ASSERT_EQ(monitor.grants(), 2u);
  EXPECT_GE(monitor.history()[1].entered, 400u);
}

TEST(L2, SafeUnderHeavyMobility) {
  auto cfg = small_config(5, 20);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 12;
  Network net(cfg);
  CsMonitor monitor;
  L2Mutex l2(net, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 30;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 6;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 20; ++i) {
    net.sched().schedule(2 + 7 * i, [&, i] { l2.request(mh_id(i)); });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed() + l2.aborted(), 20u);
  EXPECT_EQ(l2.aborted(), 0u);  // no disconnects in this run
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GT(driver.moves(), 0u);
}

TEST(L2, CheaperThanL1ForEqualWork) {
  // The headline E1 comparison at one design point.
  constexpr std::uint32_t kM = 4, kN = 24;
  const cost::CostParams p;
  double l1_cost = 0, l2_cost = 0;
  {
    Network net(small_config(kM, kN));
    CsMonitor monitor;
    mutex::L1Mutex l1(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l1.request(mh_id(0)); });
    net.run();
    ExpectCleanEventStream(net);
    l1_cost = net.ledger().total(p);
  }
  {
    Network net(small_config(kM, kN));
    CsMonitor monitor;
    L2Mutex l2(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
    net.run();
    ExpectCleanEventStream(net);
    l2_cost = net.ledger().total(p);
  }
  EXPECT_LT(l2_cost, l1_cost);
  EXPECT_GT(l1_cost / l2_cost, 5.0);  // order-of-magnitude gap at N >> M
}

}  // namespace
}  // namespace mobidist::test
