// Parameterized delivery-guarantee sweep across all §4 strategies plus
// the [1] multicast, under shared churn with disconnect/reconnect
// cycles, and a large-scale smoke test.

#include <gtest/gtest.h>

#include <tuple>

#include "group/always_inform.hpp"
#include "group/location_view.hpp"
#include "group/pure_search.hpp"
#include "mobility/mobility_model.hpp"
#include "multicast/multicast.hpp"
#include "mutex/l2.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::Group;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

enum class Strategy { kPureSearch, kAlwaysInform, kLocationView, kMulticast };

std::string strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kPureSearch: return "PureSearch";
    case Strategy::kAlwaysInform: return "AlwaysInform";
    case Strategy::kLocationView: return "LocationView";
    case Strategy::kMulticast: return "Multicast";
  }
  return "?";
}

using Param = std::tuple<Strategy, std::uint64_t>;

class DeliveryProperty : public ::testing::TestWithParam<Param> {};

TEST_P(DeliveryProperty, EveryMessageReachesEveryMemberExactlyOnce) {
  const auto [strategy, seed] = GetParam();
  auto cfg = small_config(6, 12);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 9;
  cfg.seed = seed;
  Network net(cfg);
  const auto group =
      Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3), mh_id(4), mh_id(5)});

  std::unique_ptr<group::PureSearchGroup> pure;
  std::unique_ptr<group::AlwaysInformGroup> inform;
  std::unique_ptr<group::LocationViewGroup> view;
  std::unique_ptr<multicast::McastService> mcast;
  std::function<void(std::size_t)> send;
  std::function<const group::DeliveryMonitor&()> monitor;
  switch (strategy) {
    case Strategy::kPureSearch:
      pure = std::make_unique<group::PureSearchGroup>(net, group);
      send = [&](std::size_t i) {
        const auto sender = group.members[i % group.size()];
        if (net.mh(sender).connected()) pure->send_group_message(sender);
      };
      monitor = [&]() -> const group::DeliveryMonitor& { return pure->monitor(); };
      break;
    case Strategy::kAlwaysInform:
      inform = std::make_unique<group::AlwaysInformGroup>(net, group);
      send = [&](std::size_t i) {
        const auto sender = group.members[i % group.size()];
        if (net.mh(sender).connected()) inform->send_group_message(sender);
      };
      monitor = [&]() -> const group::DeliveryMonitor& { return inform->monitor(); };
      break;
    case Strategy::kLocationView:
      view = std::make_unique<group::LocationViewGroup>(net, group);
      send = [&](std::size_t i) {
        const auto sender = group.members[i % group.size()];
        if (net.mh(sender).connected()) view->send_group_message(sender);
      };
      monitor = [&]() -> const group::DeliveryMonitor& { return view->monitor(); };
      break;
    case Strategy::kMulticast:
      mcast = std::make_unique<multicast::McastService>(net, group);
      send = [&](std::size_t i) {
        mcast->publish(mss_id(static_cast<std::uint32_t>(i) % net.num_mss()));
      };
      monitor = [&]() -> const group::DeliveryMonitor& { return mcast->monitor(); };
      break;
  }

  mobility::MobilityConfig mob;
  mob.mean_pause = 60;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 4;
  // The membership-tracking strategies tolerate disconnection via
  // parking/chasing; exercise it for the two that guarantee it.
  if (strategy == Strategy::kMulticast || strategy == Strategy::kPureSearch) {
    mob.disconnect_prob = 0.2;
    mob.mean_disconnect = 60;
  }
  mobility::MobilityDriver driver(net, mob, group.members);
  net.start();
  driver.start();
  for (int i = 0; i < 10; ++i) {
    net.sched().schedule(20 + 40 * i, [&send, i] { send(static_cast<std::size_t>(i)); });
  }
  net.run();
  ExpectCleanEventStream(net);

  SCOPED_TRACE(strategy_name(strategy));
  EXPECT_EQ(monitor().missing(group), 0u);
  EXPECT_EQ(monitor().over_delivered(group), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeliveryProperty,
    ::testing::Combine(::testing::Values(Strategy::kPureSearch, Strategy::kAlwaysInform,
                                         Strategy::kLocationView, Strategy::kMulticast),
                       ::testing::Values(5, 15, 25, 35, 45, 55)),
    [](const auto& info) {
      return strategy_name(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Scale smoke test: a few hundred hosts, everything still exact.
// ---------------------------------------------------------------------------

TEST(Scale, L2AtThreeHundredHosts) {
  auto cfg = small_config(20, 300);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  cfg.seed = 777;
  Network net(cfg);
  mutex::CsMonitor monitor;
  mutex::L2Mutex l2(net, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 100;
  mob.max_moves_per_host = 2;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 100; ++i) {
    net.sched().schedule(2 + 4 * i, [&, i] { l2.request(mh_id(i * 3)); });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(l2.completed(), 100u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.order_inversions(), 0u);
  // Search cost stays constant-per-execution even at this scale.
  EXPECT_LE(net.ledger().searches(), 100u + net.stats().delivery_retries);
}

TEST(Scale, LocationViewWithFortyMembers) {
  auto cfg = small_config(12, 60);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 8;
  cfg.seed = 888;
  Network net(cfg);
  std::vector<MhId> members;
  for (std::uint32_t i = 0; i < 40; ++i) members.push_back(mh_id(i));
  const auto group = Group::of(members);
  group::LocationViewGroup lv(net, group);
  mobility::MobilityConfig mob;
  mob.mean_pause = 120;
  mob.max_moves_per_host = 2;
  mobility::MobilityDriver driver(net, mob, group.members);
  net.start();
  driver.start();
  for (int i = 0; i < 8; ++i) {
    const auto sender = group.members[static_cast<std::size_t>(i * 5) % group.size()];
    net.sched().schedule(30 + 50 * i, [&, sender] {
      if (net.mh(sender).connected()) lv.send_group_message(sender);
    });
  }
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(lv.monitor().missing(group), 0u);
  EXPECT_EQ(lv.monitor().over_delivered(group), 0u);
  EXPECT_LE(lv.max_view_size(), 12u);
}

}  // namespace
}  // namespace mobidist::test
