// Tests for the closed-form formulas (§3/§4) and the report helpers.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/formulas.hpp"
#include "core/report.hpp"

namespace mobidist {
namespace {

using cost::CostParams;

CostParams unit_params() {
  CostParams p;
  p.c_fixed = 1.0;
  p.c_wireless = 10.0;
  p.c_search = 4.0;
  return p;
}

TEST(Formulas, L1MatchesPaperExpression) {
  const auto p = unit_params();
  // 3*(N-1)*(2*cw + cs) with N=8: 21 * 24 = 504.
  EXPECT_DOUBLE_EQ(analysis::l1_execution_cost(8, p), 504.0);
  EXPECT_EQ(analysis::l1_wireless_hops(8), 42u);
  EXPECT_EQ(analysis::l1_initiator_energy(8), 21u);
}

TEST(Formulas, L2MatchesPaperExpression) {
  const auto p = unit_params();
  // (3*10 + 1 + 4) + 3*3*1 = 35 + 9 = 44 with M=4.
  EXPECT_DOUBLE_EQ(analysis::l2_execution_cost(4, p), 44.0);
  EXPECT_EQ(analysis::l2_wireless_msgs(), 3u);
}

TEST(Formulas, L2BeatsL1ForPaperRegime) {
  const auto p = unit_params();
  // N >> M: the restructured algorithm must win by a wide margin.
  EXPECT_LT(analysis::l2_execution_cost(8, p), analysis::l1_execution_cost(64, p) / 10);
}

TEST(Formulas, R1TraversalIndependentOfK) {
  const auto p = unit_params();
  EXPECT_DOUBLE_EQ(analysis::r1_traversal_cost(10, p), 10 * 24.0);
}

TEST(Formulas, R2ScalesWithK) {
  const auto p = unit_params();
  // K=0: just the ring. K=5: five request bundles on top.
  EXPECT_DOUBLE_EQ(analysis::r2_cost(0, 4, p), 4.0);
  EXPECT_DOUBLE_EQ(analysis::r2_cost(5, 4, p), 5 * (30 + 1 + 4) + 4.0);
}

TEST(Formulas, RingCrossover) {
  const auto p = unit_params();
  // Small K: R2 wins. Huge K in one traversal: R1's flat cost can win.
  EXPECT_LT(analysis::r2_cost(1, 4, p), analysis::r1_traversal_cost(32, p));
  EXPECT_GT(analysis::r2_cost(32, 4, p), analysis::r1_traversal_cost(32, p));
}

TEST(Formulas, GrantBounds) {
  EXPECT_EQ(analysis::r2_max_grants_per_traversal(10, 4), 40u);
  EXPECT_EQ(analysis::r2prime_max_grants_per_traversal(10), 10u);
}

TEST(Formulas, GroupStrategiesMatchPaperExpressions) {
  const auto p = unit_params();
  // |G| = 5.
  EXPECT_DOUBLE_EQ(analysis::pure_search_msg_cost(5, p), 4 * 24.0);
  EXPECT_DOUBLE_EQ(analysis::always_inform_unit_cost(5, p), 4 * 21.0);
  EXPECT_DOUBLE_EQ(analysis::always_inform_total(10, 5, 5, p), 15 * 84.0);
  EXPECT_DOUBLE_EQ(analysis::always_inform_effective(2.0, 5, p), 3 * 84.0);
  // |LV| = 3: 2*cf + 5*cw = 52.
  EXPECT_DOUBLE_EQ(analysis::location_view_msg_cost(3, 5, p), 52.0);
  EXPECT_DOUBLE_EQ(analysis::location_view_update_bound(3, p), 6.0);
}

TEST(Formulas, LocationViewEffectiveBoundExpandsCorrectly) {
  const auto p = unit_params();
  // ((fr+1)*lv + 3fr - 1)*cf + g*cw with fr=2, lv=3, g=5:
  // (3*3 + 6 - 1)*1 + 50 = 64.
  EXPECT_DOUBLE_EQ(analysis::location_view_effective_bound(2.0, 3, 5, p), 64.0);
}

TEST(Formulas, ZeroMobilityLocationViewReducesToMessageCost) {
  const auto p = unit_params();
  EXPECT_DOUBLE_EQ(analysis::location_view_effective_bound(0.0, 3, 5, p),
                   analysis::location_view_msg_cost(3, 5, p));
}

TEST(Formulas, EffectiveCostOrderingAtHighMobility) {
  const auto p = unit_params();
  // High MOB/MSG, clustered group: LV << always-inform; pure search flat.
  const double fr = 0.2 * 8.0;  // f=0.2, MOB/MSG=8
  const double lv = analysis::location_view_effective_bound(fr, 3, 12, p);
  const double ai = analysis::always_inform_effective(8.0, 12, p);
  const double ps = analysis::pure_search_msg_cost(12, p);
  EXPECT_LT(lv, ai);
  EXPECT_LT(lv, ps);
}

// --------------------------------------------------------------------------
// Report helpers
// --------------------------------------------------------------------------

TEST(Report, NumFormatsIntegersPlainly) {
  EXPECT_EQ(core::num(3.0), "3");
  EXPECT_EQ(core::num(-42.0), "-42");
}

TEST(Report, NumFormatsFractions) {
  EXPECT_EQ(core::num(0.5), "0.5");
  EXPECT_EQ(core::ratio(2.0), "x2");
}

TEST(Report, TablePrintsAlignedColumns) {
  core::Table table({"name", "value"});
  table.row({"alpha", "1"}).row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, SummarizeIncludesAllCategories) {
  cost::CostLedger ledger;
  ledger.charge_fixed();
  ledger.charge_wireless(0, true);
  ledger.charge_search();
  const auto text = core::summarize(ledger, unit_params());
  EXPECT_NE(text.find("fixed=1"), std::string::npos);
  EXPECT_NE(text.find("wireless=1"), std::string::npos);
  EXPECT_NE(text.find("searches=1"), std::string::npos);
  EXPECT_NE(text.find("total=15"), std::string::npos);
}

}  // namespace
}  // namespace mobidist
