#!/usr/bin/env bash
# Golden-trace gate, registered with ctest as `trace_golden`. Replays the
# small scale_smoke and mutex_smoke scenarios with tracing on and
# requires the same-seed event streams (and the deterministic sweep
# artifacts) to be byte-identical to the goldens committed under
# tests/goldens/ — the pinned contract that scheduler/network hot-path
# optimizations must not change simulated behavior by a single byte.
#
# Regenerating goldens (only after an intentional behavior change):
#   MOBIDIST_TRACE_DIR=out/ build/tools/mobidist_sweep \
#     --scenario scenarios/scale_smoke.json --deterministic --out ...
# then copy the files named below into tests/goldens/.
set -euo pipefail

build_dir=${1:?usage: run_trace_golden.sh <build-dir> <source-dir>}
source_dir=${2:?usage: run_trace_golden.sh <build-dir> <source-dir>}
cli="$build_dir/tools/mobidist_sweep"
goldens="$source_dir/tests/goldens"
if [ ! -x "$cli" ]; then
  echo "run_trace_golden: missing binary $cli (build first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

MOBIDIST_TRACE_DIR="$tmp/" "$cli" --scenario "$source_dir/scenarios/scale_smoke.json" \
  --jobs 2 --deterministic --out "$tmp/ARTIFACT_scale_smoke.json" > /dev/null
MOBIDIST_TRACE_DIR="$tmp/" "$cli" --scenario "$source_dir/scenarios/mutex_smoke.json" \
  --jobs 2 --deterministic --out "$tmp/ARTIFACT_mutex_smoke.json" > /dev/null

# Sharded-engine leg: the canonical merged stream at shards=1 has its
# own goldens under tests/goldens/shard1/ (per-lane RNG streams make it
# intentionally distinct from the legacy stream above). shard=1 pins
# the merge order; run_shard_independence.sh pins {1,2,4,8} equality.
mkdir -p "$tmp/shard1"
MOBIDIST_TRACE_DIR="$tmp/shard1/" "$cli" --scenario "$source_dir/scenarios/scale_smoke.json" \
  --jobs 2 --deterministic --shards 1 \
  --out "$tmp/shard1/ARTIFACT_scale_smoke.json" > /dev/null

status=0
for golden in "$goldens"/TRACE_*.jsonl "$goldens"/ARTIFACT_*.json \
              "$goldens"/shard1/TRACE_*.jsonl "$goldens"/shard1/ARTIFACT_*.json; do
  name=$(basename "$golden")
  case "$golden" in
    */shard1/*) candidate="$tmp/shard1/$name" ;;
    *) candidate="$tmp/$name" ;;
  esac
  if [ ! -f "$candidate" ]; then
    echo "run_trace_golden: run produced no $name" >&2
    status=1
    continue
  fi
  if ! cmp -s "$golden" "$candidate"; then
    echo "run_trace_golden: $name differs from committed golden:" >&2
    diff "$golden" "$candidate" | head -5 >&2 || true
    status=1
  fi
done
if [ "$status" -ne 0 ]; then
  echo "run_trace_golden: same-seed streams are no longer byte-identical" >&2
  exit "$status"
fi

echo "run_trace_golden: all same-seed streams byte-identical to committed goldens"
