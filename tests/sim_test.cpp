// Tests for the discrete-event kernel: scheduler ordering/cancellation,
// RNG determinism and distribution sanity, trace buffering.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plane.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"
#include "sim/trace.hpp"

namespace mobidist::sim {
namespace {

// --------------------------------------------------------------------------
// Scheduler
// --------------------------------------------------------------------------

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0u);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.fired(), 0u);
}

TEST(Scheduler, FiresEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(30, [&] { order.push_back(3); });
  sched.schedule(10, [&] { order.push_back(1); });
  sched.schedule(20, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, SameInstantEventsFireFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sched.schedule(5, [&order, i] { order.push_back(i); });
  }
  sched.run();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, AdvancesVirtualTimeToEventTimestamp) {
  Scheduler sched;
  SimTime seen = 0;
  sched.schedule(42, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Scheduler, NestedSchedulingFromCallback) {
  Scheduler sched;
  std::vector<SimTime> at;
  sched.schedule(10, [&] {
    at.push_back(sched.now());
    sched.schedule(5, [&] { at.push_back(sched.now()); });
  });
  sched.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 10u);
  EXPECT_EQ(at[1], 15u);
}

TEST(Scheduler, ZeroDelayFiresAtCurrentInstantAfterQueuedPeers) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(10, [&] {
    order.push_back(1);
    sched.schedule(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 10u);
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler sched;
  bool fired = false;
  auto handle = sched.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(sched.cancel(handle));
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.fired(), 0u);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler sched;
  auto handle = sched.schedule(10, [] {});
  EXPECT_TRUE(sched.cancel(handle));
  EXPECT_FALSE(sched.cancel(handle));
}

TEST(Scheduler, CancelAfterFireReturnsFalse) {
  Scheduler sched;
  auto handle = sched.schedule(10, [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(handle));
}

TEST(Scheduler, CancelInvalidHandleReturnsFalse) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventHandle{}));
  EXPECT_FALSE(sched.cancel(EventHandle{9999}));
}

TEST(Scheduler, PendingTracksLiveEvents) {
  Scheduler sched;
  auto a = sched.schedule(10, [] {});
  sched.schedule(20, [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  sched.run();
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler sched;
  std::vector<int> fired;
  sched.schedule(10, [&] { fired.push_back(1); });
  sched.schedule(20, [&] { fired.push_back(2); });
  sched.schedule(30, [&] { fired.push_back(3); });
  const auto n = sched.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.now(), 20u);
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWithoutEvents) {
  Scheduler sched;
  sched.run_until(100);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(Scheduler, RunUntilHonoursEventsScheduledMidFlight) {
  Scheduler sched;
  std::vector<SimTime> at;
  sched.schedule(10, [&] {
    at.push_back(sched.now());
    sched.schedule(5, [&] { at.push_back(sched.now()); });   // 15: inside horizon
    sched.schedule(50, [&] { at.push_back(sched.now()); });  // 60: outside
  });
  sched.run_until(20);
  EXPECT_EQ(at, (std::vector<SimTime>{10, 15}));
  EXPECT_EQ(sched.pending(), 1u);
}

TEST(Scheduler, SchedulingInPastThrows) {
  Scheduler sched;
  sched.schedule(10, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(Scheduler, NullCallbackThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule(1, Scheduler::Callback{}), std::invalid_argument);
}

TEST(Scheduler, EventLimitStopsRunawayRun) {
  Scheduler sched;
  std::function<void()> self_feeding = [&] { sched.schedule(1, self_feeding); };
  sched.schedule(1, self_feeding);
  sched.set_event_limit(1000);
  sched.run();
  EXPECT_TRUE(sched.hit_event_limit());
  EXPECT_EQ(sched.fired(), 1000u);
}

TEST(Scheduler, CancelledEventBetweenLiveOnesDoesNotDisturbOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(10, [&] { order.push_back(1); });
  auto mid = sched.schedule(20, [&] { order.push_back(99); });
  sched.schedule(30, [&] { order.push_back(3); });
  sched.cancel(mid);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) ++hist[rng.below(kBuckets)];
  for (int count : hist) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(5);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.02);
}

TEST(Rng, ZipfFavoursLowRanks) {
  Rng rng(17);
  std::array<int, 8> hist{};
  for (int i = 0; i < 40000; ++i) ++hist[rng.zipf(8, 1.0)];
  EXPECT_GT(hist[0], hist[3]);
  EXPECT_GT(hist[3], hist[7]);
}

TEST(Rng, ZipfSingletonIsZero) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.2), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  // Children of the same parent differ from each other and the parent.
  EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Rng, FaultPlaneDrawsNeverPerturbTheNetworkStream) {
  // Regression guard for the shared-stream bug class: the broadcast
  // retry jitter in net::Network draws from the network's rng_, so the
  // fault plane must source every probabilistic decision from its own
  // salted stream — note it is seeded directly, NOT via rng.split(),
  // which would advance the parent and shift every later network draw.
  Rng reference(777);
  std::vector<std::uint64_t> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(reference.next());

  fault::FaultProfile profile;
  profile.wireless_loss = 0.5;
  profile.wireless_dup = 0.25;
  profile.wireless_reorder = 0.5;
  profile.wired_spike = 0.5;
  fault::FaultPlane plane(fault::fault_stream_seed(777), profile);
  Rng observed(777);
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 16; ++i) {
    got.push_back(observed.next());
    (void)plane.draw_wireless_loss();
    (void)plane.draw_wireless_dup();
    (void)plane.draw_wireless_spike();
    (void)plane.draw_wired_spike();
    (void)plane.draw_latency(0, 100);
  }
  EXPECT_EQ(got, expect);
  // The salted fault seed also never collides with the raw network seed.
  EXPECT_NE(fault::fault_stream_seed(777), 777u);
}

// --------------------------------------------------------------------------
// Trace
// --------------------------------------------------------------------------

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.log(1, TraceLevel::kInfo, "net", "a");
  trace.log(2, TraceLevel::kInfo, "net", "b");
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].text, "a");
  EXPECT_EQ(trace.records()[1].text, "b");
}

TEST(Trace, DropsBelowMinLevel) {
  Trace trace;
  trace.set_min_level(TraceLevel::kWarn);
  trace.log(1, TraceLevel::kInfo, "x", "quiet");
  trace.log(2, TraceLevel::kError, "x", "loud");
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].text, "loud");
}

TEST(Trace, BoundedCapacityKeepsMostRecent) {
  Trace trace(3);
  for (int i = 0; i < 10; ++i) {
    trace.log(static_cast<SimTime>(i), TraceLevel::kInfo, "x", std::to_string(i));
  }
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.records()[0].text, "7");
  EXPECT_EQ(trace.records()[2].text, "9");
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(Trace, SinkReceivesAcceptedRecords) {
  Trace trace;
  int seen = 0;
  trace.set_sink([&](const TraceRecord&) { ++seen; });
  trace.set_min_level(TraceLevel::kWarn);
  trace.log(1, TraceLevel::kInfo, "x", "below");
  trace.log(2, TraceLevel::kWarn, "x", "at");
  EXPECT_EQ(seen, 1);
}

TEST(Trace, CountContaining) {
  Trace trace;
  trace.log(1, TraceLevel::kInfo, "x", "token sent");
  trace.log(2, TraceLevel::kInfo, "x", "token received");
  trace.log(3, TraceLevel::kInfo, "x", "request");
  EXPECT_EQ(trace.count_containing("token"), 2u);
}

TEST(Trace, FormatIncludesAllFields) {
  TraceRecord rec{12, TraceLevel::kWarn, "mutex", "hello"};
  const auto text = Trace::format(rec);
  EXPECT_NE(text.find("t=12"), std::string::npos);
  EXPECT_NE(text.find("WARN"), std::string::npos);
  EXPECT_NE(text.find("mutex"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
}

// --------------------------------------------------------------------------
// ShardGroup: the conservative-window protocol
// --------------------------------------------------------------------------

TEST(SchedulerNextTime, EmptyQueueHasNoNextTime) {
  Scheduler sched;
  EXPECT_FALSE(sched.next_time().has_value());
}

TEST(SchedulerNextTime, ReportsEarliestPendingTimestamp) {
  Scheduler sched;
  sched.schedule(30, [] {});
  sched.schedule(10, [] {});
  ASSERT_TRUE(sched.next_time().has_value());
  EXPECT_EQ(*sched.next_time(), 10u);
  sched.run();
  EXPECT_FALSE(sched.next_time().has_value());
}

TEST(ShardGroup, SingleShardRunsInlineAndInvokesOnWorker) {
  Scheduler sched;
  std::vector<SimTime> fired_at;
  sched.schedule(5, [&] { fired_at.push_back(sched.now()); });
  sched.schedule(9, [&] { fired_at.push_back(sched.now()); });
  std::vector<std::uint32_t> workers;
  ShardGroup group({&sched}, 2, [&](std::uint32_t shard) { workers.push_back(shard); });
  EXPECT_EQ(group.run(), 2u);
  EXPECT_EQ(fired_at, (std::vector<SimTime>{5, 9}));
  EXPECT_EQ(workers, (std::vector<std::uint32_t>{0}));
  EXPECT_GE(group.windows(), 1u);
}

TEST(ShardGroup, MailExecutesOnDestinationAtArrivalTime) {
  Scheduler a;
  Scheduler b;
  ShardGroup group({&a, &b}, 3);
  SimTime delivered_at = 0;
  a.schedule(4, [&] {
    group.post(0, ShardGroup::Mail{a.now() + 3, 1, 0, 1,
                                   SmallFn([&] { delivered_at = b.now(); })});
  });
  group.run();
  EXPECT_EQ(delivered_at, 7u);
}

TEST(ShardGroup, CrossShardChainAdvancesThroughManyWindows) {
  // A two-shard ping-pong: each hop is exactly one lookahead ahead, so
  // every hop needs its own conservative window.
  Scheduler a;
  Scheduler b;
  ShardGroup group({&a, &b}, 1);
  Scheduler* scheds[2] = {&a, &b};
  constexpr int kHops = 32;
  int hops = 0;
  std::function<void(int)> hop = [&](int i) {
    ++hops;
    if (i >= kHops) return;
    const std::uint32_t src = static_cast<std::uint32_t>(i % 2);
    const std::uint32_t dst = 1 - src;
    group.post(src, ShardGroup::Mail{scheds[src]->now() + 1, dst, src,
                                     static_cast<std::uint64_t>(i),
                                     SmallFn([&hop, i] { hop(i + 1); })});
  };
  a.schedule(1, [&] { hop(0); });
  group.run();
  EXPECT_EQ(hops, kHops + 1);
  EXPECT_GE(group.windows(), static_cast<std::uint64_t>(kHops));
  EXPECT_EQ(group.lookahead(), 1u);
}

TEST(ShardGroup, EventLimitStopsAtWindowGranularity) {
  Scheduler a;
  Scheduler b;
  for (SimTime t = 1; t <= 100; ++t) {
    a.schedule(t, [] {});
    b.schedule(t, [] {});
  }
  ShardGroup group({&a, &b}, 1);
  const auto fired = group.run(/*event_limit=*/10);
  EXPECT_TRUE(group.hit_event_limit());
  EXPECT_GE(fired, 10u);
  EXPECT_LT(fired, 200u);
}

// The protocol's two load-bearing properties, checked over randomized
// topologies x 32 seeds:
//
//   1. Conservative safety: a shard never executes an event while a
//      lower-timestamp cross-shard event for it is deliverable — every
//      mail fn runs on its destination exactly at its arrival time, and
//      each lane's observed execution times are nondecreasing.
//   2. Grouping invariance: the per-lane execution log (time, tag,
//      local rng draw) is identical whether the lanes are grouped onto
//      1, 2, or 4 shards.
//
// Each lane appends only to its own log (its shard's thread), so the
// logs need no locking and the comparison happens after run().
namespace shard_property {

struct LogEntry {
  SimTime at = 0;
  std::uint64_t tag = 0;
  std::uint64_t draw = 0;
  bool operator==(const LogEntry&) const = default;
};

struct Harness {
  static constexpr std::uint32_t kLanes = 8;
  static constexpr Duration kLookahead = 2;

  explicit Harness(std::uint64_t seed, std::uint32_t shard_count)
      : shard_count_(shard_count) {
    scheds_.resize(shard_count);
    for (auto& s : scheds_) s = std::make_unique<Scheduler>();
    std::vector<Scheduler*> raw;
    for (auto& s : scheds_) raw.push_back(s.get());
    group_ = std::make_unique<ShardGroup>(std::move(raw), kLookahead);
    for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
      rngs_.emplace_back(seed + 0x9e3779b97f4a7c15ULL * (lane + 1));
      logs_.emplace_back();
      mail_seq_.push_back(0);
    }
    // Seed each lane with one initial event; fuel bounds the run.
    for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
      sched_of(lane).schedule_at(1 + lane % 3,
                                 [this, lane] { step(lane, /*fuel=*/12); });
    }
  }

  Scheduler& sched_of(std::uint32_t lane) { return *scheds_[lane % shard_count_]; }

  /// One lane event: log (now, tag, rng draw), then either schedule a
  /// local follow-up or post cross-lane mail one lookahead (plus jitter)
  /// ahead — the same decision sequence for every shard count because
  /// it consumes only the lane's own rng.
  void step(std::uint32_t lane, int fuel) {
    auto& sched = sched_of(lane);
    const std::uint64_t draw = rngs_[lane].next();
    logs_[lane].push_back({sched.now(), static_cast<std::uint64_t>(fuel), draw});
    if (fuel <= 0) return;
    const auto jitter = static_cast<Duration>(draw % 4);
    if (draw % 3 == 0) {
      const auto target = static_cast<std::uint32_t>((draw >> 8) % kLanes);
      const SimTime at = sched.now() + kLookahead + jitter;
      group_->post(lane % shard_count_,
                   ShardGroup::Mail{at, target % shard_count_, lane, ++mail_seq_[lane],
                                    SmallFn([this, target, fuel, at] {
                                      EXPECT_EQ(sched_of(target).now(), at);
                                      step(target, fuel - 1);
                                    })});
    } else {
      sched.schedule(1 + jitter, [this, lane, fuel] { step(lane, fuel - 1); });
    }
  }

  std::vector<std::vector<LogEntry>> run() {
    group_->run();
    for (const auto& log : logs_) {
      for (std::size_t i = 1; i < log.size(); ++i) {
        EXPECT_LE(log[i - 1].at, log[i].at) << "lane execution went backwards";
      }
    }
    return logs_;
  }

  std::uint32_t shard_count_;
  std::vector<std::unique_ptr<Scheduler>> scheds_;
  std::unique_ptr<ShardGroup> group_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<LogEntry>> logs_;
  std::vector<std::uint64_t> mail_seq_;
};

}  // namespace shard_property

TEST(ShardGroupProperty, PerLaneExecutionIdenticalForEveryShardCount) {
  using shard_property::Harness;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto base = Harness(seed, 1).run();
    std::size_t events = 0;
    for (const auto& log : base) events += log.size();
    ASSERT_GT(events, Harness::kLanes);  // the workload actually ran
    EXPECT_EQ(Harness(seed, 2).run(), base);
    EXPECT_EQ(Harness(seed, 4).run(), base);
    if (::testing::Test::HasFailure()) return;  // one seed's diff is enough
  }
}

}  // namespace
}  // namespace mobidist::sim
