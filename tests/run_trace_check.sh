#!/usr/bin/env bash
# Trace-artifact integration check, registered with ctest as
# `trace_determinism`:
#   1. run the fastest tracing-enabled bench (bench_e4_ring_fairness)
#      twice with MOBIDIST_TRACE_DIR pointed at two fresh temp dirs,
#   2. validate every exported JSONL stream with the offline trace_check
#      tool (re-runs all obs checkers outside the producing process),
#   3. require the two same-seed runs to be byte-identical, artifact by
#      artifact (JSONL and Chrome trace alike).
set -euo pipefail

build_dir=${1:?usage: run_trace_check.sh <build-dir>}
bench="$build_dir/bench/bench_e4_ring_fairness"
checker="$build_dir/tools/trace_check"
for bin in "$bench" "$checker"; do
  if [ ! -x "$bin" ]; then
    echo "run_trace_check: missing binary $bin (build first)" >&2
    exit 1
  fi
done

dir_a=$(mktemp -d)
dir_b=$(mktemp -d)
trap 'rm -rf "$dir_a" "$dir_b"' EXIT

MOBIDIST_BENCH_DIR="$dir_a" MOBIDIST_TRACE_DIR="$dir_a" "$bench" > /dev/null
MOBIDIST_BENCH_DIR="$dir_b" MOBIDIST_TRACE_DIR="$dir_b" "$bench" > /dev/null

count=0
for trace in "$dir_a"/TRACE_*.jsonl; do
  "$checker" "$trace" > /dev/null
  count=$((count + 1))
done
if [ "$count" -eq 0 ]; then
  echo "run_trace_check: bench produced no JSONL traces" >&2
  exit 1
fi

for artifact in "$dir_a"/TRACE_*; do
  cmp "$artifact" "$dir_b/$(basename "$artifact")"
done

echo "run_trace_check: $count JSONL streams validated; same-seed artifacts byte-identical"
