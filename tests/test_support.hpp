#pragma once

// Shared fixtures for substrate-level tests: recording agents that
// expose the protected send helpers and log every callback.

#include <any>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/agent.hpp"
#include "net/envelope.hpp"
#include "net/ids.hpp"
#include "net/network.hpp"
#include "obs/checkers.hpp"

namespace mobidist::test {

using namespace mobidist::net;

inline constexpr ProtocolId kTestProto = protocol::kUserBase;

/// MSS-side agent that records everything and forwards sends.
class RecordingMssAgent : public MssAgent {
 public:
  struct Received {
    Envelope env;
    sim::SimTime at;
  };

  void on_message(const Envelope& env) override {
    received.push_back({env, net().sched().now()});
    if (on_msg) on_msg(env);
  }
  void on_mh_joined(MhId mh, MssId prev) override {
    events.push_back("joined:" + to_string(mh) + "<-" + to_string(prev));
    if (on_joined) on_joined(mh, prev);
  }
  void on_mh_left(MhId mh) override { events.push_back("left:" + to_string(mh)); }
  void on_mh_disconnected(MhId mh) override {
    events.push_back("disconnected:" + to_string(mh));
  }
  void on_mh_reconnected(MhId mh, MssId prev) override {
    events.push_back("reconnected:" + to_string(mh) + "<-" + to_string(prev));
  }
  std::any on_handoff_out(MhId mh) override {
    events.push_back("handoff_out:" + to_string(mh));
    return handoff_blob;
  }
  void on_handoff_in(MhId mh, MssId from, const std::any& state) override {
    events.push_back("handoff_in:" + to_string(mh) + "<-" + to_string(from));
    last_handoff_in = state;
    if (forward_handoff) handoff_blob = state;  // re-export on the next handoff_out
  }
  void on_mh_unreachable(MhId mh, const Body& body) override {
    events.push_back("unreachable:" + to_string(mh));
    unreachable.emplace_back(mh, body);
  }
  void on_local_send_failed(MhId mh, const Body& body) override {
    events.push_back("local_fail:" + to_string(mh));
    local_failures.emplace_back(mh, body);
  }

  // Public bridges to the protected send helpers.
  void do_send_wired(MssId to, Body body) { send_wired(to, std::move(body)); }
  void do_send_local(MhId mh, Body body) { send_local(mh, std::move(body)); }
  void do_send_to_mh(MhId mh, Body body,
                     SendPolicy policy = SendPolicy::kEventualDelivery) {
    send_to_mh(mh, std::move(body), policy);
  }

  std::vector<Received> received;
  std::vector<std::string> events;
  std::vector<std::pair<MhId, Body>> unreachable;
  std::vector<std::pair<MhId, Body>> local_failures;
  std::any handoff_blob;
  std::any last_handoff_in;
  bool forward_handoff = false;
  std::function<void(const Envelope&)> on_msg;
  std::function<void(MhId, MssId)> on_joined;
};

/// MH-side agent that records deliveries and forwards sends.
class RecordingMhAgent : public MhAgent {
 public:
  struct Received {
    Envelope env;
    sim::SimTime at;
  };

  void on_message(const Envelope& env) override {
    received.push_back({env, net().sched().now()});
    if (on_msg) on_msg(env);
  }
  void on_joined_cell(MssId mss) override { events.push_back("joined:" + to_string(mss)); }
  void on_left_cell() override { events.push_back("left"); }

  void do_send_uplink(Body body) { send_uplink(std::move(body)); }
  void do_send_to_mh(MhId dst, Body body, bool fifo = true) {
    send_to_mh(dst, std::move(body), fifo);
  }

  std::vector<Received> received;
  std::vector<std::string> events;
  std::function<void(const Envelope&)> on_msg;
};

/// Install one RecordingMssAgent per MSS and one RecordingMhAgent per MH
/// under kTestProto; returns raw observation pointers.
struct Harness {
  explicit Harness(Network& n) : net(n) {
    for (std::uint32_t i = 0; i < n.num_mss(); ++i) {
      auto agent = std::make_shared<RecordingMssAgent>();
      mss.push_back(agent.get());
      n.mss(static_cast<MssId>(i)).register_agent(kTestProto, agent);
    }
    for (std::uint32_t i = 0; i < n.num_mh(); ++i) {
      auto agent = std::make_shared<RecordingMhAgent>();
      mh.push_back(agent.get());
      n.mh(static_cast<MhId>(i)).register_agent(kTestProto, agent);
    }
  }

  Network& net;
  std::vector<RecordingMssAgent*> mss;
  std::vector<RecordingMhAgent*> mh;
};

/// Deterministic latency config (all constants) for exact-cost tests.
inline LatencyConfig fixed_latencies() {
  LatencyConfig l;
  l.wired_min = l.wired_max = 5;
  l.wireless_min = l.wireless_max = 2;
  l.search_min = l.search_max = 4;
  l.broadcast_retry = 50;
  return l;
}

inline NetConfig small_config(std::uint32_t m = 3, std::uint32_t n = 6) {
  NetConfig cfg;
  cfg.num_mss = m;
  cfg.num_mh = n;
  cfg.latency = fixed_latencies();
  cfg.seed = 12345;
  return cfg;
}

/// Run every obs checker over the network's event stream and report
/// each violation as a test failure. Call at the end of any scenario
/// that exercised real protocol traffic.
inline void ExpectCleanEventStream(const Network& net) {
  const auto failures = obs::check_all(net.events());
  for (const auto& failure : failures) {
    ADD_FAILURE() << "event-stream checker failed: " << obs::to_string(failure);
  }
}

}  // namespace mobidist::test
