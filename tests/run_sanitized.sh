#!/usr/bin/env bash
# Configure, build, and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer using the `asan` CMake preset. Run from
# anywhere; builds into <repo>/build-asan.
#
#   tests/run_sanitized.sh            # full suite
#   tests/run_sanitized.sh -R Fifo    # forward extra args to ctest
#   tests/run_sanitized.sh --chaos    # only the fault-injection chaos
#                                     # sweeps (ctest -L chaos)

set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

if [[ "${1:-}" == "--chaos" ]]; then
  shift
  set -- -L chaos "$@"
fi

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)" "$@"
