#!/usr/bin/env bash
# Configure, build, and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer using the `asan` CMake preset. Run from
# anywhere; builds into <repo>/build-asan.
#
#   tests/run_sanitized.sh            # full suite
#   tests/run_sanitized.sh -R Fifo    # forward extra args to ctest

set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)" "$@"
