#!/usr/bin/env bash
# Configure, build, and run the test suite under a sanitizer preset.
# Run from anywhere; builds into <repo>/build-asan or <repo>/build-tsan.
#
#   tests/run_sanitized.sh            # full suite under ASan+UBSan
#   tests/run_sanitized.sh -R Fifo    # forward extra args to ctest
#   tests/run_sanitized.sh --chaos    # only the chaos sweeps (ctest -L
#                                     # chaos): fault injection plus the
#                                     # 64-seed sharded-engine cell
#   tests/run_sanitized.sh --tsan     # full suite under ThreadSanitizer
#                                     # (the parallel-runner suites and
#                                     # the sharded engine's window
#                                     # barriers / cross-shard mailbox
#                                     # are the interesting targets)
#   tests/run_sanitized.sh --tsan -L sweep   # TSan on the exp suites only
#   tests/run_sanitized.sh --ubsan    # UBSan alone at RelWithDebInfo:
#                                     # catches optimizer-dependent UB
#                                     # (shift overflow, wrap) that the
#                                     # Debug asan preset can miss, and
#                                     # runs fast enough for the full
#                                     # suite on every change
#
# Every preset runs the full registered suite, which includes the
# binlog_roundtrip gate (binary telemetry serialize/decode under the
# sanitizer) alongside the unit/chaos/sweep tests.

set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

preset=asan
case "${1:-}" in
  --tsan) preset=tsan; shift ;;
  --ubsan) preset=ubsan; shift ;;
esac

if [[ "${1:-}" == "--chaos" ]]; then
  shift
  set -- -L chaos "$@"
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"
