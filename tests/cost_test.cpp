// Tests for the cost model: ledger arithmetic, per-MH energy accounting,
// snapshot deltas, and the worst-case search helper.

#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace mobidist::cost {
namespace {

TEST(CostParams, DefaultsRespectPaperOrdering) {
  const CostParams p;
  // §2: wireless bandwidth is an order of magnitude below wired, and
  // c_search >= c_fixed always.
  EXPECT_GT(p.c_wireless, p.c_fixed);
  EXPECT_GE(p.c_search, p.c_fixed);
}

TEST(CostParams, WorstCaseSearchIsMPlusOneFixedMessages) {
  const auto p = CostParams::with_worst_case_search(2.0, 20.0, 8);
  EXPECT_DOUBLE_EQ(p.c_search, 2.0 * 9);
  EXPECT_DOUBLE_EQ(p.c_fixed, 2.0);
  EXPECT_DOUBLE_EQ(p.c_wireless, 20.0);
}

TEST(CostLedger, StartsEmpty) {
  const CostLedger ledger;
  EXPECT_EQ(ledger.fixed_msgs(), 0u);
  EXPECT_EQ(ledger.wireless_msgs(), 0u);
  EXPECT_EQ(ledger.searches(), 0u);
  EXPECT_DOUBLE_EQ(ledger.total(CostParams{}), 0.0);
}

TEST(CostLedger, TotalWeightsEachCategory) {
  CostLedger ledger;
  ledger.charge_fixed();
  ledger.charge_fixed();
  ledger.charge_wireless(0, true);
  ledger.charge_search();
  CostParams p;
  p.c_fixed = 1.0;
  p.c_wireless = 10.0;
  p.c_search = 5.0;
  EXPECT_DOUBLE_EQ(ledger.total(p), 2 * 1.0 + 1 * 10.0 + 1 * 5.0);
}

TEST(CostLedger, EnergySeparatesTxAndRx) {
  CostLedger ledger;
  ledger.charge_wireless(7, /*mh_transmitted=*/true);
  ledger.charge_wireless(7, /*mh_transmitted=*/false);
  ledger.charge_wireless(7, /*mh_transmitted=*/false);
  CostParams p;
  p.energy_tx = 3.0;
  p.energy_rx = 1.0;
  EXPECT_DOUBLE_EQ(ledger.energy_at(7, p), 3.0 + 2 * 1.0);
  EXPECT_EQ(ledger.wireless_hops_at(7), 3u);
}

// Cost accounting is shard-local on the sharded engine and folded into
// slice 0 after the run; the fold must sum every category and combine
// the per-host energy maps.
TEST(CostLedger, MergeFromSumsCategoriesAndPerHostEnergy) {
  CostLedger a;
  CostLedger b;
  a.charge_fixed();
  b.charge_fixed();
  b.charge_fixed();
  a.charge_search();
  a.charge_wireless(1, /*mh_transmitted=*/true);
  b.charge_wireless(1, /*mh_transmitted=*/false);
  b.charge_wireless(2, /*mh_transmitted=*/true);

  a.merge_from(b);
  EXPECT_EQ(a.fixed_msgs(), 3u);
  EXPECT_EQ(a.searches(), 1u);
  EXPECT_EQ(a.wireless_msgs(), 3u);
  EXPECT_EQ(a.wireless_hops_at(1), 2u);
  EXPECT_EQ(a.wireless_hops_at(2), 1u);
  const CostParams p;  // unit energy
  EXPECT_DOUBLE_EQ(a.total_energy(p), 3.0);
}

TEST(CostLedger, EnergyIsPerHost) {
  CostLedger ledger;
  ledger.charge_wireless(1, true);
  ledger.charge_wireless(2, true);
  ledger.charge_wireless(2, false);
  const CostParams p;  // unit energy
  EXPECT_DOUBLE_EQ(ledger.energy_at(1, p), 1.0);
  EXPECT_DOUBLE_EQ(ledger.energy_at(2, p), 2.0);
  EXPECT_DOUBLE_EQ(ledger.energy_at(3, p), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_energy(p), 3.0);
}

TEST(CostLedger, UnknownHostHasZeroHops) {
  const CostLedger ledger;
  EXPECT_EQ(ledger.wireless_hops_at(42), 0u);
}

TEST(CostLedger, DeltaSinceSubtractsBaseline) {
  CostLedger ledger;
  ledger.charge_fixed();
  ledger.charge_wireless(1, true);
  const CostLedger snapshot = ledger;
  ledger.charge_fixed();
  ledger.charge_search();
  ledger.charge_wireless(1, false);
  ledger.charge_wireless(2, true);

  const CostLedger delta = ledger.delta_since(snapshot);
  EXPECT_EQ(delta.fixed_msgs(), 1u);
  EXPECT_EQ(delta.searches(), 1u);
  EXPECT_EQ(delta.wireless_msgs(), 2u);
  const CostParams p;
  EXPECT_DOUBLE_EQ(delta.energy_at(1, p), 1.0);  // one rx after the snapshot
  EXPECT_DOUBLE_EQ(delta.energy_at(2, p), 1.0);
}

TEST(CostLedger, DeltaOfSelfIsZero) {
  CostLedger ledger;
  ledger.charge_fixed();
  ledger.charge_wireless(0, true);
  ledger.charge_search();
  const CostLedger delta = ledger.delta_since(ledger);
  EXPECT_EQ(delta.fixed_msgs(), 0u);
  EXPECT_EQ(delta.wireless_msgs(), 0u);
  EXPECT_EQ(delta.searches(), 0u);
  EXPECT_DOUBLE_EQ(delta.total(CostParams{}), 0.0);
}

TEST(CostLedger, ResetClearsEverything) {
  CostLedger ledger;
  ledger.charge_fixed();
  ledger.charge_wireless(1, true);
  ledger.charge_search();
  ledger.reset();
  EXPECT_EQ(ledger.fixed_msgs(), 0u);
  EXPECT_EQ(ledger.wireless_msgs(), 0u);
  EXPECT_EQ(ledger.searches(), 0u);
  EXPECT_EQ(ledger.wireless_hops_at(1), 0u);
}

TEST(CostLedger, WirelessTxRxCountsSplit) {
  CostLedger ledger;
  ledger.charge_wireless(1, true);
  ledger.charge_wireless(2, true);
  ledger.charge_wireless(3, false);
  EXPECT_EQ(ledger.wireless_tx(), 2u);
  EXPECT_EQ(ledger.wireless_rx(), 1u);
  EXPECT_EQ(ledger.wireless_msgs(), 3u);
}

}  // namespace
}  // namespace mobidist::cost
