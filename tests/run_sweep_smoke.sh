#!/usr/bin/env bash
# Sweep-runner smoke test, registered with ctest as `sweep_smoke`
# (label: sweep-smoke). Exercises the full CLI path on a tiny grid:
#   1. run scenarios/mutex_smoke.json with --jobs 1 and --jobs 4 in
#      --deterministic mode and require byte-identical artifacts — the
#      pinned thread-count-independence guarantee;
#   2. gate a fresh run against the jobs=1 artifact as baseline (must
#      pass: exit 0);
#   3. tamper one metric mean in the baseline and require the gate to
#      fail with the regression exit code (3) — the deliberate-fail leg.
set -euo pipefail

build_dir=${1:?usage: run_sweep_smoke.sh <build-dir> <scenario.json>}
scenario=${2:?usage: run_sweep_smoke.sh <build-dir> <scenario.json>}
cli="$build_dir/tools/mobidist_sweep"
if [ ! -x "$cli" ]; then
  echo "run_sweep_smoke: missing binary $cli (build first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$cli" --scenario "$scenario" --jobs 1 --deterministic --out "$tmp/jobs1.json" > /dev/null
"$cli" --scenario "$scenario" --jobs 4 --deterministic --out "$tmp/jobs4.json" > /dev/null
cmp "$tmp/jobs1.json" "$tmp/jobs4.json"

# Shard-count independence on the same artifact: the --shards axis must
# never change the deterministic body (the full trace-level sweep over
# every scenario lives in run_shard_independence.sh).
for shards in 1 2 4 8; do
  "$cli" --scenario "$scenario" --jobs 2 --deterministic --shards "$shards" \
    --out "$tmp/shards$shards.json" > /dev/null
  cmp "$tmp/jobs1.json" "$tmp/shards$shards.json"
done

"$cli" --scenario "$scenario" --jobs 2 --deterministic --out "$tmp/gated.json" \
  --baseline "$tmp/jobs1.json" > /dev/null

sed -E '0,/"mean":[-0-9.]+/s//"mean":999999.000000/' "$tmp/jobs1.json" > "$tmp/tampered.json"
set +e
"$cli" --scenario "$scenario" --jobs 2 --deterministic --out "$tmp/refuted.json" \
  --baseline "$tmp/tampered.json" > "$tmp/gate.log" 2>&1
status=$?
set -e
if [ "$status" -ne 3 ]; then
  echo "run_sweep_smoke: expected regression exit code 3, got $status:" >&2
  cat "$tmp/gate.log" >&2
  exit 1
fi
if ! grep -qi "regression" "$tmp/gate.log"; then
  echo "run_sweep_smoke: gate failed without reporting a regression:" >&2
  cat "$tmp/gate.log" >&2
  exit 1
fi

echo "run_sweep_smoke: jobs- and shard-independent artifacts byte-identical; gate passes clean baseline and rejects tampered one"
