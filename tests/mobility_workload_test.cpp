// Tests for the mobility driver and workload generators.

#include <gtest/gtest.h>

#include <set>

#include "mobility/mobility_model.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mobidist::test {
namespace {

using mobility::MobilityConfig;
using mobility::MobilityDriver;
using mobility::MovePattern;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

TEST(MobilityDriver, MovesHostsAndRespectsBudget) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 3;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(driver.moves(), 8u * 3u);
  EXPECT_EQ(net.stats().joins, 8u * 3u);
}

TEST(MobilityDriver, StopAtHaltsDepartures) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.stop_at = 100;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_LT(net.sched().now(), 400u);  // quiesced soon after the horizon
}

TEST(MobilityDriver, SubsetOnlyMovesThoseHosts) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.max_moves_per_host = 2;
  MobilityDriver driver(net, cfg, {mh_id(0), mh_id(1)});
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(driver.moves(), 4u);
  for (std::uint32_t i = 2; i < 8; ++i) {
    EXPECT_EQ(net.current_mss_of(mh_id(i)), mss_id(i % 4)) << "mh " << i;
  }
}

TEST(MobilityDriver, NeighborPatternMovesToAdjacentCells) {
  Network net(small_config(8, 4));
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kNeighbor;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 1;
  MobilityDriver driver(net, cfg, {mh_id(0)});  // starts in cell 0
  net.start();
  driver.start();
  net.run();
  const auto cell = index(net.current_mss_of(mh_id(0)));
  EXPECT_TRUE(cell == 1 || cell == 7) << "cell " << cell;
}

TEST(MobilityDriver, HotspotPatternFavoursCellZero) {
  Network net(small_config(8, 64));
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kHotspot;
  cfg.zipf_s = 1.2;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 2;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  // Cell 0 ends up far more loaded than the tail cell.
  EXPECT_GT(net.mss(mss_id(0)).local_mhs().size(),
            net.mss(mss_id(7)).local_mhs().size());
}

TEST(MobilityDriver, DisconnectProbabilityProducesDisconnectCycles) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 15;
  cfg.max_moves_per_host = 4;
  cfg.disconnect_prob = 0.5;
  cfg.mean_disconnect = 30;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_GT(driver.disconnects(), 0u);
  EXPECT_EQ(net.stats().disconnects, driver.disconnects());
  EXPECT_EQ(net.stats().reconnects, driver.disconnects());  // all came back
}

TEST(MobilityDriver, CustomTargetPickerWins) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 1;
  MobilityDriver driver(net, cfg, {mh_id(0)});
  driver.set_target_picker([](MhId, MssId) { return mss_id(3); });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(3));
}

TEST(MobilityDriver, DeterministicForFixedSeed) {
  auto run_once = [] {
    auto cfg_net = small_config(4, 16);
    cfg_net.seed = 999;
    Network net(cfg_net);
    MobilityConfig cfg;
    cfg.mean_pause = 25;
    cfg.max_moves_per_host = 4;
    MobilityDriver driver(net, cfg);
    net.start();
    driver.start();
    net.run();
    std::vector<std::uint32_t> cells;
    for (std::uint32_t i = 0; i < 16; ++i) cells.push_back(index(net.current_mss_of(mh_id(i))));
    return cells;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------------------------------
// Workload generators
// --------------------------------------------------------------------------

TEST(Workload, PoissonCallsFireRequestedCount) {
  Network net(small_config());
  std::uint64_t fired = 0;
  workload::poisson_calls(net, 50, 10.0, 5, [&](std::uint64_t) { ++fired; });
  net.start();
  net.run();
  EXPECT_EQ(fired, 50u);
}

TEST(Workload, PoissonSequenceNumbersAreOrdered) {
  Network net(small_config());
  std::vector<std::uint64_t> seqs;
  workload::poisson_calls(net, 20, 5.0, 0, [&](std::uint64_t seq) { seqs.push_back(seq); });
  net.start();
  net.run();
  ASSERT_EQ(seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Workload, PacedCallsAreEvenlySpaced) {
  Network net(small_config());
  std::vector<sim::SimTime> times;
  workload::paced_calls(net, 5, 10, 100, [&](std::uint64_t) {
    times.push_back(net.sched().now());
  });
  net.start();
  net.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(times[i], 100 + 10 * i);
}

TEST(Workload, MobMsgDriverHitsRequestedCounts) {
  Network net(small_config(8, 8));
  std::uint64_t sends = 0;
  workload::MobMsgDriver::Config cfg;
  cfg.messages = 20;
  cfg.mob_per_msg = 2.0;
  cfg.significant_fraction = 0.5;
  workload::MobMsgDriver driver(
      net, cfg, {mss_id(0), mss_id(1)}, {mss_id(5), mss_id(6), mss_id(7)}, mh_id(0),
      [&](std::uint64_t) { ++sends; });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(sends, 20u);
  EXPECT_EQ(driver.messages_scheduled(), 20u);
  EXPECT_EQ(driver.moves_scheduled(), 40u);
  // Significant fraction lands near the request (forced return legs can
  // push it up slightly).
  const double f = static_cast<double>(driver.significant_scheduled()) /
                   static_cast<double>(driver.moves_scheduled());
  EXPECT_NEAR(f, 0.5, 0.15);
}

TEST(Workload, MobMsgDriverZeroMobilityIsPureMessages) {
  Network net(small_config(8, 8));
  std::uint64_t sends = 0;
  workload::MobMsgDriver::Config cfg;
  cfg.messages = 10;
  cfg.mob_per_msg = 0.0;
  workload::MobMsgDriver driver(net, cfg, {mss_id(0), mss_id(1)}, {mss_id(7)}, mh_id(0),
                                [&](std::uint64_t) { ++sends; });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(sends, 10u);
  EXPECT_EQ(driver.moves_scheduled(), 0u);
  EXPECT_EQ(net.stats().joins, 0u);
}

TEST(Workload, MobMsgDriverValidatesConfig) {
  Network net(small_config(8, 8));
  workload::MobMsgDriver::Config cfg;
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0)}, {mss_id(7)}, mh_id(0),
                                      [](std::uint64_t) {}),
               std::invalid_argument);
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0), mss_id(1)}, {}, mh_id(0),
                                      [](std::uint64_t) {}),
               std::invalid_argument);
  cfg.step = 2;
  cfg.transit = 5;
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0), mss_id(1)}, {mss_id(7)},
                                      mh_id(0), [](std::uint64_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mobidist::test
