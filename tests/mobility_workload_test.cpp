// Tests for the mobility model library, the driver, and the workload
// generators.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "analysis/formulas.hpp"
#include "mobility/mobility_model.hpp"
#include "test_support.hpp"
#include "workload/workload.hpp"

namespace mobidist::test {
namespace {

using mobility::MobilityConfig;
using mobility::MobilityDriver;
using mobility::MovePattern;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

TEST(MobilityDriver, MovesHostsAndRespectsBudget) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 3;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(driver.moves(), 8u * 3u);
  EXPECT_EQ(net.stats().joins, 8u * 3u);
}

TEST(MobilityDriver, StopAtHaltsDepartures) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.stop_at = 100;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_LT(net.sched().now(), 400u);  // quiesced soon after the horizon
}

TEST(MobilityDriver, SubsetOnlyMovesThoseHosts) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.max_moves_per_host = 2;
  MobilityDriver driver(net, cfg, {mh_id(0), mh_id(1)});
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(driver.moves(), 4u);
  for (std::uint32_t i = 2; i < 8; ++i) {
    EXPECT_EQ(net.current_mss_of(mh_id(i)), mss_id(i % 4)) << "mh " << i;
  }
}

TEST(MobilityDriver, NeighborPatternMovesToAdjacentCells) {
  Network net(small_config(8, 4));
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kNeighbor;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 1;
  MobilityDriver driver(net, cfg, {mh_id(0)});  // starts in cell 0
  net.start();
  driver.start();
  net.run();
  const auto cell = index(net.current_mss_of(mh_id(0)));
  EXPECT_TRUE(cell == 1 || cell == 7) << "cell " << cell;
}

TEST(MobilityDriver, HotspotPatternFavoursCellZero) {
  Network net(small_config(8, 64));
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kHotspot;
  cfg.zipf_s = 1.2;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 2;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  // Cell 0 ends up far more loaded than the tail cell.
  EXPECT_GT(net.mss(mss_id(0)).local_mhs().size(),
            net.mss(mss_id(7)).local_mhs().size());
}

TEST(MobilityDriver, DisconnectProbabilityProducesDisconnectCycles) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 15;
  cfg.max_moves_per_host = 4;
  cfg.disconnect_prob = 0.5;
  cfg.mean_disconnect = 30;
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  EXPECT_GT(driver.disconnects(), 0u);
  EXPECT_EQ(net.stats().disconnects, driver.disconnects());
  EXPECT_EQ(net.stats().reconnects, driver.disconnects());  // all came back
}

TEST(MobilityDriver, CustomTargetPickerWins) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 10;
  cfg.max_moves_per_host = 1;
  MobilityDriver driver(net, cfg, {mh_id(0)});
  driver.set_target_picker([](MhId, MssId) { return mss_id(3); });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(net.current_mss_of(mh_id(0)), mss_id(3));
}

TEST(MobilityDriver, DeterministicForFixedSeed) {
  auto run_once = [] {
    auto cfg_net = small_config(4, 16);
    cfg_net.seed = 999;
    Network net(cfg_net);
    MobilityConfig cfg;
    cfg.mean_pause = 25;
    cfg.max_moves_per_host = 4;
    MobilityDriver driver(net, cfg);
    net.start();
    driver.start();
    net.run();
    std::vector<std::uint32_t> cells;
    for (std::uint32_t i = 0; i < 16; ++i) cells.push_back(index(net.current_mss_of(mh_id(i))));
    return cells;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------------------------------
// Mobility model library (models.hpp): direct unit tests
// --------------------------------------------------------------------------

/// A stateful model's fixed target for (now, host): query from three
/// distinct cells — at most one query sits on the target (ring-step
/// noise), so the majority answer is the target itself.
std::uint32_t stable_target(mobility::MobilityModel& model, sim::Rng& rng,
                            sim::SimTime now, std::uint32_t host, std::uint32_t m) {
  std::map<std::uint32_t, int> votes;
  for (std::uint32_t cur = 0; cur < 3 && cur < m; ++cur) {
    const mobility::MoveContext ctx{rng, now, mh_id(host), mss_id(cur)};
    ++votes[index(model.pick_target(ctx))];
  }
  std::uint32_t best = 0;
  int best_votes = 0;
  for (const auto& [cell, count] : votes) {
    if (count > best_votes) {
      best = cell;
      best_votes = count;
    }
  }
  return best;
}

TEST(MobilityModels, PatternNamesRoundTrip) {
  for (std::size_t i = 0; i < std::size(mobility::kMovePatternNames); ++i) {
    const auto pattern = static_cast<MovePattern>(i);
    const auto name = mobility::pattern_name(pattern);
    const auto parsed = mobility::pattern_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, pattern) << name;
  }
  EXPECT_FALSE(mobility::pattern_from_name("teleport").has_value());
  EXPECT_FALSE(mobility::pattern_from_name("").has_value());
}

TEST(MobilityModels, RegionOfSplitsCellsContiguously) {
  EXPECT_EQ(mobility::region_of(0, 16, 4), 0u);
  EXPECT_EQ(mobility::region_of(3, 16, 4), 0u);
  EXPECT_EQ(mobility::region_of(4, 16, 4), 1u);
  EXPECT_EQ(mobility::region_of(15, 16, 4), 3u);
  EXPECT_EQ(mobility::region_of(15, 16, 1), 0u);
  EXPECT_EQ(mobility::region_of(7, 8, 8), 7u);
}

TEST(MobilityModels, MakeModelValidatesParameters) {
  MobilityConfig cfg;
  EXPECT_THROW(mobility::make_model(cfg, 1, 4, 1), std::invalid_argument);

  cfg.pattern = MovePattern::kWaypoint;
  cfg.grid_width = 5;  // does not divide 16
  EXPECT_THROW(mobility::make_model(cfg, 16, 4, 1), std::invalid_argument);
  cfg.grid_width = 4;
  EXPECT_NE(mobility::make_model(cfg, 16, 4, 1), nullptr);

  cfg = MobilityConfig{};
  cfg.pattern = MovePattern::kCommuter;
  cfg.phase_period = 0;
  EXPECT_THROW(mobility::make_model(cfg, 8, 4, 1), std::invalid_argument);
  cfg.phase_period = 100;
  cfg.day_fraction = 1.5;
  EXPECT_THROW(mobility::make_model(cfg, 8, 4, 1), std::invalid_argument);

  cfg = MobilityConfig{};
  cfg.pattern = MovePattern::kFlashCrowd;
  cfg.crowd_period = 0;
  EXPECT_THROW(mobility::make_model(cfg, 8, 4, 1), std::invalid_argument);
  cfg.crowd_period = 100;
  cfg.crowd_dwell = 200;
  EXPECT_THROW(mobility::make_model(cfg, 8, 4, 1), std::invalid_argument);
}

TEST(MobilityModels, WaypointMovesAreLatticeAdjacent) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kWaypoint;
  cfg.grid_width = 4;
  const std::uint32_t m = 16;
  const auto model = mobility::make_model(cfg, m, 2, 77);
  sim::Rng rng(123);
  std::uint32_t cur = 5;
  for (int step = 0; step < 200; ++step) {
    const mobility::MoveContext ctx{rng, static_cast<sim::SimTime>(step), mh_id(0),
                                    mss_id(cur)};
    const auto target = index(model->pick_target(ctx));
    ASSERT_LT(target, m);
    ASSERT_NE(target, cur);
    const auto diff = static_cast<std::uint32_t>(
        std::abs(static_cast<int>(target) - static_cast<int>(cur)));
    EXPECT_TRUE(diff == 1 || diff == cfg.grid_width)
        << "non-adjacent hop " << cur << " -> " << target;
    cur = target;
  }
}

TEST(MobilityModels, CommuterAlternatesWorkAndHomeWithThePhase) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kCommuter;
  cfg.phase_period = 100;
  cfg.day_fraction = 0.5;
  const std::uint32_t m = 8;
  const auto model = mobility::make_model(cfg, m, 4, 2024);
  sim::Rng rng(9);
  for (std::uint32_t host = 0; host < 4; ++host) {
    const auto work = stable_target(*model, rng, 10, host, m);    // day phase
    const auto night = stable_target(*model, rng, 60, host, m);   // night phase
    EXPECT_NE(work, night) << "host " << host;
    // The phase targets are stable across cycles.
    EXPECT_EQ(stable_target(*model, rng, 110, host, m), work);
    EXPECT_EQ(stable_target(*model, rng, 160, host, m), night);
  }
}

TEST(MobilityModels, FlashCrowdCohortConvergesOnOneEventCell) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kFlashCrowd;
  cfg.crowd_period = 100;
  cfg.crowd_dwell = 100;     // window always open
  cfg.crowd_fraction = 1.0;  // everyone is in every cohort
  const std::uint32_t m = 8;
  const std::uint32_t hosts = 6;
  const auto model = mobility::make_model(cfg, m, hosts, 5150);
  sim::Rng rng(3);
  // Inside a window, every host heads to the same event cell.
  const auto event0 = stable_target(*model, rng, 10, 0, m);
  for (std::uint32_t host = 1; host < hosts; ++host) {
    EXPECT_EQ(stable_target(*model, rng, 10, host, m), event0) << "host " << host;
  }
  // Consecutive windows pick fresh event cells (not all identical).
  std::set<std::uint32_t> event_cells;
  for (std::uint64_t window = 0; window < 6; ++window) {
    event_cells.insert(stable_target(*model, rng, 10 + 100 * window, 0, m));
  }
  EXPECT_GT(event_cells.size(), 1u);
}

TEST(MobilityModels, FlashCrowdOutsideCohortHeadsHome) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kFlashCrowd;
  cfg.crowd_period = 100;
  cfg.crowd_dwell = 100;
  cfg.crowd_fraction = 0.0;  // nobody joins any cohort
  const std::uint32_t m = 8;
  const std::uint32_t hosts = 8;
  const auto model = mobility::make_model(cfg, m, hosts, 5150);
  sim::Rng rng(3);
  // With no cohort the targets are the per-host homes: stable over time
  // and not all the same cell.
  std::set<std::uint32_t> homes;
  for (std::uint32_t host = 0; host < hosts; ++host) {
    const auto home = stable_target(*model, rng, 10, host, m);
    EXPECT_EQ(stable_target(*model, rng, 310, host, m), home) << "host " << host;
    homes.insert(home);
  }
  EXPECT_GT(homes.size(), 1u);
}

TEST(MobilityModels, SeedDerivedStateIsDeterministic) {
  for (const auto pattern :
       {MovePattern::kWaypoint, MovePattern::kCommuter, MovePattern::kFlashCrowd}) {
    MobilityConfig cfg;
    cfg.pattern = pattern;
    cfg.phase_period = 100;
    cfg.crowd_period = 100;
    cfg.crowd_dwell = 50;
    auto a = mobility::make_model(cfg, 8, 8, 42);
    auto b = mobility::make_model(cfg, 8, 8, 42);
    sim::Rng rng_a(1);
    sim::Rng rng_b(1);
    for (int step = 0; step < 50; ++step) {
      const auto host = static_cast<std::uint32_t>(step % 8);
      const mobility::MoveContext ctx_a{rng_a, static_cast<sim::SimTime>(step * 7),
                                        mh_id(host), mss_id(host % 8)};
      const mobility::MoveContext ctx_b{rng_b, static_cast<sim::SimTime>(step * 7),
                                        mh_id(host), mss_id(host % 8)};
      ASSERT_EQ(a->pick_target(ctx_a), b->pick_target(ctx_b))
          << "pattern " << mobility::pattern_name(pattern) << " step " << step;
    }
  }
}

// --------------------------------------------------------------------------
// Empirical f and move-rate properties (>= 16 seeds each)
// --------------------------------------------------------------------------

/// Run the driver over `seeds` seeds and accumulate (moves, significant)
/// per region plus the overall totals.
struct FProfile {
  std::vector<std::uint64_t> moves;
  std::vector<std::uint64_t> significant;

  [[nodiscard]] double f_overall() const {
    std::uint64_t m = 0;
    std::uint64_t s = 0;
    for (std::size_t r = 0; r < moves.size(); ++r) {
      m += moves[r];
      s += significant[r];
    }
    return m == 0 ? 0.0 : static_cast<double>(s) / static_cast<double>(m);
  }
  [[nodiscard]] double f_region(std::uint32_t r) const {
    return moves[r] == 0 ? 0.0
                         : static_cast<double>(significant[r]) /
                               static_cast<double>(moves[r]);
  }
};

FProfile accumulate_f(const MobilityConfig& cfg, std::uint32_t num_mss,
                      std::uint32_t num_mh, std::uint32_t num_seeds) {
  FProfile acc;
  acc.moves.assign(cfg.regions, 0);
  acc.significant.assign(cfg.regions, 0);
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    auto net_cfg = small_config(num_mss, num_mh);
    net_cfg.seed = 1000 + s;
    Network net(net_cfg);
    MobilityDriver driver(net, cfg);
    net.start();
    driver.start();
    net.run();
    for (std::uint32_t r = 0; r < cfg.regions; ++r) {
      acc.moves[r] += driver.moves_in_region(r);
      acc.significant[r] += driver.significant_in_region(r);
    }
  }
  return acc;
}

TEST(MobilityModels, UniformEmpiricalFMatchesClosedForm) {
  MobilityConfig cfg;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 4;
  cfg.regions = 4;
  const auto acc = accumulate_f(cfg, 16, 32, 16);  // 2048 moves
  EXPECT_NEAR(acc.f_overall(), analysis::uniform_region_f(16, 4), 0.05);
}

TEST(MobilityModels, NeighborEmpiricalFMatchesClosedForm) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kNeighbor;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 4;
  cfg.regions = 4;
  const auto acc = accumulate_f(cfg, 16, 32, 16);
  EXPECT_NEAR(acc.f_overall(), analysis::neighbor_region_f(16, 4), 0.06);
}

TEST(MobilityModels, HotspotFIsLowestInTheHotRegion) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kHotspot;
  cfg.zipf_s = 1.2;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 4;
  cfg.regions = 4;
  const auto acc = accumulate_f(cfg, 16, 32, 16);
  // Region 0 holds the Zipf head: departures there mostly land back in
  // the hot cells, so it crosses least; the tail region crosses most.
  EXPECT_LT(acc.f_region(0), acc.f_region(3));
}

TEST(MobilityModels, CommuterFIsSkewedAcrossRegions) {
  MobilityConfig cfg;
  cfg.pattern = MovePattern::kCommuter;
  cfg.mean_pause = 20;
  cfg.mean_transit = 3;
  cfg.max_moves_per_host = 6;
  cfg.regions = 4;
  cfg.phase_period = 200;
  const auto acc = accumulate_f(cfg, 16, 32, 16);
  double fmin = 2.0;
  double fmax = 0.0;
  for (std::uint32_t r = 0; r < 4; ++r) {
    fmin = std::min(fmin, acc.f_region(r));
    fmax = std::max(fmax, acc.f_region(r));
  }
  ASSERT_GT(fmin, 0.0);
  EXPECT_GE(fmax / fmin, 1.3) << "fmax=" << fmax << " fmin=" << fmin;
}

TEST(MobilityModels, MoveRateTracksPauseAndTransit) {
  // One move cycle is pause + transit (+2 rounding ticks), so over a
  // horizon T each host makes about T / (pause + transit + 2) moves.
  MobilityConfig cfg;
  cfg.mean_pause = 50;
  cfg.mean_transit = 5;
  cfg.stop_at = 3000;
  std::uint64_t total_moves = 0;
  const std::uint32_t num_seeds = 16;
  const std::uint32_t num_mh = 8;
  for (std::uint32_t s = 0; s < num_seeds; ++s) {
    auto net_cfg = small_config(8, num_mh);
    net_cfg.seed = 2000 + s;
    Network net(net_cfg);
    MobilityDriver driver(net, cfg);
    net.start();
    driver.start();
    net.run();
    total_moves += driver.moves();
  }
  const double per_host =
      static_cast<double>(total_moves) / (num_seeds * num_mh);
  const double expected = 3000.0 / (cfg.mean_pause + cfg.mean_transit + 2.0);
  EXPECT_GT(per_host, 0.6 * expected);
  EXPECT_LT(per_host, 1.3 * expected);
}

TEST(MobilityDriver, RegionAccountingSumsToMoves) {
  Network net(small_config(4, 8));
  MobilityConfig cfg;
  cfg.mean_pause = 15;
  cfg.max_moves_per_host = 3;
  cfg.regions = 4;  // one region per cell: every move is significant
  MobilityDriver driver(net, cfg);
  net.start();
  driver.start();
  net.run();
  std::uint64_t by_region = 0;
  for (std::uint32_t r = 0; r < driver.regions(); ++r) {
    by_region += driver.moves_in_region(r);
    EXPECT_EQ(driver.f_region(r), driver.moves_in_region(r) > 0 ? 1.0 : 0.0);
  }
  EXPECT_EQ(by_region, driver.moves());
  EXPECT_EQ(driver.f_overall(), 1.0);
}

TEST(MobilityDriver, NewModelsRunDeterministicallyThroughTheDriver) {
  for (const auto pattern :
       {MovePattern::kWaypoint, MovePattern::kCommuter, MovePattern::kFlashCrowd}) {
    auto run_once = [pattern] {
      auto cfg_net = small_config(8, 16);
      cfg_net.seed = 777;
      Network net(cfg_net);
      MobilityConfig cfg;
      cfg.pattern = pattern;
      cfg.mean_pause = 25;
      cfg.max_moves_per_host = 4;
      cfg.phase_period = 150;
      cfg.crowd_period = 150;
      cfg.crowd_dwell = 75;
      MobilityDriver driver(net, cfg);
      net.start();
      driver.start();
      net.run();
      std::vector<std::uint32_t> cells;
      for (std::uint32_t i = 0; i < 16; ++i) {
        cells.push_back(index(net.current_mss_of(mh_id(i))));
      }
      return cells;
    };
    EXPECT_EQ(run_once(), run_once()) << mobility::pattern_name(pattern);
  }
}

// --------------------------------------------------------------------------
// Workload generators
// --------------------------------------------------------------------------

TEST(Workload, PoissonCallsFireRequestedCount) {
  Network net(small_config());
  std::uint64_t fired = 0;
  workload::poisson_calls(net, 50, 10.0, 5, [&](std::uint64_t) { ++fired; });
  net.start();
  net.run();
  EXPECT_EQ(fired, 50u);
}

TEST(Workload, PoissonSequenceNumbersAreOrdered) {
  Network net(small_config());
  std::vector<std::uint64_t> seqs;
  workload::poisson_calls(net, 20, 5.0, 0, [&](std::uint64_t seq) { seqs.push_back(seq); });
  net.start();
  net.run();
  ASSERT_EQ(seqs.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Workload, PacedCallsAreEvenlySpaced) {
  Network net(small_config());
  std::vector<sim::SimTime> times;
  workload::paced_calls(net, 5, 10, 100, [&](std::uint64_t) {
    times.push_back(net.sched().now());
  });
  net.start();
  net.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(times[i], 100 + 10 * i);
}

TEST(Workload, MobMsgDriverHitsRequestedCounts) {
  Network net(small_config(8, 8));
  std::uint64_t sends = 0;
  workload::MobMsgDriver::Config cfg;
  cfg.messages = 20;
  cfg.mob_per_msg = 2.0;
  cfg.significant_fraction = 0.5;
  workload::MobMsgDriver driver(
      net, cfg, {mss_id(0), mss_id(1)}, {mss_id(5), mss_id(6), mss_id(7)}, mh_id(0),
      [&](std::uint64_t) { ++sends; });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(sends, 20u);
  EXPECT_EQ(driver.messages_scheduled(), 20u);
  EXPECT_EQ(driver.moves_scheduled(), 40u);
  // Significant fraction lands near the request (forced return legs can
  // push it up slightly).
  const double f = static_cast<double>(driver.significant_scheduled()) /
                   static_cast<double>(driver.moves_scheduled());
  EXPECT_NEAR(f, 0.5, 0.15);
}

TEST(Workload, MobMsgDriverZeroMobilityIsPureMessages) {
  Network net(small_config(8, 8));
  std::uint64_t sends = 0;
  workload::MobMsgDriver::Config cfg;
  cfg.messages = 10;
  cfg.mob_per_msg = 0.0;
  workload::MobMsgDriver driver(net, cfg, {mss_id(0), mss_id(1)}, {mss_id(7)}, mh_id(0),
                                [&](std::uint64_t) { ++sends; });
  net.start();
  driver.start();
  net.run();
  EXPECT_EQ(sends, 10u);
  EXPECT_EQ(driver.moves_scheduled(), 0u);
  EXPECT_EQ(net.stats().joins, 0u);
}

TEST(Workload, MobMsgDriverValidatesConfig) {
  Network net(small_config(8, 8));
  workload::MobMsgDriver::Config cfg;
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0)}, {mss_id(7)}, mh_id(0),
                                      [](std::uint64_t) {}),
               std::invalid_argument);
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0), mss_id(1)}, {}, mh_id(0),
                                      [](std::uint64_t) {}),
               std::invalid_argument);
  cfg.step = 2;
  cfg.transit = 5;
  EXPECT_THROW(workload::MobMsgDriver(net, cfg, {mss_id(0), mss_id(1)}, {mss_id(7)},
                                      mh_id(0), [](std::uint64_t) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mobidist::test
