// Unit tests for the structured event stream: id/seq/Lamport bookkeeping,
// bounded-buffer eviction accounting, the JSONL and Chrome trace-event
// exporters, and the invariant checkers — including one hand-built bad
// stream per checker, each rejected with a precise diagnostic.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "mutex/monitor.hpp"
#include "mutex/r2.hpp"
#include "obs/checkers.hpp"
#include "obs/events.hpp"
#include "obs/merge.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using obs::Entity;
using obs::Event;
using obs::EventId;
using obs::EventKind;
using obs::EventStream;
using mutex::CsMonitor;
using mutex::R2Mutex;
using mutex::RingVariant;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// EventStream bookkeeping
// --------------------------------------------------------------------------

TEST(EventStream, AssignsDenseIdsAndPerEntitySequences) {
  EventStream stream;
  const auto a = stream.emit(10, {.kind = EventKind::kSend, .entity = Entity::mss(0)});
  const auto b = stream.emit(11, {.kind = EventKind::kSend, .entity = Entity::mss(0)});
  const auto c = stream.emit(12, {.kind = EventKind::kRecv, .entity = Entity::mss(1)});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(stream.event_at(0).seq, 1u);
  EXPECT_EQ(stream.event_at(1).seq, 2u);
  EXPECT_EQ(stream.event_at(2).seq, 1u);  // per-entity, not global
  EXPECT_EQ(stream.emitted(), 3u);
  EXPECT_EQ(stream.dropped(), 0u);
}

TEST(EventStream, LamportAdvancesAcrossCausalEdges) {
  EventStream stream;
  const auto send = stream.emit(5, {.kind = EventKind::kSend, .entity = Entity::mss(0)});
  EXPECT_EQ(stream.lamport_of(send), 1u);
  // The recv at a fresh entity must jump past its cause's clock.
  const auto recv =
      stream.emit(9, {.kind = EventKind::kRecv, .entity = Entity::mss(1), .cause = send});
  EXPECT_EQ(stream.lamport_of(recv), 2u);
  // A follow-up on the receiver keeps climbing.
  const auto next =
      stream.emit(9, {.kind = EventKind::kSend, .entity = Entity::mss(1), .cause = recv});
  EXPECT_EQ(stream.lamport_of(next), 3u);
  // An unrelated entity starts back at 1.
  const auto other = stream.emit(9, {.kind = EventKind::kSend, .entity = Entity::mh(4)});
  EXPECT_EQ(stream.lamport_of(other), 1u);
}

TEST(EventStream, CauseScopeSuppliesAmbientCause) {
  EventStream stream;
  const auto root = stream.emit(1, {.kind = EventKind::kRecv, .entity = Entity::mh(0)});
  EXPECT_EQ(stream.current_cause(), 0u);
  {
    obs::CauseScope scope(stream, root);
    EXPECT_EQ(stream.current_cause(), root);
    const auto child = stream.emit(1, {.kind = EventKind::kCsEnter, .entity = Entity::mh(0)});
    EXPECT_EQ(stream.snapshot().back().cause, root);
    // An explicit cause wins over the ambient one.
    stream.emit(1, {.kind = EventKind::kCsExit, .entity = Entity::mh(0), .cause = child});
    EXPECT_EQ(stream.snapshot().back().cause, child);
  }
  EXPECT_EQ(stream.current_cause(), 0u);
}

TEST(EventStream, EvictsFromTheFrontAndCountsDrops) {
  EventStream stream(4);
  for (int i = 0; i < 10; ++i) {
    stream.emit(i, {.kind = EventKind::kSend, .entity = Entity::mss(0)});
  }
  EXPECT_EQ(stream.emitted(), 10u);
  EXPECT_EQ(stream.dropped(), 6u);
  ASSERT_EQ(stream.retained(), 4u);
  EXPECT_EQ(stream.event_at(0).id, 7u);  // ids stay contiguous
  EXPECT_EQ(stream.event_at(3).id, 10u);
  EXPECT_EQ(stream.lamport_of(3), 0u);   // evicted -> unknown
  EXPECT_EQ(stream.lamport_of(10), 10u);
}

// --------------------------------------------------------------------------
// Exporters
// --------------------------------------------------------------------------

// --------------------------------------------------------------------------
// Canonical merge (the sharded engine's trace spine)
// --------------------------------------------------------------------------

TEST(MergeCanonical, CrossRefEncodingRoundTrips) {
  const auto ref = obs::make_cross_ref(5, 1234);
  EXPECT_TRUE(obs::is_cross_ref(ref));
  EXPECT_EQ(obs::cross_ref_stream(ref), 5u);
  EXPECT_EQ(obs::cross_ref_id(ref), 1234u);
  EXPECT_FALSE(obs::is_cross_ref(1234));
}

TEST(MergeCanonical, OrdersByTimeThenLaneAndRewritesCauses) {
  // Two shard streams; lane = the mss index. Stream 1's recv at t=7
  // references stream 0's send (id 1) through an encoded cross ref.
  obs::EventStream s0;
  obs::EventStream s1;
  const auto send_id = s0.emit(3, {.kind = obs::EventKind::kSend,
                                   .entity = obs::Entity::mss(0),
                                   .peer = obs::Entity::mss(1)});
  s0.emit(9, {.kind = obs::EventKind::kDisconnect, .entity = obs::Entity::mss(0)});
  s1.emit(7, {.kind = obs::EventKind::kRecv,
              .entity = obs::Entity::mss(1),
              .peer = obs::Entity::mss(0),
              .cause = obs::make_cross_ref(0, send_id),
              .cause_clock = s0.lamport_of(send_id)});

  const obs::EventStream* streams[] = {&s0, &s1};
  const auto merged = obs::merge_canonical(
      streams, [](obs::Entity e) { return e.idx; });
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].at, 3u);
  EXPECT_EQ(merged[1].at, 7u);
  EXPECT_EQ(merged[2].at, 9u);
  // Dense renumbering in merge order, causes resolved across streams.
  EXPECT_EQ(merged[0].id, 1u);
  EXPECT_EQ(merged[1].id, 2u);
  EXPECT_EQ(merged[1].cause, 1u);
  // The cross-edge Lamport relation survived the merge: recv > send.
  EXPECT_GT(merged[1].lamport, merged[0].lamport);
}

TEST(MergeCanonical, SameInstantTieBreaksByLaneThenLanePosition) {
  // One stream holding two lanes vs. the same events split across two
  // streams: identical bytes — the grouping-invariance property the
  // shard_independence gate relies on.
  const auto run = [](bool split) {
    obs::EventStream a;
    obs::EventStream b;
    obs::EventStream& lane1 = split ? b : a;
    a.emit(5, {.kind = obs::EventKind::kDisconnect, .entity = obs::Entity::mss(0)});
    lane1.emit(5, {.kind = obs::EventKind::kDisconnect, .entity = obs::Entity::mss(1)});
    lane1.emit(5, {.kind = obs::EventKind::kSend, .entity = obs::Entity::mss(1)});
    a.emit(5, {.kind = obs::EventKind::kSend, .entity = obs::Entity::mss(0)});
    std::vector<const obs::EventStream*> streams{&a};
    if (split) streams.push_back(&b);
    return obs::to_jsonl(std::span<const obs::Event>(obs::merge_canonical(
        streams, [](obs::Entity e) { return e.idx; })));
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(MergeCanonical, EvictedCauseResolvesToZero) {
  obs::EventStream tiny(2);  // ring keeps only the 2 most recent events
  const auto first = tiny.emit(1, {.kind = obs::EventKind::kSend,
                                   .entity = obs::Entity::mss(0)});
  tiny.emit(2, {.kind = obs::EventKind::kDisconnect, .entity = obs::Entity::mss(0)});
  tiny.emit(3, {.kind = obs::EventKind::kRecv,
                .entity = obs::Entity::mss(0),
                .cause = first});  // parent now evicted
  const obs::EventStream* streams[] = {&tiny};
  const auto merged = obs::merge_canonical(
      streams, [](obs::Entity) { return 0u; });
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.back().cause, 0u);
}

TEST(EventJson, RoundTripsEveryField) {
  Event ev;
  ev.id = 42;
  ev.at = 1234;
  ev.kind = EventKind::kTokenDepart;
  ev.entity = Entity::mss(3);
  ev.peer = Entity::mh(7);
  ev.seq = 9;
  ev.lamport = 21;
  ev.cause = 40;
  ev.channel = 0x123456789abcdefULL;
  ev.arg = 5;
  ev.detail = "R2' \"quoted\"\\\n\ttab";
  const std::string line = obs::event_json(ev);
  obs::InternTable strings;
  const auto back = obs::event_from_json(line, strings);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, ev.id);
  EXPECT_EQ(back->at, ev.at);
  EXPECT_EQ(back->kind, ev.kind);
  EXPECT_EQ(back->entity, ev.entity);
  EXPECT_EQ(back->peer, ev.peer);
  EXPECT_EQ(back->seq, ev.seq);
  EXPECT_EQ(back->lamport, ev.lamport);
  EXPECT_EQ(back->cause, ev.cause);
  EXPECT_EQ(back->channel, ev.channel);
  EXPECT_EQ(back->arg, ev.arg);
  EXPECT_EQ(back->detail, ev.detail);
  // Accepts a trailing newline (the JSONL line form).
  EXPECT_TRUE(obs::event_from_json(line + "\n", strings).has_value());
}

TEST(EventJson, RejectsMalformedLines) {
  obs::InternTable strings;
  EXPECT_FALSE(obs::event_from_json("", strings).has_value());
  EXPECT_FALSE(obs::event_from_json("not json", strings).has_value());
  EXPECT_FALSE(obs::event_from_json("{\"id\":1}", strings).has_value());  // missing fields
  Event ev;
  ev.id = 1;
  ev.entity = Entity::mh(0);
  std::string line = obs::event_json(ev);
  const auto pos = line.find("\"send\"");
  ASSERT_NE(pos, std::string::npos);
  line.replace(pos, 6, "\"nope\"");
  EXPECT_FALSE(obs::event_from_json(line, strings).has_value());
}

TEST(EventJson, KindAndEntityNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(EventKind::kMssRecover); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto parsed = obs::parse_kind(obs::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << obs::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(obs::parse_kind("bogus").has_value());
  EXPECT_EQ(obs::to_string(Entity::mss(3)), "mss:3");
  EXPECT_EQ(obs::to_string(Entity::mh(7)), "mh:7");
  EXPECT_EQ(obs::to_string(Entity{}), "?");
  EXPECT_EQ(obs::parse_entity("mss:3"), Entity::mss(3));
  EXPECT_EQ(obs::parse_entity("mh:7"), Entity::mh(7));
  EXPECT_EQ(obs::parse_entity("?"), Entity{});
  EXPECT_FALSE(obs::parse_entity("cow:1").has_value());
}

TEST(ChromeTrace, EmitsTracksSpansAndInstants) {
  std::vector<Event> events;
  Event enter;
  enter.id = 1;
  enter.at = 100;
  enter.kind = EventKind::kCsEnter;
  enter.entity = Entity::mh(2);
  enter.detail = "L1";
  events.push_back(enter);
  Event exit = enter;
  exit.id = 2;
  exit.at = 250;
  exit.kind = EventKind::kCsExit;
  events.push_back(exit);
  Event search;
  search.id = 3;
  search.at = 300;
  search.kind = EventKind::kSearchRound;
  search.entity = Entity::mss(0);
  search.peer = Entity::mh(2);
  search.arg = 1;
  events.push_back(search);

  const std::string trace = obs::to_chrome_trace(events);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  // Track naming metadata for both processes and the two entities.
  EXPECT_NE(trace.find("process_name"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"mh:2\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"mss:0\""), std::string::npos);
  // The CS occupancy renders as a B/E span, the search round as an instant.
  EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Checkers on a real scenario + determinism of the exported stream
// --------------------------------------------------------------------------

std::string run_r2_and_export() {
  Network net(small_config(4, 8));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kCounter);
  net.start();
  for (std::uint32_t i = 0; i < 6; ++i) r2.request(mh_id(i));
  net.sched().schedule(3, [&] { net.mh(mh_id(1)).move_to(mss_id(2), 2); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GT(net.events().emitted(), 0u);
  EXPECT_EQ(net.events().dropped(), 0u);
  return obs::to_jsonl(net.events());
}

TEST(Checkers, PassOnRealRunAndStreamIsDeterministic) {
  const std::string first = run_r2_and_export();
  const std::string second = run_r2_and_export();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed runs must export byte-identical JSONL";
}

TEST(Trace, RendersEventStreamIntoTextTrace) {
  Network net(small_config(3, 6));
  net.trace().set_min_level(sim::TraceLevel::kDebug);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  r2.request(mh_id(0));
  net.sched().schedule(5, [&] { r2.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_GT(net.trace().count_containing("token depart"), 0u);
  EXPECT_GT(net.trace().count_containing("cs enter"), 0u);
}

// --------------------------------------------------------------------------
// Hand-built bad streams: each checker rejects its counterexample with a
// precise diagnostic.
// --------------------------------------------------------------------------

Event make(EventId id, sim::SimTime at, EventKind kind, Entity entity,
           std::string_view detail = {}) {
  // Callers pass string literals, so the view's storage outlives the test.
  Event ev;
  ev.id = id;
  ev.at = at;
  ev.kind = kind;
  ev.entity = entity;
  ev.detail = detail;
  return ev;
}

TEST(Checkers, TwoHostsInsideTheCriticalSection) {
  std::vector<Event> events;
  events.push_back(make(1, 10, EventKind::kCsEnter, Entity::mh(0), "L1"));
  events.push_back(make(2, 12, EventKind::kCsEnter, Entity::mh(1), "L1"));
  events.push_back(make(3, 14, EventKind::kCsExit, Entity::mh(1), "L1"));
  const auto failures = obs::check_cs_exclusion(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "cs_exclusion");
  EXPECT_EQ(failures[0].event, 2u);
  EXPECT_NE(failures[0].diagnostic.find("mh:1 entered the CS"), std::string::npos);
  EXPECT_NE(failures[0].diagnostic.find("while mh:0 still holds it"), std::string::npos);

  // The same stream with distinct instance labels is two separate
  // algorithms sharing a network: no violation.
  events[1].detail = "R2";
  events[2].detail = "R2";
  EXPECT_TRUE(obs::check_cs_exclusion(events).empty());
}

TEST(Checkers, ReorderedFifoDelivery) {
  constexpr std::uint64_t kChannel = 77;
  std::vector<Event> events;
  auto send = [&](obs::EventId id) {
    Event ev = make(id, id, EventKind::kSend, Entity::mss(0));
    ev.peer = Entity::mss(1);
    ev.channel = kChannel;
    return ev;
  };
  auto recv = [&](obs::EventId id, obs::EventId cause) {
    Event ev = make(id, id, EventKind::kRecv, Entity::mss(1));
    ev.cause = cause;
    ev.channel = kChannel;
    return ev;
  };
  events.push_back(send(1));
  events.push_back(send(2));
  events.push_back(recv(3, 2));  // second send overtakes the first
  events.push_back(recv(4, 1));
  const auto failures = obs::check_channel_fifo(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "channel_fifo");
  EXPECT_EQ(failures[0].event, 4u);
  EXPECT_NE(failures[0].diagnostic.find("FIFO violation on channel 77"), std::string::npos);
  EXPECT_NE(failures[0].diagnostic.find("position 1"), std::string::npos);

  // In-order consumption of the same sends is clean, and losses (sends
  // never consumed) are tolerated.
  std::vector<Event> ok;
  ok.push_back(send(1));
  ok.push_back(send(2));
  ok.push_back(send(3));
  ok.push_back(recv(4, 1));
  ok.push_back(recv(5, 3));  // send 2 lost: allowed
  EXPECT_TRUE(obs::check_channel_fifo(ok).empty());
}

TEST(Checkers, DuplicateToken) {
  std::vector<Event> events;
  events.push_back(make(1, 10, EventKind::kTokenArrive, Entity::mss(0), "R2"));
  events.push_back(make(2, 15, EventKind::kTokenArrive, Entity::mss(1), "R2"));
  const auto failures = obs::check_token_circulation(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "token_circulation");
  EXPECT_EQ(failures[0].event, 2u);
  EXPECT_NE(failures[0].diagnostic.find("duplicate token"), std::string::npos);
  EXPECT_NE(failures[0].diagnostic.find("already held by mss:0"), std::string::npos);

  // Departures from a non-holder are flagged too.
  std::vector<Event> forged;
  forged.push_back(make(1, 10, EventKind::kTokenArrive, Entity::mss(0), "R1"));
  Event depart = make(2, 12, EventKind::kTokenDepart, Entity::mss(2), "R1");
  depart.peer = Entity::mss(3);
  forged.push_back(depart);
  const auto forged_failures = obs::check_token_circulation(forged);
  ASSERT_EQ(forged_failures.size(), 1u);
  EXPECT_NE(forged_failures[0].diagnostic.find("mss:0 holds it"), std::string::npos);

  // The decorated variants share one family token with plain R2: a
  // legal depart/arrive alternation across tags is clean.
  std::vector<Event> family;
  family.push_back(make(1, 10, EventKind::kTokenArrive, Entity::mss(0), "R2"));
  Event hop = make(2, 12, EventKind::kTokenDepart, Entity::mss(0), "R2'");
  hop.peer = Entity::mh(4);
  family.push_back(hop);
  family.push_back(make(3, 14, EventKind::kTokenArrive, Entity::mh(4), "R2'"));
  EXPECT_TRUE(obs::check_token_circulation(family).empty());
}

TEST(Checkers, StaleAccessCountReplay) {
  std::vector<Event> events;
  auto grant = [&](obs::EventId id, std::uint64_t token_val, std::uint32_t mh) {
    Event ev = make(id, id, EventKind::kTokenDepart, Entity::mss(0), "R2'");
    ev.peer = Entity::mh(mh);
    ev.arg = token_val;
    return ev;
  };
  events.push_back(grant(1, 7, 3));
  events.push_back(grant(2, 7, 5));  // different MH, same traversal: fine
  events.push_back(grant(3, 7, 3));  // second grant to mh:3 in traversal 7
  events.push_back(grant(4, 8, 3));  // next traversal: fine again
  const auto failures = obs::check_traversal_cap(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "traversal_cap");
  EXPECT_EQ(failures[0].event, 3u);
  EXPECT_NE(failures[0].diagnostic.find("granted the token to mh:3 twice"),
            std::string::npos);
  EXPECT_NE(failures[0].diagnostic.find("stale access_count replay"), std::string::npos);

  // Plain R2 departures (racing allowed), malicious-run grants (R2'!),
  // and stale-snapshot repeats (R2'~) are exempt by construction.
  for (auto& ev : events) ev.detail = "R2";
  EXPECT_TRUE(obs::check_traversal_cap(events).empty());
  for (auto& ev : events) ev.detail = "R2'!";
  EXPECT_TRUE(obs::check_traversal_cap(events).empty());
  for (auto& ev : events) ev.detail = "R2'~";
  EXPECT_TRUE(obs::check_traversal_cap(events).empty());
}

TEST(Checkers, StuckLamportClockAcrossCausalEdge) {
  std::vector<Event> events;
  Event parent = make(1, 10, EventKind::kSend, Entity::mss(0));
  parent.seq = 1;
  parent.lamport = 5;
  events.push_back(parent);
  Event child = make(2, 12, EventKind::kRecv, Entity::mss(1));
  child.seq = 1;
  child.lamport = 5;  // must be > 5
  child.cause = 1;
  events.push_back(child);
  const auto failures = obs::check_causal_clocks(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "causal_clocks");
  EXPECT_EQ(failures[0].event, 2u);
  EXPECT_NE(failures[0].diagnostic.find("clock did not advance"), std::string::npos);

  // Non-increasing per-entity seq is the other half of this checker.
  std::vector<Event> seqs;
  Event first = make(1, 10, EventKind::kSend, Entity::mh(0));
  first.seq = 2;
  first.lamport = 1;
  seqs.push_back(first);
  Event second = make(2, 12, EventKind::kSend, Entity::mh(0));
  second.seq = 2;  // repeated
  second.lamport = 2;
  seqs.push_back(second);
  const auto seq_failures = obs::check_causal_clocks(seqs);
  ASSERT_EQ(seq_failures.size(), 1u);
  EXPECT_NE(seq_failures[0].diagnostic.find("sequence not strictly increasing"),
            std::string::npos);
}

TEST(Checkers, GhostDeliveryFromDroppedSend) {
  std::vector<Event> events;
  Event send = make(1, 10, EventKind::kSend, Entity::mss(0));
  send.peer = Entity::mh(0);
  send.channel = 9;
  events.push_back(send);
  Event drop = make(2, 10, EventKind::kMsgDropped, Entity::mss(0), "loss");
  drop.cause = 1;
  drop.channel = 9;
  events.push_back(drop);
  Event recv = make(3, 12, EventKind::kRecv, Entity::mh(0));
  recv.cause = 1;  // consumes the very send the plane killed
  recv.channel = 9;
  events.push_back(recv);
  const auto failures = obs::check_fault_delivery(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "fault_delivery");
  EXPECT_EQ(failures[0].event, 3u);
  EXPECT_NE(failures[0].diagnostic.find("ghost delivery"), std::string::npos);

  // A recv consuming a *different* (retransmitted) send is clean.
  events[2].cause = 4;
  EXPECT_TRUE(obs::check_fault_delivery(events).empty());
}

TEST(Checkers, CrashRecoverMustAlternatePerMss) {
  std::vector<Event> events;
  events.push_back(make(1, 100, EventKind::kMssCrash, Entity::mss(1)));
  events.push_back(make(2, 120, EventKind::kMssCrash, Entity::mss(1)));  // still down
  const auto failures = obs::check_fault_delivery(events);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].checker, "fault_delivery");
  EXPECT_NE(failures[0].diagnostic.find("while already down"), std::string::npos);

  std::vector<Event> twice;
  twice.push_back(make(1, 100, EventKind::kMssCrash, Entity::mss(1)));
  twice.push_back(make(2, 150, EventKind::kMssRecover, Entity::mss(1)));
  twice.push_back(make(3, 160, EventKind::kMssRecover, Entity::mss(1)));
  const auto double_up = obs::check_fault_delivery(twice);
  ASSERT_EQ(double_up.size(), 1u);
  EXPECT_NE(double_up[0].diagnostic.find("was not down"), std::string::npos);

  // Alternation over two windows — and crashes on distinct MSSs — pass;
  // a bare recover on an entity with no retained history is tolerated
  // (the stream may have evicted its crash).
  std::vector<Event> ok;
  ok.push_back(make(1, 50, EventKind::kMssRecover, Entity::mss(2)));
  ok.push_back(make(2, 100, EventKind::kMssCrash, Entity::mss(1)));
  ok.push_back(make(3, 150, EventKind::kMssRecover, Entity::mss(1)));
  ok.push_back(make(4, 400, EventKind::kMssCrash, Entity::mss(1)));
  ok.push_back(make(5, 425, EventKind::kMssRecover, Entity::mss(1)));
  EXPECT_TRUE(obs::check_fault_delivery(ok).empty());
}

TEST(Checkers, CheckAllConcatenatesEveryChecker) {
  std::vector<Event> events;
  events.push_back(make(1, 10, EventKind::kCsEnter, Entity::mh(0), "L1"));
  events.push_back(make(2, 12, EventKind::kCsEnter, Entity::mh(1), "L1"));
  events.push_back(make(3, 14, EventKind::kTokenArrive, Entity::mss(0), "R1"));
  events.push_back(make(4, 16, EventKind::kTokenArrive, Entity::mss(1), "R1"));
  for (auto& ev : events) ev.seq = 1;  // distinct entities: causal_clocks stays quiet
  const auto failures = obs::check_all(events);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].checker, "cs_exclusion");
  EXPECT_EQ(failures[1].checker, "token_circulation");
  EXPECT_NE(obs::to_string(failures[0]).find("cs_exclusion @ event 2"), std::string::npos);
}

}  // namespace
}  // namespace mobidist::test
