// Tests for the exactly-once multicast substrate (the paper's reference
// [1] and the flagship client of the §2 handoff machinery).

#include <gtest/gtest.h>

#include "mobility/mobility_model.hpp"
#include "multicast/multicast.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::Group;
using multicast::McastService;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

Group recipients4() { return Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3)}); }

TEST(Multicast, DeliversToAllRecipientsExactlyOnce) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { mcast.publish(mss_id(0)); });
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
}

TEST(Multicast, NonRecipientsGetNothing) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  Harness h(net);  // records any stray traffic on the test protocol
  net.start();
  net.sched().schedule(1, [&] { mcast.publish(mss_id(1)); });
  net.run();
  const cost::CostParams unit;
  for (std::uint32_t i = 4; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(net.ledger().energy_at(i, unit), 0.0) << "mh " << i;
  }
}

TEST(Multicast, CostIsFloodPlusOneHopPerRecipient) {
  constexpr std::uint32_t kM = 5;
  Network net(small_config(kM, 10));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { mcast.publish(mss_id(0)); });
  net.run();
  EXPECT_EQ(net.ledger().fixed_msgs(), kM - 1);   // one flood
  EXPECT_EQ(net.ledger().wireless_msgs(), 4u);    // one hop per recipient
  EXPECT_EQ(net.ledger().searches(), 0u);         // never searches
}

TEST(Multicast, OrderedPerSourceAtEachRecipient) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    net.sched().schedule(1 + 10 * i, [&] { ids.push_back(mcast.publish(mss_id(0))); });
  }
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
  EXPECT_EQ(ids.size(), 5u);
}

TEST(Multicast, WatermarkRidesTheHandoff) {
  // Deliver one message, move the recipient, deliver another: the new
  // cell must replay only the second message.
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { mcast.publish(mss_id(0)); });
  net.sched().schedule(50, [&] { net.mh(mh_id(0)).move_to(mss_id(2), 5); });
  net.sched().schedule(150, [&] { mcast.publish(mss_id(0)); });
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
  EXPECT_EQ(mcast.duplicates_suppressed(), 0u);  // MSS-side logic was exact
}

TEST(Multicast, InFlightMoveRecoversWithoutDuplicates) {
  // Publish while a recipient is between cells: the old MSS's burst
  // fails, the watermark rolls back, and the new MSS replays.
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(0)).move_to(mss_id(2), 60); });
  net.sched().schedule(10, [&] { mcast.publish(mss_id(0)); });
  net.sched().schedule(20, [&] { mcast.publish(mss_id(1)); });
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
}

TEST(Multicast, DisconnectedRecipientCatchesUpOnReconnect) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(1)).disconnect(); });
  for (int i = 0; i < 3; ++i) {
    net.sched().schedule(20 + 15 * i, [&] { mcast.publish(mss_id(0)); });
  }
  net.sched().schedule(300, [&] { net.mh(mh_id(1)).reconnect_at(mss_id(3), 5); });
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
  // All three arrived after the reconnect, via handoff + replay — no
  // searches were ever issued.
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(Multicast, MultipleSourcesInterleave) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  net.sched().schedule(1, [&] { mcast.publish(mss_id(0)); });
  net.sched().schedule(2, [&] { mcast.publish(mss_id(3)); });
  net.sched().schedule(3, [&] { mcast.publish(mss_id(1)); });
  net.run();
  EXPECT_TRUE(mcast.monitor().exactly_once(mcast.recipients()));
}

TEST(Multicast, LogGrowsAtEveryStation) {
  Network net(small_config(4, 8));
  McastService mcast(net, recipients4());
  net.start();
  for (int i = 0; i < 4; ++i) {
    net.sched().schedule(1 + 5 * i, [&] { mcast.publish(mss_id(0)); });
  }
  net.run();
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(mcast.log_size(mss_id(i)), 4u) << "mss " << i;
  }
}

class MulticastChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulticastChurnProperty, ExactlyOnceUnderHeavyChurnAndDisconnects) {
  auto cfg = small_config(6, 12);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  cfg.seed = GetParam();
  Network net(cfg);
  const auto recipients =
      Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3), mh_id(4), mh_id(5)});
  McastService mcast(net, recipients);
  mobility::MobilityConfig mob;
  mob.mean_pause = 40;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 5;
  mob.disconnect_prob = 0.25;
  mob.mean_disconnect = 80;
  mobility::MobilityDriver driver(net, mob, recipients.members);
  net.start();
  driver.start();
  for (int i = 0; i < 15; ++i) {
    net.sched().schedule(10 + 30 * i, [&, i] {
      mcast.publish(mss_id(static_cast<std::uint32_t>(i) % net.num_mss()));
    });
  }
  net.run();
  EXPECT_EQ(mcast.monitor().missing(recipients), 0u);
  EXPECT_EQ(mcast.monitor().over_delivered(recipients), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulticastChurnProperty,
                         ::testing::Values(2, 12, 22, 32, 42, 52, 62, 72));

}  // namespace
}  // namespace mobidist::test
