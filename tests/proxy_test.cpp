// Tests for the §5 proxy framework: scope policies (local / fixed home /
// lazy home), inform vs search cost split, obligations on disconnect,
// and the Lamport-over-proxies demonstration algorithm.

#include <gtest/gtest.h>

#include "mobility/mobility_model.hpp"
#include "proxy/proxy.hpp"
#include "proxy/static_algorithm.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using mutex::CsMonitor;
using proxy::ProxiedLamport;
using proxy::ProxyOptions;
using proxy::ProxyScope;
using proxy::ProxyService;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

ProxyOptions scoped(ProxyScope scope, std::uint32_t every = 2) {
  ProxyOptions opts;
  opts.scope = scope;
  opts.inform_every = every;
  return opts;
}

// --------------------------------------------------------------------------
// ProxyService mechanics
// --------------------------------------------------------------------------

TEST(ProxyService, LocalScopeTracksTheHost) {
  Network net(small_config(3, 6));
  ProxyService proxies(net, scoped(ProxyScope::kLocalMss));
  net.start();
  EXPECT_EQ(proxies.proxy_of(mh_id(1)), mss_id(1));
  net.mh(mh_id(1)).move_to(mss_id(2), 5);
  net.run();
  EXPECT_EQ(proxies.proxy_of(mh_id(1)), mss_id(2));
  EXPECT_EQ(proxies.informs(), 0u);  // never informs anybody
}

TEST(ProxyService, FixedHomeStaysPutAndInformsEveryMove) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  net.start();
  EXPECT_EQ(proxies.proxy_of(mh_id(1)), mss_id(1));
  net.mh(mh_id(1)).move_to(mss_id(2), 5);
  net.sched().schedule(50, [&] { net.mh(mh_id(1)).move_to(mss_id(3), 5); });
  net.run();
  EXPECT_EQ(proxies.proxy_of(mh_id(1)), mss_id(1));  // still home
  EXPECT_EQ(proxies.informs(), 2u);                  // one per move
}

TEST(ProxyService, LazyHomeInformsEveryKthMove) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kLazyHome, 2));
  net.start();
  // Four moves, inform_every = 2: informs on moves 2 and 4.
  for (int move = 0; move < 4; ++move) {
    net.sched().schedule(1 + 60 * move, [&, move] {
      auto& host = net.mh(mh_id(1));
      const auto next = static_cast<MssId>((index(host.current_mss()) + 1) % 4);
      host.move_to(next, 5);
    });
  }
  net.run();
  EXPECT_EQ(proxies.informs(), 2u);
}

TEST(ProxyService, ClientSendReachesTheHomeProxy) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  std::vector<std::pair<MssId, MhId>> upcalls;
  proxies.set_proxy_handler([&](MssId proxy, MhId from, const std::any&) {
    upcalls.emplace_back(proxy, from);
  });
  net.start();
  // Move mh1 away from home, then send: uplink + one forward.
  net.mh(mh_id(1)).move_to(mss_id(3), 5);
  net.sched().schedule(50, [&] { proxies.client_send(mh_id(1), std::string("hi")); });
  net.run();
  ASSERT_EQ(upcalls.size(), 1u);
  EXPECT_EQ(upcalls[0].first, mss_id(1));  // home proxy, not current cell
  EXPECT_EQ(upcalls[0].second, mh_id(1));
}

TEST(ProxyService, FixedHomeDeliveryNeedsNoSearch) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  int received = 0;
  proxies.set_client_handler([&](MhId, const std::any&) { ++received; });
  net.start();
  net.mh(mh_id(1)).move_to(mss_id(3), 5);
  // Wait for the inform to land, then deliver from the home proxy.
  net.sched().schedule(80, [&] { proxies.proxy_send(mss_id(1), mh_id(1), 42); });
  net.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.ledger().searches(), 0u);  // cached location was fresh
  EXPECT_EQ(proxies.location_misses(), 0u);
}

TEST(ProxyService, StaleLazyCacheFallsBackToSearch) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kLazyHome, 100));  // ~never informs
  int received = 0;
  proxies.set_client_handler([&](MhId, const std::any&) { ++received; });
  net.start();
  net.mh(mh_id(1)).move_to(mss_id(3), 5);
  net.sched().schedule(80, [&] { proxies.proxy_send(mss_id(1), mh_id(1), 42); });
  net.run();
  EXPECT_EQ(received, 1);
  EXPECT_GE(proxies.location_misses(), 1u);
  EXPECT_GE(net.ledger().searches(), 1u);  // the chase
}

TEST(ProxyService, LocalScopeDeliveryIsOneWirelessHop) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kLocalMss));
  int received = 0;
  proxies.set_client_handler([&](MhId, const std::any&) { ++received; });
  net.start();
  net.sched().schedule(1, [&] { proxies.proxy_send(mss_id(1), mh_id(1), 1); });
  net.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.ledger().wireless_msgs(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(ProxyService, UnreachableHandlerFiresForDisconnectedClient) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  std::vector<MhId> unreachable;
  proxies.set_unreachable_handler(
      [&](MssId, MhId mh, const std::any&) { unreachable.push_back(mh); });
  net.start();
  net.mh(mh_id(1)).disconnect();
  net.sched().schedule(20, [&] {
    proxies.proxy_send(mss_id(1), mh_id(1), 5, net::SendPolicy::kNotifyIfDisconnected);
  });
  net.run();
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], mh_id(1));
}

// --------------------------------------------------------------------------
// ProxiedLamport: the static algorithm over the proxy layer
// --------------------------------------------------------------------------

TEST(ProxiedLamport, SingleRequestCompletes) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  CsMonitor monitor;
  ProxiedLamport mutex(net, proxies, monitor);
  net.start();
  net.sched().schedule(1, [&] { mutex.request(mh_id(0)); });
  net.run();
  EXPECT_EQ(mutex.completed(), 1u);
  EXPECT_EQ(monitor.grants(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(ProxiedLamport, ManyRequestersSafeAndOrderedUnderEveryScope) {
  for (const auto scope :
       {ProxyScope::kLocalMss, ProxyScope::kFixedHome, ProxyScope::kLazyHome}) {
    Network net(small_config(4, 12));
    ProxyService proxies(net, scoped(scope));
    CsMonitor monitor;
    ProxiedLamport mutex(net, proxies, monitor);
    net.start();
    for (std::uint32_t i = 0; i < 12; ++i) {
      net.sched().schedule(1 + 5 * i, [&, i] { mutex.request(mh_id(i)); });
    }
    net.run();
    EXPECT_EQ(mutex.completed(), 12u) << "scope " << static_cast<int>(scope);
    EXPECT_EQ(monitor.violations(), 0u);
    EXPECT_EQ(monitor.order_inversions(), 0u);
  }
}

TEST(ProxiedLamport, SafeUnderMobilityWithFixedHome) {
  auto cfg = small_config(5, 15);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  Network net(cfg);
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  CsMonitor monitor;
  ProxiedLamport mutex(net, proxies, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 40;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 5;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 15; ++i) {
    net.sched().schedule(2 + 9 * i, [&, i] { mutex.request(mh_id(i)); });
  }
  net.run();
  EXPECT_EQ(mutex.completed(), 15u);
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_GT(proxies.informs(), 0u);
  // Total decoupling: no searches with a fully informed fixed proxy...
  // except chases for messages racing a move. Allow only those.
  EXPECT_LE(net.ledger().searches(), proxies.location_misses());
}

TEST(ProxiedLamport, DisconnectAtGrantAborts) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  CsMonitor monitor;
  ProxiedLamport mutex(net, proxies, monitor);
  net.start();
  net.sched().schedule(1, [&] { mutex.request(mh_id(0)); });
  net.sched().schedule(2, [&] { mutex.request(mh_id(1)); });
  net.sched().schedule(3, [&] { net.mh(mh_id(0)).disconnect(); });
  net.run();
  EXPECT_EQ(mutex.aborted(), 1u);
  EXPECT_EQ(mutex.completed(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(ProxiedLamport, InformSearchTradeoffAcrossScopes) {
  // High mobility, few requests: fixed home pays informs, local pays
  // searches; lazy sits between on informs.
  auto run_scope = [](ProxyScope scope) {
    auto cfg = small_config(4, 8);
    Network net(cfg);
    ProxyService proxies(net, scoped(scope, 4));
    CsMonitor monitor;
    ProxiedLamport mutex(net, proxies, monitor);
    net.start();
    // mh0 moves 8 times...
    for (int move = 0; move < 8; ++move) {
      net.sched().schedule(1 + 50 * move, [&] {
        auto& host = net.mh(mh_id(0));
        if (!host.connected()) return;
        const auto next = static_cast<MssId>((index(host.current_mss()) + 1) % 4);
        host.move_to(next, 5);
      });
    }
    // ...and requests once at the end.
    net.sched().schedule(500, [&] { mutex.request(mh_id(0)); });
    net.run();
    EXPECT_EQ(mutex.completed(), 1u);
    return std::pair{proxies.informs(), net.ledger().searches()};
  };
  const auto [informs_home, searches_home] = run_scope(ProxyScope::kFixedHome);
  const auto [informs_lazy, searches_lazy] = run_scope(ProxyScope::kLazyHome);
  const auto [informs_local, searches_local] = run_scope(ProxyScope::kLocalMss);
  EXPECT_EQ(informs_home, 8u);
  EXPECT_EQ(searches_home, 0u);
  EXPECT_EQ(informs_local, 0u);
  EXPECT_LT(informs_lazy, informs_home);
  EXPECT_GT(informs_lazy, 0u);
}

// --------------------------------------------------------------------------
// ProxiedPathRev: the path-reversal engine over the proxy layer
// --------------------------------------------------------------------------

TEST(ProxiedPathRev, SingleRequestCompletes) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  CsMonitor monitor;
  proxy::ProxiedPathRev mutex(net, proxies, monitor);
  net.start();
  net.sched().schedule(1, [&] { mutex.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(mutex.completed(), 1u);
  EXPECT_EQ(mutex.aborted(), 0u);
  EXPECT_EQ(monitor.grants(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(ProxiedPathRev, ManyRequestersSafeUnderEveryScope) {
  for (const auto scope :
       {ProxyScope::kLocalMss, ProxyScope::kFixedHome, ProxyScope::kLazyHome}) {
    Network net(small_config(4, 12));
    ProxyService proxies(net, scoped(scope));
    CsMonitor monitor;
    proxy::ProxiedPathRev mutex(net, proxies, monitor);
    net.start();
    for (std::uint32_t i = 0; i < 12; ++i) {
      net.sched().schedule(1 + 5 * i, [&, i] { mutex.request(mh_id(i)); });
    }
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_EQ(mutex.completed(), 12u) << "scope " << static_cast<int>(scope);
    EXPECT_EQ(mutex.aborted(), 0u);
    EXPECT_EQ(monitor.violations(), 0u);
  }
}

TEST(ProxiedPathRev, DisconnectAtGrantAborts) {
  Network net(small_config(4, 8));
  ProxyService proxies(net, scoped(ProxyScope::kFixedHome));
  CsMonitor monitor;
  proxy::ProxiedPathRev mutex(net, proxies, monitor);
  net.start();
  net.sched().schedule(1, [&] { mutex.request(mh_id(0)); });
  net.sched().schedule(2, [&] { mutex.request(mh_id(1)); });
  net.sched().schedule(3, [&] { net.mh(mh_id(0)).disconnect(); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(mutex.aborted(), 1u);
  EXPECT_EQ(mutex.completed(), 1u);
  EXPECT_EQ(monitor.violations(), 0u);
}

}  // namespace
}  // namespace mobidist::test
