// Parameterized property sweeps (TEST_P): the §6-of-DESIGN.md invariants
// checked across seeds, scales, algorithms, and search substrates.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "core/mobidist.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::Group;
using group::LocationViewGroup;
using mutex::CsMonitor;
using mutex::RingVariant;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// ===========================================================================
// Property 1: scheduler ordering & cancellation under random action mixes.
// ===========================================================================

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, FiresInTimeOrderAndNeverFiresCancelled) {
  sim::Rng rng(GetParam());
  sim::Scheduler sched;
  std::vector<sim::SimTime> fired_at;
  std::set<int> cancelled_tags;
  std::set<int> fired_tags;
  std::vector<std::pair<sim::EventHandle, int>> live;
  int next_tag = 0;
  for (int step = 0; step < 400; ++step) {
    const auto action = rng.below(10);
    if (action < 6) {  // schedule
      const int tag = next_tag++;
      auto handle = sched.schedule(rng.below(50), [&, tag] {
        fired_at.push_back(sched.now());
        fired_tags.insert(tag);
      });
      live.emplace_back(handle, tag);
    } else if (action < 8 && !live.empty()) {  // cancel a random live one
      const auto pick = rng.below(live.size());
      if (sched.cancel(live[pick].first)) cancelled_tags.insert(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {  // run a bit
      sched.run_until(sched.now() + rng.below(20));
    }
  }
  sched.run();
  for (std::size_t i = 1; i < fired_at.size(); ++i) {
    ASSERT_LE(fired_at[i - 1], fired_at[i]) << "time went backwards";
  }
  for (const int tag : cancelled_tags) {
    EXPECT_FALSE(fired_tags.contains(tag)) << "cancelled event fired: " << tag;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ===========================================================================
// Property 2: per-channel FIFO under random latency jitter and moves.
// ===========================================================================

class ChannelFifoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFifoProperty, WiredAndRelayChannelsNeverReorder) {
  auto cfg = small_config(5, 10);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 50;
  cfg.latency.search_min = 1;
  cfg.latency.search_max = 30;
  cfg.seed = GetParam();
  Network net(cfg);
  Harness h(net);
  net.start();
  // Wired: interleaved bursts on several ordered pairs.
  for (int round = 0; round < 10; ++round) {
    net.sched().schedule(static_cast<sim::Duration>(round) * 7, [&, round] {
      h.mss[0]->do_send_wired(mss_id(1), round);
      h.mss[1]->do_send_wired(mss_id(2), round);
      h.mss[3]->do_send_wired(mss_id(1), 100 + round);
    });
  }
  // Relay: a numbered burst with the receiver moving mid-stream.
  for (int i = 0; i < 12; ++i) h.mh[0]->do_send_to_mh(mh_id(7), i);
  net.sched().schedule(5, [&] { net.mh(mh_id(7)).move_to(mss_id(4), 35); });
  net.run();
  ExpectCleanEventStream(net);

  auto assert_monotone = [](const std::vector<RecordingMssAgent::Received>& log,
                            auto filter) {
    int last = -1;
    for (const auto& rec : log) {
      const int* value = rec.env.body.get<int>();
      if (value == nullptr || !filter(*value)) continue;
      ASSERT_LT(last, *value);
      last = *value;
    }
  };
  assert_monotone(h.mss[1]->received, [](int v) { return v < 100; });
  assert_monotone(h.mss[1]->received, [](int v) { return v >= 100; });
  assert_monotone(h.mss[2]->received, [](int) { return true; });
  int last = -1;
  for (const auto& rec : h.mh[7]->received) {
    const int* value = rec.env.body.get<int>();
    ASSERT_NE(value, nullptr);
    ASSERT_EQ(*value, last + 1) << "relay lost FIFO";
    last = *value;
  }
  EXPECT_EQ(last, 11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFifoProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

// ===========================================================================
// Property 3: mobility-protocol coherence — every connected MH is local to
// exactly one MSS; disconnected flags live where the MH vanished.
// ===========================================================================

class HandoffProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HandoffProperty, LocalListsStayCoherentUnderChurn) {
  auto cfg = small_config(6, 18);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 12;
  cfg.seed = GetParam();
  Network net(cfg);
  Harness h(net);
  mobility::MobilityConfig mob;
  mob.mean_pause = 25;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 5;
  mob.disconnect_prob = 0.2;
  mob.mean_disconnect = 40;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  net.run();
  ExpectCleanEventStream(net);

  std::map<MhId, int> local_count;
  for (std::uint32_t s = 0; s < net.num_mss(); ++s) {
    for (const auto mh : net.mss(mss_id(s)).local_mhs()) {
      ++local_count[mh];
      EXPECT_EQ(net.current_mss_of(mh), mss_id(s)) << "list/state divergence";
    }
  }
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    const auto id = mh_id(i);
    if (net.mh(id).connected()) {
      EXPECT_EQ(local_count[id], 1) << to_string(id) << " in " << local_count[id]
                                    << " cells";
    } else {
      EXPECT_EQ(local_count[id], 0);
      if (net.is_disconnected(id)) {
        EXPECT_TRUE(net.mss(net.mh(id).last_mss()).has_disconnected_flag(id));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HandoffProperty,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77, 87, 97));

// ===========================================================================
// Property 4: mutual exclusion — safety, liveness, ordering for every
// algorithm, across seeds, under mobility, on both search substrates.
// ===========================================================================

enum class Algo { kL1, kL2, kR1, kR2Basic, kR2Counter, kR2List, kProxiedHome, kProxiedLocal };

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kL1: return "L1";
    case Algo::kL2: return "L2";
    case Algo::kR1: return "R1";
    case Algo::kR2Basic: return "R2";
    case Algo::kR2Counter: return "R2c";
    case Algo::kR2List: return "R2l";
    case Algo::kProxiedHome: return "ProxyHome";
    case Algo::kProxiedLocal: return "ProxyLocal";
  }
  return "?";
}

using MutexParam = std::tuple<Algo, std::uint64_t, net::SearchMode>;

class MutexProperty : public ::testing::TestWithParam<MutexParam> {};

TEST_P(MutexProperty, SafetyLivenessOrderingUnderMobility) {
  const auto [algo, seed, mode] = GetParam();
  auto cfg = small_config(4, 10);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 12;
  cfg.seed = seed;
  cfg.search = mode;
  Network net(cfg);
  CsMonitor monitor;

  // Build the algorithm under test.
  std::unique_ptr<mutex::L1Mutex> l1;
  std::unique_ptr<mutex::L2Mutex> l2;
  std::unique_ptr<mutex::R1Mutex> r1;
  std::unique_ptr<mutex::R2Mutex> r2;
  std::unique_ptr<proxy::ProxyService> proxies;
  std::unique_ptr<proxy::ProxiedLamport> proxied;
  std::function<void(MhId)> request;
  switch (algo) {
    case Algo::kL1:
      l1 = std::make_unique<mutex::L1Mutex>(net, monitor);
      request = [&l1](MhId mh) { l1->request(mh); };
      break;
    case Algo::kL2:
      l2 = std::make_unique<mutex::L2Mutex>(net, monitor);
      request = [&l2](MhId mh) { l2->request(mh); };
      break;
    case Algo::kR1:
      r1 = std::make_unique<mutex::R1Mutex>(net, monitor);
      request = [&r1](MhId mh) { r1->request(mh); };
      break;
    case Algo::kR2Basic:
    case Algo::kR2Counter:
    case Algo::kR2List: {
      const auto variant = algo == Algo::kR2Basic    ? RingVariant::kBasic
                           : algo == Algo::kR2Counter ? RingVariant::kCounter
                                                      : RingVariant::kTokenList;
      r2 = std::make_unique<mutex::R2Mutex>(net, monitor, variant);
      request = [&r2](MhId mh) { r2->request(mh); };
      break;
    }
    case Algo::kProxiedHome:
    case Algo::kProxiedLocal: {
      proxy::ProxyOptions opts;
      opts.scope = algo == Algo::kProxiedHome ? proxy::ProxyScope::kFixedHome
                                              : proxy::ProxyScope::kLocalMss;
      proxies = std::make_unique<proxy::ProxyService>(net, opts);
      proxied = std::make_unique<proxy::ProxiedLamport>(net, *proxies, monitor);
      request = [&proxied](MhId mh) { proxied->request(mh); };
      break;
    }
  }

  mobility::MobilityConfig mob;
  mob.mean_pause = 60;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob);

  constexpr std::uint32_t kRequests = 10;
  if (algo == Algo::kR1) {
    // R1 cannot accept requests from hosts that are mid-move when the
    // token arrives without stalling semantics; seed all requests before
    // the token and keep hosts still (its mobility weakness is measured
    // elsewhere — here we check pure safety/liveness).
    for (std::uint32_t i = 0; i < kRequests; ++i) request(mh_id(i));
  } else {
    driver.start();
  }

  net.start();
  if (algo == Algo::kR1) {
    net.sched().schedule(1, [&] { r1->start_token(2); });
  } else {
    for (std::uint32_t i = 0; i < kRequests; ++i) {
      net.sched().schedule(2 + 7 * i, [&request, i] { request(mh_id(i % 10)); });
    }
    if (r2) {
      // Circulate all run; only allow idle absorption once the whole
      // request schedule has certainly been submitted.
      net.sched().schedule(3, [&] { r2->start_token(100000); });
      net.sched().schedule(4000, [&] { r2->set_absorb_when_idle(true); });
    }
  }
  net.run();
  ExpectCleanEventStream(net);

  SCOPED_TRACE(algo_name(algo));
  EXPECT_EQ(monitor.violations(), 0u);
  EXPECT_EQ(monitor.grants(), kRequests);  // liveness: everyone served
  const bool lamport_family = algo == Algo::kL1 || algo == Algo::kL2 ||
                              algo == Algo::kProxiedHome || algo == Algo::kProxiedLocal;
  if (lamport_family) {
    EXPECT_EQ(monitor.order_inversions(), 0u);  // timestamp-order service
  }
  if (r2) {
    // R2'/R2'' cap: at most one grant per MH per traversal.
    if (algo != Algo::kR2Basic) {
      for (std::uint64_t traversal = 1; traversal <= r2->traversals_done() + 1;
           ++traversal) {
        for (std::uint32_t i = 0; i < 10; ++i) {
          EXPECT_LE(r2->grants_for(mh_id(i), traversal), 1u);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OracleSearch, MutexProperty,
    ::testing::Combine(::testing::Values(Algo::kL1, Algo::kL2, Algo::kR1, Algo::kR2Basic,
                                         Algo::kR2Counter, Algo::kR2List,
                                         Algo::kProxiedHome, Algo::kProxiedLocal),
                       ::testing::Values(1001, 2002, 3003, 4004),
                       ::testing::Values(net::SearchMode::kOracle)),
    [](const auto& info) {
      return algo_name(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    BroadcastSearch, MutexProperty,
    ::testing::Combine(::testing::Values(Algo::kL2, Algo::kR2Counter, Algo::kProxiedHome),
                       ::testing::Values(1001, 5005),
                       ::testing::Values(net::SearchMode::kBroadcast)),
    [](const auto& info) {
      return algo_name(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ===========================================================================
// Property 5: location view — convergence to ground truth and delivery
// guarantees across seeds and group shapes.
// ===========================================================================

using LvParam = std::tuple<std::uint64_t, std::uint32_t /*group size*/,
                           std::uint32_t /*num cells*/>;

class LocationViewProperty : public ::testing::TestWithParam<LvParam> {};

TEST_P(LocationViewProperty, ConvergesAndDeliversExactlyOnce) {
  const auto [seed, group_size, cells] = GetParam();
  auto cfg = small_config(cells, group_size + 4);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 8;
  cfg.seed = seed;
  Network net(cfg);
  std::vector<MhId> members;
  for (std::uint32_t i = 0; i < group_size; ++i) members.push_back(mh_id(i));
  const auto group = Group::of(members);
  LocationViewGroup comm(net, group);

  mobility::MobilityConfig mob;
  mob.mean_pause = 70;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 4;
  mobility::MobilityDriver driver(net, mob, group.members);
  net.start();
  driver.start();
  for (int i = 0; i < 12; ++i) {
    const auto sender = group.members[static_cast<std::size_t>(i) % group.size()];
    net.sched().schedule(25 + 35 * i, [&, sender] {
      if (net.mh(sender).connected()) comm.send_group_message(sender);
    });
  }
  net.run();
  ExpectCleanEventStream(net);

  // Delivery: every sent message reached every other member exactly once.
  EXPECT_EQ(comm.monitor().missing(group), 0u);
  EXPECT_EQ(comm.monitor().over_delivered(group), 0u);

  // Convergence: after quiescence the master view equals the true set of
  // member-hosting cells.
  std::set<MssId> truth;
  for (const auto member : group.members) truth.insert(net.mh(member).last_mss());
  EXPECT_TRUE(std::includes(comm.current_view().begin(), comm.current_view().end(),
                            truth.begin(), truth.end()))
      << "view misses a member cell";
}

INSTANTIATE_TEST_SUITE_P(Shapes, LocationViewProperty,
                         ::testing::Combine(::testing::Values(3, 11, 19, 29, 41),
                                            ::testing::Values(4u, 8u),
                                            ::testing::Values(6u, 10u)),
                         [](const auto& info) {
                           return "s" + std::to_string(std::get<0>(info.param)) + "_g" +
                                  std::to_string(std::get<1>(info.param)) + "_m" +
                                  std::to_string(std::get<2>(info.param));
                         });

// ===========================================================================
// Property 6: cost-formula agreement for L1/L2 across scales.
// ===========================================================================

using ScaleParam = std::tuple<std::uint32_t /*M*/, std::uint32_t /*N*/>;

class FormulaProperty : public ::testing::TestWithParam<ScaleParam> {};

TEST_P(FormulaProperty, L1AndL2LedgersMatchClosedForms) {
  const auto [m, n] = GetParam();
  const cost::CostParams p;
  {
    Network net(small_config(m, n));
    CsMonitor monitor;
    mutex::L1Mutex l1(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l1.request(mh_id(0)); });
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_DOUBLE_EQ(net.ledger().total(p), analysis::l1_execution_cost(n, p));
    EXPECT_EQ(net.ledger().wireless_msgs(), analysis::l1_wireless_hops(n));
  }
  {
    Network net(small_config(m, n));
    CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l2.request(mh_id(0)); });
    net.sched().schedule(4, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 2); });
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_DOUBLE_EQ(net.ledger().total(p), analysis::l2_execution_cost(m, p));
    EXPECT_EQ(net.ledger().wireless_msgs(), analysis::l2_wireless_msgs());
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, FormulaProperty,
                         ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u),
                                            ::testing::Values(8u, 24u, 48u)),
                         [](const auto& info) {
                           return "M" + std::to_string(std::get<0>(info.param)) + "_N" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace mobidist::test
