// src/exp unit + integration tests: scenario round-trips, grid
// expansion, deterministic seed derivation, thread-count-independent
// parallel execution, statistical aggregation, and the baseline
// regression gate (pass AND deliberate fail). The parallel suites carry
// the `sweep` ctest label so the TSan preset can select them.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/formulas.hpp"
#include "exp/exp.hpp"

namespace mobidist::test {
namespace {

using exp::MetricSummary;
using exp::ParallelRunner;
using exp::RunPlan;
using exp::ScenarioSpec;
using exp::SweepAxis;
using exp::SweepGrid;
using exp::SweepReport;

ScenarioSpec small_mutex_spec() {
  ScenarioSpec spec;
  spec.name = "exp_test";
  spec.workload = "mutex";
  spec.variant = "l2";
  spec.net.num_mss = 3;
  spec.net.num_mh = 6;
  spec.net.seed = 42;
  spec.params["requests"] = 4;
  spec.params["request_start"] = 1;
  spec.params["request_gap"] = 5;
  return spec;
}

// --- scenario specs --------------------------------------------------------

TEST(ExpScenario, ParsesEverySection) {
  const auto spec = exp::parse_scenario(R"({
    "name": "t", "workload": "ring", "variant": "r2p",
    "topology": {"num_mss": 4, "num_mh": 8, "seed": 9, "search": "broadcast"},
    "latency": {"wired": 5, "wireless_min": 1, "wireless_max": 3},
    "cost": {"c_search": 7.5},
    "fault": {"wireless_loss": 0.05, "crashes": [{"mss": 1, "at": 120, "down_for": 80}]},
    "mobility": {"enabled": 1, "mean_pause": 25},
    "params": {"requests": 6}
  })");
  EXPECT_EQ(spec.workload, "ring");
  EXPECT_EQ(spec.variant, "r2p");
  EXPECT_EQ(spec.net.num_mss, 4u);
  EXPECT_EQ(spec.net.num_mh, 8u);
  EXPECT_EQ(spec.net.seed, 9u);
  EXPECT_EQ(spec.net.search, net::SearchMode::kBroadcast);
  EXPECT_EQ(spec.net.latency.wired_min, 5u);
  EXPECT_EQ(spec.net.latency.wired_max, 5u);
  EXPECT_EQ(spec.net.latency.wireless_max, 3u);
  EXPECT_DOUBLE_EQ(spec.cost.c_search, 7.5);
  EXPECT_DOUBLE_EQ(spec.fault.wireless_loss, 0.05);
  ASSERT_EQ(spec.fault.crashes.size(), 1u);
  EXPECT_EQ(spec.fault.crashes[0].at, 120u);
  EXPECT_TRUE(spec.mobility);
  EXPECT_DOUBLE_EQ(spec.mob.mean_pause, 25.0);
  EXPECT_DOUBLE_EQ(spec.param("requests", 0), 6.0);
}

TEST(ExpScenario, JsonRoundTripIsStable) {
  auto spec = small_mutex_spec();
  spec.fault.wireless_loss = 0.1;
  spec.mobility = true;
  const auto text = exp::to_json(spec);
  const auto reparsed = exp::parse_scenario(text);
  EXPECT_EQ(exp::to_json(reparsed), text);
}

TEST(ExpScenario, FormationSectionRoundTrips) {
  const auto spec = exp::parse_scenario(R"({
    "name": "t", "workload": "mutex", "variant": "l2",
    "formation": {"flush_deadline": 16, "max_packet_msgs": 8, "max_packet_bytes": 2048}
  })");
  EXPECT_EQ(spec.net.formation.flush_deadline, 16u);
  EXPECT_EQ(spec.net.formation.max_packet_msgs, 8u);
  EXPECT_EQ(spec.net.formation.max_packet_bytes, 2048u);
  EXPECT_FALSE(spec.net.formation.passthrough());
  const auto text = exp::to_json(spec);
  const auto reparsed = exp::parse_scenario(text);
  EXPECT_EQ(exp::to_json(reparsed), text);

  // A passthrough config emits no formation section at all, keeping
  // pre-formation scenario files byte-stable.
  auto plain = small_mutex_spec();
  EXPECT_TRUE(plain.net.formation.passthrough());
  EXPECT_EQ(exp::to_json(plain).find("formation"), std::string::npos);
}

TEST(ExpScenario, MobilityModelSectionRoundTrips) {
  const auto spec = exp::parse_scenario(R"({
    "name": "t", "workload": "group_mobility", "variant": "location_view",
    "topology": {"num_mss": 8, "num_mh": 16},
    "mobility": {"enabled": 1, "pattern": "commuter", "regions": 8,
                 "phase_period": 400, "day_fraction": 0.25,
                 "crowd_fraction": 0.5, "crowd_period": 600, "crowd_dwell": 120,
                 "grid_width": 4}
  })");
  EXPECT_EQ(spec.mob.pattern, mobility::MovePattern::kCommuter);
  EXPECT_EQ(spec.mob.regions, 8u);
  EXPECT_EQ(spec.mob.phase_period, 400u);
  EXPECT_DOUBLE_EQ(spec.mob.day_fraction, 0.25);
  EXPECT_DOUBLE_EQ(spec.mob.crowd_fraction, 0.5);
  EXPECT_EQ(spec.mob.crowd_period, 600u);
  EXPECT_EQ(spec.mob.crowd_dwell, 120u);
  EXPECT_EQ(spec.mob.grid_width, 4u);
  const auto text = exp::to_json(spec);
  const auto reparsed = exp::parse_scenario(text);
  EXPECT_EQ(exp::to_json(reparsed), text);

  // Default model knobs emit nothing, keeping pre-library scenario
  // renderings byte-stable.
  auto plain = small_mutex_spec();
  plain.mobility = true;
  const auto plain_text = exp::to_json(plain);
  for (const char* key : {"phase_period", "crowd_fraction", "grid_width", "regions"}) {
    EXPECT_EQ(plain_text.find(key), std::string::npos) << key;
  }
}

TEST(ExpScenario, EveryPatternNameRoundTripsThroughJson) {
  for (const auto name : mobility::kMovePatternNames) {
    auto spec = small_mutex_spec();
    spec.mobility = true;
    spec.mob.pattern = *mobility::pattern_from_name(name);
    const auto reparsed = exp::parse_scenario(exp::to_json(spec));
    EXPECT_EQ(reparsed.mob.pattern, spec.mob.pattern) << name;
  }
}

TEST(ExpScenario, UnknownMobilityPatternEnumeratesTheValidNames) {
  try {
    exp::parse_scenario(R"({
      "name": "t", "workload": "mutex", "variant": "l2",
      "mobility": {"pattern": "teleport"}
    })");
    FAIL() << "unknown pattern was accepted";
  } catch (const std::runtime_error& err) {
    const std::string message = err.what();
    EXPECT_NE(message.find("teleport"), std::string::npos) << message;
    // The error must list every pattern the library accepts — pinned so
    // the message can never drift out of sync with kMovePatternNames.
    for (const auto name : mobility::kMovePatternNames) {
      EXPECT_NE(message.find(name), std::string::npos)
          << "missing '" << name << "' in: " << message;
    }
  }
}

TEST(ExpJson, FormatDoubleIsRoundTripExact) {
  // Shortest-round-trip formatting: parsing the text back must yield
  // the exact bits, independent of locale, for awkward values that
  // "%.6f" either truncated (1e-7 -> 0.000000) or bloated.
  for (const double v : {0.1, 1.0 / 3.0, 1e-7, 6.02214076e23, -2.5, 0.0, 1234567.25}) {
    const auto text = exp::json::format_double(v);
    EXPECT_EQ(std::stod(text), v) << text;
    EXPECT_EQ(text.find(','), std::string::npos) << "locale leaked into: " << text;
  }
  // Non-finite values are not valid JSON numbers; they serialize null.
  EXPECT_EQ(exp::json::format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(exp::json::format_double(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(ExpScenario, UnknownFieldThrows) {
  EXPECT_THROW(exp::parse_scenario(R"({"topology": {"num_mhs": 4}})"), std::runtime_error);
  EXPECT_THROW(exp::parse_scenario(R"({"wrokload": "mutex"})"), std::runtime_error);
}

// --- sweep grids -----------------------------------------------------------

TEST(ExpSweep, SeedDerivationIsDeterministicAndDistinct) {
  const auto a = exp::derive_seeds(42, 16);
  const auto b = exp::derive_seeds(42, 16);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) EXPECT_NE(a[i], a[j]);
  }
  EXPECT_NE(exp::derive_seeds(43, 1)[0], a[0]);
}

TEST(ExpSweep, ExpansionCrossesAxesWithSeedsInnermost) {
  SweepGrid grid;
  grid.seeds = {7, 8};
  grid.axes.push_back(SweepAxis::strings("variant", {"l1", "l2"}));
  grid.axes.push_back(SweepAxis::numbers("topology.num_mh", {6, 12}));
  const auto plans = grid.expand(small_mutex_spec());
  ASSERT_EQ(plans.size(), 8u);
  // Axes outermost-first, seeds innermost: runs of one cell are adjacent.
  EXPECT_EQ(plans[0].cell, plans[1].cell);
  EXPECT_NE(plans[1].cell, plans[2].cell);
  EXPECT_EQ(plans[0].seed, 7u);
  EXPECT_EQ(plans[1].seed, 8u);
  EXPECT_EQ(plans[0].spec.variant, "l1");
  EXPECT_EQ(plans[0].spec.net.num_mh, 6u);
  EXPECT_EQ(plans[7].spec.variant, "l2");
  EXPECT_EQ(plans[7].spec.net.num_mh, 12u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(plans[i].index, i);
    EXPECT_EQ(plans[i].spec.net.seed, plans[i].seed);
  }
}

TEST(ExpSweep, UnknownAxisKeyThrows) {
  SweepGrid grid;
  grid.seeds = {1};
  grid.axes.push_back(SweepAxis::numbers("topology.num_mhs", {4}));
  EXPECT_THROW((void)grid.expand(small_mutex_spec()), std::runtime_error);
}

// --- parallel runner -------------------------------------------------------

std::vector<RunPlan> smoke_plans() {
  SweepGrid grid;
  grid.seeds = exp::derive_seeds(1234, 4);
  grid.axes.push_back(SweepAxis::strings("variant", {"l1", "l2"}));
  return grid.expand(small_mutex_spec());
}

TEST(ExpRunner, ResultsIndependentOfThreadCount) {
  const auto plans = smoke_plans();
  const auto serial = ParallelRunner(1).run(plans);
  const auto parallel = ParallelRunner(4).run(plans);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(serial[i].cell, parallel[i].cell);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "plan " << i;
  }
  // The aggregated artifact is byte-identical too.
  SweepGrid grid;
  grid.seeds = exp::derive_seeds(1234, 4);
  const auto a = exp::aggregate("t", grid, plans, serial);
  const auto b = exp::aggregate("t", grid, plans, parallel);
  EXPECT_EQ(a.deterministic_json(), b.deterministic_json());
}

TEST(ExpRunner, BackToBackRunsAreIsolated) {
  // Same plan executed twice with an unrelated workload in between must
  // produce identical metrics — no state leaks between Network
  // instances or through any process-global.
  RunPlan plan;
  plan.spec = small_mutex_spec();
  plan.cell = "base";
  plan.seed = plan.spec.net.seed;
  const auto first = exp::run_scenario(plan);
  ASSERT_TRUE(first.ok) << first.error;

  RunPlan other;
  other.spec = small_mutex_spec();
  other.spec.workload = "ring";
  other.spec.variant = "r2";
  other.spec.params.clear();
  other.spec.params["requests"] = 3;
  other.cell = "other";
  other.seed = other.spec.net.seed;
  ASSERT_TRUE(exp::run_scenario(other).ok);

  const auto second = exp::run_scenario(plan);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(first.metrics, second.metrics);
}

// --- sharded-engine classification -----------------------------------------

ScenarioSpec small_scale_spec() {
  ScenarioSpec spec;
  spec.name = "exp_test_scale";
  spec.workload = "scale";
  spec.variant = "echo";
  spec.net.num_mss = 4;
  spec.net.num_mh = 8;
  spec.net.seed = 42;
  spec.params["pings"] = 6;
  spec.params["gap"] = 5;
  return spec;
}

TEST(ExpRunner, OnlyScaleIsShardSafe) {
  const auto& lib = exp::WorkloadLibrary::builtin();
  EXPECT_TRUE(lib.shard_safe("scale"));
  for (const auto& name : lib.names()) {
    if (name != "scale") {
      EXPECT_FALSE(lib.shard_safe(name)) << name << " marked shard-safe";
    }
  }
  EXPECT_FALSE(lib.shard_safe("no_such_workload"));
}

// A non-shard-safe workload must collapse --shards to the legacy engine:
// metrics identical to a shards=0 run, not an error and not a sharded
// run that would throw on the first move_to().
TEST(ExpRunner, ShardsCollapseToLegacyForUnsafeWorkloads) {
  RunPlan legacy;
  legacy.spec = small_mutex_spec();
  legacy.cell = "base";
  legacy.seed = legacy.spec.net.seed;
  const auto base = exp::run_scenario(legacy);
  ASSERT_TRUE(base.ok) << base.error;

  RunPlan sharded = legacy;
  sharded.spec.net.shards = 4;
  const auto collapsed = exp::run_scenario(sharded);
  ASSERT_TRUE(collapsed.ok) << collapsed.error;
  EXPECT_EQ(collapsed.metrics, base.metrics);
}

// The shard-safe workload really runs sharded — and its metrics are
// the same for every shard count (the per-plan statement of the
// shard_independence gate).
TEST(ExpRunner, ScaleMetricsIdenticalForEveryShardCount) {
  RunPlan plan;
  plan.spec = small_scale_spec();
  plan.cell = "base";
  plan.seed = plan.spec.net.seed;
  plan.spec.net.shards = 1;
  const auto s1 = exp::run_scenario(plan);
  ASSERT_TRUE(s1.ok) << s1.error;
  ASSERT_GT(s1.metrics.at("events.emitted"), 0.0);
  for (std::uint32_t shards : {2u, 4u, 8u}) {
    plan.spec.net.shards = shards;
    const auto sn = exp::run_scenario(plan);
    ASSERT_TRUE(sn.ok) << sn.error;
    EXPECT_EQ(sn.metrics, s1.metrics) << "shards=" << shards;
  }
}

TEST(ExpRunner, UnknownWorkloadFailsLoudly) {
  RunPlan plan;
  plan.spec = small_mutex_spec();
  plan.spec.workload = "no_such_workload";
  plan.cell = "base";
  const auto result = exp::run_scenario(plan);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no_such_workload"), std::string::npos);
}

// --- aggregation -----------------------------------------------------------

TEST(ExpAggregate, SummaryStatistics) {
  const auto s = MetricSummary::of({4, 2, 1, 3, 100});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);   // nearest rank: ceil(0.50 * 5) = 3rd
  EXPECT_DOUBLE_EQ(s.p99, 100.0); // nearest rank: ceil(0.99 * 5) = 5th
  EXPECT_NEAR(s.stddev, 43.6176, 1e-3);  // sample (n-1) stddev

  const auto single = MetricSummary::of({7});
  EXPECT_EQ(single.n, 1u);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_DOUBLE_EQ(single.p99, 7.0);
}

TEST(ExpAggregate, FailedRunsAreExcludedFromStats) {
  SweepGrid grid;
  grid.seeds = {1, 2, 3};
  RunPlan plan;
  plan.spec = small_mutex_spec();
  std::vector<RunPlan> plans;
  std::vector<exp::RunResult> results;
  for (std::uint64_t seed : grid.seeds) {
    plan.cell = "c";
    plan.seed = seed;
    plan.index = plans.size();
    plans.push_back(plan);
    exp::RunResult r;
    r.index = plan.index;
    r.cell = "c";
    r.seed = seed;
    if (seed == 2) {
      r.ok = false;
      r.error = "checker failed";
    } else {
      r.ok = true;
      r.metrics["m"] = static_cast<double>(seed * 10);
    }
    results.push_back(std::move(r));
  }
  const auto report = exp::aggregate("t", grid, plans, results);
  ASSERT_EQ(report.cells.size(), 1u);
  const auto& cell = report.cells[0];
  EXPECT_EQ(cell.failed, 1u);
  EXPECT_EQ(cell.seeds, (std::vector<std::uint64_t>{1, 3}));
  ASSERT_EQ(cell.errors.size(), 1u);
  ASSERT_EQ(cell.metrics.count("m"), 1u);
  EXPECT_DOUBLE_EQ(cell.metrics.at("m").mean, 20.0);
  EXPECT_EQ(cell.metrics.at("m").n, 2u);
}

// --- baseline regression gate ---------------------------------------------

SweepReport run_and_aggregate() {
  const auto plans = smoke_plans();
  const auto results = ParallelRunner(2).run(plans);
  SweepGrid grid;
  grid.seeds = exp::derive_seeds(1234, 4);
  return exp::aggregate("gate", grid, plans, results);
}

TEST(ExpBaseline, SelfComparisonPasses) {
  const auto report = run_and_aggregate();
  const auto baseline = exp::json::parse(report.deterministic_json());
  ASSERT_TRUE(baseline.has_value());
  const auto cmp = exp::compare_to_baseline(report, *baseline, 0.02);
  EXPECT_TRUE(cmp.ok()) << cmp.incompatibility;
  EXPECT_GT(cmp.metrics_compared, 0u);
}

TEST(ExpBaseline, DeliberateRegressionFails) {
  const auto report = run_and_aggregate();
  const auto baseline = exp::json::parse(report.deterministic_json());
  ASSERT_TRUE(baseline.has_value());
  auto drifted = report;
  ASSERT_FALSE(drifted.cells.empty());
  ASSERT_FALSE(drifted.cells[0].metrics.empty());
  auto& mean = drifted.cells[0].metrics.at("cost.total").mean;
  mean = mean * 1.5 + 10.0;
  const auto cmp = exp::compare_to_baseline(drifted, *baseline, 0.02);
  ASSERT_TRUE(cmp.compatible);
  ASSERT_FALSE(cmp.regressions.empty());
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.regressions[0].metric, "cost.total");
  EXPECT_GT(cmp.regressions[0].rel_delta, 0.02);
}

TEST(ExpBaseline, IncompatibleArtifactsAreRejectedNotPassed) {
  const auto report = run_and_aggregate();

  auto other_seeds = report;
  other_seeds.seeds.push_back(999);
  const auto seeds_baseline = exp::json::parse(other_seeds.deterministic_json());
  ASSERT_TRUE(seeds_baseline.has_value());
  const auto seeds_cmp = exp::compare_to_baseline(report, *seeds_baseline, 0.02);
  EXPECT_FALSE(seeds_cmp.compatible);
  EXPECT_FALSE(seeds_cmp.ok());

  auto text = report.deterministic_json();
  const auto pos = text.find("\"schema_version\":");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("\"schema_version\":1").size(), "\"schema_version\":99");
  const auto version_baseline = exp::json::parse(text);
  ASSERT_TRUE(version_baseline.has_value());
  const auto version_cmp = exp::compare_to_baseline(report, *version_baseline, 0.02);
  EXPECT_FALSE(version_cmp.compatible);
  EXPECT_NE(version_cmp.incompatibility.find("schema"), std::string::npos);
}

// --- closed forms vs swept empirical means ---------------------------------

/// The analysis formulas must agree with what the simulator actually
/// charges, measured as the empirical mean over a derived-seed sweep.
/// Latencies are pinned (min == max) so message *counts* are seed-free:
/// the sweep also proves that via stddev == 0.
TEST(ExpFormulasProperty, MutexCostsMatchClosedForms) {
  const cost::CostParams p;
  for (const std::uint32_t n : {6u, 12u, 24u}) {
    ScenarioSpec spec;
    spec.name = "prop";
    spec.workload = "mutex";
    spec.net.num_mss = 4;
    spec.net.num_mh = n;
    spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
    spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
    spec.net.latency.search_min = spec.net.latency.search_max = 4;
    spec.params["requests"] = 1;
    spec.params["request_start"] = 1;

    SweepGrid grid;
    grid.seeds = exp::derive_seeds(7, 5);
    grid.axes.push_back(SweepAxis::strings("variant", {"l1", "l2"}));
    // L2's closed form charges one release relay: the requester moves
    // between init and grant (e1's scripted move).
    auto l2_spec = spec;
    const auto plans = [&] {
      auto l1_plans = SweepGrid{grid.seeds, {SweepAxis::strings("variant", {"l1"})}}.expand(spec);
      l2_spec.variant = "l2";
      l2_spec.params["move_at"] = 4;
      l2_spec.params["move_to"] = 1;
      l2_spec.params["move_transit"] = 2;
      auto l2_plans = SweepGrid{grid.seeds, {}}.expand(l2_spec);
      for (auto& plan : l2_plans) {
        plan.cell = "l2";
        plan.index += l1_plans.size();
        l1_plans.push_back(plan);
      }
      return l1_plans;
    }();
    const auto results = ParallelRunner(0).run(plans);
    const auto report = exp::aggregate("prop", grid, plans, results);

    const auto* l1 = report.find_cell("variant=l1");
    ASSERT_NE(l1, nullptr);
    EXPECT_DOUBLE_EQ(l1->metrics.at("cost.total").mean, analysis::l1_execution_cost(n, p));
    EXPECT_DOUBLE_EQ(l1->metrics.at("cost.total").stddev, 0.0);
    EXPECT_DOUBLE_EQ(l1->metrics.at("ledger.wireless_msgs").mean,
                     static_cast<double>(analysis::l1_wireless_hops(n)));

    const auto* l2 = report.find_cell("l2");
    ASSERT_NE(l2, nullptr);
    EXPECT_DOUBLE_EQ(l2->metrics.at("cost.total").mean, analysis::l2_execution_cost(4, p));
    EXPECT_DOUBLE_EQ(l2->metrics.at("cost.total").stddev, 0.0);
  }
}

TEST(ExpFormulasProperty, RingTraversalCostMatchesClosedForm) {
  const cost::CostParams p;
  for (const std::uint32_t n : {4u, 8u, 16u}) {
    ScenarioSpec spec;
    spec.name = "prop";
    spec.workload = "ring";
    spec.variant = "r1";
    spec.net.num_mss = 4;
    spec.net.num_mh = n;
    spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
    spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
    spec.net.latency.search_min = spec.net.latency.search_max = 4;
    spec.params["traversals"] = 1;

    SweepGrid grid;
    grid.seeds = exp::derive_seeds(21, 5);
    const auto plans = grid.expand(spec);
    const auto results = ParallelRunner(0).run(plans);
    const auto report = exp::aggregate("prop", grid, plans, results);
    ASSERT_EQ(report.cells.size(), 1u);
    EXPECT_DOUBLE_EQ(report.cells[0].metrics.at("cost.total").mean,
                     analysis::r1_traversal_cost(n, p));
    EXPECT_DOUBLE_EQ(report.cells[0].metrics.at("cost.total").stddev, 0.0);
  }
}

/// The Lavault average is an *expectation over random request orders*;
/// a deterministic round-robin trickle concentrates well below it (the
/// tree collapses toward the rotating requesters). The property checked
/// against the swept empirical means is therefore two-sided where it
/// can be: the closed form bounds the measurement from above at every
/// M, and the measurement inherits the formula's sub-linear shape.
TEST(ExpFormulasProperty, PathRevWiredMessagesBoundedByClosedForm) {
  const cost::CostParams p;
  std::vector<double> empirical;
  const std::vector<std::uint32_t> backbones = {4, 8, 16, 32};
  for (const std::uint32_t m : backbones) {
    ScenarioSpec spec;
    spec.name = "prop";
    spec.workload = "mutex";
    spec.variant = "pathrev";
    spec.net.num_mss = m;
    spec.net.num_mh = m;
    spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
    spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
    spec.net.latency.search_min = spec.net.latency.search_max = 4;
    spec.params["requests"] = 16;
    spec.params["request_start"] = 1;
    spec.params["request_gap"] = 40;

    SweepGrid grid;
    grid.seeds = exp::derive_seeds(17, 5);
    const auto plans = grid.expand(spec);
    const auto results = ParallelRunner(0).run(plans);
    const auto report = exp::aggregate("prop", grid, plans, results);
    ASSERT_EQ(report.cells.size(), 1u);
    const auto& metrics = report.cells[0].metrics;
    EXPECT_DOUBLE_EQ(metrics.at("workload.completed").mean, 16.0);
    EXPECT_DOUBLE_EQ(metrics.at("mutex.cs_violations").mean, 0.0);
    const double per_entry = metrics.at("ledger.fixed_msgs").mean / 16.0;
    empirical.push_back(per_entry);
    // Pinned latencies + deterministic schedule: counts are seed-free.
    EXPECT_DOUBLE_EQ(metrics.at("ledger.fixed_msgs").stddev, 0.0);
    // The average-case closed form upper-bounds the trickle regime,
    // with slack for the concentration argument above.
    EXPECT_LE(per_entry, 2.5 * analysis::pathrev_avg_messages(m))
        << "per-entry wired messages above the Lavault bound at M=" << m;
    EXPECT_GT(per_entry, 0.0);
  }
  // Sub-linear shape: M grew 8x across the sweep; the per-entry wired
  // bill must grow by well under that (H_32/H_4 is ~1.9).
  EXPECT_LT(empirical.back(), 3.0 * empirical.front());

  // The formula itself: exact harmonic arithmetic.
  EXPECT_DOUBLE_EQ(analysis::harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(analysis::harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25);
  EXPECT_DOUBLE_EQ(analysis::pathrev_avg_messages(4), analysis::harmonic(4) + 1.0);
  EXPECT_DOUBLE_EQ(
      analysis::pathrev_entry_cost_bound(4, p),
      analysis::pathrev_avg_messages(4) * p.c_fixed + 3.0 * p.c_wireless + p.c_search);
}

TEST(ExpRunner, UnknownVariantEnumeratesTheValidNames) {
  RunPlan plan;
  plan.spec = small_mutex_spec();
  plan.spec.variant = "no_such_variant";
  plan.cell = "base";
  const auto result = exp::run_scenario(plan);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no_such_variant"), std::string::npos);
  // The error must list what the workload does accept.
  EXPECT_NE(result.error.find("l1"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("pathrev"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace mobidist::test
