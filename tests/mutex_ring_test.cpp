// Integration tests for the ring algorithms R1 and R2/R2'/R2'': traversal
// costs, the N×M racing behaviour, the R2' fairness cap, the R2''
// malicious-counter defence, and disconnect/doze handling.

#include <gtest/gtest.h>

#include "mobility/mobility_model.hpp"
#include "mutex/monitor.hpp"
#include "mutex/r1.hpp"
#include "mutex/r2.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using mutex::CsMonitor;
using mutex::MutexOptions;
using mutex::R1Mutex;
using mutex::R2Mutex;
using mutex::RingVariant;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

// --------------------------------------------------------------------------
// R1
// --------------------------------------------------------------------------

TEST(R1, IdleTraversalCostsExactlyNRelays) {
  constexpr std::uint32_t kN = 7;
  Network net(small_config(3, kN));
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { r1.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r1.token_absorbed());
  EXPECT_EQ(r1.traversals_done(), 1u);
  // N hops, each 2*c_wireless + c_search — with zero requests served.
  EXPECT_EQ(net.ledger().wireless_msgs(), 2u * kN);
  EXPECT_EQ(net.ledger().searches(), kN);
  EXPECT_EQ(net.ledger().fixed_msgs(), 0u);
  EXPECT_EQ(monitor.grants(), 0u);
}

TEST(R1, TraversalCostIndependentOfRequestsServed) {
  constexpr std::uint32_t kN = 6;
  auto run_with_requests = [&](std::uint32_t requesters) {
    Network net(small_config(3, kN));
    CsMonitor monitor;
    R1Mutex r1(net, monitor);
    net.start();
    for (std::uint32_t i = 0; i < requesters; ++i) r1.request(mh_id(i));
    net.sched().schedule(1, [&] { r1.start_token(1); });
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_EQ(monitor.grants(), requesters);
    EXPECT_EQ(monitor.violations(), 0u);
    return std::pair{net.ledger().wireless_msgs(), net.ledger().searches()};
  };
  const auto idle = run_with_requests(0);
  const auto busy = run_with_requests(kN);
  EXPECT_EQ(idle, busy);  // K does not appear in R1's cost
}

TEST(R1, ServesRequestsInRingOrder) {
  Network net(small_config(3, 5));
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  net.start();
  for (std::uint32_t i = 0; i < 5; ++i) r1.request(mh_id(i));
  net.sched().schedule(1, [&] { r1.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  ASSERT_EQ(monitor.grants(), 5u);
  EXPECT_EQ(monitor.order_inversions(), 0u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(monitor.history()[i].mh, mh_id(i));
  }
}

TEST(R1, EveryHostPaysEnergyEvenWithoutRequesting) {
  constexpr std::uint32_t kN = 6;
  Network net(small_config(3, kN));
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { r1.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  const cost::CostParams unit;
  for (std::uint32_t i = 0; i < kN; ++i) {
    // Receive once + transmit once per traversal.
    EXPECT_DOUBLE_EQ(net.ledger().energy_at(i, unit), 2.0) << "mh " << i;
  }
}

TEST(R1, InterruptsDozingHosts) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  net.start();
  net.mh(mh_id(3)).set_doze(true);  // no request, yet still interrupted
  net.sched().schedule(1, [&] { r1.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_GE(net.stats().doze_interruptions, 1u);
}

TEST(R1, DisconnectedHostParksTheToken) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(3)).disconnect(); });
  net.sched().schedule(5, [&] { r1.start_token(1); });
  net.sched().run_until(5000);
  EXPECT_FALSE(r1.token_absorbed());  // ring is stuck at mh3
  net.mh(mh_id(3)).reconnect_at(mss_id(0), 1);
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r1.token_absorbed());  // resumed after reconnect
}

TEST(R1, SafeUnderMobility) {
  auto cfg = small_config(4, 8);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  Network net(cfg);
  CsMonitor monitor;
  R1Mutex r1(net, monitor);
  mobility::MobilityConfig mob;
  mob.mean_pause = 50;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 8; i += 2) r1.request(mh_id(i));
  net.sched().schedule(1, [&] { r1.start_token(3); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r1.token_absorbed());
  EXPECT_EQ(monitor.grants(), 4u);
  EXPECT_EQ(monitor.violations(), 0u);
}

// --------------------------------------------------------------------------
// R2 family
// --------------------------------------------------------------------------

TEST(R2, IdleTraversalCostsExactlyMFixedMessages) {
  constexpr std::uint32_t kM = 5;
  Network net(small_config(kM, 10));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  net.sched().schedule(1, [&] { r2.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r2.token_absorbed());
  EXPECT_EQ(net.ledger().fixed_msgs(), kM);
  EXPECT_EQ(net.ledger().wireless_msgs(), 0u);
  EXPECT_EQ(net.ledger().searches(), 0u);
}

TEST(R2, MovedRequesterMatchesPaperPerRequestCost) {
  // One request, requester moves cells after requesting: cost must be
  // exactly 3*c_w + c_f + c_s on top of the M-message ring traversal.
  constexpr std::uint32_t kM = 4;
  auto cfg = small_config(kM, 8);
  cfg.latency.wired_min = cfg.latency.wired_max = 30;  // slow token
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  // Request at cell 1 (t=1), move to cell 2 before the token reaches
  // cell 1 (first hop takes 30 ticks).
  net.sched().schedule(1, [&] { r2.request(mh_id(1)); });
  net.sched().schedule(6, [&] { net.mh(mh_id(1)).move_to(mss_id(2), 3); });
  net.sched().schedule(12, [&] { r2.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 1u);
  EXPECT_EQ(net.ledger().wireless_msgs(), 3u);  // request + token out + token back
  EXPECT_EQ(net.ledger().searches(), 1u);
  EXPECT_EQ(net.ledger().fixed_msgs(), kM + 1);  // ring + token-return relay
  const cost::CostParams p;
  const double expected =
      (3 * p.c_wireless + p.c_fixed + p.c_search) + kM * p.c_fixed;
  EXPECT_DOUBLE_EQ(net.ledger().total(p), expected);
}

TEST(R2, CostScalesWithKNotN) {
  // Fix N, vary the number of requesters K: wireless/search charges grow
  // linearly in K while the ring cost stays M per traversal.
  constexpr std::uint32_t kM = 4, kN = 16;
  auto run_k = [&](std::uint32_t k) {
    Network net(small_config(kM, kN));
    CsMonitor monitor;
    R2Mutex r2(net, monitor, RingVariant::kBasic);
    net.start();
    for (std::uint32_t i = 0; i < k; ++i) r2.request(mh_id(i));
    net.sched().schedule(5, [&] { r2.start_token(1); });
    net.run();
    ExpectCleanEventStream(net);
    EXPECT_EQ(r2.completed(), k);
    return net.ledger();
  };
  const auto lk2 = run_k(2);
  const auto lk8 = run_k(8);
  EXPECT_EQ(lk2.wireless_msgs(), 3u * 2);
  EXPECT_EQ(lk8.wireless_msgs(), 3u * 8);
  EXPECT_EQ(lk2.searches(), 2u);
  EXPECT_EQ(lk8.searches(), 8u);
  EXPECT_EQ(lk2.fixed_msgs(), static_cast<std::uint64_t>(kM));
  EXPECT_EQ(lk8.fixed_msgs(), static_cast<std::uint64_t>(kM));
}

TEST(R2, GrantsAreMutuallyExclusive) {
  Network net(small_config(4, 12));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  for (std::uint32_t i = 0; i < 12; ++i) r2.request(mh_id(i));
  net.sched().schedule(5, [&] { r2.start_token(2); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(monitor.grants(), 12u);
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(R2, RequestsArrivingWhileTokenHeldWaitForNextTraversal) {
  auto cfg = small_config(3, 6);
  Network net(cfg);
  CsMonitor monitor;
  MutexOptions opts;
  opts.cs_hold = 100;  // keep the token busy at cell 0
  R2Mutex r2(net, monitor, RingVariant::kBasic, opts);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  // While mh0 holds the CS (token at cell 0), mh3 (also cell 0) submits.
  net.sched().schedule(60, [&] { r2.request(mh_id(3)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 2u);
  // mh3 was served with token_val 2 (second traversal), not 1.
  EXPECT_EQ(r2.grants_for(mh_id(3), 1), 0u);
  EXPECT_EQ(r2.grants_for(mh_id(3), 2), 1u);
}

TEST(R2, BasicVariantAllowsRacingAheadOfToken) {
  // The N×M phenomenon: a MH is served at cell 0, races to cell 1 ahead
  // of the token, requests again, and is served a second time within the
  // same traversal.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 60;  // slow ring hops
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(1); });
  // After the first grant completes (~t=20), hop to cell 1 and request
  // again before the token's 60-tick hop lands there.
  net.sched().schedule(30, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 3); });
  net.sched().schedule(40, [&] { r2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 2u);
  EXPECT_EQ(r2.grants_for(mh_id(0), 1), 2u);  // twice in traversal 1
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(R2Prime, CapsEachHostAtOncePerTraversal) {
  // Same racing schedule as above, but R2' defers the second request to
  // the next traversal.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 60;
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kCounter);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  net.sched().schedule(30, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 3); });
  net.sched().schedule(40, [&] { r2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 2u);
  EXPECT_EQ(r2.grants_for(mh_id(0), 1), 1u);  // capped in traversal 1
  EXPECT_EQ(r2.grants_for(mh_id(0), 2), 1u);  // served next time round
}

TEST(R2Prime, MaliciousCounterDefeatsTheCap) {
  // The attack the paper's "Variations" paragraph worries about: a MH
  // presenting access_count lower than its true value gets double
  // service under R2'.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 60;
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kCounter);
  r2.set_malicious(mh_id(0), true);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(1); });
  net.sched().schedule(30, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 3); });
  net.sched().schedule(40, [&] { r2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.grants_for(mh_id(0), 1), 2u);  // the lie worked
}

TEST(R2DoublePrime, TokenListBlocksMaliciousCounter) {
  // R2'' keeps the served list on the token itself; the lying MH is
  // refused until the token completes a full loop.
  auto cfg = small_config(3, 6);
  cfg.latency.wired_min = cfg.latency.wired_max = 60;
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kTokenList);
  r2.set_malicious(mh_id(0), true);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  net.sched().schedule(30, [&] { net.mh(mh_id(0)).move_to(mss_id(1), 3); });
  net.sched().schedule(40, [&] { r2.request(mh_id(0)); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 2u);
  EXPECT_EQ(r2.grants_for(mh_id(0), 1), 1u);  // blocked within the traversal
  EXPECT_EQ(r2.grants_for(mh_id(0), 2), 1u);
}

TEST(R2, DisconnectedRequesterIsSkippedAndRingContinues) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(2, [&] { r2.request(mh_id(1)); });
  net.sched().schedule(4, [&] { net.mh(mh_id(0)).disconnect(); });
  net.sched().schedule(20, [&] { r2.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r2.token_absorbed());
  EXPECT_EQ(r2.skipped_disconnected(), 1u);
  EXPECT_EQ(r2.completed(), 1u);  // mh1 still served
  EXPECT_EQ(monitor.violations(), 0u);
}

TEST(R2, DisconnectionOfNonRequesterIsInvisible) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  net.sched().schedule(1, [&] { net.mh(mh_id(4)).disconnect(); });
  net.sched().schedule(2, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(10, [&] { r2.start_token(1); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r2.token_absorbed());
  EXPECT_EQ(r2.completed(), 1u);
  EXPECT_EQ(r2.skipped_disconnected(), 0u);
}

TEST(R2, DozingNonRequesterIsNeverInterrupted) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  net.start();
  net.mh(mh_id(3)).set_doze(true);
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(net.stats().doze_interruptions, 0u);
}

TEST(R2, AbsorbWhenIdleStopsEarly) {
  Network net(small_config(3, 6));
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kBasic);
  r2.set_absorb_when_idle(true);
  net.start();
  net.sched().schedule(1, [&] { r2.request(mh_id(0)); });
  net.sched().schedule(5, [&] { r2.start_token(1000); });
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_TRUE(r2.token_absorbed());
  EXPECT_EQ(r2.completed(), 1u);
  EXPECT_LT(net.ledger().fixed_msgs(), 20u);  // did not spin 1000 loops
}

TEST(R2, SafeUnderMobilityAndManyRequests) {
  auto cfg = small_config(4, 16);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  Network net(cfg);
  CsMonitor monitor;
  R2Mutex r2(net, monitor, RingVariant::kCounter);
  mobility::MobilityConfig mob;
  mob.mean_pause = 40;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 5;
  mobility::MobilityDriver driver(net, mob);
  net.start();
  driver.start();
  for (std::uint32_t i = 0; i < 16; ++i) {
    net.sched().schedule(2 + 5 * i, [&, i] { r2.request(mh_id(i)); });
  }
  net.sched().schedule(10, [&] { r2.start_token(50); });
  r2.set_absorb_when_idle(true);
  net.run();
  ExpectCleanEventStream(net);
  EXPECT_EQ(r2.completed(), 16u);
  EXPECT_EQ(monitor.violations(), 0u);
  // R2' invariant across the whole run.
  for (std::uint64_t traversal = 1; traversal <= r2.traversals_done() + 1; ++traversal) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      EXPECT_LE(r2.grants_for(mh_id(i), traversal), 1u);
    }
  }
}

}  // namespace
}  // namespace mobidist::test
