// Whole-system integration: every protocol in the library running
// together on one network — L2 mutual exclusion, an R2' token ring, a
// location-view group, multicast, and Lamport-over-proxies — under
// shared mobility and disconnections. Verifies the protocols do not
// interfere (distinct protocol ids, shared substrate, one cost ledger).

#include <gtest/gtest.h>

#include "group/location_view.hpp"
#include "mobility/mobility_model.hpp"
#include "multicast/multicast.hpp"
#include "mutex/l2.hpp"
#include "mutex/r2.hpp"
#include "proxy/static_algorithm.hpp"
#include "test_support.hpp"

namespace mobidist::test {
namespace {

using group::Group;

MssId mss_id(std::uint32_t i) { return static_cast<MssId>(i); }
MhId mh_id(std::uint32_t i) { return static_cast<MhId>(i); }

TEST(Integration, AllProtocolsCoexistOnOneNetwork) {
  auto cfg = small_config(6, 24);
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 10;
  cfg.seed = 86420;
  Network net(cfg);

  // Two independent mutual-exclusion domains.
  mutex::CsMonitor l2_monitor;
  mutex::L2Mutex l2(net, l2_monitor);
  mutex::CsMonitor ring_monitor;
  mutex::R2Mutex ring(net, ring_monitor, mutex::RingVariant::kCounter);

  // A location-view group over six of the hosts.
  const auto group = Group::of(
      {mh_id(0), mh_id(1), mh_id(2), mh_id(6), mh_id(7), mh_id(8)});
  group::LocationViewGroup lv(net, group);

  // Multicast to four hosts (overlapping the group).
  const auto listeners = Group::of({mh_id(1), mh_id(2), mh_id(3), mh_id(4)});
  multicast::McastService mcast(net, listeners);

  // Lamport-over-proxies for everyone.
  proxy::ProxyOptions popts;
  popts.scope = proxy::ProxyScope::kFixedHome;
  proxy::ProxyService proxies(net, popts);
  mutex::CsMonitor proxy_monitor;
  proxy::ProxiedLamport plamport(net, proxies, proxy_monitor);

  // Background churn over all hosts.
  mobility::MobilityConfig mob;
  mob.mean_pause = 60;
  mob.mean_transit = 6;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob);

  net.start();
  driver.start();

  for (std::uint32_t i = 0; i < 8; ++i) {
    net.sched().schedule(3 + 11 * i, [&, i] { l2.request(mh_id(i)); });
    net.sched().schedule(7 + 13 * i, [&, i] { ring.request(mh_id(8 + i)); });
    net.sched().schedule(11 + 17 * i, [&, i] { plamport.request(mh_id(16 + i)); });
  }
  for (int i = 0; i < 6; ++i) {
    const auto sender = group.members[static_cast<std::size_t>(i) % group.size()];
    net.sched().schedule(20 + 45 * i, [&, sender] {
      if (net.mh(sender).connected()) lv.send_group_message(sender);
    });
    net.sched().schedule(30 + 45 * i, [&, i] {
      mcast.publish(mss_id(static_cast<std::uint32_t>(i) % 6));
    });
  }
  net.sched().schedule(5, [&] { ring.start_token(100000); });
  net.sched().schedule(3000, [&] { ring.set_absorb_when_idle(true); });

  const auto events = net.run();
  ExpectCleanEventStream(net);
  ASSERT_FALSE(net.sched().hit_event_limit());
  EXPECT_GT(events, 1000u);

  // Each domain upheld its own guarantees.
  EXPECT_EQ(l2.completed(), 8u);
  EXPECT_EQ(l2_monitor.violations(), 0u);
  EXPECT_EQ(l2_monitor.order_inversions(), 0u);
  EXPECT_EQ(ring.completed(), 8u);
  EXPECT_EQ(ring_monitor.violations(), 0u);
  EXPECT_EQ(plamport.completed(), 8u);
  EXPECT_EQ(proxy_monitor.violations(), 0u);
  EXPECT_EQ(lv.monitor().missing(group), 0u);
  EXPECT_EQ(lv.monitor().over_delivered(group), 0u);
  EXPECT_EQ(mcast.monitor().missing(listeners), 0u);
  EXPECT_EQ(mcast.monitor().over_delivered(listeners), 0u);

  // The two mutex domains are independent: both had their own holders,
  // potentially overlapping in time, without tripping either monitor.
  EXPECT_EQ(l2_monitor.grants(), 8u);
  EXPECT_EQ(ring_monitor.grants(), 8u);
}

TEST(Integration, DeterministicEndToEnd) {
  auto run_once = [] {
    auto cfg = small_config(5, 15);
    cfg.latency.wired_min = 1;
    cfg.latency.wired_max = 9;
    cfg.seed = 13579;
    Network net(cfg);
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    const auto group = Group::of({mh_id(0), mh_id(1), mh_id(2), mh_id(3)});
    group::LocationViewGroup lv(net, group);
    mobility::MobilityConfig mob;
    mob.mean_pause = 40;
    mob.max_moves_per_host = 4;
    mobility::MobilityDriver driver(net, mob);
    net.start();
    driver.start();
    for (std::uint32_t i = 0; i < 15; ++i) {
      net.sched().schedule(2 + 5 * i, [&, i] { l2.request(mh_id(i)); });
    }
    for (int i = 0; i < 5; ++i) {
      net.sched().schedule(15 + 30 * i, [&, i] {
        const auto sender = group.members[static_cast<std::size_t>(i) % 4];
        if (net.mh(sender).connected()) lv.send_group_message(sender);
      });
    }
    net.run();
    ExpectCleanEventStream(net);
    return std::tuple{net.ledger().fixed_msgs(), net.ledger().wireless_msgs(),
                      net.ledger().searches(), net.sched().fired(),
                      monitor.grants(), lv.significant_moves()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mobidist::test
