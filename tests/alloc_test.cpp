// Heap-allocation accounting for the simulation hot path. This suite
// lives in its own binary because it replaces the global operator new /
// delete with counting wrappers; the counters let tests assert that the
// scheduler's schedule -> fire cycle and Body's small-buffer payloads
// perform no heap traffic at steady state.

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "net/body.hpp"
#include "obs/events.hpp"
#include "sim/scheduler.hpp"

namespace {

std::uint64_t g_news = 0;  // single-threaded tests: plain counter is enough

void* counted_alloc(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_news;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace mobidist::test {
namespace {

/// Allocations performed while running `fn`.
template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_news;
  fn();
  return g_news - before;
}

TEST(AllocCounting, HookSeesPlainNew) {
  const auto count = allocations_during([] {
    delete new int(7);  // NOLINT: exercising the counting hook itself
  });
  EXPECT_GE(count, 1u);
}

// The tentpole claim: once the slot pool and heap array have grown to
// the working set (one warm-up round), scheduling and firing events
// whose captures fit SmallFn's inline buffer is allocation-free.
TEST(SchedulerHotPath, ScheduleAndFireDoNotAllocateAfterWarmup) {
  sim::Scheduler sched;
  constexpr int kBatch = 64;
  constexpr int kRounds = 100;
  std::uint64_t fired = 0;

  auto one_round = [&](sim::Duration base) {
    for (int i = 0; i < kBatch; ++i) {
      sched.schedule(base + i, [&fired] { ++fired; });
    }
    sched.run_until(sched.now() + base + kBatch);
  };

  one_round(1);  // warm-up: grows slots_ / heap_ to the working set
  const auto count = allocations_during([&] {
    for (int round = 0; round < kRounds; ++round) one_round(1);
  });

  EXPECT_EQ(count, 0u) << "schedule/fire hot path allocated";
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kBatch) * (kRounds + 1));
}

// Cancelling must not allocate either (it only destroys the callback
// in place and flips the slot's tombstone).
TEST(SchedulerHotPath, CancelDoesNotAllocateAfterWarmup) {
  sim::Scheduler sched;
  // Warm-up must cover a full corpse-accumulation + compaction cycle so
  // the heap array reaches its steady-state capacity.
  for (int i = 0; i < 256; ++i) {
    auto h = sched.schedule(1000, [] {});
    ASSERT_TRUE(sched.cancel(h));
  }

  const auto count = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      auto h = sched.schedule(1000, [] {});
      sched.cancel(h);
    }
  });
  EXPECT_EQ(count, 0u) << "schedule/cancel churn allocated";
}

// Regression test for the tombstone memory-growth bug: before the 4-ary
// heap rewrite, cancelled events stayed queued until their firing time,
// so schedule-then-cancel churn of far-future timers grew the queue
// without bound. Compaction must keep the heap proportional to the
// *live* count no matter how many corpses accumulate.
TEST(SchedulerCancel, FarFutureTombstonesKeepQueueBounded) {
  sim::Scheduler sched;
  constexpr sim::SimTime kFarFuture = 1'000'000'000;
  constexpr int kChurn = 100'000;
  constexpr std::size_t kLiveFloor = 8;

  // A handful of genuinely live timers so compaction has survivors.
  for (std::size_t i = 0; i < kLiveFloor; ++i) {
    sched.schedule_at(kFarFuture + static_cast<sim::Duration>(i), [] {});
  }

  std::size_t max_depth = 0;
  for (int i = 0; i < kChurn; ++i) {
    auto h = sched.schedule_at(kFarFuture / 2, [] {});
    ASSERT_TRUE(sched.cancel(h));
    max_depth = std::max(max_depth, sched.queue_depth());
  }

  EXPECT_EQ(sched.pending(), kLiveFloor);
  // queue_depth() <= 2 * pending() + compaction floor (64), with a
  // little slack for the transient right after a compaction pass.
  EXPECT_LE(max_depth, 2 * kLiveFloor + 128)
      << "cancelled far-future timers accumulated in the queue";
}

// Body's small-buffer payloads: wrap + copy + read of anything within
// kInlineCapacity is heap-free (the substrate copies envelopes on the
// retransmission path, so this is hot).
TEST(BodyAlloc, InlinePayloadsDoNotAllocate) {
  struct Payload {
    std::uint64_t a = 1;
    std::uint64_t b = 2;
    std::uint64_t c = 3;
  };
  static_assert(sizeof(Payload) <= net::Body::kInlineCapacity);

  const auto count = allocations_during([] {
    for (int i = 0; i < 1000; ++i) {
      net::Body body(Payload{static_cast<std::uint64_t>(i), 0, 0});
      net::Body copy = body;  // envelope copy on the retry path
      const auto* read = copy.get<Payload>();
      ASSERT_NE(read, nullptr);
      ASSERT_EQ(read->a, static_cast<std::uint64_t>(i));
    }
  });
  EXPECT_EQ(count, 0u) << "inline Body payloads allocated";
}

// The binary-telemetry claim: with tracing ON (the binlog ring is the
// stream's storage and an observer sink is attached), steady-state
// emission is allocation-free. Steady state = the interner has seen
// every distinct detail tag once and the per-entity counter vectors
// have grown to the entity working set; after that, emit() is a hash
// lookup, a stack Event, and a 64-byte ring store — including across
// ring wrap, whose eviction is a plain overwrite.
TEST(EventStreamAlloc, SteadyStateEmitDoesNotAllocateWithTracingOn) {
  obs::EventStream stream(256);  // small ring: the gate spans many wraps
  std::uint64_t sink_calls = 0;
  stream.set_sink([&sink_calls](const obs::Event&) { ++sink_calls; });

  constexpr std::string_view kTags[] = {"R2'", "broadcast", "L1", ""};
  auto emit_round = [&](sim::SimTime base) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      obs::EventStream::Emit spec;
      spec.kind = i % 2 == 0 ? obs::EventKind::kSend : obs::EventKind::kRecv;
      spec.entity = obs::Entity::mss(i % 8);
      spec.peer = obs::Entity::mh(i % 16);
      spec.channel = i % 4;
      spec.arg = i;
      spec.detail = kTags[i % 4];
      spec.cause = stream.emitted();  // chain to the previous event
      stream.emit(base + i, spec);
    }
  };

  emit_round(0);  // warm-up: interns the tags, grows the counter vectors
  const auto count = allocations_during([&] {
    for (int round = 1; round <= 100; ++round) emit_round(round * 64);
  });

  EXPECT_EQ(count, 0u) << "steady-state emit allocated with tracing on";
  EXPECT_EQ(sink_calls, 101u * 64u);
  EXPECT_GT(stream.dropped(), 0u) << "gate must cover ring wrap";
  EXPECT_EQ(stream.emitted(), 101u * 64u);
}

// The sharded-engine claim: telemetry is shard-local (one ring, one
// interner, one counter set per shard slice, merged only at snapshot),
// so steady-state emission stays allocation-free on EVERY shard's
// stream simultaneously — there is no shared sink, lock, or queue whose
// growth could reintroduce heap traffic as shards are added.
TEST(EventStreamAlloc, PerShardSteadyStateEmitDoesNotAllocate) {
  constexpr std::uint32_t kShards = 4;
  std::vector<obs::EventStream> streams;
  streams.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) streams.emplace_back(256);

  auto emit_round = [&](sim::SimTime base) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      // Lane -> shard exactly as the network maps them: lane % kShards.
      auto& stream = streams[i % kShards];
      obs::EventStream::Emit spec;
      spec.kind = i % 2 == 0 ? obs::EventKind::kSend : obs::EventKind::kRecv;
      spec.entity = obs::Entity::mss(i % 8);
      spec.peer = obs::Entity::mh(i % 16);
      spec.channel = i % 4;
      spec.detail = "shard";
      stream.emit(base + i, spec);
    }
  };

  emit_round(0);  // warm-up: per-shard interners and counter vectors
  const auto count = allocations_during([&] {
    for (int round = 1; round <= 100; ++round) emit_round(round * 64);
  });
  EXPECT_EQ(count, 0u) << "per-shard steady-state emit allocated";
  for (const auto& stream : streams) {
    EXPECT_EQ(stream.emitted(), 101u * 16u);
    EXPECT_GT(stream.dropped(), 0u) << "gate must cover ring wrap on every shard";
  }
}

// The combined simulation hot loop: scheduler fire -> event emission,
// the path every simulated message takes. Both halves warm, the whole
// cycle must stay heap-free.
TEST(EventStreamAlloc, SchedulerDrivenEmitDoesNotAllocateAfterWarmup) {
  sim::Scheduler sched;
  obs::EventStream stream(256);

  auto one_round = [&](sim::Duration base) {
    for (int i = 0; i < 64; ++i) {
      sched.schedule(base + i, [&stream, i] {
        obs::EventStream::Emit spec;
        spec.kind = obs::EventKind::kSend;
        spec.entity = obs::Entity::mss(static_cast<std::uint32_t>(i % 4));
        spec.detail = "hot";
        stream.emit(0, spec);
      });
    }
    sched.run_until(sched.now() + base + 64);
  };

  one_round(1);  // warm-up for scheduler slots, interner, counters
  const auto count = allocations_during([&] {
    for (int round = 0; round < 100; ++round) one_round(1);
  });
  EXPECT_EQ(count, 0u) << "scheduler-driven emit hot path allocated";
  EXPECT_EQ(stream.emitted(), 101u * 64u);
}

}  // namespace
}  // namespace mobidist::test
