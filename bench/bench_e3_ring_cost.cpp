// E3 (§3.1.2 "Communication costs" + "Comparison of R1 and R2").
//
//   R1: one traversal costs N*(2*c_w + c_s), independent of how many
//       requests it serves — even an idle ring drains every battery.
//   R2: K requests cost K*(3*c_w + c_f + c_s) + M*c_f per traversal —
//       search cost proportional to K, plus a cheap fixed ring.
//
// Two tables: traversal cost vs N (R1, K=0 and K=N) and cost vs K (R2),
// then the crossover sweep the comparison paragraph implies.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec base_spec(const std::string& variant, std::uint32_t m, std::uint32_t n,
                            std::uint32_t k) {
  exp::ScenarioSpec spec;
  spec.name = "e3_ring_cost";
  spec.workload = "ring";
  spec.variant = variant;
  spec.net.num_mss = m;
  spec.net.num_mh = n;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  spec.net.seed = 21;
  // Requests land at t=0, before the token starts circulating.
  spec.params["requests"] = k;
  spec.params["traversals"] = 1;
  return spec;
}

}  // namespace

int main() {
  const cost::CostParams p;

  bench::Sections sweep("e3_ring_cost");
  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    sweep.add("r1_n" + std::to_string(n) + "_k0", base_spec("r1", 4, n, 0));
    sweep.add("r1_n" + std::to_string(n) + "_kn", base_spec("r1", 4, n, n));
  }
  for (const std::uint32_t k : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    sweep.add("r2_k" + std::to_string(k), base_spec("r2", 4, 64, k));
  }
  for (const std::uint32_t k : {1u, 4u, 8u, 16u, 24u, 32u}) {
    sweep.add("x_r2_k" + std::to_string(k), base_spec("r2", 4, 32, k));
  }
  sweep.run();

  std::cout << "E3: token-ring traversal costs (c_fixed=" << p.c_fixed
            << ", c_wireless=" << p.c_wireless << ", c_search=" << p.c_search << ")\n\n";

  std::cout << "R1: one traversal, idle vs fully loaded (cost independent of K):\n";
  core::Table r1_table({"N", "sim K=0", "sim K=N", "formula N(2cw+cs)"});
  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    const std::string base = "r1_n" + std::to_string(n);
    r1_table.row({core::num(n), core::num(sweep.metric(base + "_k0", "cost.total")),
                  core::num(sweep.metric(base + "_kn", "cost.total")),
                  core::num(analysis::r1_traversal_cost(n, p))});
  }
  r1_table.print(std::cout);

  std::cout << "\nR2 (M = 4, N = 64): cost grows with requests served K:\n";
  core::Table r2_table({"K", "sim", "formula K(3cw+cf+cs)+Mcf"});
  for (const std::uint32_t k : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    r2_table.row({core::num(k), core::num(sweep.metric("r2_k" + std::to_string(k), "cost.total")),
                  core::num(analysis::r2_cost(k, 4, p))});
  }
  r2_table.print(std::cout);

  std::cout << "\nCrossover (N = 32, M = 4): R2 wins until K makes its per-request\n"
               "search bill exceed R1's flat traversal cost:\n";
  core::Table crossover({"K", "R1 sim", "R2 sim", "winner"});
  const double r1_flat = sweep.metric("r1_n32_k0", "cost.total");
  for (const std::uint32_t k : {1u, 4u, 8u, 16u, 24u, 32u}) {
    const double r2_cost = sweep.metric("x_r2_k" + std::to_string(k), "cost.total");
    crossover.row({core::num(k), core::num(r1_flat), core::num(r2_cost),
                   r2_cost < r1_flat ? "R2" : "R1"});
  }
  crossover.print(std::cout);

  std::cout << "\nNote: R1's number is per traversal whether or not anyone asked;\n"
               "R2 additionally never interrupts non-requesting (dozing) MHs.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
