// E3 (§3.1.2 "Communication costs" + "Comparison of R1 and R2").
//
//   R1: one traversal costs N*(2*c_w + c_s), independent of how many
//       requests it serves — even an idle ring drains every battery.
//   R2: K requests cost K*(3*c_w + c_f + c_s) + M*c_f per traversal —
//       search cost proportional to K, plus a cheap fixed ring.
//
// Two tables: traversal cost vs N (R1, K=0 and K=N) and cost vs K (R2),
// then the crossover sweep the comparison paragraph implies.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::NetConfig;
using net::Network;

NetConfig base_config(std::uint32_t m, std::uint32_t n) {
  NetConfig cfg;
  cfg.num_mss = m;
  cfg.num_mh = n;
  cfg.latency.wired_min = cfg.latency.wired_max = 5;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 2;
  cfg.latency.search_min = cfg.latency.search_max = 4;
  cfg.seed = 21;
  return cfg;
}

double run_r1(std::uint32_t n, std::uint32_t k, const cost::CostParams& p,
              core::BenchReport& report) {
  Network net(base_config(4, n));
  mutex::CsMonitor monitor;
  mutex::R1Mutex r1(net, monitor);
  net.start();
  for (std::uint32_t i = 0; i < k; ++i) r1.request(MhId(i));
  net.sched().schedule(1, [&] { r1.start_token(1); });
  net.run();
  report.add_run("r1_n" + std::to_string(n) + "_k" + std::to_string(k), net, p);
  return net.ledger().total(p);
}

double run_r2(std::uint32_t m, std::uint32_t n, std::uint32_t k, const cost::CostParams& p,
              core::BenchReport& report) {
  Network net(base_config(m, n));
  mutex::CsMonitor monitor;
  mutex::R2Mutex r2(net, monitor, mutex::RingVariant::kBasic);
  net.start();
  for (std::uint32_t i = 0; i < k; ++i) r2.request(MhId(i));
  net.sched().schedule(5, [&] { r2.start_token(1); });
  net.run();
  report.add_run("r2_m" + std::to_string(m) + "_n" + std::to_string(n) + "_k" +
                     std::to_string(k),
                 net, p);
  return net.ledger().total(p);
}

}  // namespace

int main() {
  const cost::CostParams p;
  core::BenchReport report("e3_ring_cost");
  report.note("sweep", "R1 traversal cost over N, R2 cost over K, crossover at N=32");
  std::cout << "E3: token-ring traversal costs (c_fixed=" << p.c_fixed
            << ", c_wireless=" << p.c_wireless << ", c_search=" << p.c_search << ")\n\n";

  std::cout << "R1: one traversal, idle vs fully loaded (cost independent of K):\n";
  core::Table r1_table({"N", "sim K=0", "sim K=N", "formula N(2cw+cs)"});
  for (const std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    r1_table.row({core::num(n), core::num(run_r1(n, 0, p, report)), core::num(run_r1(n, n, p, report)),
                  core::num(analysis::r1_traversal_cost(n, p))});
  }
  r1_table.print(std::cout);

  std::cout << "\nR2 (M = 4, N = 64): cost grows with requests served K:\n";
  core::Table r2_table({"K", "sim", "formula K(3cw+cf+cs)+Mcf"});
  for (const std::uint32_t k : {0u, 1u, 2u, 4u, 8u, 16u, 32u}) {
    r2_table.row({core::num(k), core::num(run_r2(4, 64, k, p, report)),
                  core::num(analysis::r2_cost(k, 4, p))});
  }
  r2_table.print(std::cout);

  std::cout << "\nCrossover (N = 32, M = 4): R2 wins until K makes its per-request\n"
               "search bill exceed R1's flat traversal cost:\n";
  core::Table crossover({"K", "R1 sim", "R2 sim", "winner"});
  const double r1_flat = run_r1(32, 0, p, report);
  for (const std::uint32_t k : {1u, 4u, 8u, 16u, 24u, 32u}) {
    const double r2_cost = run_r2(4, 32, k, p, report);
    crossover.row({core::num(k), core::num(r1_flat), core::num(r2_cost),
                   r2_cost < r1_flat ? "R2" : "R1"});
  }
  crossover.print(std::cout);

  std::cout << "\nNote: R1's number is per traversal whether or not anyone asked;\n"
               "R2 additionally never interrupts non-requesting (dozing) MHs.\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
