// E10 (ROADMAP "grow the mutex family").
//
// Path-reversal (Naimi–Trehel) token mutex on the MSS tier versus the
// paper's own families, swept over backbone size M. The ring token
// burns traversals * M wired hops whether or not anyone wants the CS,
// and L2 broadcasts its request/release chatter to all M-1 peers; the
// path-reversal tree instead forwards each claim along ever-collapsing
// father pointers, so the wired bill per CS entry tracks Lavault's
// H_M + 1 average — O(log M) — instead of O(M). The bench pins a
// sparse request trickle (the regime the ring is worst at), computes
// just enough token fuel for the ring cells to stay live through the
// request window, and gates three claims in-binary: every cell serves
// all K requests; the pathrev wired bill grows sub-linearly in M; and
// at M=64 pathrev beats the best ring variant on wired messages.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

const std::vector<std::uint64_t> kSeeds = {31, 32, 33};
const std::vector<std::uint32_t> kBackbones = {4, 16, 64};
constexpr std::uint64_t kRequests = 16;
constexpr std::uint64_t kGap = 40;
// The request window: last request fires at 1 + (K-1)*gap, returns
// trail a few wireless hops behind.
constexpr std::uint64_t kWindow = kRequests * kGap;
constexpr std::uint64_t kWiredLatency = 5;

exp::ScenarioSpec base_spec(const std::string& workload, const std::string& variant,
                            std::uint32_t m) {
  exp::ScenarioSpec spec;
  spec.name = "e10_pathrev";
  spec.workload = workload;
  spec.variant = variant;
  spec.net.num_mss = m;
  spec.net.num_mh = m;  // one host per cell; requests round-robin
  spec.net.latency.wired_min = spec.net.latency.wired_max = kWiredLatency;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  spec.net.latency.broadcast_retry = 1000;
  spec.params["requests"] = static_cast<double>(kRequests);
  spec.params["request_start"] = 1;
  spec.params["request_gap"] = static_cast<double>(kGap);
  return spec;
}

exp::ScenarioSpec ring_spec(const std::string& variant, std::uint32_t m) {
  auto spec = base_spec("ring", variant, m);
  // Just enough token fuel to outlive the request window (one traversal
  // is M wired hops of kWiredLatency each), plus slack for the grants
  // themselves. Absorbing the token when idle would kill it mid-trickle
  // — the sparse regime is exactly where the ring pays full freight.
  spec.params["token_at"] = 1;
  spec.params["traversals"] =
      static_cast<double>(kWindow / (kWiredLatency * m) + 4);
  return spec;
}

std::string cell(const std::string& family, std::uint32_t m) {
  return family + "_m" + std::to_string(m);
}

const std::vector<std::string> kRingFamilies = {"r2", "r2p", "r2pp"};

}  // namespace

int main() {
  const cost::CostParams p;

  bench::Sections sweep("pathrev");
  for (const std::uint32_t m : kBackbones) {
    sweep.add(cell("pathrev", m), base_spec("mutex", "pathrev", m), kSeeds);
    sweep.add(cell("l2", m), base_spec("mutex", "l2", m), kSeeds);
    for (const auto& family : kRingFamilies) {
      sweep.add(cell(family, m), ring_spec(family, m), kSeeds);
    }
  }
  sweep.run();

  std::cout << "E10: path-reversal (Naimi-Trehel) vs L2 / ring families\n"
            << "(K=" << kRequests << " requests, gap=" << kGap
            << " ticks, N=M hosts; wired msgs from the CostLedger;\n"
            << " formula: K*(H_M + 1) — Lavault's average claim path plus the"
            << " token transfer)\n\n";

  bool ok = true;
  std::vector<double> pathrev_wired;
  std::vector<double> best_ring_wired;
  for (const std::uint32_t m : kBackbones) {
    std::cout << "M=" << m << " (mean over " << kSeeds.size() << " seeds)\n";
    core::Table table({"variant", "wired msgs", "wired/CS", "completed", "grants",
                       "violations"});
    double best_ring = 0.0;
    std::vector<std::string> families = {"pathrev", "l2"};
    families.insert(families.end(), kRingFamilies.begin(), kRingFamilies.end());
    for (const std::string& family : families) {
      const auto name = cell(family, m);
      const double wired = sweep.metric(name, "ledger.fixed_msgs");
      const double completed = sweep.metric(name, "workload.completed");
      const double grants = sweep.metric(name, "workload.grants");
      const double violations = sweep.metric(name, "workload.violations");
      table.row({family, core::num(wired),
                 core::num(wired / static_cast<double>(kRequests)), core::num(completed),
                 core::num(grants), core::num(violations)});
      if (completed != static_cast<double>(kRequests) || violations != 0.0) {
        std::cerr << "e10_pathrev: " << name << " served " << completed << "/"
                  << kRequests << " with " << violations << " violations\n";
        ok = false;
      }
      if (family == "pathrev") pathrev_wired.push_back(wired);
      const bool is_ring =
          std::find(kRingFamilies.begin(), kRingFamilies.end(), family) !=
          kRingFamilies.end();
      if (is_ring && (best_ring == 0.0 || wired < best_ring)) best_ring = wired;
    }
    best_ring_wired.push_back(best_ring);
    table.print(std::cout);
    const double formula = static_cast<double>(kRequests) * analysis::pathrev_avg_messages(m);
    std::cout << "formula K*(H_M+1) = " << formula
              << "  entry cost bound = " << analysis::pathrev_entry_cost_bound(m, p)
              << "\n\n";
  }

  // Gate 1: sub-linear growth in M. Each step quadruples M; the wired
  // bill must grow by strictly less than 4x (H_M growth is ~log).
  for (std::size_t i = 1; i < kBackbones.size(); ++i) {
    if (pathrev_wired[i] >= 4.0 * pathrev_wired[i - 1]) {
      std::cerr << "e10_pathrev: wired msgs not sub-linear in M ("
                << pathrev_wired[i] << " at M=" << kBackbones[i] << " vs "
                << pathrev_wired[i - 1] << " at M=" << kBackbones[i - 1] << ")\n";
      ok = false;
    }
  }
  // Gate 2: at the largest backbone, pathrev beats the best ring variant
  // on wired messages.
  if (pathrev_wired.back() >= best_ring_wired.back()) {
    std::cerr << "e10_pathrev: pathrev wired bill (" << pathrev_wired.back()
              << ") does not beat the best ring variant (" << best_ring_wired.back()
              << ") at M=" << kBackbones.back() << "\n";
    ok = false;
  }
  if (!ok) return 1;

  std::cout << "pathrev wired msgs by M:";
  for (std::size_t i = 0; i < kBackbones.size(); ++i) {
    std::cout << " M" << kBackbones[i] << "=" << pathrev_wired[i];
  }
  std::cout << " (sub-linear; best ring at M=" << kBackbones.back() << " is "
            << best_ring_wired.back() << ")\n\n";

  std::cout << "Reading: the ring pays traversals * M wired hops regardless of\n"
               "demand and L2 broadcasts to all peers, so both families scale\n"
               "linearly in M under a sparse trickle; the path-reversal tree\n"
               "collapses toward recent requesters and its per-entry wired bill\n"
               "stays near H_M + 1.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
