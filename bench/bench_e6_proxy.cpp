// E6 (§5): the proxy scope trade-off.
//
// The same static-host Lamport algorithm (ProxiedLamport) runs unchanged
// under three proxy scopes while the hosts move:
//   local-MSS proxy: zero inform traffic, a search per delivery miss
//   fixed home:      one inform per move ("total separation"), no search
//   lazy home (k=3): informs every 3rd move, searches on stale cache
// Sweeping moves-per-request shows where each scope wins — the paper's
// closing argument that the MH-proxy association should adapt to
// mobility.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

constexpr std::uint32_t kRequests = 8;  // one per host

exp::ScenarioSpec scope_spec(const std::string& variant, std::uint32_t moves_per_request) {
  exp::ScenarioSpec spec;
  spec.name = "e6_proxy";
  spec.workload = "proxy_mutex";
  spec.variant = variant;
  spec.net.num_mss = 6;
  spec.net.num_mh = 8;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 3;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 1;
  spec.net.latency.search_min = spec.net.latency.search_max = 3;
  spec.net.seed = 17;
  spec.params["inform_every"] = 3;
  spec.params["requests"] = kRequests;
  spec.params["moves_per_request"] = moves_per_request;
  return spec;
}

const char* pretty(const std::string& variant) {
  if (variant == "local_mss") return "local-MSS";
  if (variant == "fixed_home") return "fixed home";
  return "lazy home k=3";
}

}  // namespace

int main() {
  const std::string kScopes[] = {"local_mss", "fixed_home", "lazy_home"};
  const std::uint32_t kMoves[] = {0, 1, 2, 4, 8};

  bench::Sections sweep("e6_proxy");
  for (const std::uint32_t moves : kMoves) {
    for (const auto& scope : kScopes) {
      sweep.add(scope + "_moves" + std::to_string(moves), scope_spec(scope, moves));
    }
  }
  sweep.run();

  std::cout << "E6: Lamport-over-proxies under three proxy scopes, " << kRequests
            << " CS requests, varying mobility\n\n";

  for (const std::uint32_t moves : kMoves) {
    std::cout << "moves per request = " << moves << ":\n";
    core::Table table({"scope", "total cost", "informs", "searches", "completed"});
    for (const auto& scope : kScopes) {
      const std::string cell = scope + "_moves" + std::to_string(moves);
      table.row({pretty(scope), core::num(sweep.metric(cell, "cost.total")),
                 core::num(sweep.metric(cell, "workload.informs")),
                 core::num(sweep.metric(cell, "ledger.searches")),
                 core::num(sweep.metric(cell, "workload.completed"))});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading: with little mobility the fixed home proxy is free and\n"
               "decouples the algorithm completely; as moves/request grow its inform\n"
               "bill climbs linearly while the local-MSS proxy pays only per-use\n"
               "searches — the lazy proxy interpolates (the paper's 'less static\n"
               "solutions').\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
