// E6 (§5): the proxy scope trade-off.
//
// The same static-host Lamport algorithm (ProxiedLamport) runs unchanged
// under three proxy scopes while the hosts move:
//   local-MSS proxy: zero inform traffic, a search per delivery miss
//   fixed home:      one inform per move ("total separation"), no search
//   lazy home (k=3): informs every 3rd move, searches on stale cache
// Sweeping moves-per-request shows where each scope wins — the paper's
// closing argument that the MH-proxy association should adapt to
// mobility.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;
using proxy::ProxyScope;

constexpr std::uint32_t kHosts = 8;
constexpr std::uint32_t kRequests = 8;  // one per host

struct Run {
  double total = 0;
  std::uint64_t informs = 0;
  std::uint64_t searches = 0;
  std::uint64_t completed = 0;
};

Run run_scope(ProxyScope scope, std::uint32_t moves_per_request, const cost::CostParams& p,
              core::BenchReport& report) {
  NetConfig cfg;
  cfg.num_mss = 6;
  cfg.num_mh = kHosts;
  cfg.latency.wired_min = cfg.latency.wired_max = 3;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.seed = 17;
  Network net(cfg);
  proxy::ProxyOptions opts;
  opts.scope = scope;
  opts.inform_every = 3;
  proxy::ProxyService proxies(net, opts);
  mutex::CsMonitor monitor;
  proxy::ProxiedLamport mutex(net, proxies, monitor);
  net.start();
  // Deterministic round-robin moves for every host, then one request each.
  const std::uint32_t total_moves = moves_per_request * kRequests;
  for (std::uint32_t move = 0; move < total_moves; ++move) {
    const auto host = MhId(move % kHosts);
    net.sched().schedule(1 + 25 * move, [&, host] {
      auto& mobile = net.mh(host);
      if (!mobile.connected()) return;
      const auto next = static_cast<MssId>((net::index(mobile.current_mss()) + 1) % 6);
      mobile.move_to(next, 4);
    });
  }
  const sim::SimTime request_start = 10 + 25ULL * total_moves;
  for (std::uint32_t i = 0; i < kRequests; ++i) {
    net.sched().schedule(request_start + 60ULL * i, [&, i] { mutex.request(MhId(i)); });
  }
  net.run();
  Run run;
  run.total = net.ledger().total(p);
  run.informs = proxies.informs();
  run.searches = net.ledger().searches();
  run.completed = mutex.completed();
  report.add_run("scope" + std::to_string(static_cast<int>(scope)) + "_moves" +
                     std::to_string(moves_per_request),
                 net, p);
  return run;
}

const char* name(ProxyScope scope) {
  switch (scope) {
    case ProxyScope::kLocalMss: return "local-MSS";
    case ProxyScope::kFixedHome: return "fixed home";
    case ProxyScope::kLazyHome: return "lazy home k=3";
  }
  return "?";
}

}  // namespace

int main() {
  const cost::CostParams p;
  core::BenchReport report("e6_proxy");
  report.note("sweep", "three proxy scopes over moves-per-request");
  std::cout << "E6: Lamport-over-proxies under three proxy scopes, " << kRequests
            << " CS requests, varying mobility\n\n";

  for (const std::uint32_t moves : {0u, 1u, 2u, 4u, 8u}) {
    std::cout << "moves per request = " << moves << ":\n";
    core::Table table({"scope", "total cost", "informs", "searches", "completed"});
    for (const auto scope :
         {ProxyScope::kLocalMss, ProxyScope::kFixedHome, ProxyScope::kLazyHome}) {
      const auto run = run_scope(scope, moves, p, report);
      table.row({name(scope), core::num(run.total),
                 core::num(static_cast<double>(run.informs)),
                 core::num(static_cast<double>(run.searches)),
                 core::num(static_cast<double>(run.completed))});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading: with little mobility the fixed home proxy is free and\n"
               "decouples the algorithm completely; as moves/request grow its inform\n"
               "bill climbs linearly while the local-MSS proxy pays only per-use\n"
               "searches — the lazy proxy interpolates (the paper's 'less static\n"
               "solutions').\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
