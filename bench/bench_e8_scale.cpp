// E8 (ROADMAP "as fast as the hardware allows").
//
// Simulation-core throughput at scale: N mobile hosts ping their local
// MSS in a chained loop (echo) or churn far-future timers through
// schedule/cancel (timers) across growing M x N grids, up to ~10^6
// scheduled events per run. The interesting numbers are host wall-clock
// and scheduler events/sec — they live in the artifact's provenance
// "timing" section, never in the deterministic body, so same-seed
// artifacts stay byte-identical across machines.

#include <cstdint>
#include <iostream>
#include <string>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

const std::vector<std::uint64_t> kSeeds = {11, 12, 13};

exp::ScenarioSpec scale_spec(const std::string& variant, std::uint32_t num_mss,
                             std::uint32_t num_mh) {
  exp::ScenarioSpec spec;
  spec.name = "e8_scale";
  spec.workload = "scale";
  spec.variant = variant;
  spec.net.num_mss = num_mss;
  spec.net.num_mh = num_mh;
  spec.params["gap"] = 7;
  spec.params["pings"] = 300;  // echo: ~6 events per ping per MH
  spec.params["ticks"] = 64;   // timers: cancel churn*ticks per MH
  spec.params["churn"] = 8;
  return spec;
}

std::string cell(const std::string& variant, std::uint32_t m, std::uint32_t n) {
  return variant + "_" + std::to_string(m) + "x" + std::to_string(n);
}

}  // namespace

int main() {
  struct Grid {
    std::uint32_t m;
    std::uint32_t n;
  };
  const Grid kGrids[] = {{4, 64}, {8, 256}, {16, 1024}};

  bench::Sections sweep("scale");
  for (const auto& grid : kGrids) {
    sweep.add(cell("echo", grid.m, grid.n), scale_spec("echo", grid.m, grid.n), kSeeds);
    sweep.add(cell("timers", grid.m, grid.n), scale_spec("timers", grid.m, grid.n),
              kSeeds);
  }
  sweep.run();

  std::cout << "E8: simulation-core throughput across M x N grids\n"
            << "(echo = chained MH<->MSS wireless ping traffic; timers = "
               "schedule+cancel churn of far-future timers)\n\n";

  core::Table table({"cell", "fired events", "wall ms (mean)", "events/sec (mean)"});
  for (const auto& grid : kGrids) {
    for (const std::string variant : {"echo", "timers"}) {
      const auto name = cell(variant, grid.m, grid.n);
      const auto* summary = sweep.report().find_cell(name);
      table.row({name, core::num(sweep.metric(name, "sched.fired")),
                 core::num(summary->wall_sec.mean * 1e3),
                 core::num(summary->events_per_sec.mean)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: events/sec is sched.fired / host wall seconds per run,\n"
               "averaged over " << kSeeds.size()
            << " seeds; compare against bench/baselines/BENCH_scale_pre.json.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
