// E8 (ROADMAP "as fast as the hardware allows").
//
// Simulation-core throughput at scale: N mobile hosts ping their local
// MSS in a chained loop (echo) or churn far-future timers through
// schedule/cancel (timers) across growing M x N grids, up to ~10^6
// scheduled events per run. The interesting numbers are host wall-clock
// and scheduler events/sec — they live in the artifact's provenance
// "timing" section, never in the deterministic body, so same-seed
// artifacts stay byte-identical across machines.
//
// The sharded axis: the largest grids re-run echo on the sharded
// engine (topology partitioned into shards, conservative windows, see
// sim::ShardGroup) at shards in {1,2,4,8} — cells echo_MxN_s<K>. The
// deterministic metrics of those cells are identical for every K by
// construction (the shard_independence gate pins that); what this
// bench adds is the events/sec column, where near-linear scaling is
// the target. The gate at the bottom asserts shards=4 >= 1.8x shards=1
// on the largest grid point — guarded by hardware_concurrency() >= 4,
// because on fewer cores the worker threads just time-slice one core
// and the barrier overhead makes scaling physically impossible.

#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

const std::vector<std::uint64_t> kSeeds = {11, 12, 13};
const std::vector<std::uint32_t> kShardCounts = {1, 2, 4, 8};

exp::ScenarioSpec scale_spec(const std::string& variant, std::uint32_t num_mss,
                             std::uint32_t num_mh, std::uint64_t pings) {
  exp::ScenarioSpec spec;
  spec.name = "e8_scale";
  spec.workload = "scale";
  spec.variant = variant;
  spec.net.num_mss = num_mss;
  spec.net.num_mh = num_mh;
  spec.params["gap"] = 7;
  spec.params["pings"] = pings;  // echo: ~6 events per ping per MH
  spec.params["ticks"] = 64;     // timers: cancel churn*ticks per MH
  spec.params["churn"] = 8;
  return spec;
}

std::string cell(const std::string& variant, std::uint32_t m, std::uint32_t n) {
  return variant + "_" + std::to_string(m) + "x" + std::to_string(n);
}

}  // namespace

int main() {
  struct Grid {
    std::uint32_t m;
    std::uint32_t n;
    std::uint64_t pings;  ///< echo work per MH, scaled down as N grows
    bool timers;          ///< timers churn is O(N·ticks·churn): skip at 100k
    bool sharded;         ///< re-run echo on the sharded engine per shard count
  };
  const Grid kGrids[] = {
      {4, 64, 300, true, false},
      {8, 256, 300, true, false},
      {16, 1024, 300, true, true},
      {64, 100000, 5, false, true},  // the ISSUE 8 headline point
  };

  bench::Sections sweep("scale");
  for (const auto& grid : kGrids) {
    sweep.add(cell("echo", grid.m, grid.n), scale_spec("echo", grid.m, grid.n, grid.pings),
              kSeeds);
    if (grid.timers) {
      sweep.add(cell("timers", grid.m, grid.n),
                scale_spec("timers", grid.m, grid.n, grid.pings), kSeeds);
    }
    if (grid.sharded) {
      for (const std::uint32_t shards : kShardCounts) {
        auto spec = scale_spec("echo", grid.m, grid.n, grid.pings);
        spec.net.shards = shards;
        sweep.add(cell("echo", grid.m, grid.n) + "_s" + std::to_string(shards), spec,
                  kSeeds);
      }
    }
  }
  sweep.run();
  // Provenance: the highest shard count the sharded cells exercised (the
  // deterministic body is identical across counts, so this can only
  // live outside it).
  sweep.report().shards = kShardCounts.back();

  std::cout << "E8: simulation-core throughput across M x N grids\n"
            << "(echo = chained MH<->MSS wireless ping traffic; timers = "
               "schedule+cancel churn of far-future timers;\n"
               " _sK = the same echo cell on the sharded engine with K shards)\n\n";

  core::Table table({"cell", "fired events", "wall ms (mean)", "events/sec (mean)"});
  const auto row = [&](const std::string& name) {
    const auto* summary = sweep.report().find_cell(name);
    table.row({name, core::num(sweep.metric(name, "sched.fired")),
               core::num(summary->wall_sec.mean * 1e3),
               core::num(summary->events_per_sec.mean)});
  };
  for (const auto& grid : kGrids) {
    row(cell("echo", grid.m, grid.n));
    if (grid.timers) row(cell("timers", grid.m, grid.n));
    if (grid.sharded) {
      for (const std::uint32_t shards : kShardCounts) {
        row(cell("echo", grid.m, grid.n) + "_s" + std::to_string(shards));
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: events/sec is sched.fired / host wall seconds per run,\n"
               "averaged over " << kSeeds.size()
            << " seeds; compare against bench/baselines/BENCH_scale_pre.json.\n"
            << "\nwrote " << sweep.write() << "\n";

  // The scaling gate. Deterministic metrics are shard-count-independent
  // (ctest pins that); wall-clock scaling is the one claim only this
  // bench can check, and only on hardware with real parallelism.
  const Grid& top = kGrids[std::size(kGrids) - 1];
  const auto base = cell("echo", top.m, top.n);
  const double s1 = sweep.report().find_cell(base + "_s1")->events_per_sec.mean;
  const double s4 = sweep.report().find_cell(base + "_s4")->events_per_sec.mean;
  if (std::thread::hardware_concurrency() >= 4) {
    const double speedup = s1 > 0.0 ? s4 / s1 : 0.0;
    std::cout << "\nscaling gate: shards=4 / shards=1 = " << core::num(speedup)
              << " (require >= 1.8 at " << base << ")\n";
    if (speedup < 1.8) {
      std::cerr << "E8: FAIL — sharded engine scaled " << core::num(speedup)
                << "x at 4 shards (expected >= 1.8x)\n";
      return 1;
    }
  } else {
    std::cout << "\nscaling gate: skipped (hardware_concurrency() = "
              << std::thread::hardware_concurrency()
              << " < 4; shards=4 / shards=1 measured " << core::num(s1 > 0.0 ? s4 / s1 : 0.0)
              << "x on time-sliced cores)\n";
  }
  return 0;
}
