// E11 (ROADMAP "mobility model library").
//
// The paper's §4 cost analysis hangs on one parameter: f, the fraction
// of moves that are *significant* (cross a location-view region).
// The mobility model library makes f an emergent property of a movement
// pattern instead of a scripted constant — and skewed patterns make it
// vary by region. This bench runs the §4 strategies (pure search,
// always inform, location view) over a group whose members move under
// a uniform control and two skewed families (commuter day/night flows,
// flash-crowd churn), then runs the proxy scopes (local_mss /
// fixed_home / lazy_home) behind Lamport under the commuter flow.
//
// In-binary gates: every group cell delivers exactly-once and every
// proxy cell serves all requests with zero violations; location view
// undercuts always inform by >=10% on total cost under BOTH skewed
// families; the proxy scopes separate by >=10% under commuter motion;
// the commuter family's per-region f spread (max/min) is >=1.3x; and
// the uniform control's measured f agrees with the closed form
// analysis::uniform_region_f(M, R) to +-0.1.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

const std::vector<std::uint64_t> kSeeds = {41, 42, 43};
constexpr std::uint32_t kMss = 16;
constexpr std::uint32_t kRegions = 4;
constexpr std::uint32_t kGroupSize = 8;
constexpr std::uint64_t kMessages = 12;
constexpr std::uint64_t kRequests = 12;

const std::vector<std::string> kFamilies = {"uniform", "commuter", "flashcrowd"};
const std::vector<std::string> kStrategies = {"pure_search", "always_inform",
                                              "location_view"};
const std::vector<std::string> kScopes = {"local_mss", "fixed_home", "lazy_home"};

/// Mobility block shared by both halves: six moves per host inside the
/// message window, four regions, phase cycles short enough that the
/// commuter day/night flip and at least one flash-crowd window land
/// inside the run.
void configure_mobility(exp::ScenarioSpec& spec, const std::string& family) {
  spec.mob.pattern = *mobility::pattern_from_name(family);
  spec.mob.regions = kRegions;
  spec.mob.max_moves_per_host = 6;
  spec.mob.mean_pause = 80.0;
  spec.mob.mean_transit = 6.0;
  spec.mob.phase_period = 400;
  spec.mob.crowd_period = 450;
  spec.mob.crowd_dwell = 150;
  spec.mob.crowd_fraction = 0.5;
}

exp::ScenarioSpec group_spec(const std::string& family, const std::string& strategy) {
  exp::ScenarioSpec spec;
  spec.name = "e11_mobility";
  spec.workload = "group_mobility";
  spec.variant = strategy;
  spec.net.num_mss = kMss;
  spec.net.num_mh = 2 * kGroupSize;  // members plus uninvolved bystanders
  spec.params["group_size"] = kGroupSize;
  spec.params["messages"] = static_cast<double>(kMessages);
  spec.params["message_gap"] = 60;
  spec.params["message_start"] = 25;
  configure_mobility(spec, family);
  return spec;
}

exp::ScenarioSpec proxy_spec(const std::string& scope) {
  exp::ScenarioSpec spec;
  spec.name = "e11_mobility";
  spec.workload = "proxy_mutex";
  spec.variant = scope;
  spec.net.num_mss = kMss;
  spec.net.num_mh = kMss;
  spec.params["requests"] = static_cast<double>(kRequests);
  spec.params["moves_per_request"] = 0;  // the model supplies the motion
  spec.mobility = true;                  // whole-population driver
  configure_mobility(spec, "commuter");
  return spec;
}

std::string gcell(const std::string& family, const std::string& strategy) {
  return family + "_" + strategy;
}

}  // namespace

int main() {
  bench::Sections sweep("mobility");
  for (const auto& family : kFamilies) {
    for (const auto& strategy : kStrategies) {
      sweep.add(gcell(family, strategy), group_spec(family, strategy), kSeeds);
    }
  }
  for (const auto& scope : kScopes) {
    sweep.add("proxy_" + scope, proxy_spec(scope), kSeeds);
  }
  sweep.run();

  std::cout << "E11: section-4 strategies and proxy scopes under model-driven"
               " mobility\n"
            << "(M=" << kMss << " cells, R=" << kRegions << " regions, |G|="
            << kGroupSize << ", " << kMessages << " messages, 6 moves/host;\n"
            << " mean over " << kSeeds.size() << " seeds; f = significant-move"
            << " fraction per departure region)\n\n";

  bool ok = true;

  // --- group half: strategy costs and the per-region f profile ------------
  double lv_commuter = 0.0;
  double ai_commuter = 0.0;
  double lv_flash = 0.0;
  double ai_flash = 0.0;
  for (const auto& family : kFamilies) {
    std::cout << "family=" << family << "\n";
    core::Table table({"strategy", "cost.total", "searches", "wired", "f", "moves",
                       "exactly_once"});
    for (const auto& strategy : kStrategies) {
      const auto name = gcell(family, strategy);
      const double total = sweep.metric(name, "cost.total");
      const double exactly_once = sweep.metric(name, "workload.exactly_once");
      table.row({strategy, core::num(total),
                 core::num(sweep.metric(name, "ledger.searches")),
                 core::num(sweep.metric(name, "ledger.fixed_msgs")),
                 core::num(sweep.metric(name, "workload.mob.f")),
                 core::num(sweep.metric(name, "workload.mob.moves")),
                 core::num(exactly_once)});
      if (exactly_once != 1.0) {
        std::cerr << "e11_mobility: " << name << " lost or duplicated a group"
                  << " message (exactly_once=" << exactly_once << ")\n";
        ok = false;
      }
      if (family == "commuter" && strategy == "location_view") lv_commuter = total;
      if (family == "commuter" && strategy == "always_inform") ai_commuter = total;
      if (family == "flashcrowd" && strategy == "location_view") lv_flash = total;
      if (family == "flashcrowd" && strategy == "always_inform") ai_flash = total;
    }
    table.print(std::cout);

    // The per-region f profile is strategy-independent (same seeds, same
    // model); read it from the pure_search cell.
    const auto fname = gcell(family, "pure_search");
    std::cout << "f by region:";
    for (std::uint32_t r = 0; r < kRegions; ++r) {
      std::cout << " r" << r << "="
                << core::num(sweep.metric(fname, "workload.mob.f_region_" +
                                                     std::to_string(r)));
    }
    std::cout << "\n\n";
  }

  // Gate 1: location view undercuts always inform by >=10% under both
  // skewed families (observed margin is ~5x; 1.10 guards the claim, not
  // the noise floor).
  if (ai_commuter < 1.10 * lv_commuter) {
    std::cerr << "e11_mobility: location_view (" << lv_commuter
              << ") does not undercut always_inform (" << ai_commuter
              << ") by >=10% under commuter mobility\n";
    ok = false;
  }
  if (ai_flash < 1.10 * lv_flash) {
    std::cerr << "e11_mobility: location_view (" << lv_flash
              << ") does not undercut always_inform (" << ai_flash
              << ") by >=10% under flashcrowd mobility\n";
    ok = false;
  }

  // Gate 2: the commuter family is genuinely skewed — its per-region f
  // spread is at least 1.3x (home regions cross less than work regions).
  {
    const auto fname = gcell("commuter", "pure_search");
    double fmin = 2.0;
    double fmax = 0.0;
    for (std::uint32_t r = 0; r < kRegions; ++r) {
      const double f =
          sweep.metric(fname, "workload.mob.f_region_" + std::to_string(r));
      fmin = std::min(fmin, f);
      fmax = std::max(fmax, f);
    }
    if (fmin <= 0.0 || fmax / fmin < 1.3) {
      std::cerr << "e11_mobility: commuter per-region f spread " << fmax << "/"
                << fmin << " is under 1.3x — family is not skewed\n";
      ok = false;
    }
  }

  // Gate 3: the uniform control's measured f matches the closed form.
  {
    const double measured =
        sweep.metric(gcell("uniform", "pure_search"), "workload.mob.f");
    const double expected = analysis::uniform_region_f(kMss, kRegions);
    if (std::abs(measured - expected) > 0.1) {
      std::cerr << "e11_mobility: uniform f=" << measured
                << " disagrees with closed form " << expected << "\n";
      ok = false;
    }
    std::cout << "uniform control: measured f=" << core::num(measured)
              << " vs closed form (M - M/R)/(M - 1) = " << core::num(expected)
              << "\n\n";
  }

  // --- proxy half: scopes under commuter motion ---------------------------
  std::cout << "proxy scopes under commuter mobility (" << kRequests
            << " Lamport requests)\n";
  core::Table ptable({"scope", "cost.total", "searches", "wired", "informs",
                      "completed", "violations"});
  double pmin = 0.0;
  double pmax = 0.0;
  for (const auto& scope : kScopes) {
    const auto name = "proxy_" + scope;
    const double total = sweep.metric(name, "cost.total");
    const double completed = sweep.metric(name, "workload.completed");
    const double violations = sweep.metric(name, "workload.violations");
    ptable.row({scope, core::num(total), core::num(sweep.metric(name, "ledger.searches")),
                core::num(sweep.metric(name, "ledger.fixed_msgs")),
                core::num(sweep.metric(name, "workload.informs")), core::num(completed),
                core::num(violations)});
    if (completed != static_cast<double>(kRequests) || violations != 0.0) {
      std::cerr << "e11_mobility: " << name << " served " << completed << "/"
                << kRequests << " with " << violations << " violations\n";
      ok = false;
    }
    if (pmin == 0.0 || total < pmin) pmin = total;
    pmax = std::max(pmax, total);
  }
  ptable.print(std::cout);

  // Gate 4: scope choice matters under model-driven motion — >=10%
  // separation between the cheapest and dearest scope.
  if (pmax < 1.10 * pmin) {
    std::cerr << "e11_mobility: proxy scopes separate by only " << pmax << "/"
              << pmin << " — under the 1.10x gate\n";
    ok = false;
  }

  if (!ok) return 1;

  std::cout << "\nReading: skewed families depress f below uniform's"
               " (M - M/R)/(M - 1)\n"
               "and spread it across regions; location view pays wired view"
               " updates only\n"
               "for the significant fraction, so its margin over always-inform"
               " widens as\n"
               "f falls, while pure search trades that wired bill for"
               " searches.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
