// E2 (§3.1.1 comparison bullets): the battery / wireless-message story.
//
//   - L1 sends 6*(N-1) wireless hops per execution, 3*(N-1) of them at
//     the initiator; every MH participates (doze-hostile).
//   - L2 uses exactly 3 wireless messages regardless of N; uninvolved
//     MHs stay silent.
//   - L1 cannot tolerate any disconnection; L2 aborts only the
//     disconnected requester's own request.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec base_spec(const std::string& variant, std::uint32_t n) {
  exp::ScenarioSpec spec;
  spec.name = "e2_wireless_energy";
  spec.workload = "mutex";
  spec.variant = variant;
  spec.net.num_mss = 8;
  spec.net.num_mh = n;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  spec.net.seed = 7;
  spec.params["requests"] = 1;
  spec.params["request_start"] = 1;
  return spec;
}

}  // namespace

int main() {
  const cost::CostParams p;  // unit energy per wireless hop
  const std::uint32_t kNs[] = {8, 16, 32, 64, 128};

  bench::Sections sweep("e2_wireless_energy");
  for (const std::uint32_t n : kNs) {
    sweep.add("l1_n" + std::to_string(n), base_spec("l1", n));
    // Everyone except the requester dozes: the paper's point is that
    // they are never interrupted.
    auto l2 = base_spec("l2", n);
    l2.params["doze_others"] = 1;
    sweep.add("l2_n" + std::to_string(n), l2);
  }
  // Disconnection tolerance, demonstrated. L1 with any MH disconnected
  // stalls forever, so that run is truncated at t=20000.
  {
    auto l1 = base_spec("l1", 16);
    l1.params["request_start"] = 5;
    l1.params["disconnect_mh"] = 9;
    l1.params["disconnect_at"] = 1;
    l1.params["run_until"] = 20000;
    sweep.add("l1_unrelated_disconnect", l1);

    auto l2 = base_spec("l2", 16);
    l2.params["request_start"] = 5;
    l2.params["disconnect_mh"] = 9;
    l2.params["disconnect_at"] = 1;
    sweep.add("l2_unrelated_disconnect", l2);

    auto self = base_spec("l2", 16);
    self.params["requests"] = 2;
    self.params["request_start"] = 1;
    self.params["request_gap"] = 1;
    self.params["disconnect_mh"] = 0;
    self.params["disconnect_at"] = 4;
    sweep.add("l2_requester_disconnect", self);
  }
  sweep.run();

  std::cout << "E2: wireless traffic and MH battery drain per execution\n\n";
  core::Table table({"N", "L1 wireless", "6(N-1)", "L1 init energy", "3(N-1)",
                     "L2 wireless", "L2 init energy", "L2 doze intr"});
  for (const std::uint32_t n : kNs) {
    const std::string l1 = "l1_n" + std::to_string(n);
    const std::string l2 = "l2_n" + std::to_string(n);
    table.row({core::num(n), core::num(sweep.metric(l1, "ledger.wireless_msgs")),
               core::num(static_cast<double>(analysis::l1_wireless_hops(n))),
               core::num(sweep.metric(l1, "workload.initiator_energy")),
               core::num(static_cast<double>(analysis::l1_initiator_energy(n))),
               core::num(sweep.metric(l2, "ledger.wireless_msgs")),
               core::num(sweep.metric(l2, "workload.initiator_energy")),
               core::num(sweep.metric(l2, "net.doze_interruptions"))});
  }
  table.print(std::cout);

  std::cout << "\nDisconnection behaviour (N = 16, requester = mh0):\n"
            << "  L1 with one unrelated MH disconnected: completed "
            << sweep.metric("l1_unrelated_disconnect", "workload.completed")
            << "/1 (stalled — every MH must answer)\n"
            << "  L2 with one unrelated MH disconnected: completed "
            << sweep.metric("l2_unrelated_disconnect", "workload.completed")
            << "/1 (unaffected)\n"
            << "  L2 when the requester itself disconnects pre-grant: completed "
            << sweep.metric("l2_requester_disconnect", "workload.completed") << ", aborted "
            << sweep.metric("l2_requester_disconnect", "workload.aborted")
            << " (home MSS released on its behalf)\n";

  std::cout << "\nwrote " << sweep.write() << "\n";
  return 0;
}
