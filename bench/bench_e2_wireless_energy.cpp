// E2 (§3.1.1 comparison bullets): the battery / wireless-message story.
//
//   - L1 sends 6*(N-1) wireless hops per execution, 3*(N-1) of them at
//     the initiator; every MH participates (doze-hostile).
//   - L2 uses exactly 3 wireless messages regardless of N; uninvolved
//     MHs stay silent.
//   - L1 cannot tolerate any disconnection; L2 aborts only the
//     disconnected requester's own request.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

NetConfig base_config(std::uint32_t n) {
  NetConfig cfg;
  cfg.num_mss = 8;
  cfg.num_mh = n;
  cfg.latency.wired_min = cfg.latency.wired_max = 5;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 2;
  cfg.latency.search_min = cfg.latency.search_max = 4;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

int main() {
  const cost::CostParams p;  // unit energy per wireless hop
  core::BenchReport report("e2_wireless_energy");
  report.note("sweep", "L1 vs L2 wireless hops and energy over N, plus disconnection runs");
  std::cout << "E2: wireless traffic and MH battery drain per execution\n\n";

  core::Table table({"N", "L1 wireless", "6(N-1)", "L1 init energy", "3(N-1)",
                     "L2 wireless", "L2 init energy", "L2 doze intr"});
  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 128u}) {
    std::uint64_t l1_wireless = 0;
    double l1_init_energy = 0;
    {
      Network net(base_config(n));
      mutex::CsMonitor monitor;
      mutex::L1Mutex l1(net, monitor);
      net.start();
      net.sched().schedule(1, [&] { l1.request(MhId(0)); });
      net.run();
      l1_wireless = net.ledger().wireless_msgs();
      l1_init_energy = net.ledger().energy_at(0, p);
      report.add_run("l1_n" + std::to_string(n), net, p);
    }
    std::uint64_t l2_wireless = 0;
    double l2_init_energy = 0;
    std::uint64_t l2_doze = 0;
    {
      Network net(base_config(n));
      mutex::CsMonitor monitor;
      mutex::L2Mutex l2(net, monitor);
      net.start();
      // Everyone except the requester dozes: the paper's point is that
      // they are never interrupted.
      for (std::uint32_t i = 1; i < n; ++i) net.mh(MhId(i)).set_doze(true);
      net.sched().schedule(1, [&] { l2.request(MhId(0)); });
      net.run();
      l2_wireless = net.ledger().wireless_msgs();
      l2_init_energy = net.ledger().energy_at(0, p);
      l2_doze = net.stats().doze_interruptions;
      report.add_run("l2_n" + std::to_string(n), net, p);
    }
    table.row({core::num(n), core::num(static_cast<double>(l1_wireless)),
               core::num(static_cast<double>(analysis::l1_wireless_hops(n))),
               core::num(l1_init_energy),
               core::num(static_cast<double>(analysis::l1_initiator_energy(n))),
               core::num(static_cast<double>(l2_wireless)), core::num(l2_init_energy),
               core::num(static_cast<double>(l2_doze))});
  }
  table.print(std::cout);

  // Disconnection tolerance, demonstrated.
  std::cout << "\nDisconnection behaviour (N = 16, requester = mh0):\n";
  {
    Network net(base_config(16));
    mutex::CsMonitor monitor;
    mutex::L1Mutex l1(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { net.mh(MhId(9)).disconnect(); });
    net.sched().schedule(5, [&] { l1.request(MhId(0)); });
    net.sched().run_until(20000);
    std::cout << "  L1 with one unrelated MH disconnected: completed "
              << l1.completed() << "/1 (stalled — every MH must answer)\n";
    report.add_run("l1_n16_unrelated_disconnect", net, p);
  }
  {
    Network net(base_config(16));
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { net.mh(MhId(9)).disconnect(); });
    net.sched().schedule(5, [&] { l2.request(MhId(0)); });
    net.run();
    std::cout << "  L2 with one unrelated MH disconnected: completed "
              << l2.completed() << "/1 (unaffected)\n";
    report.add_run("l2_n16_unrelated_disconnect", net, p);
  }
  {
    Network net(base_config(16));
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    net.start();
    net.sched().schedule(1, [&] { l2.request(MhId(0)); });
    net.sched().schedule(2, [&] { l2.request(MhId(1)); });
    net.sched().schedule(4, [&] { net.mh(MhId(0)).disconnect(); });
    net.run();
    std::cout << "  L2 when the requester itself disconnects pre-grant: completed "
              << l2.completed() << ", aborted " << l2.aborted()
              << " (home MSS released on its behalf)\n";
    report.add_run("l2_n16_requester_disconnect", net, p);
  }
  std::cout << "\nwrote " << report.write() << "\n";
  return 0;
}
