// E7 (supporting): microbenchmarks of the substrate itself — scheduler
// and RNG throughput, wired/relay message latency paths, and the oracle
// vs broadcast search cost (the paper's worst case really sends M+1
// fixed messages). google-benchmark binary.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto count = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      sched.schedule(i % 97, [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::vector<sim::EventHandle> handles;
    handles.reserve(4096);
    for (int i = 0; i < 4096; ++i) handles.push_back(sched.schedule(10, [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2) sched.cancel(handles[i]);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(1);
  std::uint64_t sum = 0;
  for (auto _ : state) sum += rng.next();
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_WiredMessageRoundtrip(benchmark::State& state) {
  // Cost of pushing one message through the full wired path, measured
  // end to end including dispatch. R2's token pass exercises exactly
  // this: one idle traversal = M wired messages.
  for (auto _ : state) {
    NetConfig cfg;
    cfg.num_mss = 8;
    cfg.num_mh = 8;
    cfg.seed = 3;
    Network net(cfg);
    mutex::CsMonitor monitor;
    mutex::R2Mutex r2(net, monitor, mutex::RingVariant::kBasic);
    net.start();
    net.sched().schedule(1, [&] { r2.start_token(16); });
    net.run();
    benchmark::DoNotOptimize(net.ledger().fixed_msgs());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 8);  // messages
}
BENCHMARK(BM_WiredMessageRoundtrip);

void BM_RelayMhToMh(benchmark::State& state) {
  // The 2*c_wireless + c_search path, including resequencing.
  for (auto _ : state) {
    state.PauseTiming();
    NetConfig cfg;
    cfg.num_mss = 4;
    cfg.num_mh = 16;
    cfg.seed = 5;
    Network net(cfg);
    mutex::CsMonitor monitor;
    mutex::L1Mutex l1(net, monitor);
    net.start();
    state.ResumeTiming();
    net.sched().schedule(1, [&] { l1.request(MhId(0)); });
    net.run();
    benchmark::DoNotOptimize(l1.completed());
  }
  state.SetItemsProcessed(state.iterations() * 3 * 15);  // relayed messages
}
BENCHMARK(BM_RelayMhToMh);

void BM_SearchOracle(benchmark::State& state) {
  for (auto _ : state) {
    NetConfig cfg;
    cfg.num_mss = 16;
    cfg.num_mh = 32;
    cfg.seed = 9;
    Network net(cfg);
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    net.start();
    for (std::uint32_t i = 0; i < 16; ++i) {
      net.sched().schedule(1 + i, [&, i] { l2.request(MhId(i)); });
    }
    net.run();
    benchmark::DoNotOptimize(net.ledger().searches());
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SearchOracle);

void BM_SearchBroadcast(benchmark::State& state) {
  // The worst case the paper describes: each search really contacts the
  // other M-1 MSSs ((M+1) fixed messages end to end).
  std::uint64_t fixed_per_search = 0;
  for (auto _ : state) {
    NetConfig cfg;
    cfg.num_mss = 16;
    cfg.num_mh = 32;
    cfg.search = net::SearchMode::kBroadcast;
    cfg.seed = 9;
    Network net(cfg);
    net.start();
    // One remote delivery == one broadcast search.
    auto& station = net.mss(MssId(0));
    (void)station;
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    net.sched().schedule(1, [&] { l2.request(MhId(1)); });
    net.run();
    fixed_per_search = net.ledger().fixed_msgs();
    benchmark::DoNotOptimize(fixed_per_search);
  }
  state.counters["fixed_msgs_incl_search"] = static_cast<double>(fixed_per_search);
}
BENCHMARK(BM_SearchBroadcast);

void BM_FullMobilityScenario(benchmark::State& state) {
  // End-to-end: 32 hosts moving while running L2; measures whole-system
  // event throughput.
  for (auto _ : state) {
    NetConfig cfg;
    cfg.num_mss = 8;
    cfg.num_mh = 32;
    cfg.latency.wired_min = 1;
    cfg.latency.wired_max = 10;
    cfg.seed = 13;
    Network net(cfg);
    mutex::CsMonitor monitor;
    mutex::L2Mutex l2(net, monitor);
    mobility::MobilityConfig mob;
    mob.mean_pause = 30;
    mob.max_moves_per_host = 4;
    mobility::MobilityDriver driver(net, mob);
    net.start();
    driver.start();
    for (std::uint32_t i = 0; i < 32; ++i) {
      net.sched().schedule(1 + 3 * i, [&, i] { l2.request(MhId(i)); });
    }
    const auto events = net.run();
    benchmark::DoNotOptimize(events);
    state.SetItemsProcessed(state.items_processed() + static_cast<std::int64_t>(events));
  }
}
BENCHMARK(BM_FullMobilityScenario);

/// One deterministic run of the BM_FullMobilityScenario system, captured
/// as the bench artifact via the exp runner (the timed loops above are
/// wall-clock-dependent and stay out of it).
void write_artifact() {
  exp::ScenarioSpec spec;
  spec.name = "e7_kernel_micro";
  spec.workload = "mutex";
  spec.variant = "l2";
  spec.net.num_mss = 8;
  spec.net.num_mh = 32;
  spec.net.latency.wired_min = 1;
  spec.net.latency.wired_max = 10;
  spec.net.seed = 13;
  spec.mobility = true;
  spec.mob.mean_pause = 30;
  spec.mob.max_moves_per_host = 4;
  spec.params["requests"] = 32;
  spec.params["request_start"] = 1;
  spec.params["request_gap"] = 3;
  bench::Sections sweep("e7_kernel_micro");
  sweep.add("full_mobility_scenario", spec);
  sweep.run();
  std::cout << "wrote " << sweep.write() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_artifact();
  return 0;
}
