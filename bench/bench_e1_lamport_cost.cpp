// E1 (§3.1.1 "Communication costs" + "Comparison of L1 and L2").
//
// Reproduces the paper's headline analysis: the total communication cost
// of one mutual-exclusion execution under
//   L1 (Lamport directly on the N MHs):   3*(N-1)*(2*c_w + c_s)
//   L2 (Lamport among the M MSSs):        3*c_w + c_f + c_s + 3*(M-1)*c_f
// sweeping N with M fixed, then M with N fixed. Each cell runs one real
// simulated execution and prints the measured ledger cost next to the
// closed form; the shape to verify is L1 growing linearly in N while L2
// stays flat (constant search cost per execution).

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

NetConfig base_config(std::uint32_t m, std::uint32_t n) {
  NetConfig cfg;
  cfg.num_mss = m;
  cfg.num_mh = n;
  cfg.latency.wired_min = cfg.latency.wired_max = 5;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 2;
  cfg.latency.search_min = cfg.latency.search_max = 4;
  cfg.seed = 42;
  return cfg;
}

double run_l1(std::uint32_t m, std::uint32_t n, const cost::CostParams& p,
              core::BenchReport& report) {
  Network net(base_config(m, n));
  mutex::CsMonitor monitor;
  mutex::L1Mutex l1(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l1.request(MhId(0)); });
  net.run();
  report.add_run("l1_m" + std::to_string(m) + "_n" + std::to_string(n), net, p);
  return net.ledger().total(p);
}

double run_l2(std::uint32_t m, std::uint32_t n, const cost::CostParams& p,
              core::BenchReport& report) {
  Network net(base_config(m, n));
  mutex::CsMonitor monitor;
  mutex::L2Mutex l2(net, monitor);
  net.start();
  net.sched().schedule(1, [&] { l2.request(MhId(0)); });
  // The paper's expression charges the release relay: the MH moves once
  // between init and grant, exactly the scenario the formula models.
  net.sched().schedule(4, [&] { net.mh(MhId(0)).move_to(MssId(1), 2); });
  net.run();
  report.add_run("l2_m" + std::to_string(m) + "_n" + std::to_string(n), net, p);
  return net.ledger().total(p);
}

}  // namespace

int main() {
  const cost::CostParams p;  // c_f = 1, c_w = 10, c_s = 4
  core::BenchReport report("e1_lamport_cost");
  report.note("sweep", "L1 over N (M=8) and over M (N=64), vs closed forms");
  std::cout << "E1: cost of one mutual-exclusion execution (c_fixed=" << p.c_fixed
            << ", c_wireless=" << p.c_wireless << ", c_search=" << p.c_search << ")\n\n";

  std::cout << "Sweep N (M = 8):\n";
  core::Table by_n({"N", "L1 sim", "L1 formula", "L2 sim", "L2 formula", "L1/L2"});
  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const double l1_sim = run_l1(8, n, p, report);
    const double l2_sim = run_l2(8, n, p, report);
    by_n.row({core::num(n), core::num(l1_sim), core::num(analysis::l1_execution_cost(n, p)),
              core::num(l2_sim), core::num(analysis::l2_execution_cost(8, p)),
              core::ratio(l1_sim / l2_sim)});
  }
  by_n.print(std::cout);

  std::cout << "\nSweep M (N = 64):\n";
  core::Table by_m({"M", "L1 sim", "L1 formula", "L2 sim", "L2 formula", "L1/L2"});
  for (const std::uint32_t m : {4u, 8u, 16u, 32u}) {
    const double l1_sim = run_l1(m, 64, p, report);
    const double l2_sim = run_l2(m, 64, p, report);
    by_m.row({core::num(m), core::num(l1_sim), core::num(analysis::l1_execution_cost(64, p)),
              core::num(l2_sim), core::num(analysis::l2_execution_cost(m, p)),
              core::ratio(l1_sim / l2_sim)});
  }
  by_m.print(std::cout);

  std::cout << "\nShape check: L1 grows ~3*(2c_w+c_s) per extra MH; L2 is constant in N\n"
            << "and grows only 3*c_f per extra MSS (the paper's structuring principle).\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
