// E1 (§3.1.1 "Communication costs" + "Comparison of L1 and L2").
//
// Reproduces the paper's headline analysis: the total communication cost
// of one mutual-exclusion execution under
//   L1 (Lamport directly on the N MHs):   3*(N-1)*(2*c_w + c_s)
//   L2 (Lamport among the M MSSs):        3*c_w + c_f + c_s + 3*(M-1)*c_f
// sweeping N with M fixed, then M with N fixed. Each cell runs one real
// simulated execution (on the exp parallel runner) and prints the
// measured ledger cost next to the closed form; the shape to verify is
// L1 growing linearly in N while L2 stays flat (constant search cost per
// execution).

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec base_spec(const std::string& variant, std::uint32_t m, std::uint32_t n) {
  exp::ScenarioSpec spec;
  spec.name = "e1_lamport_cost";
  spec.workload = "mutex";
  spec.variant = variant;
  spec.net.num_mss = m;
  spec.net.num_mh = n;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  spec.net.seed = 42;
  spec.params["requests"] = 1;
  spec.params["request_start"] = 1;
  if (variant == "l2") {
    // The paper's expression charges the release relay: the MH moves once
    // between init and grant, exactly the scenario the formula models.
    spec.params["move_at"] = 4;
    spec.params["move_to"] = 1;
    spec.params["move_transit"] = 2;
  }
  return spec;
}

std::string cell(const std::string& variant, std::uint32_t m, std::uint32_t n) {
  return variant + "_m" + std::to_string(m) + "_n" + std::to_string(n);
}

}  // namespace

int main() {
  const cost::CostParams p;  // c_f = 1, c_w = 10, c_s = 4
  const std::uint32_t kNs[] = {8, 16, 32, 64, 128, 256};
  const std::uint32_t kMs[] = {4, 8, 16, 32};

  bench::Sections sweep("e1_lamport_cost");
  for (const std::uint32_t n : kNs) {
    sweep.add(cell("l1", 8, n), base_spec("l1", 8, n));
    sweep.add(cell("l2", 8, n), base_spec("l2", 8, n));
  }
  for (const std::uint32_t m : kMs) {
    sweep.add(cell("l1", m, 64) + "_bym", base_spec("l1", m, 64));
    sweep.add(cell("l2", m, 64) + "_bym", base_spec("l2", m, 64));
  }
  sweep.run();

  std::cout << "E1: cost of one mutual-exclusion execution (c_fixed=" << p.c_fixed
            << ", c_wireless=" << p.c_wireless << ", c_search=" << p.c_search << ")\n\n";

  std::cout << "Sweep N (M = 8):\n";
  core::Table by_n({"N", "L1 sim", "L1 formula", "L2 sim", "L2 formula", "L1/L2"});
  for (const std::uint32_t n : kNs) {
    const double l1_sim = sweep.metric(cell("l1", 8, n), "cost.total");
    const double l2_sim = sweep.metric(cell("l2", 8, n), "cost.total");
    by_n.row({core::num(n), core::num(l1_sim), core::num(analysis::l1_execution_cost(n, p)),
              core::num(l2_sim), core::num(analysis::l2_execution_cost(8, p)),
              core::ratio(l1_sim / l2_sim)});
  }
  by_n.print(std::cout);

  std::cout << "\nSweep M (N = 64):\n";
  core::Table by_m({"M", "L1 sim", "L1 formula", "L2 sim", "L2 formula", "L1/L2"});
  for (const std::uint32_t m : kMs) {
    const double l1_sim = sweep.metric(cell("l1", m, 64) + "_bym", "cost.total");
    const double l2_sim = sweep.metric(cell("l2", m, 64) + "_bym", "cost.total");
    by_m.row({core::num(m), core::num(l1_sim), core::num(analysis::l1_execution_cost(64, p)),
              core::num(l2_sim), core::num(analysis::l2_execution_cost(m, p)),
              core::ratio(l1_sim / l2_sim)});
  }
  by_m.print(std::cout);

  std::cout << "\nShape check: L1 grows ~3*(2c_w+c_s) per extra MH; L2 is constant in N\n"
            << "and grows only 3*c_f per extra MSS (the paper's structuring principle).\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
