// Ablation A3: the lazy-inform period k (the §5 "less static solutions"
// knob; the inform/search trade-off of the paper's reference [3]).
//
// A lazy home proxy is informed only on every k-th move. Small k ~=
// fixed home (pay informs, never search); large k ~= never inform (pay a
// search whenever the cache went stale). With deliveries interleaved
// into an ongoing move process, sweeping k traces the classic U-curve.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

struct Run {
  std::uint64_t informs = 0;
  std::uint64_t searches = 0;
  double total = 0;
  int delivered = 0;
};

Run run_k(std::uint32_t k, const cost::CostParams& p, core::BenchReport& report) {
  NetConfig cfg;
  cfg.num_mss = 8;
  cfg.num_mh = 4;
  cfg.latency.wired_min = cfg.latency.wired_max = 2;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.seed = 77;
  Network net(cfg);
  proxy::ProxyOptions opts;
  opts.scope = proxy::ProxyScope::kLazyHome;
  opts.inform_every = k;
  proxy::ProxyService proxies(net, opts);
  int delivered = 0;
  proxies.set_client_handler([&](MhId, const std::any&) { ++delivered; });
  net.start();
  // mh0 walks the ring of cells: 24 moves; its home proxy (cell 0) sends
  // it a message after every third move.
  for (int move = 0; move < 24; ++move) {
    net.sched().schedule(1 + 40 * move, [&net] {
      auto& host = net.mh(MhId(0));
      if (!host.connected()) return;
      const auto next = static_cast<MssId>((net::index(host.current_mss()) + 1) % 8);
      host.move_to(next, 4);
    });
    if (move % 3 == 2) {
      net.sched().schedule(20 + 40 * move, [&proxies] {
        proxies.proxy_send(MssId(0), MhId(0), 1);
      });
    }
  }
  net.run();
  report.add_run("k" + std::to_string(k), net, p);
  return Run{proxies.informs(), net.ledger().searches(), net.ledger().total(p), delivered};
}

}  // namespace

int main() {
  const cost::CostParams p;
  std::cout << "A3: lazy home proxy — inform period k vs cost "
               "(24 moves, 8 proxy->MH deliveries)\n\n";

  core::BenchReport report("a3_lazy_inform");
  report.note("sweep", "lazy-home inform period k over the U-curve");
  core::Table table({"k", "informs", "searches", "delivered", "total cost"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u}) {
    const auto run = run_k(k, p, report);
    table.row({core::num(k), core::num(static_cast<double>(run.informs)),
               core::num(static_cast<double>(run.searches)),
               core::num(static_cast<double>(run.delivered)), core::num(run.total)});
  }
  table.print(std::cout);

  std::cout << "\nReading: k = 1 is the fixed-home proxy (max informs, no searches);\n"
               "large k approaches search-on-demand. The sweet spot depends on the\n"
               "deliveries-to-moves ratio — exactly the adaptivity §5 calls for.\n"
               "\nwrote "
            << report.write() << "\n";
  return 0;
}
