// Ablation A3: the lazy-inform period k (the §5 "less static solutions"
// knob; the inform/search trade-off of the paper's reference [3]).
//
// A lazy home proxy is informed only on every k-th move. Small k ~=
// fixed home (pay informs, never search); large k ~= never inform (pay a
// search whenever the cache went stale). With deliveries interleaved
// into an ongoing move process, sweeping k traces the classic U-curve.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec lazy_spec(std::uint32_t k) {
  exp::ScenarioSpec spec;
  spec.name = "a3_lazy_inform";
  spec.workload = "lazy_proxy";
  spec.variant = "lazy_home";
  spec.net.num_mss = 8;
  spec.net.num_mh = 4;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 2;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 1;
  spec.net.latency.search_min = spec.net.latency.search_max = 3;
  spec.net.seed = 77;
  spec.params["inform_every"] = k;
  spec.params["moves"] = 24;
  spec.params["send_every"] = 3;
  spec.params["move_gap"] = 40;
  return spec;
}

}  // namespace

int main() {
  const std::uint32_t kPeriods[] = {1, 2, 3, 4, 6, 8, 12, 16, 24};

  bench::Sections sweep("a3_lazy_inform");
  for (const std::uint32_t k : kPeriods) {
    sweep.add("k" + std::to_string(k), lazy_spec(k));
  }
  sweep.run();

  std::cout << "A3: lazy home proxy — inform period k vs cost "
               "(24 moves, 8 proxy->MH deliveries)\n\n";

  core::Table table({"k", "informs", "searches", "delivered", "total cost"});
  for (const std::uint32_t k : kPeriods) {
    const std::string cell = "k" + std::to_string(k);
    table.row({core::num(k), core::num(sweep.metric(cell, "workload.informs")),
               core::num(sweep.metric(cell, "ledger.searches")),
               core::num(sweep.metric(cell, "workload.delivered")),
               core::num(sweep.metric(cell, "cost.total"))});
  }
  table.print(std::cout);

  std::cout << "\nReading: k = 1 is the fixed-home proxy (max informs, no searches);\n"
               "large k approaches search-on-demand. The sweet spot depends on the\n"
               "deliveries-to-moves ratio — exactly the adaptivity §5 calls for.\n"
               "\nwrote "
            << sweep.write() << "\n";
  return 0;
}
