// Ablation A1: the search substrate.
//
// The paper's cost model abstracts locating a MH into one c_search
// charge, noting the worst case "require[s] a source MSS to contact each
// of the other M-1 MSSs". This bench runs the same delivery under both
// substrate modes and shows (a) the real fixed-message bill of broadcast
// search growing linearly in M while the oracle charge is flat, and (b)
// the retry behaviour when the target is between cells at query time.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec delivery_spec(std::uint32_t m, net::SearchMode mode, bool target_in_transit) {
  exp::ScenarioSpec spec;
  spec.name = "a1_search_modes";
  spec.workload = "delivery";
  spec.variant = "ping";
  spec.net.num_mss = m;
  spec.net.num_mh = m;  // mh i in cell i
  spec.net.search = mode;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 3;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 1;
  spec.net.latency.search_min = spec.net.latency.search_max = 3;
  spec.net.seed = 1;
  if (target_in_transit) spec.params["in_transit"] = 1;
  return spec;
}

std::string cell(std::uint32_t m, net::SearchMode mode, bool transit) {
  return std::string(mode == net::SearchMode::kOracle ? "oracle" : "broadcast") + "_m" +
         std::to_string(m) + (transit ? "_transit" : "");
}

}  // namespace

int main() {
  const std::uint32_t kMs[] = {4, 8, 16, 32, 64};

  bench::Sections sweep("a1_search_modes");
  for (const std::uint32_t m : kMs) {
    sweep.add(cell(m, net::SearchMode::kOracle, false),
              delivery_spec(m, net::SearchMode::kOracle, false));
    sweep.add(cell(m, net::SearchMode::kBroadcast, false),
              delivery_spec(m, net::SearchMode::kBroadcast, false));
  }
  sweep.add(cell(16, net::SearchMode::kOracle, true),
            delivery_spec(16, net::SearchMode::kOracle, true));
  sweep.add(cell(16, net::SearchMode::kBroadcast, true),
            delivery_spec(16, net::SearchMode::kBroadcast, true));
  sweep.run();

  std::cout << "A1: oracle vs broadcast search for one remote delivery\n\n";
  core::Table table({"M", "oracle searches", "oracle fixed", "broadcast fixed",
                     "paper worst case M+1"});
  for (const std::uint32_t m : kMs) {
    table.row({core::num(m),
               core::num(sweep.metric(cell(m, net::SearchMode::kOracle, false), "ledger.searches")),
               core::num(sweep.metric(cell(m, net::SearchMode::kOracle, false), "ledger.fixed_msgs")),
               core::num(sweep.metric(cell(m, net::SearchMode::kBroadcast, false),
                                      "ledger.fixed_msgs")),
               core::num(m + 1.0)});
  }
  table.print(std::cout);

  std::cout << "\nIn-transit target (joins its new cell only after 120 ticks):\n";
  core::Table transit({"mode", "delivered", "fixed msgs", "note"});
  transit.row({"oracle",
               core::num(sweep.metric(cell(16, net::SearchMode::kOracle, true),
                                      "workload.delivered")),
               core::num(sweep.metric(cell(16, net::SearchMode::kOracle, true),
                                      "ledger.fixed_msgs")),
               "resolution pends until the join"});
  transit.row({"broadcast",
               core::num(sweep.metric(cell(16, net::SearchMode::kBroadcast, true),
                                      "workload.delivered")),
               core::num(sweep.metric(cell(16, net::SearchMode::kBroadcast, true),
                                      "ledger.fixed_msgs")),
               "negative rounds retried until the join"});
  transit.print(std::cout);

  std::cout << "\nReading: the abstract c_search models exactly one unit of work;\n"
               "the broadcast substrate shows why the paper prices the worst case\n"
               "at ~M fixed messages and why repeated rounds punish slow joins.\n"
               "\nwrote "
            << sweep.write() << "\n";
  return 0;
}
