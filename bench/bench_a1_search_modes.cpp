// Ablation A1: the search substrate.
//
// The paper's cost model abstracts locating a MH into one c_search
// charge, noting the worst case "require[s] a source MSS to contact each
// of the other M-1 MSSs". This bench runs the same delivery under both
// substrate modes and shows (a) the real fixed-message bill of broadcast
// search growing linearly in M while the oracle charge is flat, and (b)
// the retry behaviour when the target is between cells at query time.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::Envelope;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

/// Minimal sender/receiver pair for one locate-and-deliver.
class PingStation : public net::MssAgent {
 public:
  void on_message(const Envelope&) override {}
  void ping(MhId target) { send_to_mh(target, 1); }
};

class PingHost : public net::MhAgent {
 public:
  void on_message(const Envelope&) override { ++received; }
  int received = 0;
};

struct Run {
  std::uint64_t fixed = 0;
  std::uint64_t searches = 0;
  int received = 0;
};

Run deliver_once(std::uint32_t m, net::SearchMode mode, bool target_in_transit,
                 core::BenchReport& report) {
  NetConfig cfg;
  cfg.num_mss = m;
  cfg.num_mh = m;  // mh i in cell i
  cfg.search = mode;
  cfg.latency.wired_min = cfg.latency.wired_max = 3;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.seed = 1;
  Network net(cfg);
  auto station = std::make_shared<PingStation>();
  net.mss(MssId(0)).register_agent(net::protocol::kUserBase, station);
  auto host = std::make_shared<PingHost>();
  const auto target = MhId(m - 1);  // remote cell
  net.mh(target).register_agent(net::protocol::kUserBase, host);
  net.start();
  if (target_in_transit) {
    net.sched().schedule(1, [&net, target] {
      net.mh(target).move_to(MssId(1), 120);  // long transit
    });
  }
  net.sched().schedule(5, [station, target] { station->ping(target); });
  net.run();
  report.add_run(std::string(mode == net::SearchMode::kOracle ? "oracle" : "broadcast") +
                     "_m" + std::to_string(m) + (target_in_transit ? "_transit" : ""),
                 net, cost::CostParams{});
  return Run{net.ledger().fixed_msgs(), net.ledger().searches(), host->received};
}

}  // namespace

int main() {
  std::cout << "A1: oracle vs broadcast search for one remote delivery\n\n";
  core::BenchReport report("a1_search_modes");
  report.note("sweep", "oracle vs broadcast over M, plus in-transit target at M=16");

  core::Table table({"M", "oracle searches", "oracle fixed", "broadcast fixed",
                     "paper worst case M+1"});
  for (const std::uint32_t m : {4u, 8u, 16u, 32u, 64u}) {
    const auto oracle = deliver_once(m, net::SearchMode::kOracle, false, report);
    const auto broadcast = deliver_once(m, net::SearchMode::kBroadcast, false, report);
    table.row({core::num(m), core::num(static_cast<double>(oracle.searches)),
               core::num(static_cast<double>(oracle.fixed)),
               core::num(static_cast<double>(broadcast.fixed)), core::num(m + 1.0)});
  }
  table.print(std::cout);

  std::cout << "\nIn-transit target (joins its new cell only after 120 ticks):\n";
  core::Table transit({"mode", "delivered", "fixed msgs", "note"});
  const auto oracle = deliver_once(16, net::SearchMode::kOracle, true, report);
  const auto broadcast = deliver_once(16, net::SearchMode::kBroadcast, true, report);
  transit.row({"oracle", core::num(static_cast<double>(oracle.received)),
               core::num(static_cast<double>(oracle.fixed)),
               "resolution pends until the join"});
  transit.row({"broadcast", core::num(static_cast<double>(broadcast.received)),
               core::num(static_cast<double>(broadcast.fixed)),
               "negative rounds retried until the join"});
  transit.print(std::cout);

  std::cout << "\nReading: the abstract c_search models exactly one unit of work;\n"
               "the broadcast substrate shows why the paper prices the worst case\n"
               "at ~M fixed messages and why repeated rounds punish slow joins.\n"
               "\nwrote "
            << report.write() << "\n";
  return 0;
}
