// Ablation A4: multicast delivery strategy (the paper's reference [1],
// built on the §2 handoff).
//
// Flood-and-buffer multicast pays (M-1) fixed messages per publication
// and one wireless hop per recipient, with handoff-carried watermarks
// keeping delivery exactly-once across moves. The naive alternative —
// search for each recipient per message — pays |R| searches instead.
// The crossover depends on M vs |R| and on c_search.

#include <iostream>

#include "core/mobidist.hpp"
#include "multicast/multicast.hpp"

namespace {

using namespace mobidist;
using group::Group;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

constexpr std::uint64_t kMessages = 20;

NetConfig base_config(std::uint32_t m, std::uint32_t n) {
  NetConfig cfg;
  cfg.num_mss = m;
  cfg.num_mh = n;
  cfg.latency.wired_min = cfg.latency.wired_max = 2;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.seed = 23;
  return cfg;
}

Group recipients(std::uint32_t count) {
  std::vector<MhId> list;
  for (std::uint32_t i = 0; i < count; ++i) list.push_back(MhId(i));
  return Group::of(list);
}

/// Flood-and-buffer multicast under background mobility.
double run_mcast(std::uint32_t m, std::uint32_t r, const cost::CostParams& p, bool& exact,
                 core::BenchReport& report) {
  Network net(base_config(m, r + 4));
  multicast::McastService mcast(net, recipients(r));
  mobility::MobilityConfig mob;
  mob.mean_pause = 50;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob, recipients(r).members);
  net.start();
  driver.start();
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    net.sched().schedule(5 + 25 * i, [&] { mcast.publish(MssId(0)); });
  }
  net.run();
  exact = mcast.monitor().exactly_once(mcast.recipients());
  report.add_run("flood_m" + std::to_string(m) + "_r" + std::to_string(r), net, p);
  return net.ledger().total(p) / static_cast<double>(kMessages);
}

/// Naive per-recipient search delivery (send_to_mh per recipient), same
/// workload. Implemented with a throwaway agent.
class NaiveSender : public net::MssAgent {
 public:
  explicit NaiveSender(Group recipients) : recipients_(std::move(recipients)) {}
  void on_message(const net::Envelope&) override {}
  void blast(std::uint64_t msg_id) {
    for (const auto mh : recipients_.members) send_to_mh(mh, msg_id);
  }

 private:
  Group recipients_;
};

class NaiveReceiver : public net::MhAgent {
 public:
  explicit NaiveReceiver(group::DeliveryMonitor& monitor) : monitor_(monitor) {}
  void on_message(const net::Envelope& env) override {
    if (const auto* id = net::body_as<std::uint64_t>(env)) monitor_.delivered(*id, self());
  }

 private:
  group::DeliveryMonitor& monitor_;
};

double run_naive(std::uint32_t m, std::uint32_t r, const cost::CostParams& p, bool& exact,
                 core::BenchReport& report) {
  Network net(base_config(m, r + 4));
  const auto group = recipients(r);
  group::DeliveryMonitor monitor;
  auto sender = std::make_shared<NaiveSender>(group);
  net.mss(MssId(0)).register_agent(net::protocol::kUserBase + 9, sender);
  for (std::uint32_t i = 1; i < m; ++i) {
    net.mss(MssId(i)).register_agent(net::protocol::kUserBase + 9,
                                     std::make_shared<NaiveSender>(group));
  }
  for (const auto mh : group.members) {
    net.mh(mh).register_agent(net::protocol::kUserBase + 9,
                              std::make_shared<NaiveReceiver>(monitor));
  }
  mobility::MobilityConfig mob;
  mob.mean_pause = 50;
  mob.mean_transit = 5;
  mob.max_moves_per_host = 3;
  mobility::MobilityDriver driver(net, mob, group.members);
  net.start();
  driver.start();
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    net.sched().schedule(5 + 25 * i, [&, i] {
      monitor.sent(i + 1, net::kInvalidMh);
      sender->blast(i + 1);
    });
  }
  net.run();
  exact = monitor.exactly_once(group);
  report.add_run("search_m" + std::to_string(m) + "_r" + std::to_string(r), net, p);
  return net.ledger().total(p) / static_cast<double>(kMessages);
}

}  // namespace

int main() {
  const cost::CostParams p;
  std::cout << "A4: multicast to mobile recipients — flood+handoff (ref [1]) vs\n"
               "per-recipient search, " << kMessages << " publications under mobility\n\n";

  core::BenchReport report("a4_multicast");
  report.note("sweep", "flood+handoff vs per-recipient search over (M, |R|)");
  core::Table table({"M", "|R|", "flood+handoff /msg", "per-search /msg", "winner",
                     "both exactly-once"});
  for (const auto& [m, r] : {std::pair{4u, 4u}, {4u, 12u}, {16u, 4u}, {16u, 12u},
                             {32u, 8u}, {64u, 2u}}) {
    bool exact_mcast = false, exact_naive = false;
    const double mcast_cost = run_mcast(m, r, p, exact_mcast, report);
    const double naive_cost = run_naive(m, r, p, exact_naive, report);
    table.row({core::num(m), core::num(r), core::num(mcast_cost), core::num(naive_cost),
               mcast_cost < naive_cost ? "flood" : "search",
               exact_mcast && exact_naive ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nReading: flooding wins when recipients outnumber stations or when\n"
               "searches are expensive; per-recipient search wins for tiny recipient\n"
               "sets in large networks. Only the flood+handoff scheme never searches.\n"
               "\nwrote "
            << report.write() << "\n";
  return 0;
}
