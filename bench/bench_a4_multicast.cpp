// Ablation A4: multicast delivery strategy (the paper's reference [1],
// built on the §2 handoff).
//
// Flood-and-buffer multicast pays (M-1) fixed messages per publication
// and one wireless hop per recipient, with handoff-carried watermarks
// keeping delivery exactly-once across moves. The naive alternative —
// search for each recipient per message — pays |R| searches instead.
// The crossover depends on M vs |R| and on c_search.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

constexpr std::uint64_t kMessages = 20;

exp::ScenarioSpec mcast_spec(const std::string& variant, std::uint32_t m, std::uint32_t r) {
  exp::ScenarioSpec spec;
  spec.name = "a4_multicast";
  spec.workload = "multicast";
  spec.variant = variant;
  spec.net.num_mss = m;
  spec.net.num_mh = r + 4;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 2;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 1;
  spec.net.latency.search_min = spec.net.latency.search_max = 3;
  spec.net.seed = 23;
  spec.mob.mean_pause = 50;
  spec.mob.mean_transit = 5;
  spec.mob.max_moves_per_host = 3;
  spec.params["recipients"] = r;
  spec.params["messages"] = static_cast<double>(kMessages);
  return spec;
}

std::string cell(const std::string& variant, std::uint32_t m, std::uint32_t r) {
  return variant + "_m" + std::to_string(m) + "_r" + std::to_string(r);
}

}  // namespace

int main() {
  const std::pair<std::uint32_t, std::uint32_t> kShapes[] = {
      {4, 4}, {4, 12}, {16, 4}, {16, 12}, {32, 8}, {64, 2}};

  bench::Sections sweep("a4_multicast");
  for (const auto& [m, r] : kShapes) {
    sweep.add(cell("flood", m, r), mcast_spec("flood", m, r));
    sweep.add(cell("search", m, r), mcast_spec("search", m, r));
  }
  sweep.run();

  std::cout << "A4: multicast to mobile recipients — flood+handoff (ref [1]) vs\n"
               "per-recipient search, " << kMessages << " publications under mobility\n\n";

  core::Table table({"M", "|R|", "flood+handoff /msg", "per-search /msg", "winner",
                     "both exactly-once"});
  for (const auto& [m, r] : kShapes) {
    const double mcast_cost =
        sweep.metric(cell("flood", m, r), "cost.total") / static_cast<double>(kMessages);
    const double naive_cost =
        sweep.metric(cell("search", m, r), "cost.total") / static_cast<double>(kMessages);
    const bool exact = sweep.metric(cell("flood", m, r), "workload.exactly_once") == 1.0 &&
                       sweep.metric(cell("search", m, r), "workload.exactly_once") == 1.0;
    table.row({core::num(m), core::num(r), core::num(mcast_cost), core::num(naive_cost),
               mcast_cost < naive_cost ? "flood" : "search", exact ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nReading: flooding wins when recipients outnumber stations or when\n"
               "searches are expensive; per-recipient search wins for tiny recipient\n"
               "sets in large networks. Only the flood+handoff scheme never searches.\n"
               "\nwrote "
            << sweep.write() << "\n";
  return 0;
}
