#pragma once

// Shared harness for the bench binaries. Every bench describes its run
// matrix as ScenarioSpec cells, executes them concurrently on the
// exp::ParallelRunner, reads measurements back from the aggregated
// summaries, and writes the versioned BENCH_<name>.json sweep artifact.
// Failures are loud: any run that trips an obs trace checker (or throws
// during setup) aborts the bench, exactly like BenchReport::add_run did.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "exp/exp.hpp"

namespace mobidist::bench {

/// MOBIDIST_JOBS caps bench parallelism; unset = hardware concurrency.
inline unsigned jobs_from_env() {
  if (const char* env = std::getenv("MOBIDIST_JOBS"); env != nullptr) {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

class Sections {
 public:
  explicit Sections(std::string name) : name_(std::move(name)) {}

  /// Append one cell running `spec` once under its own net.seed.
  void add(std::string cell, const exp::ScenarioSpec& spec) {
    add(std::move(cell), spec, {spec.net.seed});
  }

  /// Append one cell running `spec` once per seed (seeds stay adjacent
  /// in plan order, which the aggregator requires).
  void add(std::string cell, const exp::ScenarioSpec& spec,
           const std::vector<std::uint64_t>& seeds) {
    for (const std::uint64_t seed : seeds) {
      exp::RunPlan plan;
      plan.spec = spec;
      plan.spec.net.seed = seed;
      plan.cell = cell;
      plan.seed = seed;
      plan.index = plans_.size();
      plans_.push_back(std::move(plan));
      if (std::find(grid_.seeds.begin(), grid_.seeds.end(), seed) == grid_.seeds.end()) {
        grid_.seeds.push_back(seed);
      }
    }
  }

  /// Run every plan (parallel across cells and seeds) and aggregate.
  void run() {
    const auto t0 = std::chrono::steady_clock::now();
    const exp::ParallelRunner runner(jobs_from_env());
    results_ = runner.run(plans_);
    bool failed = false;
    for (const auto& result : results_) {
      if (!result.ok) {
        std::cerr << name_ << ": run failed [" << result.cell << " seed=" << result.seed
                  << "]: " << result.error << "\n";
        failed = true;
      }
    }
    if (failed) std::exit(1);
    report_ = exp::aggregate(name_, grid_, plans_, results_);
    report_.jobs = runner.jobs();
    report_.wall_clock_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (const char* sha = std::getenv("MOBIDIST_GIT_SHA"); sha != nullptr) {
      report_.git_sha = sha;
    }
  }

  /// Mean of `metric` across the seeds of `cell`; aborts on a missing
  /// cell or metric so a typo cannot silently read as 0.
  [[nodiscard]] double metric(std::string_view cell, std::string_view name) const {
    const auto* summary = report_.find_cell(cell);
    if (summary == nullptr) {
      std::cerr << name_ << ": no such cell '" << cell << "'\n";
      std::exit(1);
    }
    const auto it = summary->metrics.find(name);
    if (it == summary->metrics.end()) {
      std::cerr << name_ << ": cell '" << cell << "' has no metric '" << name << "'\n";
      std::exit(1);
    }
    return it->second.mean;
  }

  /// Per-run access for per-seed tables.
  [[nodiscard]] std::vector<const exp::RunResult*> runs(std::string_view cell) const {
    std::vector<const exp::RunResult*> out;
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      if (plans_[i].cell == cell) out.push_back(&results_[i]);
    }
    return out;
  }

  [[nodiscard]] const exp::SweepReport& report() const noexcept { return report_; }

  /// Mutable access for provenance fields the bench sets after run()
  /// (e.g. SweepReport::shards for sharded-engine cells).
  [[nodiscard]] exp::SweepReport& report() noexcept { return report_; }

  /// Write BENCH_<name>.json to $MOBIDIST_BENCH_DIR (cwd if unset).
  std::string write() const {
    const std::string path =
        core::resolve_env_dir("MOBIDIST_BENCH_DIR", ".") + "BENCH_" + name_ + ".json";
    core::write_text_file(path, report_.json() + "\n");
    return path;
  }

 private:
  std::string name_;
  exp::SweepGrid grid_;
  std::vector<exp::RunPlan> plans_;
  std::vector<exp::RunResult> results_;
  exp::SweepReport report_;
};

}  // namespace mobidist::bench
