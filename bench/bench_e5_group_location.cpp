// E5 (§4.1–4.3 + "Comparison of three approaches").
//
// Effective cost of one group message under the three strategies, as a
// function of the mobility-to-message ratio MOB/MSG and the significant
// fraction f:
//   pure search:   (|G|-1)(2c_w + c_s)            — flat in mobility
//   always inform: (MOB/MSG + 1)(|G|-1)(2c_w+c_f) — pays for every move
//   location view: bounded by ((f*r+1)|LV^max| + 3f*r - 1)c_f + |G|c_w
//                                                  — pays only for the
//                                                    significant fraction
// A scripted rover executes a controlled mix of significant (fresh-cell)
// and non-significant (within-view) moves between sends; each strategy
// replays the identical workload.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using group::Group;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

constexpr std::uint64_t kMessages = 40;

NetConfig base_config() {
  NetConfig cfg;
  cfg.num_mss = 8;
  cfg.num_mh = 24;  // round robin: cell0 = {0,8,16}, cell1 = {1,9,17}
  cfg.latency.wired_min = cfg.latency.wired_max = 2;
  cfg.latency.wireless_min = cfg.latency.wireless_max = 1;
  cfg.latency.search_min = cfg.latency.search_max = 3;
  cfg.seed = 11;
  return cfg;
}

Group five_members() {
  return Group::of({MhId(0), MhId(8), MhId(16), MhId(1), MhId(9)});
}

workload::MobMsgDriver::Config driver_config(double ratio, double f) {
  workload::MobMsgDriver::Config cfg;
  cfg.messages = kMessages;
  cfg.mob_per_msg = ratio;
  cfg.significant_fraction = f;
  cfg.step = 40;
  cfg.transit = 3;
  return cfg;
}

struct Run {
  double effective_cost = 0;  ///< ledger total / MSG
  std::uint64_t wired = 0;
  std::uint64_t wireless = 0;
  std::uint64_t searches = 0;
  double measured_f = 0;
  std::size_t lv_max = 0;
  bool exactly_once = false;
};

template <typename Comm>
Run run_strategy(double ratio, double f, const cost::CostParams& p,
                 const std::function<std::unique_ptr<Comm>(Network&, const Group&)>& make,
                 core::BenchReport& report, const std::string& label) {
  Network net(base_config());
  const auto group = five_members();
  auto comm = make(net, group);
  workload::MobMsgDriver driver(
      net, driver_config(ratio, f), {MssId(0), MssId(1)},
      {MssId(5), MssId(6), MssId(7)}, MhId(16),
      [&](std::uint64_t) { comm->send_group_message(MhId(0)); });
  net.start();
  driver.start();
  net.run();
  Run run;
  run.effective_cost = net.ledger().total(p) / static_cast<double>(kMessages);
  run.wired = net.ledger().fixed_msgs();
  run.wireless = net.ledger().wireless_msgs();
  run.searches = net.ledger().searches();
  run.exactly_once = comm->monitor().exactly_once(group);
  if (driver.moves_scheduled() > 0) {
    run.measured_f = static_cast<double>(driver.significant_scheduled()) /
                     static_cast<double>(driver.moves_scheduled());
  }
  if constexpr (std::is_same_v<Comm, group::LocationViewGroup>) {
    run.lv_max = comm->max_view_size();
    run.measured_f = driver.moves_scheduled() > 0
                         ? static_cast<double>(comm->significant_moves()) /
                               static_cast<double>(driver.moves_scheduled())
                         : 0.0;
  }
  report.add_run(label, net, p);
  return run;
}

}  // namespace

int main() {
  const cost::CostParams p;
  core::BenchReport report("e5_group_location");
  report.note("sweep", "three group strategies over MOB/MSG and significant fraction f");
  const std::size_t g = 5;
  std::cout << "E5: effective cost per group message, |G| = " << g
            << ", members clustered in 2 cells, " << kMessages << " messages\n\n";

  std::cout << "Sweep MOB/MSG ratio (f ~= 0.5):\n";
  core::Table table({"MOB/MSG", "pure-search", "PS formula", "always-inform", "AI formula",
                     "location-view", "LV bound", "f meas", "|LV|max"});
  for (const double ratio : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    const std::string suffix = "_ratio" + core::num(ratio);
    const auto ps = run_strategy<group::PureSearchGroup>(
        ratio, 0.5, p,
        [](Network& net, const Group& grp) {
          return std::make_unique<group::PureSearchGroup>(net, grp);
        },
        report, "pure_search" + suffix);
    const auto ai = run_strategy<group::AlwaysInformGroup>(
        ratio, 0.5, p,
        [](Network& net, const Group& grp) {
          return std::make_unique<group::AlwaysInformGroup>(net, grp);
        },
        report, "always_inform" + suffix);
    const auto lv = run_strategy<group::LocationViewGroup>(
        ratio, 0.5, p,
        [](Network& net, const Group& grp) {
          return std::make_unique<group::LocationViewGroup>(net, grp);
        },
        report, "location_view" + suffix);
    table.row({core::num(ratio), core::num(ps.effective_cost),
               core::num(analysis::pure_search_msg_cost(g, p)),
               core::num(ai.effective_cost),
               core::num(analysis::always_inform_effective(ratio, g, p)),
               core::num(lv.effective_cost),
               core::num(analysis::location_view_effective_bound(lv.measured_f * ratio,
                                                                 lv.lv_max, g, p)),
               core::num(lv.measured_f), core::num(static_cast<double>(lv.lv_max))});
  }
  table.print(std::cout);

  std::cout << "\nSweep significant fraction f (MOB/MSG = 4):\n";
  core::Table ftable({"f target", "f meas", "location-view", "LV bound", "always-inform"});
  for (const double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const std::string suffix = "_f" + core::num(f);
    const auto lv = run_strategy<group::LocationViewGroup>(
        4.0, f, p,
        [](Network& net, const Group& grp) {
          return std::make_unique<group::LocationViewGroup>(net, grp);
        },
        report, "location_view" + suffix);
    const auto ai = run_strategy<group::AlwaysInformGroup>(
        4.0, f, p,
        [](Network& net, const Group& grp) {
          return std::make_unique<group::AlwaysInformGroup>(net, grp);
        },
        report, "always_inform" + suffix);
    ftable.row({core::num(f), core::num(lv.measured_f), core::num(lv.effective_cost),
                core::num(analysis::location_view_effective_bound(lv.measured_f * 4.0,
                                                                  lv.lv_max, g, p)),
                core::num(ai.effective_cost)});
  }
  ftable.print(std::cout);

  std::cout << "\nReading: pure search is flat but always pays (|G|-1) searches;\n"
               "always-inform climbs linearly with MOB/MSG; location view tracks only\n"
               "the significant fraction and stays under its paper bound.\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
