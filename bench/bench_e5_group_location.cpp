// E5 (§4.1–4.3 + "Comparison of three approaches").
//
// Effective cost of one group message under the three strategies, as a
// function of the mobility-to-message ratio MOB/MSG and the significant
// fraction f:
//   pure search:   (|G|-1)(2c_w + c_s)            — flat in mobility
//   always inform: (MOB/MSG + 1)(|G|-1)(2c_w+c_f) — pays for every move
//   location view: bounded by ((f*r+1)|LV^max| + 3f*r - 1)c_f + |G|c_w
//                                                  — pays only for the
//                                                    significant fraction
// A scripted rover executes a controlled mix of significant (fresh-cell)
// and non-significant (within-view) moves between sends; each strategy
// replays the identical workload.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

constexpr std::uint64_t kMessages = 40;

exp::ScenarioSpec strategy_spec(const std::string& variant, double ratio, double f) {
  exp::ScenarioSpec spec;
  spec.name = "e5_group_location";
  spec.workload = "group";
  spec.variant = variant;
  spec.net.num_mss = 8;
  spec.net.num_mh = 24;  // round robin: cell0 = {0,8,16}, cell1 = {1,9,17}
  spec.net.latency.wired_min = spec.net.latency.wired_max = 2;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 1;
  spec.net.latency.search_min = spec.net.latency.search_max = 3;
  spec.net.seed = 11;
  spec.params["messages"] = static_cast<double>(kMessages);
  spec.params["mob_per_msg"] = ratio;
  spec.params["significant_fraction"] = f;
  spec.params["step"] = 40;
  spec.params["transit"] = 3;
  return spec;
}

struct Run {
  double effective_cost = 0;  ///< ledger total / MSG
  double measured_f = 0;
  double lv_max = 0;
};

Run read_run(const bench::Sections& sweep, const std::string& cell, bool location_view) {
  Run run;
  run.effective_cost = sweep.metric(cell, "cost.total") / static_cast<double>(kMessages);
  const double moves = sweep.metric(cell, "workload.moves_scheduled");
  if (moves > 0) {
    // LV counts the moves its views actually classified significant; the
    // other strategies report what the driver scheduled.
    const double significant = location_view ? sweep.metric(cell, "workload.significant_moves")
                                             : sweep.metric(cell, "workload.significant_scheduled");
    run.measured_f = significant / moves;
  }
  if (location_view) run.lv_max = sweep.metric(cell, "workload.lv_max");
  return run;
}

}  // namespace

int main() {
  const cost::CostParams p;
  const std::size_t g = 5;
  const double kRatios[] = {0.0, 1.0, 2.0, 4.0, 8.0};
  const double kFs[] = {0.1, 0.3, 0.5, 0.7, 0.9};

  bench::Sections sweep("e5_group_location");
  for (const double ratio : kRatios) {
    const std::string suffix = "_ratio" + core::num(ratio);
    sweep.add("pure_search" + suffix, strategy_spec("pure_search", ratio, 0.5));
    sweep.add("always_inform" + suffix, strategy_spec("always_inform", ratio, 0.5));
    sweep.add("location_view" + suffix, strategy_spec("location_view", ratio, 0.5));
  }
  for (const double f : kFs) {
    const std::string suffix = "_f" + core::num(f);
    sweep.add("location_view" + suffix, strategy_spec("location_view", 4.0, f));
    sweep.add("always_inform" + suffix, strategy_spec("always_inform", 4.0, f));
  }
  sweep.run();

  std::cout << "E5: effective cost per group message, |G| = " << g
            << ", members clustered in 2 cells, " << kMessages << " messages\n\n";

  std::cout << "Sweep MOB/MSG ratio (f ~= 0.5):\n";
  core::Table table({"MOB/MSG", "pure-search", "PS formula", "always-inform", "AI formula",
                     "location-view", "LV bound", "f meas", "|LV|max"});
  for (const double ratio : kRatios) {
    const std::string suffix = "_ratio" + core::num(ratio);
    const auto ps = read_run(sweep, "pure_search" + suffix, false);
    const auto ai = read_run(sweep, "always_inform" + suffix, false);
    const auto lv = read_run(sweep, "location_view" + suffix, true);
    table.row({core::num(ratio), core::num(ps.effective_cost),
               core::num(analysis::pure_search_msg_cost(g, p)),
               core::num(ai.effective_cost),
               core::num(analysis::always_inform_effective(ratio, g, p)),
               core::num(lv.effective_cost),
               core::num(analysis::location_view_effective_bound(
                   lv.measured_f * ratio, static_cast<std::size_t>(lv.lv_max), g, p)),
               core::num(lv.measured_f), core::num(lv.lv_max)});
  }
  table.print(std::cout);

  std::cout << "\nSweep significant fraction f (MOB/MSG = 4):\n";
  core::Table ftable({"f target", "f meas", "location-view", "LV bound", "always-inform"});
  for (const double f : kFs) {
    const std::string suffix = "_f" + core::num(f);
    const auto lv = read_run(sweep, "location_view" + suffix, true);
    const auto ai = read_run(sweep, "always_inform" + suffix, false);
    ftable.row({core::num(f), core::num(lv.measured_f), core::num(lv.effective_cost),
                core::num(analysis::location_view_effective_bound(
                    lv.measured_f * 4.0, static_cast<std::size_t>(lv.lv_max), g, p)),
                core::num(ai.effective_cost)});
  }
  ftable.print(std::cout);

  std::cout << "\nReading: pure search is flat but always pays (|G|-1) searches;\n"
               "always-inform climbs linearly with MOB/MSG; location view tracks only\n"
               "the significant fraction and stays under its paper bound.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
