// Ablation A2: the MH-to-MH FIFO burden (§3.1.1, "Fifo channels between
// MHs").
//
// L1 needs FIFO channels between every pair of mobile hosts. Our relay
// provides them with a destination-side resequencer. This bench sends a
// numbered burst from one MH to another while the receiver changes
// cells under heavy latency jitter, with the resequencer on and off, and
// reports how many deliveries the resequencer had to hold versus how
// badly ordering breaks without it.

#include <iostream>
#include <vector>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::Envelope;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

class Receiver : public net::MhAgent {
 public:
  void on_message(const Envelope& env) override {
    if (const auto* value = net::body_as<int>(env)) received.push_back(*value);
  }
  std::vector<int> received;
};

class Sender : public net::MhAgent {
 public:
  void on_message(const Envelope&) override {}
  void burst(MhId to, int from, int count, bool fifo) {
    for (int i = from; i < from + count; ++i) send_to_mh(to, i, fifo);
  }
};

struct Run {
  std::uint64_t inversions = 0;   ///< adjacent out-of-order pairs seen by the app
  std::uint64_t held = 0;         ///< relay payloads buffered by the resequencer
  std::size_t delivered = 0;
};

Run run_burst(bool fifo, std::uint64_t seed, core::BenchReport& report) {
  NetConfig cfg;
  cfg.num_mss = 4;
  cfg.num_mh = 4;
  cfg.latency.wired_min = 1;
  cfg.latency.wired_max = 60;  // heavy jitter across searches/forwards
  cfg.latency.search_min = 1;
  cfg.latency.search_max = 40;
  cfg.seed = seed;
  Network net(cfg);
  auto sender = std::make_shared<Sender>();
  auto receiver = std::make_shared<Receiver>();
  net.mh(MhId(0)).register_agent(net::protocol::kUserBase, sender);
  net.mh(MhId(1)).register_agent(net::protocol::kUserBase, receiver);
  net.start();
  net.sched().schedule(1, [&] { sender->burst(MhId(1), 0, 15, fifo); });
  net.sched().schedule(4, [&] { net.mh(MhId(1)).move_to(MssId(2), 30); });
  net.sched().schedule(80, [&] { sender->burst(MhId(1), 15, 15, fifo); });
  net.sched().schedule(90, [&] { net.mh(MhId(1)).move_to(MssId(3), 25); });
  net.run();
  Run run;
  run.delivered = receiver->received.size();
  for (std::size_t i = 1; i < receiver->received.size(); ++i) {
    if (receiver->received[i] < receiver->received[i - 1]) ++run.inversions;
  }
  run.held = net.stats().relay_reordered;
  report.add_run(std::string(fifo ? "fifo" : "raw") + "_seed" + std::to_string(seed), net,
                 cost::CostParams{});
  return run;
}

}  // namespace

int main() {
  std::cout << "A2: relay resequencer under jitter + mid-burst moves "
               "(30 numbered messages, receiver moves twice)\n\n";

  core::BenchReport report("a2_fifo_relay");
  report.note("sweep", "resequencer on/off across five seeds");
  core::Table table({"seed", "mode", "delivered", "order inversions", "held by reseq"});
  std::uint64_t total_inversions_raw = 0;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    const auto with = run_burst(true, seed, report);
    const auto without = run_burst(false, seed, report);
    total_inversions_raw += without.inversions;
    table.row({core::num(static_cast<double>(seed)), "fifo",
               core::num(static_cast<double>(with.delivered)),
               core::num(static_cast<double>(with.inversions)),
               core::num(static_cast<double>(with.held))});
    table.row({core::num(static_cast<double>(seed)), "raw",
               core::num(static_cast<double>(without.delivered)),
               core::num(static_cast<double>(without.inversions)),
               core::num(static_cast<double>(without.held))});
  }
  table.print(std::cout);

  std::cout << "\nReading: the resequencer delivers 0 inversions at the price of\n"
               "buffering (the 'additional burden on the underlying network\n"
               "protocols' the paper charges against L1); raw mode saw "
            << total_inversions_raw << " inversions across the seeds.\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
