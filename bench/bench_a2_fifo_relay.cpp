// Ablation A2: the MH-to-MH FIFO burden (§3.1.1, "Fifo channels between
// MHs").
//
// L1 needs FIFO channels between every pair of mobile hosts. Our relay
// provides them with a destination-side resequencer. This bench sends a
// numbered burst from one MH to another while the receiver changes
// cells under heavy latency jitter, with the resequencer on and off, and
// reports how many deliveries the resequencer had to hold versus how
// badly ordering breaks without it.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

exp::ScenarioSpec burst_spec(const std::string& variant) {
  exp::ScenarioSpec spec;
  spec.name = "a2_fifo_relay";
  spec.workload = "relay_burst";
  spec.variant = variant;
  spec.net.num_mss = 4;
  spec.net.num_mh = 4;
  spec.net.latency.wired_min = 1;
  spec.net.latency.wired_max = 60;  // heavy jitter across searches/forwards
  spec.net.latency.search_min = 1;
  spec.net.latency.search_max = 40;
  return spec;
}

double run_metric(const exp::RunResult& run, std::string_view name) {
  const auto it = run.metrics.find(name);
  return it == run.metrics.end() ? 0.0 : it->second;
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> kSeeds = {11, 22, 33, 44, 55};

  bench::Sections sweep("a2_fifo_relay");
  sweep.add("fifo", burst_spec("fifo"), kSeeds);
  sweep.add("raw", burst_spec("raw"), kSeeds);
  sweep.run();

  std::cout << "A2: relay resequencer under jitter + mid-burst moves "
               "(30 numbered messages, receiver moves twice)\n\n";

  core::Table table({"seed", "mode", "delivered", "order inversions", "held by reseq"});
  double total_inversions_raw = 0;
  const auto fifo_runs = sweep.runs("fifo");
  const auto raw_runs = sweep.runs("raw");
  for (std::size_t i = 0; i < kSeeds.size(); ++i) {
    const auto* with = fifo_runs[i];
    const auto* without = raw_runs[i];
    total_inversions_raw += run_metric(*without, "workload.inversions");
    table.row({core::num(static_cast<double>(with->seed)), "fifo",
               core::num(run_metric(*with, "workload.delivered")),
               core::num(run_metric(*with, "workload.inversions")),
               core::num(run_metric(*with, "net.relay_reordered"))});
    table.row({core::num(static_cast<double>(without->seed)), "raw",
               core::num(run_metric(*without, "workload.delivered")),
               core::num(run_metric(*without, "workload.inversions")),
               core::num(run_metric(*without, "net.relay_reordered"))});
  }
  table.print(std::cout);

  std::cout << "\nReading: the resequencer delivers 0 inversions at the price of\n"
               "buffering (the 'additional burden on the underlying network\n"
               "protocols' the paper charges against L1); raw mode saw "
            << core::num(total_inversions_raw) << " inversions across the seeds.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
