// E4 (§3.1.2 R2 vs R2' trade-off + the "Variations" paragraph).
//
// A mobile host can race ahead of the slow token and be served at every
// MSS it visits: up to N*M grants per traversal under plain R2. R2'
// (token_val / access_count) caps it at one per traversal — unless the
// MH lies about its counter. R2'' (the <MSS,MH> token_list) caps even a
// lying MH. This bench scripts exactly that chase and prints the grants
// the racing MH collects within the token's first traversal.

#include <iostream>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

constexpr std::uint32_t kM = 4;

exp::ScenarioSpec chase_spec(const std::string& variant, bool malicious) {
  exp::ScenarioSpec spec;
  spec.name = "e4_ring_fairness";
  spec.workload = "ring";
  spec.variant = variant;
  spec.net.num_mss = kM;
  spec.net.num_mh = 8;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 200;  // slow ring hops
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  spec.net.seed = 4;
  spec.params["chase"] = 1;
  spec.params["traversals"] = 2;
  spec.params["token_at"] = 5;
  if (malicious) spec.params["malicious"] = 1;
  return spec;
}

std::string cell(const std::string& variant, bool malicious) {
  return variant + (malicious ? "_malicious" : "_honest");
}

const char* pretty(const std::string& variant) {
  if (variant == "r2") return "R2  (basic)";
  if (variant == "r2p") return "R2' (token_val counter)";
  return "R2'' (token_list)";
}

}  // namespace

int main() {
  const std::string kVariants[] = {"r2", "r2p", "r2pp"};

  bench::Sections sweep("e4_ring_fairness");
  for (const auto& variant : kVariants) {
    sweep.add(cell(variant, false), chase_spec(variant, false));
    sweep.add(cell(variant, true), chase_spec(variant, true));
  }
  sweep.run();

  std::cout << "E4: grants collected by one MH chasing the token through all " << kM
            << " cells within traversal 1\n"
            << "(paper bounds: R2 <= N*M per traversal, R2' <= N; R2'' holds even "
               "against a lying access_count)\n\n";

  core::Table table({"variant", "honest MH", "malicious MH", "paper cap/traversal"});
  for (const auto& variant : kVariants) {
    const char* cap = variant == "r2" ? "N*M" : "1 per MH";
    table.row({pretty(variant),
               core::num(sweep.metric(cell(variant, false), "workload.grants_traversal1")),
               core::num(sweep.metric(cell(variant, true), "workload.grants_traversal1")), cap});
  }
  table.print(std::cout);

  std::cout << "\nReading: basic R2 serves the chaser at every cell (" << kM
            << " grants); R2' stops the honest chaser after one grant but a\n"
               "malicious access_count defeats it; the token_list variant caps both.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
