// E4 (§3.1.2 R2 vs R2' trade-off + the "Variations" paragraph).
//
// A mobile host can race ahead of the slow token and be served at every
// MSS it visits: up to N*M grants per traversal under plain R2. R2'
// (token_val / access_count) caps it at one per traversal — unless the
// MH lies about its counter. R2'' (the <MSS,MH> token_list) caps even a
// lying MH. This bench scripts exactly that chase and prints the grants
// the racing MH collects within the token's first traversal.

#include <iostream>

#include "core/mobidist.hpp"

namespace {

using namespace mobidist;
using net::MhId;
using net::MssId;
using net::NetConfig;
using net::Network;

constexpr std::uint32_t kM = 4;

struct Outcome {
  std::uint64_t grants_traversal1 = 0;
  std::uint64_t total = 0;
};

Outcome run(mutex::RingVariant variant, bool malicious, core::BenchReport& report) {
  NetConfig cfg;
  cfg.num_mss = kM;
  cfg.num_mh = 8;
  cfg.latency.wired_min = cfg.latency.wired_max = 200;  // slow ring hops
  cfg.latency.wireless_min = cfg.latency.wireless_max = 2;
  cfg.latency.search_min = cfg.latency.search_max = 4;
  cfg.seed = 4;
  Network net(cfg);
  mutex::CsMonitor monitor;
  mutex::R2Mutex r2(net, monitor, variant);
  if (malicious) r2.set_malicious(MhId(0), true);
  net.start();
  // mh0 starts at cell 0: request there, then hop ahead of the token and
  // request at every cell it reaches before the token does.
  net.sched().schedule(1, [&] { r2.request(MhId(0)); });
  net.sched().schedule(5, [&] { r2.start_token(2); });
  for (std::uint32_t cell = 1; cell < kM; ++cell) {
    const sim::SimTime when = 60 + (cell - 1) * 200;
    net.sched().schedule(when, [&, cell] {
      auto& host = net.mh(MhId(0));
      if (host.connected() && host.current_mss() != MssId(cell)) {
        host.move_to(MssId(cell), 3);
      }
    });
    net.sched().schedule(when + 10, [&] { r2.request(MhId(0)); });
  }
  net.run();
  Outcome outcome;
  outcome.grants_traversal1 = r2.grants_for(MhId(0), 1);
  outcome.total = r2.completed();
  report.add_run("variant" + std::to_string(static_cast<int>(variant)) +
                     (malicious ? "_malicious" : "_honest"),
                 net, cost::CostParams{});
  return outcome;
}

const char* name(mutex::RingVariant variant) {
  switch (variant) {
    case mutex::RingVariant::kBasic: return "R2  (basic)";
    case mutex::RingVariant::kCounter: return "R2' (token_val counter)";
    case mutex::RingVariant::kTokenList: return "R2'' (token_list)";
  }
  return "?";
}

}  // namespace

int main() {
  core::BenchReport report("e4_ring_fairness");
  report.note("sweep", "R2/R2'/R2'' grants to a token-chasing MH, honest and lying");
  std::cout << "E4: grants collected by one MH chasing the token through all " << kM
            << " cells within traversal 1\n"
            << "(paper bounds: R2 <= N*M per traversal, R2' <= N; R2'' holds even "
               "against a lying access_count)\n\n";

  core::Table table({"variant", "honest MH", "malicious MH", "paper cap/traversal"});
  for (const auto variant : {mutex::RingVariant::kBasic, mutex::RingVariant::kCounter,
                             mutex::RingVariant::kTokenList}) {
    const auto honest = run(variant, false, report);
    const auto lying = run(variant, true, report);
    const char* cap = variant == mutex::RingVariant::kBasic ? "N*M" : "1 per MH";
    table.row({name(variant), core::num(static_cast<double>(honest.grants_traversal1)),
               core::num(static_cast<double>(lying.grants_traversal1)), cap});
  }
  table.print(std::cout);

  std::cout << "\nReading: basic R2 serves the chaser at every cell (" << kM
            << " grants); R2' stops the honest chaser after one grant but a\n"
               "malicious access_count defeats it; the token_list variant caps both.\n"
            << "\nwrote " << report.write() << "\n";
  return 0;
}
