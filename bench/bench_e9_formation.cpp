// E9 (ROADMAP "batch the wired backbone").
//
// Formation-layer payoff: the same L2 / R2 mutex workloads run with the
// wired backbone batching disabled (flush window 0 = passthrough) and
// with progressively wider flush windows. Wider windows let more
// same-channel messages coalesce into one packet, so the per-packet
// c_fixed bill — the paper's fixed-network cost term — drops while the
// message count (and the algorithm's behaviour) stays put. The bench
// asserts the wired cost across the L2/R2 family is strictly decreasing
// in the flush window, and non-increasing within every family — the R2
// token walk is one wired hop at a time, so a lone message per window
// is its own packet and the ring rows stay flat by design. A regression
// in the coalescing logic fails the binary, not just the table.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/mobidist.hpp"

namespace {

using namespace mobidist;

const std::vector<std::uint64_t> kSeeds = {31, 32, 33};
const std::vector<std::uint64_t> kWindows = {0, 4, 16, 64};

exp::ScenarioSpec base_spec(const std::string& workload, const std::string& variant,
                            std::uint64_t window) {
  exp::ScenarioSpec spec;
  spec.name = "e9_formation";
  spec.workload = workload;
  spec.variant = variant;
  spec.net.num_mss = 4;
  spec.net.num_mh = 32;
  spec.net.latency.wired_min = spec.net.latency.wired_max = 5;
  spec.net.latency.wireless_min = spec.net.latency.wireless_max = 2;
  spec.net.latency.search_min = spec.net.latency.search_max = 4;
  // Replies can sit a full flush window at each hop; a short broadcast
  // retry would re-spray queries and change the message count with the
  // window, which is exactly what this bench must hold fixed.
  spec.net.latency.broadcast_retry = 1000;
  spec.net.formation.flush_deadline = window;  // 0 = passthrough
  // Generous size caps so the flush window is the binding trigger.
  spec.net.formation.max_packet_msgs = 256;
  spec.net.formation.max_packet_bytes = 1 << 20;
  return spec;
}

exp::ScenarioSpec l2_spec(std::uint64_t window) {
  auto spec = base_spec("mutex", "l2", window);
  // A drizzle of contending requests, one per tick: the request/grant/
  // release chatter between the 4 MSSs overlaps on the same wired
  // channels at a density where every wider window coalesces more.
  spec.params["requests"] = 64;
  spec.params["request_start"] = 1;
  spec.params["request_gap"] = 1;
  return spec;
}

exp::ScenarioSpec ring_spec(const std::string& variant, std::uint64_t window) {
  auto spec = base_spec("ring", variant, window);
  // The token walk itself is strictly sequential (one wired hop in
  // flight at a time), so the batchable traffic is the per-request
  // broadcast search: each request sprays M-1 real wired queries plus
  // replies, and staggered requests overlap them on shared channels.
  spec.net.search = net::SearchMode::kBroadcast;
  spec.params["requests"] = 32;
  spec.params["request_start"] = 1;
  spec.params["request_gap"] = 1;
  spec.params["traversals"] = 2;
  spec.params["token_at"] = 5;
  return spec;
}

std::string cell(const std::string& family, std::uint64_t window) {
  return family + "_w" + std::to_string(window);
}

}  // namespace

int main() {
  const cost::CostParams p;

  bench::Sections sweep("formation");
  for (const std::uint64_t w : kWindows) {
    sweep.add(cell("l2", w), l2_spec(w), kSeeds);
    sweep.add(cell("r2", w), ring_spec("r2", w), kSeeds);
    sweep.add(cell("r2pp", w), ring_spec("r2pp", w), kSeeds);
  }
  sweep.run();

  std::cout << "E9: wired-backbone formation (batching) payoff\n"
            << "(flush window w in sim ticks; w=0 disables the formation layer;\n"
            << " wired cost = packets * c_fixed + msgs * c_wired_msg, c_fixed=" << p.c_fixed
            << ", c_wired_msg=" << p.c_wired_msg << ")\n\n";

  bool ok = true;
  std::vector<double> family_total(kWindows.size(), 0.0);
  for (const std::string family : {"l2", "r2", "r2pp"}) {
    std::cout << family << ": cost vs flush window (M=4, N=32, mean over "
              << kSeeds.size() << " seeds)\n";
    core::Table table({"window", "wired msgs", "wired packets", "wired cost", "cost.total",
                       "events/sec (mean)"});
    double prev_wired = 0.0;
    for (std::size_t i = 0; i < kWindows.size(); ++i) {
      const std::uint64_t w = kWindows[i];
      const auto name = cell(family, w);
      const double msgs = sweep.metric(name, "ledger.fixed_msgs");
      const double packets = sweep.metric(name, "ledger.wired_packets");
      const double wired_cost = packets * p.c_fixed + msgs * p.c_wired_msg;
      const auto* summary = sweep.report().find_cell(name);
      table.row({core::num(w), core::num(msgs), core::num(packets), core::num(wired_cost),
                 core::num(sweep.metric(name, "cost.total")),
                 core::num(summary->events_per_sec.mean)});
      family_total[i] += wired_cost;
      if (i > 0 && wired_cost > prev_wired) {
        std::cerr << "e9_formation: wired cost increased with the window at " << name << " ("
                  << wired_cost << " vs " << prev_wired << " at the previous window)\n";
        ok = false;
      }
      prev_wired = wired_cost;
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  // The regression gate: widening the window must strictly cut the
  // family's total wired bill (the L2 chatter alone guarantees slack at
  // every step when coalescing works).
  for (std::size_t i = 1; i < kWindows.size(); ++i) {
    if (family_total[i] >= family_total[i - 1]) {
      std::cerr << "e9_formation: family-wide wired cost not strictly decreasing at w="
                << kWindows[i] << " (" << family_total[i] << " vs " << family_total[i - 1]
                << ")\n";
      ok = false;
    }
  }
  if (!ok) return 1;
  std::cout << "family-wide wired cost by window:";
  for (std::size_t i = 0; i < kWindows.size(); ++i) {
    std::cout << " w" << kWindows[i] << "=" << family_total[i];
  }
  std::cout << " (strictly decreasing)\n\n";

  std::cout << "Reading: message counts are window-invariant (batching never changes\n"
               "what the algorithms send), while packets — and with them the paper's\n"
               "C_fixed bill — fall as the window widens. events/sec tracks scheduler\n"
               "throughput from the artifact's timing provenance.\n"
            << "\nwrote " << sweep.write() << "\n";
  return 0;
}
