// Offline decoder for binary TRACE_*.binlog artifacts (written when
// MOBIDIST_TRACE_FORMAT=binlog): reconstructs the event stream and
// prints it to stdout as JSON Lines — byte-identical to what the
// direct JSONL exporter would have written for the same run — or, with
// --perfetto, as a Perfetto/chrome://tracing-loadable trace. Exits 2
// on an unreadable or malformed file. Used by
// tests/run_binlog_roundtrip.sh to prove the binary path is lossless.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/binlog.hpp"
#include "obs/events.hpp"

namespace {

int usage() {
  std::cerr << "usage: trace_dump [--perfetto] <trace.binlog>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool perfetto = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--perfetto") {
      perfetto = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path == nullptr) return usage();

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_dump: cannot open " << path << '\n';
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  auto decoded = mobidist::obs::decode_binlog(bytes);
  if (!decoded) {
    std::cerr << "trace_dump: " << path << ": malformed binlog\n";
    return 2;
  }
  if (perfetto) {
    std::cout << mobidist::obs::to_chrome_trace(decoded->events);
  } else {
    std::cout << mobidist::obs::to_jsonl(decoded->events);
  }
  return 0;
}
