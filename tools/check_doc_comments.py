#!/usr/bin/env python3
"""Doc-comment lint for public C++ headers.

Walks the given files/directories (headers: *.hpp) and requires a
Doxygen-style `///` comment on every public declaration that carries
API meaning:

  * type definitions (class / struct / enum) at namespace scope or in a
    public/protected class section — forward declarations are exempt;
  * using-aliases in those scopes;
  * function declarations in those scopes.

Exempt by design (self-describing or structural): constructors,
destructors, operators, `= default` / `= delete` declarations, friend
declarations, data members, enumerators, namespace-scope constants,
and anything in a private section. A declaration also counts as
documented if its own line carries a trailing `///<` comment.

The check is a line-based heuristic tuned to this repository's style
(Core Guidelines formatting, clang-format discipline); it is wired
into CTest as `doc_comments` so an undocumented public symbol in
src/sim or src/net fails the suite. Exit status: 0 clean, 1 with one
`file:line: symbol` diagnostic per missing doc.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

DOC_RE = re.compile(r"^\s*///(?!<)")
TRAILING_DOC_RE = re.compile(r"///<")
TEMPLATE_RE = re.compile(r"^\s*template\s*<")
# Statement text that is only template headers / attributes so far — the
# real declaration is still to come on a later line.
PREFIX_ONLY_RE = re.compile(r"^\s*(?:template\s*<[^<>]*>\s*|\[\[[^\]]*\]\]\s*)*$")
ATTR_RE = re.compile(r"^\s*\[\[[^\]]*\]\]\s*$")
ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:")
TYPE_RE = re.compile(
    r"^\s*(?:template\s*<[^<>]*>\s*)?"
    r"(class|struct|enum\s+class|enum\s+struct|enum)\s+"
    r"(?:\[\[[^\]]*\]\]\s*)?"
    r"(?P<name>[A-Za-z_][\w:]*)"
)
USING_RE = re.compile(r"^\s*using\s+(?P<name>[A-Za-z_]\w*)\s*=")
FUNC_RE = re.compile(r"(?P<name>~?[A-Za-z_][\w:]*)\s*\(")
NOT_FUNCS = {
    "if", "for", "while", "switch", "return", "sizeof", "static_assert",
    "catch", "alignof", "decltype", "noexcept", "assert", "defined",
    "requires",
    # Fundamental-type tokens: `void (*fp)(...)` is a function-pointer
    # data member, not a function named `void`.
    "void", "bool", "char", "int", "unsigned", "signed", "long", "short",
    "float", "double", "auto",
}


def strip_block_comments(text: str) -> str:
    """Blank out /* ... */ contents, preserving line structure."""
    out: list[str] = []
    i = 0
    while i < len(text):
        start = text.find("/*", i)
        if start < 0:
            out.append(text[i:])
            break
        out.append(text[i:start])
        end = text.find("*/", start + 2)
        if end < 0:
            break
        out.append("".join(c if c == "\n" else " " for c in text[start:end + 2]))
        i = end + 2
    return "".join(out)


def strip_strings(line: str) -> str:
    """Blank out string/char literal contents so braces in them are inert."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|' + r"'(?:[^'\\]|\\.)*'", '""', line)


class Scope:
    def __init__(self, kind: str, access: str = "public", visible: bool = True) -> None:
        self.kind = kind      # namespace | class | enum | block
        self.access = access  # meaningful for kind == class
        # False when the scope itself sits in a private section (a
        # nested helper struct's members are not public API even though
        # the struct defaults its own members to public).
        self.visible = visible


def classify_scope(stmt: str) -> Scope:
    if re.search(r"\bnamespace\b", stmt):
        return Scope("namespace")
    m = TYPE_RE.match(stmt.strip())
    if m:
        kw = m.group(1)
        if kw.startswith("enum"):
            return Scope("enum")
        return Scope("class", "private" if kw == "class" else "public")
    return Scope("block")


def has_doc_above(lines: list[str], idx: int, name: str | None = None) -> bool:
    """True if, skipping template/attribute lines, line idx-1 is a ///.

    When `name` is given, declarations of the same name directly above
    are skipped too, so one doc comment covers a const/non-const or
    overload group.
    """
    j = idx - 1
    while j >= 0:
        if TEMPLATE_RE.match(lines[j]) or ATTR_RE.match(lines[j]):
            j -= 1
            continue
        if name is not None:
            m = FUNC_RE.search(lines[j])
            if m and m.group("name") == name and not DOC_RE.match(lines[j]):
                j -= 1
                continue
        break
    return j >= 0 and bool(DOC_RE.match(lines[j]))


def check_file(path: Path) -> list[str]:
    raw = strip_block_comments(path.read_text())
    lines = raw.splitlines()
    problems: list[str] = []

    # File scope behaves like a namespace (matters for the std::hash
    # specializations that sit outside the project namespace).
    stack: list[Scope] = [Scope("namespace")]
    stmt = ""          # statement text accumulated since the last boundary
    stmt_line = -1     # line where the current statement started
    # Pending type definition: (line, name) — resolved as a real
    # definition (needs doc) at `{`, or as a forward declaration
    # (exempt) at `;`.
    pending_type: tuple[int, str] | None = None

    def in_documented_scope() -> bool:
        top = stack[-1]
        if not top.visible:
            return False
        if top.kind == "namespace":
            return True
        return top.kind == "class" and top.access in ("public", "protected")

    def flag(line_idx: int, name: str, group: bool = False) -> None:
        if has_doc_above(lines, line_idx, name if group else None):
            return
        if TRAILING_DOC_RE.search(lines[line_idx]):
            return
        problems.append(f"{path}:{line_idx + 1}: missing /// doc for '{name}'")

    def begin_statement(code: str, line_idx: int) -> None:
        nonlocal pending_type
        if not in_documented_scope():
            return
        s = code.strip()
        if not s or s.startswith("#") or s.startswith("//"):
            return
        if ACCESS_RE.match(s) or s.startswith("friend "):
            return
        m = TYPE_RE.match(s)
        if m:
            pending_type = (line_idx, m.group("name"))
            return
        m = USING_RE.match(s)
        if m:
            flag(line_idx, m.group("name"))
            return
        if "= default" in s or "= delete" in s:
            return
        m = FUNC_RE.search(s)
        if m:
            name = m.group("name")
            bare = name.lstrip("~").split("::")[-1].split("<")[0]
            if bare in NOT_FUNCS or name.startswith("~"):
                return
            if "operator" in s.split("(")[0]:
                return
            enclosing = stack[-1]
            if enclosing.kind == "class" and bare == getattr(enclosing, "name", None):
                return  # constructor
            # Constructor detection without tracking names: the callee
            # token is also the first token of the declaration (no
            # return type), e.g. "Trace(std::size_t capacity...)" or
            # "explicit Rng(std::uint64_t seed)".
            first = s.replace("explicit", "").replace("constexpr", "").strip()
            if first.startswith(name + "("):
                return
            flag(line_idx, name, group=True)

    for line_idx, raw_line in enumerate(lines):
        line = strip_strings(raw_line)
        # Drop trailing // comments (but keep the code before them).
        cut = line.find("//")
        code = line[:cut] if cut >= 0 else line

        pos = 0
        while pos < len(code):
            boundary = None
            for k, ch in enumerate(code[pos:], start=pos):
                if ch in "{};":
                    boundary = (k, ch)
                    break
            if boundary is None:
                fragment = code[pos:]
                if PREFIX_ONLY_RE.match(stmt) and fragment.strip():
                    begin_statement(fragment, line_idx)
                    stmt_line = line_idx
                stmt += fragment
                break

            k, ch = boundary
            fragment = code[pos:k]
            if PREFIX_ONLY_RE.match(stmt) and fragment.strip():
                begin_statement(fragment, line_idx)
                stmt_line = line_idx
            stmt += fragment

            if ch == "{":
                if pending_type is not None and in_documented_scope():
                    flag(*pending_type)
                pending_type = None
                child = classify_scope(stmt)
                child.visible = in_documented_scope()
                stack.append(child)
            elif ch == "}":
                if len(stack) > 1:
                    stack.pop()
            else:  # ';'
                pending_type = None  # forward declaration: exempt
            # Access labels inside the statement (handled via ACCESS_RE on
            # fragments) — also catch "public:" fused with code flow.
            acc = ACCESS_RE.match(stmt.strip())
            if acc and stack[-1].kind == "class":
                stack[-1].access = acc.group(1)
            stmt = ""
            stmt_line = -1
            pos = k + 1

        # A line that is only an access label never hits a boundary char
        # other than ':' — handle it directly.
        acc = ACCESS_RE.match(line)
        if acc and stack[-1].kind == "class":
            stack[-1].access = acc.group(1)
            stmt = ""

    return problems


def collect(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.hpp")))
        else:
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_doc_comments.py <header-or-dir>...", file=sys.stderr)
        return 2
    problems: list[str] = []
    files = collect(argv[1:])
    for f in files:
        problems.extend(check_file(f))
    for p in problems:
        print(p)
    if problems:
        print(f"check_doc_comments: {len(problems)} undocumented public "
              f"declaration(s) across {len(files)} header(s)", file=sys.stderr)
        return 1
    print(f"check_doc_comments: {len(files)} header(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
