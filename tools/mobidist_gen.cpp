// mobidist_gen: deterministic scenario generator for the mobility model
// library. Emits a valid ScenarioSpec JSON file — topology, mobility
// model, phase schedule, region count, and a sweep block — sized for
// 1e5-1e6 mobile hosts, directly consumable by mobidist_sweep.
//
//   mobidist_gen --model commuter --mh 100000 --out scenarios/gen.json
//       [--mss M] [--seed S] [--seeds K] [--regions R] [--name NAME]
//       [--group-size G] [--messages N] [--moves-per-host N]
//       [--sweep-models] [--no-sweep-variants] [--set key=value]...
//
// The output is a pure function of the flags (no clocks, no git, no
// environment), so the same invocation always produces byte-identical
// files — the property the generator round-trip ctest pins. Before
// writing, the tool re-parses its own output through exp::parse_scenario
// and exp::sweep_from_json and fails loudly if the round trip drifts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "exp/exp.hpp"
#include "mobility/models.hpp"

namespace {

using namespace mobidist;

int usage(const char* argv0) {
  std::string models;
  for (const auto name : mobility::kMovePatternNames) {
    if (!models.empty()) models += '|';
    models += name;
  }
  std::fprintf(stderr,
               "usage: %s --model %s --mh N --out FILE\n"
               "          [--mss M] [--seed S] [--seeds K] [--regions R]\n"
               "          [--name NAME] [--group-size G] [--messages N]\n"
               "          [--moves-per-host N] [--sweep-models]\n"
               "          [--no-sweep-variants] [--set key=value]...\n",
               argv0, models.c_str());
  return 1;
}

/// Apply a --set key=value override: the value parses as a JSON scalar
/// when it can (numbers, booleans), else as a string — so both
/// --set mobility.phase_period=4000 and --set variant=pure_search work.
void apply_set(exp::ScenarioSpec& spec, const std::string& text) {
  const auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::runtime_error("--set needs key=value, got '" + text + "'");
  }
  const std::string key = text.substr(0, eq);
  const std::string value = text.substr(eq + 1);
  auto parsed = exp::json::parse(value);
  if (!parsed) parsed = exp::json::parse('"' + value + '"');
  if (!parsed) throw std::runtime_error("--set value '" + value + "' is not parseable");
  exp::apply_override(spec, key, *parsed);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model;
  std::string name;
  std::string out_path;
  std::uint64_t seed = 4242;
  std::uint32_t mh = 0;
  std::uint32_t mss = 0;
  std::uint32_t seeds = 3;
  std::uint32_t regions = 8;
  std::uint32_t group_size = 64;
  std::uint64_t messages = 24;
  std::uint64_t moves_per_host = 2;
  bool sweep_models = false;
  bool sweep_variants = true;
  std::vector<std::string> sets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--model") model = next();
    else if (arg == "--name") name = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--mh") mh = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--mss") mss = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--seeds") seeds = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--regions") regions = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--group-size") group_size = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--messages") messages = std::strtoull(next(), nullptr, 10);
    else if (arg == "--moves-per-host") moves_per_host = std::strtoull(next(), nullptr, 10);
    else if (arg == "--sweep-models") sweep_models = true;
    else if (arg == "--no-sweep-variants") sweep_variants = false;
    else if (arg == "--set") sets.emplace_back(next());
    else if (arg == "--help" || arg == "-h") return usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (model.empty() || mh == 0 || out_path.empty()) return usage(argv[0]);
  const auto pattern = mobility::pattern_from_name(model);
  if (!pattern) {
    std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
    return usage(argv[0]);
  }

  exp::ScenarioSpec spec;
  try {
    // Backbone sized sub-linearly in the host count unless pinned: one
    // MSS per ~1.5k hosts, clamped to [16, 512] — a million MHs get a
    // 512-cell wired mesh, a 1e5 run 64 cells.
    if (mss == 0) {
      mss = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          512, std::max<std::uint64_t>(16, mh / 1500)));
    }
    spec.name = name.empty() ? "gen_" + model + "_" + std::to_string(mh) + "mh" : name;
    spec.workload = "group_mobility";
    spec.variant = "location_view";
    spec.net.num_mss = mss;
    spec.net.num_mh = mh;
    spec.net.seed = seed;
    spec.mobility = true;
    spec.mob.pattern = *pattern;
    spec.mob.regions = regions;
    // Event budget control: every host makes moves_per_host moves, with
    // pauses long enough that the move stream and the message schedule
    // overlap instead of front-loading.
    spec.mob.max_moves_per_host = moves_per_host;
    spec.mob.mean_pause = 150.0;
    spec.mob.mean_transit = 8.0;
    spec.params["group_size"] = static_cast<double>(std::min(group_size, mh));
    spec.params["messages"] = static_cast<double>(messages);
    for (const auto& text : sets) apply_set(spec, text);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }

  // Render the spec, then splice the sweep block in before the closing
  // brace (to_json has no sweep member — the runner parses it from the
  // same document separately, exactly like hand-written scenarios).
  std::string body = exp::to_json(spec);
  std::string sweep = ",\"sweep\":{\"seeds\":{\"base\":" + std::to_string(seed) +
                      ",\"count\":" + std::to_string(seeds) + "}";
  std::string axes;
  if (sweep_variants) {
    axes += "{\"key\":\"variant\",\"values\":[\"pure_search\",\"always_inform\","
            "\"location_view\"]}";
  }
  if (sweep_models) {
    if (!axes.empty()) axes += ',';
    axes += "{\"key\":\"mobility.pattern\",\"values\":[";
    for (std::size_t i = 0; i < std::size(mobility::kMovePatternNames); ++i) {
      if (i != 0) axes += ',';
      axes += '"';
      axes += mobility::kMovePatternNames[i];
      axes += '"';
    }
    axes += "]}";
  }
  if (!axes.empty()) sweep += ",\"axes\":[" + axes + ']';
  sweep += '}';
  body.insert(body.size() - 1, sweep);
  body += '\n';

  // Self-check: the emitted document must parse back to the same spec
  // and expand to a non-empty grid before it is allowed on disk.
  try {
    const auto reparsed = exp::parse_scenario(body);
    if (exp::to_json(reparsed) != exp::to_json(spec)) {
      std::fprintf(stderr, "internal error: generated spec does not round-trip\n");
      return 1;
    }
    const auto doc = exp::json::parse(body);
    const auto grid = exp::sweep_from_json(*doc, reparsed.net.seed);
    const auto plans = grid.expand(reparsed);
    if (plans.empty()) {
      std::fprintf(stderr, "internal error: generated sweep expands to zero runs\n");
      return 1;
    }
    std::fprintf(stderr, "%s: %u MSS x %u MH, model=%s, %zu planned runs\n",
                 spec.name.c_str(), mss, mh, model.c_str(), plans.size());
  } catch (const std::exception& err) {
    std::fprintf(stderr, "internal error: generated scenario rejected: %s\n", err.what());
    return 1;
  }

  try {
    core::write_text_file(out_path, body);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}
