// mobidist_sweep: run a scenario file's sweep grid on the parallel
// experiment runner, aggregate the seed distributions, and optionally
// gate against a committed baseline artifact.
//
//   mobidist_sweep --scenario scenarios/mutex_smoke.json --jobs 4
//       [--out BENCH_sweep.json] [--baseline old.json] [--tolerance 0.01]
//       [--deterministic] [--shards N] [--list-workloads]
//
// --shards N requests the sharded engine for every run (honoured only by
// shard-safe workloads; the rest collapse to the legacy engine, see
// exp::run_scenario). The deterministic artifact body is identical for
// every N on the same scenario — the shard_independence test gate pins
// exactly that.
//
// Exit codes: 0 ok, 1 usage/setup error, 2 run failures, 3 regression
// gate failed (or incompatible baseline).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/report.hpp"
#include "exp/exp.hpp"

namespace {

using namespace mobidist;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario FILE [--jobs N] [--out FILE]\n"
               "          [--baseline FILE] [--tolerance REL] [--deterministic]\n"
               "          [--shards N] [--list-workloads]\n",
               argv0);
  return 1;
}

std::string read_file(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open '" + path + "'";
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Best-effort provenance: MOBIDIST_GIT_SHA wins (CI sets it), else ask
/// git, else empty. Never fails the run.
std::string resolve_git_sha() {
  if (const char* env = std::getenv("MOBIDIST_GIT_SHA"); env != nullptr) return env;
#if defined(_WIN32)
  return {};
#else
  FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return {};
  char buf[64] = {};
  std::string sha;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) sha = buf;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
  return sha;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string out_path;
  std::string baseline_path;
  double tolerance = 0.01;
  unsigned jobs = 0;
  unsigned shards = 0;
  bool deterministic = false;
  bool list_workloads = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--scenario") scenario_path = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--tolerance") tolerance = std::atof(next());
    else if (arg == "--jobs") jobs = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--shards") shards = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--deterministic") deterministic = true;
    else if (arg == "--list-workloads") list_workloads = true;
    else if (arg == "--help" || arg == "-h") return usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (list_workloads) {
    for (const auto& name : exp::WorkloadLibrary::builtin().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (scenario_path.empty()) return usage(argv[0]);

  std::string error;
  const std::string text = read_file(scenario_path, error);
  if (!error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto doc = exp::json::parse(text);
  if (!doc) {
    std::fprintf(stderr, "error: '%s' is not valid JSON\n", scenario_path.c_str());
    return 1;
  }

  exp::ScenarioSpec spec;
  exp::SweepGrid grid;
  try {
    spec = exp::scenario_from_json(*doc);
    grid = exp::sweep_from_json(*doc, spec.net.seed);
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s: %s\n", scenario_path.c_str(), err.what());
    return 1;
  }

  // Applied before expansion so every cell of the grid carries the
  // requested count; run_scenario collapses it per-workload.
  if (shards != 0) spec.net.shards = shards;

  const auto plans = grid.expand(spec);
  const exp::ParallelRunner runner(jobs);
  std::fprintf(stderr, "%s: %zu runs (%zu seeds), %u jobs\n", spec.name.c_str(),
               plans.size(), grid.seeds.size(), runner.jobs());

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = runner.run(plans);
  const auto t1 = std::chrono::steady_clock::now();

  std::size_t failed = 0;
  for (const auto& result : results) {
    if (!result.ok) {
      ++failed;
      std::fprintf(stderr, "FAIL [%s seed=%llu]: %s\n", result.cell.c_str(),
                   static_cast<unsigned long long>(result.seed), result.error.c_str());
    }
  }

  auto report = exp::aggregate(spec.name, grid, plans, results);
  report.jobs = runner.jobs();
  report.shards = shards;
  report.wall_clock_sec = std::chrono::duration<double>(t1 - t0).count();
  report.git_sha = resolve_git_sha();

  const std::string body = deterministic ? report.deterministic_json() : report.json();
  if (out_path.empty()) {
    const std::string dir = core::resolve_env_dir("MOBIDIST_BENCH_DIR", "");
    out_path = dir + "BENCH_" + spec.name + ".json";
  }
  try {
    core::write_text_file(out_path, body + "\n");
  } catch (const std::exception& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu cells, %.2fs)\n", out_path.c_str(),
               report.cells.size(), report.wall_clock_sec);

  int rc = failed != 0 ? 2 : 0;

  if (!baseline_path.empty()) {
    const auto baseline = exp::load_artifact(baseline_path, error);
    if (!baseline) {
      std::fprintf(stderr, "baseline error: %s\n", error.c_str());
      return 3;
    }
    const auto cmp = exp::compare_to_baseline(report, *baseline, tolerance);
    if (!cmp.compatible) {
      std::fprintf(stderr, "baseline incompatible: %s\n", cmp.incompatibility.c_str());
      return 3;
    }
    if (!cmp.regressions.empty()) {
      std::fprintf(stderr, "regression: %zu metric(s) drifted beyond %.4g (of %zu compared):\n",
                   cmp.regressions.size(), tolerance, cmp.metrics_compared);
      for (const auto& reg : cmp.regressions) {
        std::fprintf(stderr, "  %s\n", reg.to_string().c_str());
      }
      return 3;
    }
    std::fprintf(stderr, "baseline ok: %zu metrics within %.4g\n", cmp.metrics_compared,
                 tolerance);
  }
  return rc;
}
