// Offline validator for exported event-stream artifacts: reads a
// TRACE_*.jsonl file, re-runs every obs checker over it, and exits
// non-zero on a malformed line or an invariant violation. Used by
// tests/run_trace_check.sh to validate bench traces from outside the
// process that produced them.

#include <cstdio>
#include <vector>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/checkers.hpp"
#include "obs/events.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <trace.jsonl>\n";
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "trace_check: cannot open " << argv[1] << '\n';
    return 2;
  }
  std::vector<mobidist::obs::Event> events;
  // Owns the storage behind every Event::detail view parsed below; must
  // outlive `events` (max capacity: a trace may carry more distinct tags
  // than the producer-side default).
  mobidist::obs::InternTable strings(mobidist::obs::InternTable::kMaxCapacity);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto event = mobidist::obs::event_from_json(line, strings);
    if (!event) {
      std::cerr << "trace_check: " << argv[1] << ":" << line_no << ": malformed event\n";
      return 2;
    }
    events.push_back(std::move(*event));
  }
  // check_all includes check_fault_delivery, so fault-injected traces
  // are verified end to end: no recv may be causally parented to a send
  // the fault plane dropped, and crash/recover events must alternate.
  const auto failures = mobidist::obs::check_all(events);
  for (const auto& failure : failures) {
    std::cerr << "trace_check: " << argv[1] << ": " << to_string(failure) << '\n';
  }
  if (!failures.empty()) return 1;
  std::size_t drops = 0;
  std::size_t dups = 0;
  std::size_t crashes = 0;
  std::size_t packet_sends = 0;
  std::size_t packet_flushes = 0;
  std::size_t packet_msgs = 0;
  for (const auto& event : events) {
    switch (event.kind) {
      case mobidist::obs::EventKind::kMsgDropped: ++drops; break;
      case mobidist::obs::EventKind::kMsgDuplicated: ++dups; break;
      case mobidist::obs::EventKind::kMssCrash: ++crashes; break;
      case mobidist::obs::EventKind::kPacketSend:
        ++packet_sends;
        packet_msgs += event.arg;
        break;
      case mobidist::obs::EventKind::kPacketFlush: ++packet_flushes; break;
      default: break;
    }
  }
  std::cout << "trace_check: " << argv[1] << ": " << events.size()
            << " events, all checkers passed";
  if (drops + dups + crashes > 0) {
    std::cout << " (fault events: " << drops << " dropped, " << dups << " duplicated, "
              << crashes << " crashes)";
  }
  if (packet_sends > 0) {
    std::cout << " (formation: " << packet_sends << " packets sent, " << packet_flushes
              << " flushed, " << packet_msgs << " messages batched)";
  }
  std::cout << '\n';
  return 0;
}
