#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "net/ids.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mobidist::mobility {

/// Built-in target-cell distributions. The first three are the original
/// memoryless patterns; the last three carry per-host state (waypoints,
/// home/work cells, crowd membership) derived deterministically from the
/// network seed at construction.
enum class MovePattern : std::uint8_t {
  kUniform,     ///< any other cell, uniformly
  kNeighbor,    ///< +-1 on a ring of cells (local mobility)
  kHotspot,     ///< Zipf-weighted cells (crowded downtown cell 0)
  kWaypoint,    ///< random waypoint over a W x H cell lattice, one hop per move
  kCommuter,    ///< day-night oscillation between a home and a Zipf-skewed work cell
  kFlashCrowd,  ///< periodic event windows pull a random cohort into one cell
};

/// Scenario-facing names, indexed by MovePattern value. The single
/// source of truth shared by the scenario parser, its error messages,
/// and the generator CLI (the same trick PR 9 played for mutex
/// variants).
inline constexpr std::string_view kMovePatternNames[] = {
    "uniform", "neighbor", "hotspot", "waypoint", "commuter", "flashcrowd"};

/// Name of a pattern (inverse of pattern_from_name).
[[nodiscard]] constexpr std::string_view pattern_name(MovePattern pattern) noexcept {
  return kMovePatternNames[static_cast<std::uint8_t>(pattern)];
}

/// Parse a scenario-facing pattern name; nullopt when unknown.
[[nodiscard]] std::optional<MovePattern> pattern_from_name(std::string_view name) noexcept;

/// Parameters of the background mobility process. Pauses and transits
/// are exponentially distributed; a MH alternates pause -> move ->
/// pause ... until its move budget or the stop time runs out.
struct MobilityConfig {
  MovePattern pattern = MovePattern::kUniform;
  double mean_pause = 200.0;    ///< ticks between arriving and next departure
  double mean_transit = 10.0;   ///< ticks spent between cells
  double zipf_s = 1.0;          ///< skew for kHotspot / kCommuter work cells
  std::uint64_t max_moves_per_host = UINT64_MAX;
  sim::SimTime stop_at = sim::kTimeNever;  ///< no departures after this instant
  /// Probability that a scheduled departure becomes a disconnect
  /// instead; the host reconnects after mean_disconnect ticks.
  double disconnect_prob = 0.0;
  double mean_disconnect = 500.0;

  /// Contiguous cell blocks the per-region significant-move fraction f
  /// is reported over (clamped to [1, num_mss] by the driver).
  std::uint32_t regions = 4;
  /// kWaypoint lattice width; 0 = auto (the divisor of num_mss nearest
  /// sqrt). A non-zero width must divide num_mss.
  std::uint32_t grid_width = 0;
  /// kCommuter day-night cycle length in ticks (> 0).
  std::uint64_t phase_period = 2000;
  /// kCommuter fraction of the cycle spent in the day (at-work) phase.
  double day_fraction = 0.5;
  /// kFlashCrowd fraction of hosts pulled into each event cohort.
  double crowd_fraction = 0.25;
  /// kFlashCrowd gap between consecutive event windows in ticks (> 0).
  std::uint64_t crowd_period = 1500;
  /// kFlashCrowd length of each event window in ticks (<= crowd_period).
  std::uint64_t crowd_dwell = 300;
};

/// Everything a model may consult when choosing the next cell: the
/// network RNG (the only source of randomness, so same-seed runs stay
/// byte-identical), the current instant (phase cycles), and the moving
/// host's identity and cell.
struct MoveContext {
  sim::Rng& rng;        ///< shared simulation RNG stream
  sim::SimTime now;     ///< departure instant
  net::MhId host;       ///< who is moving
  net::MssId current;   ///< where it is moving from
};

/// A deterministic target-cell distribution. pick_target must return a
/// cell different from ctx.current; stateful models key any per-host
/// state on ctx.host.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Choose the destination cell for one move.
  [[nodiscard]] virtual net::MssId pick_target(const MoveContext& ctx) = 0;
};

/// Build the model for `cfg.pattern`. `seed` feeds the seed-derived
/// per-host state (homes, work cells, crowd cohorts) through a private
/// splitmix64 stream, so construction never advances the network RNG.
/// Throws std::invalid_argument on unsatisfiable parameters (a
/// grid_width that does not divide num_mss, a zero phase period).
[[nodiscard]] std::unique_ptr<MobilityModel> make_model(const MobilityConfig& cfg,
                                                        std::uint32_t num_mss,
                                                        std::uint32_t num_mh,
                                                        std::uint64_t seed);

/// Region of a cell: `regions` contiguous blocks of num_mss / regions
/// cells each (the tail block absorbs the remainder). The unit the
/// per-region significant-move fraction f is reported over.
[[nodiscard]] constexpr std::uint32_t region_of(std::uint32_t cell, std::uint32_t num_mss,
                                                std::uint32_t regions) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(cell) * regions / num_mss);
}

}  // namespace mobidist::mobility
