#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mobility/models.hpp"
#include "net/ids.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace mobidist::mobility {

/// Drives moves for a set of MHs through a MobilityModel. Plays nicely
/// with algorithms: a host that is not connected when its departure
/// timer fires simply reschedules. Deterministic given the network's
/// RNG state. Counts moves per region of the *departure* cell and how
/// many crossed a region boundary — the empirical per-region
/// significant-move fraction f of the paper's §4 cost analysis.
class MobilityDriver {
 public:
  /// Custom target picker; returns the destination cell for a host's
  /// next move (must differ from the current cell). Overrides the
  /// configured pattern/model when set.
  using TargetPicker = std::function<net::MssId(net::MhId, net::MssId current)>;

  /// Drive all hosts in the network.
  MobilityDriver(net::Network& net, MobilityConfig cfg);
  /// Drive a subset.
  MobilityDriver(net::Network& net, MobilityConfig cfg, std::vector<net::MhId> hosts);

  /// Install a custom picker (wins over the configured model).
  void set_target_picker(TargetPicker picker) { picker_ = std::move(picker); }

  /// Schedule the first departure for every driven host.
  void start();

  /// Moves completed so far (departures that actually happened).
  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  /// Disconnect cycles taken instead of moves.
  [[nodiscard]] std::uint64_t disconnects() const noexcept { return disconnects_; }

  /// Region count f is reported over (cfg.regions clamped to the
  /// topology).
  [[nodiscard]] std::uint32_t regions() const noexcept { return regions_; }
  /// Moves that departed from region r.
  [[nodiscard]] std::uint64_t moves_in_region(std::uint32_t r) const {
    return moves_by_region_.at(r);
  }
  /// Moves that departed from region r and crossed a region boundary.
  [[nodiscard]] std::uint64_t significant_in_region(std::uint32_t r) const {
    return significant_by_region_.at(r);
  }
  /// Empirical f for region r: significant / total departures (0 when
  /// the region saw none).
  [[nodiscard]] double f_region(std::uint32_t r) const;
  /// Empirical f over all regions.
  [[nodiscard]] double f_overall() const;

  /// Stop scheduling new departures (in-flight transits still land).
  void stop() noexcept { stopped_ = true; }

 private:
  void schedule_next(net::MhId host);
  void depart(net::MhId host);
  [[nodiscard]] net::MssId pick_target(net::MhId host, net::MssId current);

  net::Network& net_;
  MobilityConfig cfg_;
  std::vector<net::MhId> hosts_;
  std::vector<std::uint64_t> moves_per_host_;
  std::unique_ptr<MobilityModel> model_;
  TargetPicker picker_;
  std::uint32_t regions_ = 1;
  std::vector<std::uint64_t> moves_by_region_;
  std::vector<std::uint64_t> significant_by_region_;
  std::uint64_t moves_ = 0;
  std::uint64_t disconnects_ = 0;
  bool stopped_ = false;
};

}  // namespace mobidist::mobility
