#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace mobidist::mobility {

/// Built-in target-cell distributions.
enum class MovePattern : std::uint8_t {
  kUniform,   ///< any other cell, uniformly
  kNeighbor,  ///< +-1 on a ring of cells (local mobility)
  kHotspot,   ///< Zipf-weighted cells (crowded downtown cell 0)
};

/// Parameters of the background mobility process. Pauses and transits
/// are exponentially distributed; a MH alternates pause -> move ->
/// pause ... until its move budget or the stop time runs out.
struct MobilityConfig {
  MovePattern pattern = MovePattern::kUniform;
  double mean_pause = 200.0;    ///< ticks between arriving and next departure
  double mean_transit = 10.0;   ///< ticks spent between cells
  double zipf_s = 1.0;          ///< skew for kHotspot
  std::uint64_t max_moves_per_host = UINT64_MAX;
  sim::SimTime stop_at = sim::kTimeNever;  ///< no departures after this instant
  /// Probability that a scheduled departure becomes a disconnect
  /// instead; the host reconnects after mean_disconnect ticks.
  double disconnect_prob = 0.0;
  double mean_disconnect = 500.0;
};

/// Drives moves for a set of MHs. Plays nicely with algorithms: a host
/// that is not connected when its departure timer fires simply
/// reschedules. Deterministic given the network's RNG state.
class MobilityDriver {
 public:
  /// Custom target picker; returns the destination cell for a host's
  /// next move (must differ from the current cell). Overrides `pattern`
  /// when set.
  using TargetPicker = std::function<net::MssId(net::MhId, net::MssId current)>;

  /// Drive all hosts in the network.
  MobilityDriver(net::Network& net, MobilityConfig cfg);
  /// Drive a subset.
  MobilityDriver(net::Network& net, MobilityConfig cfg, std::vector<net::MhId> hosts);

  void set_target_picker(TargetPicker picker) { picker_ = std::move(picker); }

  /// Schedule the first departure for every driven host.
  void start();

  /// Moves completed so far (departures that actually happened).
  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  [[nodiscard]] std::uint64_t disconnects() const noexcept { return disconnects_; }

  /// Stop scheduling new departures (in-flight transits still land).
  void stop() noexcept { stopped_ = true; }

 private:
  void schedule_next(net::MhId host);
  void depart(net::MhId host);
  [[nodiscard]] net::MssId pick_target(net::MhId host, net::MssId current);

  net::Network& net_;
  MobilityConfig cfg_;
  std::vector<net::MhId> hosts_;
  std::vector<std::uint64_t> moves_per_host_;
  TargetPicker picker_;
  std::uint64_t moves_ = 0;
  std::uint64_t disconnects_ = 0;
  bool stopped_ = false;
};

}  // namespace mobidist::mobility
