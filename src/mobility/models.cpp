#include "mobility/models.hpp"

#include <cmath>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

namespace mobidist::mobility {

using net::MhId;
using net::MssId;

std::optional<MovePattern> pattern_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < std::size(kMovePatternNames); ++i) {
    if (name == kMovePatternNames[i]) return static_cast<MovePattern>(i);
  }
  return std::nullopt;
}

namespace {

[[noreturn]] void bad_config(const std::string& what) {
  throw std::invalid_argument("mobility: " + what);
}

/// splitmix64 finalizer — the same mixer exp::derive_seeds uses, so
/// per-host state (homes, cohorts) is well-spread for any base seed.
constexpr std::uint64_t splitmix(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix(splitmix(a) + b);
}

/// Uniform fraction in [0, 1) from a mixed hash (53 mantissa bits).
constexpr double fraction_of(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// One ring step away from `cur`, direction drawn from the shared RNG.
MssId ring_step(sim::Rng& rng, std::uint32_t cur, std::uint32_t m) {
  const bool up = rng.chance(0.5);
  return static_cast<MssId>(up ? (cur + 1) % m : (cur + m - 1) % m);
}

// --- the three original memoryless patterns --------------------------------
// Draw sequences are bit-for-bit those of the pre-library driver, so
// every committed golden trace and same-seed artifact is unchanged.

class UniformModel final : public MobilityModel {
 public:
  explicit UniformModel(std::uint32_t m) : m_(m) {}
  MssId pick_target(const MoveContext& ctx) override {
    // Uniform over the other M-1 cells.
    const auto offset = 1 + ctx.rng.below(m_ - 1);
    return static_cast<MssId>((net::index(ctx.current) + offset) % m_);
  }

 private:
  std::uint32_t m_;
};

class NeighborModel final : public MobilityModel {
 public:
  explicit NeighborModel(std::uint32_t m) : m_(m) {}
  MssId pick_target(const MoveContext& ctx) override {
    return ring_step(ctx.rng, net::index(ctx.current), m_);
  }

 private:
  std::uint32_t m_;
};

class HotspotModel final : public MobilityModel {
 public:
  HotspotModel(std::uint32_t m, double zipf_s) : m_(m), zipf_s_(zipf_s) {}
  MssId pick_target(const MoveContext& ctx) override {
    for (;;) {
      const auto cell = static_cast<std::uint32_t>(ctx.rng.zipf(m_, zipf_s_));
      if (cell != net::index(ctx.current)) return static_cast<MssId>(cell);
    }
  }

 private:
  std::uint32_t m_;
  double zipf_s_;
};

// --- random waypoint over a cell lattice -----------------------------------

/// Each host holds a waypoint cell; every move is one lattice hop toward
/// it (rows first, then columns), and reaching the waypoint draws a
/// fresh one uniformly. Successive moves are spatially correlated — the
/// property the memoryless uniform pattern cannot produce.
class WaypointModel final : public MobilityModel {
 public:
  WaypointModel(std::uint32_t m, std::uint32_t width, std::uint32_t num_mh)
      : m_(m), width_(width), waypoint_(num_mh, kNone) {}

  MssId pick_target(const MoveContext& ctx) override {
    const std::uint32_t cur = net::index(ctx.current);
    auto& wp = waypoint_[net::index(ctx.host)];
    if (wp == kNone || wp == cur) {
      wp = static_cast<std::uint32_t>((cur + 1 + ctx.rng.below(m_ - 1)) % m_);
    }
    const std::uint32_t cur_row = cur / width_;
    const std::uint32_t wp_row = wp / width_;
    if (cur_row != wp_row) {
      return static_cast<MssId>(wp_row > cur_row ? cur + width_ : cur - width_);
    }
    return static_cast<MssId>(wp > cur ? cur + 1 : cur - 1);
  }

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;
  std::uint32_t m_;
  std::uint32_t width_;
  std::vector<std::uint32_t> waypoint_;
};

/// Divisor of m nearest sqrt(m) (auto lattice width).
std::uint32_t auto_width(std::uint32_t m) {
  const double root = std::sqrt(static_cast<double>(m));
  std::uint32_t best = 1;
  for (std::uint32_t w = 1; w <= m; ++w) {
    if (m % w != 0) continue;
    if (std::abs(static_cast<double>(w) - root) <
        std::abs(static_cast<double>(best) - root)) {
      best = w;
    }
  }
  return best;
}

// --- commuter flows with a day-night phase cycle ---------------------------

/// Every host owns a uniformly-placed home cell and a Zipf-skewed work
/// cell (downtown = cell 0), both derived from the seed at construction.
/// During the day phase it heads to work, at night back home; a host
/// already at its phase target wanders one ring step instead. Hosts
/// whose home and work share a region rarely cross a boundary, so the
/// per-region significant-move fraction f is structurally skewed.
class CommuterModel final : public MobilityModel {
 public:
  CommuterModel(const MobilityConfig& cfg, std::uint32_t m, std::uint32_t num_mh,
                std::uint64_t seed)
      : m_(m), phase_period_(cfg.phase_period) {
    day_ticks_ = static_cast<std::uint64_t>(cfg.day_fraction *
                                            static_cast<double>(cfg.phase_period));
    sim::Rng priv(mix(seed, 0x636f6d6dULL));  // "comm"
    home_.reserve(num_mh);
    work_.reserve(num_mh);
    for (std::uint32_t h = 0; h < num_mh; ++h) {
      const auto home = static_cast<std::uint32_t>(priv.below(m));
      auto work = static_cast<std::uint32_t>(priv.zipf(m, cfg.zipf_s));
      if (work == home) work = (home + 1) % m;
      home_.push_back(home);
      work_.push_back(work);
    }
  }

  MssId pick_target(const MoveContext& ctx) override {
    const bool day = (ctx.now % phase_period_) < day_ticks_;
    const std::uint32_t h = net::index(ctx.host);
    const std::uint32_t target = day ? work_[h] : home_[h];
    const std::uint32_t cur = net::index(ctx.current);
    if (target == cur) return ring_step(ctx.rng, cur, m_);
    return static_cast<MssId>(target);
  }

 private:
  std::uint32_t m_;
  std::uint64_t phase_period_;
  std::uint64_t day_ticks_;
  std::vector<std::uint32_t> home_;
  std::vector<std::uint32_t> work_;
};

// --- flash-crowd group churn -----------------------------------------------

/// Time is sliced into crowd_period windows; each window k opens with a
/// crowd_dwell-tick event in a seed-derived cell, and a seed-derived
/// cohort of roughly crowd_fraction of the hosts converges on it (a
/// correlated burst of joins in one cell). Outside the window — or for
/// hosts not in the cohort — everyone drifts back to a uniform home
/// cell. Membership is per (window, host), so consecutive events churn
/// different cohorts.
class FlashCrowdModel final : public MobilityModel {
 public:
  FlashCrowdModel(const MobilityConfig& cfg, std::uint32_t m, std::uint32_t num_mh,
                  std::uint64_t seed)
      : m_(m),
        period_(cfg.crowd_period),
        dwell_(cfg.crowd_dwell),
        fraction_(cfg.crowd_fraction),
        seed_(seed) {
    sim::Rng priv(mix(seed, 0x666c617368ULL));  // "flash"
    home_.reserve(num_mh);
    for (std::uint32_t h = 0; h < num_mh; ++h) {
      home_.push_back(static_cast<std::uint32_t>(priv.below(m)));
    }
  }

  /// Event cell of window k (uniform over cells, fresh per window).
  [[nodiscard]] std::uint32_t event_cell(std::uint64_t window) const noexcept {
    return static_cast<std::uint32_t>(mix(seed_, window * 2 + 1) % m_);
  }

  /// Is `host` in window k's cohort?
  [[nodiscard]] bool in_cohort(std::uint64_t window, std::uint32_t host) const noexcept {
    return fraction_of(mix(seed_ ^ 0x63726f7764ULL, window * 1'000'003ULL + host)) <
           fraction_;
  }

  MssId pick_target(const MoveContext& ctx) override {
    const std::uint64_t window = ctx.now / period_;
    const bool open = (ctx.now % period_) < dwell_;
    const std::uint32_t h = net::index(ctx.host);
    const std::uint32_t cur = net::index(ctx.current);
    std::uint32_t target;
    if (open && in_cohort(window, h)) {
      target = event_cell(window);
    } else {
      target = home_[h];
    }
    if (target == cur) return ring_step(ctx.rng, cur, m_);
    return static_cast<MssId>(target);
  }

 private:
  std::uint32_t m_;
  std::uint64_t period_;
  std::uint64_t dwell_;
  double fraction_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> home_;
};

}  // namespace

std::unique_ptr<MobilityModel> make_model(const MobilityConfig& cfg, std::uint32_t num_mss,
                                          std::uint32_t num_mh, std::uint64_t seed) {
  if (num_mss < 2) bad_config("models need at least two cells");
  switch (cfg.pattern) {
    case MovePattern::kUniform:
      return std::make_unique<UniformModel>(num_mss);
    case MovePattern::kNeighbor:
      return std::make_unique<NeighborModel>(num_mss);
    case MovePattern::kHotspot:
      return std::make_unique<HotspotModel>(num_mss, cfg.zipf_s);
    case MovePattern::kWaypoint: {
      std::uint32_t width = cfg.grid_width;
      if (width == 0) {
        width = auto_width(num_mss);
      } else if (width > num_mss || num_mss % width != 0) {
        bad_config("grid_width " + std::to_string(width) + " does not divide " +
                   std::to_string(num_mss) + " cells");
      }
      return std::make_unique<WaypointModel>(num_mss, width, num_mh);
    }
    case MovePattern::kCommuter:
      if (cfg.phase_period == 0) bad_config("phase_period must be > 0");
      if (cfg.day_fraction < 0.0 || cfg.day_fraction > 1.0) {
        bad_config("day_fraction must be in [0, 1]");
      }
      return std::make_unique<CommuterModel>(cfg, num_mss, num_mh, seed);
    case MovePattern::kFlashCrowd:
      if (cfg.crowd_period == 0) bad_config("crowd_period must be > 0");
      if (cfg.crowd_dwell > cfg.crowd_period) {
        bad_config("crowd_dwell must not exceed crowd_period");
      }
      return std::make_unique<FlashCrowdModel>(cfg, num_mss, num_mh, seed);
  }
  bad_config("unknown pattern");
}

}  // namespace mobidist::mobility
