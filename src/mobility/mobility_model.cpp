#include "mobility/mobility_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobidist::mobility {

using net::MhId;
using net::MssId;

namespace {
std::vector<MhId> all_hosts(const net::Network& net) {
  std::vector<MhId> hosts;
  hosts.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) hosts.push_back(static_cast<MhId>(i));
  return hosts;
}
}  // namespace

MobilityDriver::MobilityDriver(net::Network& net, MobilityConfig cfg)
    : MobilityDriver(net, cfg, all_hosts(net)) {}

MobilityDriver::MobilityDriver(net::Network& net, MobilityConfig cfg,
                               std::vector<net::MhId> hosts)
    : net_(net), cfg_(cfg), hosts_(std::move(hosts)) {
  if (net_.num_mss() < 2) {
    if (!hosts_.empty() && cfg_.disconnect_prob < 1.0) {
      throw std::invalid_argument("MobilityDriver: moving needs at least two cells");
    }
  } else {
    model_ = make_model(cfg_, net_.num_mss(), net_.num_mh(), net_.config().seed);
  }
  std::uint32_t max_index = 0;
  for (const auto host : hosts_) max_index = std::max(max_index, net::index(host));
  moves_per_host_.assign(max_index + 1, 0);
  regions_ = std::clamp<std::uint32_t>(cfg_.regions, 1, std::max(1u, net_.num_mss()));
  moves_by_region_.assign(regions_, 0);
  significant_by_region_.assign(regions_, 0);
}

double MobilityDriver::f_region(std::uint32_t r) const {
  const auto total = moves_by_region_.at(r);
  if (total == 0) return 0.0;
  return static_cast<double>(significant_by_region_[r]) / static_cast<double>(total);
}

double MobilityDriver::f_overall() const {
  std::uint64_t total = 0;
  std::uint64_t significant = 0;
  for (std::uint32_t r = 0; r < regions_; ++r) {
    total += moves_by_region_[r];
    significant += significant_by_region_[r];
  }
  if (total == 0) return 0.0;
  return static_cast<double>(significant) / static_cast<double>(total);
}

void MobilityDriver::start() {
  for (const auto host : hosts_) schedule_next(host);
}

void MobilityDriver::schedule_next(MhId host) {
  if (stopped_) return;
  if (moves_per_host_[net::index(host)] >= cfg_.max_moves_per_host) return;
  const auto pause =
      static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_pause)) + 1;
  if (cfg_.stop_at != sim::kTimeNever && net_.sched().now() + pause > cfg_.stop_at) return;
  net_.sched().schedule(pause, [this, host] { depart(host); });
}

void MobilityDriver::depart(MhId host) {
  if (stopped_) return;
  auto& mobile = net_.mh(host);
  if (!mobile.connected()) {
    // Busy (in transit from an algorithm-driven move, or disconnected by
    // someone else): try again later.
    schedule_next(host);
    return;
  }
  ++moves_per_host_[net::index(host)];
  if (cfg_.disconnect_prob > 0.0 && net_.rng().chance(cfg_.disconnect_prob)) {
    ++disconnects_;
    const MssId came_from = mobile.current_mss();
    mobile.disconnect();
    const auto away =
        static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_disconnect)) + 1;
    // Reconnect either where we left or in a fresh cell.
    const MssId back = net_.rng().chance(0.5) ? came_from : pick_target(host, came_from);
    net_.sched().schedule(away, [this, host, back] {
      if (net_.mh(host).state() == net::MhState::kDisconnected) {
        net_.mh(host).reconnect_at(back, 1);
      }
      schedule_next(host);
    });
    return;
  }
  ++moves_;
  const MssId current = mobile.current_mss();
  const MssId target = pick_target(host, current);
  const std::uint32_t m = net_.num_mss();
  const auto from_region = region_of(net::index(current), m, regions_);
  ++moves_by_region_[from_region];
  if (region_of(net::index(target), m, regions_) != from_region) {
    ++significant_by_region_[from_region];
  }
  const auto transit =
      static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_transit)) + 1;
  mobile.move_to(target, transit);
  net_.sched().schedule(transit + 1, [this, host] { schedule_next(host); });
}

MssId MobilityDriver::pick_target(MhId host, MssId current) {
  if (picker_) {
    const MssId chosen = picker_(host, current);
    if (chosen == current) {
      throw std::logic_error("MobilityDriver: target picker returned the current cell");
    }
    return chosen;
  }
  if (!model_) {
    throw std::logic_error("MobilityDriver: no model (single-cell topology)");
  }
  return model_->pick_target({net_.rng(), net_.sched().now(), host, current});
}

}  // namespace mobidist::mobility
