#include "mobility/mobility_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobidist::mobility {

using net::MhId;
using net::MssId;

namespace {
std::vector<MhId> all_hosts(const net::Network& net) {
  std::vector<MhId> hosts;
  hosts.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) hosts.push_back(static_cast<MhId>(i));
  return hosts;
}
}  // namespace

MobilityDriver::MobilityDriver(net::Network& net, MobilityConfig cfg)
    : MobilityDriver(net, cfg, all_hosts(net)) {}

MobilityDriver::MobilityDriver(net::Network& net, MobilityConfig cfg,
                               std::vector<net::MhId> hosts)
    : net_(net), cfg_(cfg), hosts_(std::move(hosts)) {
  if (net_.num_mss() < 2 && !hosts_.empty() && cfg_.disconnect_prob < 1.0) {
    throw std::invalid_argument("MobilityDriver: moving needs at least two cells");
  }
  std::uint32_t max_index = 0;
  for (const auto host : hosts_) max_index = std::max(max_index, net::index(host));
  moves_per_host_.assign(max_index + 1, 0);
}

void MobilityDriver::start() {
  for (const auto host : hosts_) schedule_next(host);
}

void MobilityDriver::schedule_next(MhId host) {
  if (stopped_) return;
  if (moves_per_host_[net::index(host)] >= cfg_.max_moves_per_host) return;
  const auto pause =
      static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_pause)) + 1;
  if (cfg_.stop_at != sim::kTimeNever && net_.sched().now() + pause > cfg_.stop_at) return;
  net_.sched().schedule(pause, [this, host] { depart(host); });
}

void MobilityDriver::depart(MhId host) {
  if (stopped_) return;
  auto& mobile = net_.mh(host);
  if (!mobile.connected()) {
    // Busy (in transit from an algorithm-driven move, or disconnected by
    // someone else): try again later.
    schedule_next(host);
    return;
  }
  ++moves_per_host_[net::index(host)];
  if (cfg_.disconnect_prob > 0.0 && net_.rng().chance(cfg_.disconnect_prob)) {
    ++disconnects_;
    const MssId came_from = mobile.current_mss();
    mobile.disconnect();
    const auto away =
        static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_disconnect)) + 1;
    // Reconnect either where we left or in a fresh cell.
    const MssId back = net_.rng().chance(0.5) ? came_from : pick_target(host, came_from);
    net_.sched().schedule(away, [this, host, back] {
      if (net_.mh(host).state() == net::MhState::kDisconnected) {
        net_.mh(host).reconnect_at(back, 1);
      }
      schedule_next(host);
    });
    return;
  }
  ++moves_;
  const MssId current = mobile.current_mss();
  const MssId target = pick_target(host, current);
  const auto transit =
      static_cast<sim::Duration>(net_.rng().exponential(cfg_.mean_transit)) + 1;
  mobile.move_to(target, transit);
  net_.sched().schedule(transit + 1, [this, host] { schedule_next(host); });
}

MssId MobilityDriver::pick_target(MhId host, MssId current) {
  if (picker_) {
    const MssId chosen = picker_(host, current);
    if (chosen == current) {
      throw std::logic_error("MobilityDriver: target picker returned the current cell");
    }
    return chosen;
  }
  const std::uint32_t m = net_.num_mss();
  switch (cfg_.pattern) {
    case MovePattern::kUniform: {
      // Uniform over the other M-1 cells.
      const auto offset = 1 + net_.rng().below(m - 1);
      return static_cast<MssId>((net::index(current) + offset) % m);
    }
    case MovePattern::kNeighbor: {
      const bool up = net_.rng().chance(0.5);
      const std::uint32_t cur = net::index(current);
      return static_cast<MssId>(up ? (cur + 1) % m : (cur + m - 1) % m);
    }
    case MovePattern::kHotspot: {
      for (;;) {
        const auto cell = static_cast<std::uint32_t>(net_.rng().zipf(m, cfg_.zipf_s));
        if (cell != net::index(current)) return static_cast<MssId>(cell);
      }
    }
  }
  throw std::logic_error("MobilityDriver: unknown pattern");
}

}  // namespace mobidist::mobility
