#include "mutex/path_reversal.hpp"

#include <deque>
#include <functional>
#include <utility>

namespace mobidist::mutex {

using net::Envelope;
using net::MhId;
using net::MssId;

/// Tree node: owns this MSS's PathRevEngine and translates its hooks
/// into wired messages + obs events.
class PathRevMutex::StationAgent : public net::MssAgent {
 public:
  StationAgent(PathRevMutex& owner, std::uint32_t index)
      : owner_(owner),
        engine_(index, /*has_token=*/index == 0,
                index == 0 ? PathRevEngine::kNoNode : 0,
                PathRevEngine::Hooks{
                    [this](std::uint32_t to, std::uint32_t origin) {
                      forward_claim(to, origin);
                    },
                    [this](std::uint32_t to) { send_token(to); },
                    [this](MhId mh) { grant(mh); },
                    [this](std::uint32_t new_father) { reversed(new_father); },
                }) {}

  void on_start() override {
    if (!engine_.token_here()) return;
    // The injection: the conservation checker's first sighting.
    net().emit({.kind = obs::EventKind::kTokenArrive,
                .entity = net::entity_of(self()),
                .arg = 0,
                .detail = owner_.label()});
  }

  void on_message(const Envelope& env) override {
    if (const auto* request = net::body_as<PathRevRequest>(env)) {
      engine_.local_request(request->mh);
      return;
    }
    if (const auto* claim = net::body_as<PathRevClaim>(env)) {
      engine_.on_claim(net::index(claim->origin));
      return;
    }
    if (const auto* pass = net::body_as<PathRevTokenPass>(env)) {
      net().emit({.kind = obs::EventKind::kTokenArrive,
                  .entity = net::entity_of(self()),
                  .arg = pass->serial,
                  .detail = owner_.label()});
      engine_.on_token();
      return;
    }
    if (const auto* ret = net::body_as<PathRevReturn>(env)) {
      if (ret->home == self()) {
        net().emit({.kind = obs::EventKind::kTokenArrive,
                    .entity = net::entity_of(self()),
                    .arg = ret->serial,
                    .detail = owner_.label()});
        engine_.grant_done();
      } else {
        // Relay the return from the MH's current cell to the granting
        // MSS (the c_fixed leg of the 3*c_w + c_f + c_s request cost).
        send_wired(ret->home, *ret);
      }
      return;
    }
  }

  /// The grant chased a disconnected MH: model the token's return as one
  /// fixed-network message (as the paper does for R2) and move on.
  void on_mh_unreachable(MhId /*mh*/, const net::Body& body) override {
    const auto* grant = body.get<PathRevGrant>();
    if (grant == nullptr) return;
    ++owner_.skipped_disconnected_;
    ++owner_.skipped_disconnected_counter_;
    net().ledger().charge_fixed();  // the modeled token-return message
    net().emit({.kind = obs::EventKind::kTokenArrive,
                .entity = net::entity_of(self()),
                .arg = grant->serial,
                .detail = owner_.label()});
    engine_.grant_done();
  }

  /// The MH re-files at its next cell (normal move or crash evacuation);
  /// drop its entries here so one request never queues twice for long.
  void on_mh_left(MhId mh) override { withdraw(mh); }

  /// A MH that disconnected here reconnected elsewhere: same as a leave
  /// for the purposes of the request queue.
  void on_disconnected_mh_migrated(MhId mh, MssId /*new_mss*/) override { withdraw(mh); }

  [[nodiscard]] const PathRevEngine& engine() const noexcept { return engine_; }

 private:
  void withdraw(MhId mh) {
    const auto n = engine_.withdraw(mh);
    owner_.rehomed_ += n;
    owner_.rehomed_counter_ += n;
  }

  void forward_claim(std::uint32_t to, std::uint32_t origin) {
    ++owner_.claim_hops_counter_;
    net().emit({.kind = obs::EventKind::kReqForward,
                .entity = net::entity_of(self()),
                .peer = obs::Entity::mss(to),
                .arg = origin,
                .detail = owner_.label()});
    send_wired(static_cast<MssId>(to), PathRevClaim{static_cast<MssId>(origin)});
  }

  void send_token(std::uint32_t to) {
    const std::uint64_t serial = ++owner_.transfers_;
    ++owner_.token_passes_counter_;
    net().emit({.kind = obs::EventKind::kTokenDepart,
                .entity = net::entity_of(self()),
                .peer = obs::Entity::mss(to),
                .arg = serial,
                .detail = owner_.label()});
    send_wired(static_cast<MssId>(to), PathRevTokenPass{serial});
  }

  void grant(MhId mh) {
    const std::uint64_t serial = ++owner_.transfers_;
    ++owner_.token_grants_counter_;
    net().emit({.kind = obs::EventKind::kTokenDepart,
                .entity = net::entity_of(self()),
                .peer = net::entity_of(mh),
                .arg = serial,
                .detail = owner_.label()});
    // "sends the token to the MH that made the request (which may
    // necessitate a search if the MH has changed its cell)".
    send_to_mh(mh, PathRevGrant{self(), serial}, net::SendPolicy::kNotifyIfDisconnected);
  }

  void reversed(std::uint32_t new_father) {
    ++owner_.path_reversals_counter_;
    net().emit({.kind = obs::EventKind::kPathReversal,
                .entity = net::entity_of(self()),
                .peer = obs::Entity::mss(new_father),
                .detail = owner_.label()});
  }

  PathRevMutex& owner_;
  PathRevEngine engine_;
};

/// MH participant: submit requests through the current cell, use the
/// token, hand it back. Keeps only a pending-request count — on every
/// cell join the count is re-filed uplink, which is what re-homes
/// requests across both ordinary moves and crash evacuation.
class PathRevMutex::HostAgent : public net::MhAgent {
 public:
  HostAgent(PathRevMutex& owner, CsMonitor& monitor, MutexOptions opts)
      : owner_(owner), monitor_(monitor), opts_(opts) {}

  void local_request() {
    ++pending_;
    // If disconnected or mid-move, on_joined_cell re-files the count.
    if (net().mh(self()).connected()) send_uplink(PathRevRequest{self()});
  }

  void on_message(const Envelope& env) override {
    const auto* grant = net::body_as<PathRevGrant>(env);
    if (grant == nullptr) return;
    const auto arrive_id = net().emit({.kind = obs::EventKind::kTokenArrive,
                                       .entity = net::entity_of(self()),
                                       .arg = grant->serial,
                                       .detail = owner_.label()});
    if (pending_ == 0) {
      // A re-filed copy of an already-served request reached the front:
      // bounce the token straight back without entering the CS.
      ++owner_.bounced_grants_;
      ++owner_.bounced_counter_;
      return_token(grant->home, grant->serial);
      return;
    }
    --pending_;
    const std::size_t cs = monitor_.enter(self(), grant->serial, net().sched().now());
    net().sched().schedule(
        opts_.cs_hold, [this, cs, arrive_id, home = grant->home, serial = grant->serial] {
          obs::CauseScope scope(net().events(), arrive_id);
          monitor_.exit(cs, net().sched().now());
          ++owner_.completed_;
          run_when_connected([this, home, serial] { return_token(home, serial); });
        });
  }

  void on_joined_cell(MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
    // Re-home: the cell we left withdrew our queue entries (or crashed),
    // so every still-pending request is filed afresh at this cell.
    for (std::uint64_t i = 0; i < pending_; ++i) send_uplink(PathRevRequest{self()});
  }

 private:
  void return_token(MssId home, std::uint64_t serial) {
    net().emit({.kind = obs::EventKind::kTokenDepart,
                .entity = net::entity_of(self()),
                .peer = net::entity_of(home),
                .arg = serial,
                .detail = owner_.label()});
    send_uplink(PathRevReturn{home, serial});
  }

  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  PathRevMutex& owner_;
  CsMonitor& monitor_;
  MutexOptions opts_;
  std::uint64_t pending_ = 0;  ///< requests not yet granted to this MH
  std::deque<std::function<void()>> deferred_;
};

PathRevMutex::PathRevMutex(net::Network& net, CsMonitor& monitor, MutexOptions opts)
    : net_(net),
      monitor_(monitor),
      token_passes_counter_(net.metrics().counter("mutex.pathrev.token_passes")),
      token_grants_counter_(net.metrics().counter("mutex.pathrev.token_grants")),
      claim_hops_counter_(net.metrics().counter("mutex.pathrev.claim_hops")),
      path_reversals_counter_(net.metrics().counter("mutex.pathrev.path_reversals")),
      rehomed_counter_(net.metrics().counter("mutex.pathrev.rehomed")),
      bounced_counter_(net.metrics().counter("mutex.pathrev.bounced_grants")),
      skipped_disconnected_counter_(
          net.metrics().counter("mutex.pathrev.skipped_disconnected")) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), label());
  const std::uint32_t m = net.num_mss();
  stations_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto agent = std::make_shared<StationAgent>(*this, i);
    stations_.push_back(agent);
    net.mss(static_cast<MssId>(i)).register_agent(net::protocol::kMutexPathRev, agent);
  }
  hosts_.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    auto agent = std::make_shared<HostAgent>(*this, monitor, opts);
    hosts_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(net::protocol::kMutexPathRev, agent);
  }
}

void PathRevMutex::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  hosts_[net::index(mh)]->local_request();
}

std::uint64_t PathRevMutex::queued_total() const {
  std::uint64_t total = 0;
  for (const auto& station : stations_) total += station->engine().queued();
  return total;
}

}  // namespace mobidist::mutex
