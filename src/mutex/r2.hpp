#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "net/network.hpp"

namespace mobidist::mutex {

/// Which flavour of the MSS-ring algorithm runs (§3.1.2).
enum class RingVariant : std::uint8_t {
  kBasic,      ///< R2: a MH may be served many times per traversal (≤ N×M total)
  kCounter,    ///< R2': token_val / access_count caps each MH at 1 per traversal
  kTokenList,  ///< R2'' "Variations": <MSS,MH> pairs, robust to lying MHs
};

/// The circulating token of R2/R2'/R2''.
struct R2Token {
  /// Incremented every completed traversal (arrival back at MSS 0).
  std::uint64_t token_val = 1;
  /// R2'' only: <MSS index, MH index> pairs recording who was served
  /// where during the current traversal window.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> served;
};

// Wire messages.

/// MH -> local MSS: queue me for the token. `access_count` is the R2'
/// self-reported counter (a malicious MH under-reports it).
struct R2Request {
  net::MhId mh = net::kInvalidMh;
  std::uint64_t access_count = 0;
};

/// MSS -> MH: the token itself (grant).
struct R2TokenToMh {
  std::uint64_t token_val = 0;
  net::MssId from = net::kInvalidMss;  ///< who to return the token to
};

/// MH -> current MSS (relayed to `home` if the MH moved): token return.
struct R2TokenReturn {
  net::MssId home = net::kInvalidMss;
};

/// MSS -> successor MSS: pass the token along the ring.
struct R2TokenPass {
  R2Token token;
};

/// Algorithms R2 / R2' / R2'' (§3.1.2): Le Lann's ring restructured onto
/// the M MSSs. MSSs keep per-cell request queues; the token visits each
/// MSS, serves that cell's eligible requests (searching for MHs that
/// moved after requesting), then moves on.
///
/// Cost: M*c_fixed per traversal for the ring itself plus
/// K*(3*c_wireless + c_fixed + c_search) for the K requests served — the
/// paper's headline contrast with R1's N*(2*c_wireless + c_search)
/// traversal cost.
class R2Mutex {
 public:
  R2Mutex(net::Network& net, CsMonitor& monitor, RingVariant variant,
          MutexOptions opts = {});

  /// Inject the token at MSS 0 and circulate for `max_traversals` loops.
  void start_token(std::uint64_t max_traversals);

  /// Absorb the token early at any pass point where every request queue
  /// in the system is empty (bench convenience; defaults off).
  void set_absorb_when_idle(bool value) noexcept { absorb_when_idle_ = value; }

  /// Submit a CS request on behalf of `mh` at its current MSS.
  void request(net::MhId mh);

  /// R2' attack fixture: `mh` always reports access_count = 0.
  void set_malicious(net::MhId mh, bool value);

  /// CS executions completed so far.
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  /// Ring loops finished so far.
  [[nodiscard]] std::uint64_t traversals_done() const noexcept { return traversals_done_; }
  /// True once the token was retired (fuel spent or absorbed idle).
  [[nodiscard]] bool token_absorbed() const noexcept { return absorbed_; }
  /// Requests skipped because the MH had disconnected at grant time.
  [[nodiscard]] std::uint64_t skipped_disconnected() const noexcept {
    return skipped_disconnected_;
  }

  /// Grants served while the token carried `token_val` (≈ per traversal).
  [[nodiscard]] std::uint64_t grants_in_traversal(std::uint64_t token_val) const;
  /// Grants to one MH within one traversal window (R2' invariant: ≤ 1).
  [[nodiscard]] std::uint64_t grants_for(net::MhId mh, std::uint64_t token_val) const;

 private:
  class StationAgent;
  class HostAgent;
  friend class StationAgent;
  friend class HostAgent;

  void record_grant(std::uint64_t token_val, net::MhId mh);
  [[nodiscard]] bool all_queues_empty() const;
  /// Event-stream tag for this instance: "R2", "R2'", or "R2''".
  [[nodiscard]] const char* variant_label() const noexcept;
  /// Tag for the token grant about to be recorded for `mh` in traversal
  /// `token_val`. R2' only asserts its once-per-traversal cap when every
  /// MH reports honestly and has at most one outstanding request, so the
  /// two known holes carry decorated tags — "R2'!" for runs with
  /// malicious reporters, "R2'~" for a repeat grant admitted by a stale
  /// access_count snapshot (a MH that queued requests at several cells
  /// before its counter caught up; the weakness R2'' fixes). Both stay
  /// in the R2 token family but are exempt from the traversal-cap
  /// checker. R2'' holds unconditionally and always keeps its own tag.
  [[nodiscard]] const char* grant_label(net::MhId mh, std::uint64_t token_val) const;

  net::Network& net_;
  CsMonitor& monitor_;
  RingVariant variant_;
  std::vector<std::shared_ptr<StationAgent>> stations_;
  std::vector<std::shared_ptr<HostAgent>> hosts_;
  std::uint64_t target_traversals_ = 0;
  std::uint64_t traversals_done_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t skipped_disconnected_ = 0;
  // Registry-backed mirrors of the token-path counters (bound to the
  // network's registry at construction; the uint64 fields above remain
  // the accessor-facing source of truth).
  obs::Counter& token_passes_counter_;
  obs::Counter& token_grants_counter_;
  obs::Counter& skipped_disconnected_counter_;
  bool absorbed_ = false;
  bool absorb_when_idle_ = false;
  bool any_malicious_ = false;
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t> grant_counts_;
};

}  // namespace mobidist::mutex
