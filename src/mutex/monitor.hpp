#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include <string>

#include "net/ids.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace mobidist::mutex {

/// Global observer of critical-section activity. Every mutex algorithm
/// reports enter/exit here; tests and benches read the history.
///
/// The monitor never throws on a violation (the simulation should keep
/// running so the whole interleaving is visible); it counts overlaps and
/// tests assert violations() == 0.
class CsMonitor {
 public:
  /// One recorded CS visit: who entered, when, and in what order.
  struct Grant {
    net::MhId mh = net::kInvalidMh;
    /// Algorithm-supplied ordering key (e.g. the Lamport timestamp of
    /// the request); tests check grants are served in key order.
    std::uint64_t order_key = 0;
    sim::SimTime requested = 0;  ///< when the MH asked (if note_request used)
    sim::SimTime entered = 0;
    sim::SimTime exited = 0;
    bool has_request_time = false;
    bool done = false;
    obs::EventId enter_event = 0;  ///< the kCsEnter event; cause of the exit
  };

  /// Publish this monitor's activity into `registry`: the
  /// "mutex.cs_wait" histogram (request-to-grant latency in virtual
  /// ticks) plus "mutex.cs_grants" / "mutex.cs_violations" counters.
  /// The mutex algorithms bind their monitor to their network's registry
  /// at construction; an unbound monitor records nothing extra.
  void bind_metrics(obs::Registry& registry);

  /// Publish CS request/enter/exit events into `stream`, tagged with
  /// `label` ("L1", "R2'", ...) so several algorithm instances sharing
  /// one network stay distinguishable to the stream checkers. Unbound
  /// monitors emit nothing.
  void bind_stream(obs::EventStream& stream, std::string label);

  /// Optional latency instrumentation: record that `mh` submitted a
  /// request now. The next enter() by the same MH is matched FIFO to the
  /// oldest unmatched request, yielding grant latency.
  void note_request(net::MhId mh, sim::SimTime now);

  /// Record a CS entry. Returns the grant index (pass to exit()).
  std::size_t enter(net::MhId mh, std::uint64_t order_key, sim::SimTime now);

  /// Mean request-to-grant latency over grants that had a matched
  /// note_request (0 if none).
  [[nodiscard]] double mean_grant_latency() const noexcept;

  /// Record the matching CS exit.
  void exit(std::size_t grant_index, sim::SimTime now);

  /// Number of completed or in-progress grants.
  [[nodiscard]] std::size_t grants() const noexcept { return history_.size(); }
  /// Every grant recorded so far, in entry order.
  [[nodiscard]] const std::vector<Grant>& history() const noexcept { return history_; }

  /// True while some MH is inside the critical section.
  [[nodiscard]] bool busy() const noexcept { return holder_.has_value(); }
  /// The MH currently inside the CS, if any.
  [[nodiscard]] std::optional<net::MhId> holder() const noexcept { return holder_; }

  /// Mutual-exclusion violations observed (overlapping holders, exits
  /// without entry, double exits).
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }

  /// Count of adjacent grant pairs whose order keys are out of order;
  /// zero means grants respected the algorithm's ordering claim.
  [[nodiscard]] std::uint64_t order_inversions() const noexcept;

 private:
  void count_violation() noexcept;

  std::vector<Grant> history_;
  std::optional<net::MhId> holder_;
  std::optional<std::size_t> holder_grant_;
  std::map<net::MhId, std::deque<sim::SimTime>> pending_requests_;
  std::uint64_t violations_ = 0;
  obs::Histogram* wait_hist_ = nullptr;     // bound via bind_metrics
  obs::Counter* grants_counter_ = nullptr;
  obs::Counter* violations_counter_ = nullptr;
  obs::EventStream* stream_ = nullptr;      // bound via bind_stream
  std::string stream_label_;
};

}  // namespace mobidist::mutex
