#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mutex/lamport_engine.hpp"
#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "net/network.hpp"

namespace mobidist::mutex {

// Wire messages of algorithm L2.

/// MH -> local MSS: start a mutual-exclusion request on my behalf.
struct L2Init {
  net::MhId mh = net::kInvalidMh;
};

/// Granting MSS -> MH: you hold the lock (the paper's grant-request).
struct L2Grant {
  std::uint64_t req_id = 0;
  net::MssId home = net::kInvalidMss;  ///< the MSS running Lamport for this request
  std::uint64_t ts = 0;                ///< Lamport timestamp of the request
};

/// MH -> current local MSS (relayed to home if needed): release-resource.
struct L2ReleaseResource {
  std::uint64_t req_id = 0;
  net::MssId home = net::kInvalidMss;
};

/// MSS <-> MSS: a Lamport-engine message on behalf of some MH.
struct L2Wire {
  LamportMsg msg;
};

/// Algorithm L2 (§3.1.1): the paper's restructured Lamport mutex. The M
/// MSSs run Lamport's algorithm among themselves on behalf of requesting
/// MHs; MH participation shrinks to three wireless messages
/// (init, grant-request, release-resource).
///
/// Cost per execution: 3*c_wireless + c_search (grant must locate the
/// possibly-moved MH) + c_fixed (release relay) + 3*(M-1)*c_fixed
/// (request/reply/release among the MSSs).
///
/// Disconnect handling follows the paper: a grant that reaches a
/// disconnected MH comes back as an unreachable notice and the home MSS
/// releases on its behalf (the request is aborted); a MH that
/// disconnects while holding the lock sends release-resource when it
/// reconnects.
class L2Mutex {
 public:
  L2Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts = {});

  /// Ask for one CS execution on behalf of `mh`.
  void request(net::MhId mh);

  /// Fully completed executions (granted, held, released).
  [[nodiscard]] std::uint64_t completed() const noexcept;
  /// Requests aborted because the MH was disconnected at grant time.
  [[nodiscard]] std::uint64_t aborted() const noexcept;

 private:
  class StationAgent;
  class HostAgent;
  net::Network& net_;
  CsMonitor& monitor_;
  std::vector<std::shared_ptr<StationAgent>> stations_;
  std::vector<std::shared_ptr<HostAgent>> hosts_;
};

}  // namespace mobidist::mutex
