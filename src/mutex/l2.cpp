#include "mutex/l2.hpp"

#include <deque>
#include <functional>
#include <map>
#include <utility>

namespace mobidist::mutex {

using net::Envelope;
using net::MhId;
using net::MssId;

/// MSS-side participant: runs the Lamport engine over the wired mesh on
/// behalf of local MHs' requests.
class L2Mutex::StationAgent : public net::MssAgent {
 public:
  StationAgent(std::uint32_t self, std::uint32_t m, CsMonitor& monitor)
      : engine_(self, m), monitor_(monitor) {
    engine_.set_send([this](std::uint32_t peer, const LamportMsg& msg) {
      send_wired(static_cast<MssId>(peer), L2Wire{msg});
    });
    engine_.set_on_acquired([this](std::uint64_t req_id, std::uint64_t ts) {
      grant(req_id, ts);
    });
  }

  void on_message(const Envelope& env) override {
    if (const auto* wire = net::body_as<L2Wire>(env)) {
      engine_.on_message(net::index(env.src.mss()), wire->msg);
      return;
    }
    if (const auto* init = net::body_as<L2Init>(env)) {
      // Timestamp the request on receipt of init() — this is "the
      // timestamp of hl's request" in the paper's correctness argument.
      const std::uint64_t req_id = next_req_id_++;
      pending_.emplace(req_id, init->mh);
      engine_.submit(req_id);
      return;
    }
    if (const auto* release = net::body_as<L2ReleaseResource>(env)) {
      if (release->home == self()) {
        finish(release->req_id);
      } else {
        // Relay the MH's release-resource to its home MSS (c_fixed).
        send_wired(release->home, *release);
      }
      return;
    }
  }

  /// Grant-request bounced: the MH disconnected before it arrived. Per
  /// the paper the request cannot be satisfied; release on its behalf.
  void on_mh_unreachable(MhId /*mh*/, const net::Body& body) override {
    const auto* grant_msg = body.get<L2Grant>();
    if (grant_msg == nullptr) return;
    if (pending_.erase(grant_msg->req_id) > 0) {
      ++aborted_;
      engine_.release(grant_msg->req_id);
    }
  }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::size_t queue_size() const noexcept { return engine_.queue_size(); }

 private:
  void grant(std::uint64_t req_id, std::uint64_t ts) {
    const auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // aborted concurrently
    // The MH may have moved since init(): locate it (c_search) and make
    // the disconnect case come back to us instead of parking forever.
    send_to_mh(it->second, L2Grant{req_id, self(), ts},
               net::SendPolicy::kNotifyIfDisconnected);
  }

  void finish(std::uint64_t req_id) {
    if (pending_.erase(req_id) == 0) return;  // duplicate release
    ++completed_;
    engine_.release(req_id);
  }

  LamportEngine engine_;
  CsMonitor& monitor_;
  std::map<std::uint64_t, MhId> pending_;  ///< req_id -> initiating MH
  std::uint64_t next_req_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
};

/// MH-side participant: init on request, enter/hold/release on grant.
class L2Mutex::HostAgent : public net::MhAgent {
 public:
  HostAgent(CsMonitor& monitor, MutexOptions opts) : monitor_(monitor), opts_(opts) {}

  void local_request() {
    run_when_connected([this] { send_uplink(L2Init{self()}); });
  }

  void on_message(const Envelope& env) override {
    const auto* grant_msg = net::body_as<L2Grant>(env);
    if (grant_msg == nullptr) return;
    // Order key: (lamport ts, home) — the global order the paper's
    // correctness argument promises grants follow.
    const std::uint64_t key = (grant_msg->ts << 20) | net::index(grant_msg->home);
    const std::size_t grant = monitor_.enter(self(), key, net().sched().now());
    net().sched().schedule(opts_.cs_hold, [this, grant, msg = *grant_msg] {
      monitor_.exit(grant, net().sched().now());
      // If we disconnected during the hold, the release goes out when we
      // reconnect (the paper: "L2 requires that it reconnect to send the
      // release-resource message").
      run_when_connected(
          [this, msg] { send_uplink(L2ReleaseResource{msg.req_id, msg.home}); });
    });
  }

  void on_joined_cell(MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  CsMonitor& monitor_;
  MutexOptions opts_;
  std::deque<std::function<void()>> deferred_;
};

L2Mutex::L2Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts)
    : net_(net), monitor_(monitor) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), "L2");
  const std::uint32_t m = net.num_mss();
  stations_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto agent = std::make_shared<StationAgent>(i, m, monitor);
    stations_.push_back(agent);
    net.mss(static_cast<MssId>(i)).register_agent(net::protocol::kMutexL2, agent);
  }
  hosts_.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    auto agent = std::make_shared<HostAgent>(monitor, opts);
    hosts_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(net::protocol::kMutexL2, agent);
  }
}

void L2Mutex::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  hosts_[net::index(mh)]->local_request();
}

std::uint64_t L2Mutex::completed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& station : stations_) total += station->completed();
  return total;
}

std::uint64_t L2Mutex::aborted() const noexcept {
  std::uint64_t total = 0;
  for (const auto& station : stations_) total += station->aborted();
  return total;
}

}  // namespace mobidist::mutex
