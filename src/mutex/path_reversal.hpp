#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "net/network.hpp"

namespace mobidist::mutex {

/// One node of the Naimi–Trehel path-reversal tree (ROADMAP item 4;
/// Lavault's average-case analysis in PAPERS.md), restructured per the
/// paper's principle: the node is a *fixed* host, so the dynamic
/// `last`/`next` pointer graph never touches a wireless link.
///
/// State per node: `father` — the probable current tail of the
/// distributed request queue (kNoNode means "this node is the probable
/// tail"); `next` — the node to hand the token to after the local queue
/// drains; a FIFO of local MH requests; and whether the token is here.
/// A request claim travels father-to-father until it reaches the tail,
/// and every node it crosses re-points its father at the claim's origin
/// — the path reversal that keeps the tree's average depth (and with it
/// the per-entry message bill) logarithmic.
///
/// The engine is transport-agnostic: it never sends anything itself but
/// invokes the Hooks, so the same state machine runs wired directly on
/// the MSSs (PathRevMutex below) and behind the §5 proxy strategies
/// (proxy::ProxiedPathRev).
class PathRevEngine {
 public:
  /// Dense node index (== MSS index in both current wirings).
  using NodeId = std::uint32_t;
  /// Sentinel for "no node" (father == kNoNode: I am the probable tail).
  static constexpr NodeId kNoNode = 0xffffffffu;

  /// Transport callbacks; all sends happen through these.
  struct Hooks {
    /// Send (or forward) the claim of `origin` one hop to `to`.
    std::function<void(NodeId to, NodeId origin)> forward_claim;
    /// Transfer the token to node `to`.
    std::function<void(NodeId to)> send_token;
    /// The token is here and idle: serve `mh`'s queued request.
    std::function<void(net::MhId mh)> grant;
    /// This node's father pointer was reversed onto `new_father`.
    std::function<void(NodeId new_father)> path_reversed;
  };

  /// Node `self` of an m-node tree. `has_token` for exactly one node
  /// (the initial root, whose father starts as kNoNode); every other
  /// node's father starts pointing at that root.
  PathRevEngine(NodeId self, bool has_token, NodeId initial_father, Hooks hooks)
      : self_(self),
        father_(initial_father),
        token_here_(has_token),
        hooks_(std::move(hooks)) {}

  /// Queue a local MH request and pump: grant immediately if the token
  /// is idle here, otherwise claim the token (once) from the tree.
  void local_request(net::MhId mh) {
    queue_.push_back(mh);
    pump();
  }

  /// A claim by `origin` arrived. Tail nodes capture it (hand the idle
  /// token over, or record `origin` as `next` when the token is busy or
  /// still inbound); interior nodes forward it toward their father.
  /// Either way the father pointer reverses onto `origin`.
  void on_claim(NodeId origin) {
    if (father_ == kNoNode) {
      if (token_here_ && !granting_ && queue_.empty()) {
        // Idle token at the tail: hand it over directly.
        token_here_ = false;
        hooks_.send_token(origin);
      } else if (next_ == kNoNode) {
        next_ = origin;
      } else {
        // Unreachable under the algorithm's invariant (a tail captures
        // at most one claim per epoch: the first capture re-points
        // father at its origin, so later claims forward instead);
        // chaining onto the recorded successor keeps the queue intact
        // if it ever fires.
        hooks_.forward_claim(next_, origin);
      }
    } else {
      hooks_.forward_claim(father_, origin);
    }
    father_ = origin;
    hooks_.path_reversed(origin);
  }

  /// The token arrived; serve the local queue (or park it idle).
  void on_token() {
    claiming_ = false;
    token_here_ = true;
    pump();
  }

  /// The token came back from the MH served last (CS done, grant
  /// bounced, or the unreachable-MH return): serve the next local
  /// request or pass the token to `next`.
  void grant_done() {
    granting_ = false;
    pump();
  }

  /// Drop every queued request of `mh` (it left this cell and will
  /// re-file at its new MSS); returns how many entries were withdrawn.
  std::size_t withdraw(net::MhId mh) {
    const auto before = queue_.size();
    std::erase(queue_, mh);
    return before - queue_.size();
  }

  /// True while the token is at this node (idle or out at a local MH).
  [[nodiscard]] bool token_here() const noexcept { return token_here_; }
  /// True while the token is visiting a MH this node granted it to.
  [[nodiscard]] bool granting() const noexcept { return granting_; }
  /// Local MH requests not yet granted.
  [[nodiscard]] std::size_t queued() const noexcept { return queue_.size(); }
  /// Probable tail pointer (kNoNode: this node is the probable tail).
  [[nodiscard]] NodeId father() const noexcept { return father_; }
  /// Recorded successor awaiting the token (kNoNode: none).
  [[nodiscard]] NodeId next_node() const noexcept { return next_; }

 private:
  void pump() {
    if (!token_here_) {
      // Claim at most once per token acquisition. The dedicated flag —
      // not father_ == kNoNode — marks "claim in flight or token
      // inbound": a claim captured by this waiting node re-points
      // father_ at its origin, and a second claim issued then would
      // chase this node's own inbound token around the reversing tree
      // forever.
      if (!queue_.empty() && !claiming_ && father_ != kNoNode) {
        const NodeId to = father_;
        father_ = kNoNode;
        claiming_ = true;
        hooks_.forward_claim(to, self_);
      }
      return;
    }
    if (granting_) return;
    if (!queue_.empty()) {
      const net::MhId mh = queue_.front();
      queue_.pop_front();
      granting_ = true;
      hooks_.grant(mh);
      return;
    }
    if (next_ != kNoNode) {
      const NodeId to = next_;
      next_ = kNoNode;
      token_here_ = false;
      hooks_.send_token(to);
    }
  }

  NodeId self_;
  NodeId father_;
  NodeId next_ = kNoNode;
  bool token_here_;
  bool claiming_ = false;  ///< own claim in flight / token inbound
  bool granting_ = false;
  std::deque<net::MhId> queue_;
  Hooks hooks_;
};

// Wire messages.

/// MH -> local MSS: queue me for the critical section.
struct PathRevRequest {
  net::MhId mh = net::kInvalidMh;
};

/// MSS -> MSS: a token claim travelling father-to-father; `origin` is
/// the MSS that wants the token.
struct PathRevClaim {
  net::MssId origin = net::kInvalidMss;
};

/// MSS -> MSS: the token itself. `serial` counts transfers (grant legs
/// included) for trace readability.
struct PathRevTokenPass {
  std::uint64_t serial = 0;
};

/// MSS -> MH: the grant (the token visits the MH for one CS execution).
struct PathRevGrant {
  net::MssId home = net::kInvalidMss;  ///< who to return the token to
  std::uint64_t serial = 0;
};

/// MH -> current MSS (relayed to `home` if the MH moved): token return.
struct PathRevReturn {
  net::MssId home = net::kInvalidMss;
  std::uint64_t serial = 0;
};

/// Path-reversal token mutual exclusion on the MSS tier (ROADMAP item
/// 4): Naimi–Trehel's dynamic-tree token algorithm restructured per the
/// paper's principle. The `last`/`next` tree lives entirely on the M
/// MSSs; a MH participates with the same 3-wireless-message profile as
/// L2/R2 (request up, grant down, return up) while the tree-forwarding
/// traffic — O(log M) wired messages per entry on average (Lavault) —
/// stays on the fixed network, where FormationLayer batching applies.
///
/// Mobility: a MH re-files its outstanding requests at every cell it
/// joins and the cell it left withdraws them (MssAgent::on_mh_left), so
/// requests queued at a crashed-and-evacuated MSS re-home to the refuge
/// cell without a side channel. Over-filing is harmless: a MH accepts
/// at most `pending` grants and bounces any surplus token straight back
/// to its granting MSS. Token loss: none under the fail-stop model —
/// wired claims/transfers addressed to a crashed MSS are deferred until
/// recovery (stable storage), and a token visiting a MH rides the
/// reliable wireless path; see docs/ARCHITECTURE.md for the documented
/// crash-window latency cost.
class PathRevMutex {
 public:
  PathRevMutex(net::Network& net, CsMonitor& monitor, MutexOptions opts = {});

  /// Submit a CS request on behalf of `mh` at its current MSS.
  void request(net::MhId mh);

  /// CS executions completed (grant accepted, hold elapsed, token
  /// returned toward home).
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  /// Grants that found the MH disconnected (token bounced at the MSS).
  [[nodiscard]] std::uint64_t skipped_disconnected() const noexcept {
    return skipped_disconnected_;
  }
  /// Surplus grants a MH returned unused (re-homed request served twice).
  [[nodiscard]] std::uint64_t bounced_grants() const noexcept { return bounced_grants_; }
  /// Requests withdrawn from a cell the MH left (re-homed on re-join).
  [[nodiscard]] std::uint64_t rehomed() const noexcept { return rehomed_; }
  /// Requests still queued across every station (0 once drained).
  [[nodiscard]] std::uint64_t queued_total() const;

  /// Event-stream tag for the direct MSS-tier wiring.
  [[nodiscard]] static constexpr const char* label() noexcept { return "NT"; }

 private:
  class StationAgent;
  class HostAgent;
  friend class StationAgent;
  friend class HostAgent;

  net::Network& net_;
  CsMonitor& monitor_;
  std::vector<std::shared_ptr<StationAgent>> stations_;
  std::vector<std::shared_ptr<HostAgent>> hosts_;
  std::uint64_t completed_ = 0;
  std::uint64_t skipped_disconnected_ = 0;
  std::uint64_t bounced_grants_ = 0;
  std::uint64_t rehomed_ = 0;
  std::uint64_t transfers_ = 0;  ///< token-movement serial (events' arg)
  // Registry-backed mirrors of the tree-path counters.
  obs::Counter& token_passes_counter_;
  obs::Counter& token_grants_counter_;
  obs::Counter& claim_hops_counter_;
  obs::Counter& path_reversals_counter_;
  obs::Counter& rehomed_counter_;
  obs::Counter& bounced_counter_;
  obs::Counter& skipped_disconnected_counter_;
};

}  // namespace mobidist::mutex
