#include "mutex/r1.hpp"

#include <deque>
#include <functional>

namespace mobidist::mutex {

using net::Envelope;
using net::MhId;

/// Ring participant: wait for token; enter CS if a request is pending;
/// forward to the successor. Forwarding while between cells waits for
/// the next join (the sender cannot transmit in transit).
class R1Mutex::Agent : public net::MhAgent {
 public:
  Agent(R1Mutex& owner, std::uint32_t self_index, std::uint32_t n, CsMonitor& monitor,
        MutexOptions opts)
      : owner_(owner), index_(self_index), n_(n), monitor_(monitor), opts_(opts) {}

  void want_cs() { wants_ = true; }

  void inject(std::uint64_t traversals_target) {
    (void)traversals_target;
    handle_token(R1Token{0});
  }

  void on_message(const Envelope& env) override {
    const auto* token = net::body_as<R1Token>(env);
    if (token == nullptr) return;
    handle_token(*token);
  }

  void on_joined_cell(net::MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  void handle_token(R1Token token) {
    const auto arrive_id = net().emit({.kind = obs::EventKind::kTokenArrive,
                                       .entity = net::entity_of(self()),
                                       .arg = token.traversal,
                                       .detail = "R1"});
    if (index_ == 0 && token.traversal > 0 &&
        owner_.traversals_done_ < token.traversal) {
      owner_.traversals_done_ = token.traversal;
      if (token.traversal >= owner_.target_traversals_) {
        owner_.absorbed_ = true;  // stop circulating
        return;
      }
    }
    if (wants_) {
      wants_ = false;
      // Order key: traversal-major, position-minor — the ring's service
      // order within a loop.
      const std::uint64_t key = (token.traversal << 24) | index_;
      const std::size_t grant = monitor_.enter(self(), key, net().sched().now());
      net().sched().schedule(opts_.cs_hold, [this, grant, arrive_id, token] {
        obs::CauseScope scope(net().events(), arrive_id);
        monitor_.exit(grant, net().sched().now());
        ++completed_;
        forward(token);
      });
      return;
    }
    forward(token);
  }

  void forward(R1Token token) {
    const std::uint32_t successor = (index_ + 1) % n_;
    if (successor == 0) ++token.traversal;  // loop completes when it re-reaches MH 0
    run_when_connected([this, successor, token] {
      net().emit({.kind = obs::EventKind::kTokenDepart,
                  .entity = net::entity_of(self()),
                  .peer = obs::Entity::mh(successor),
                  .arg = token.traversal,
                  .detail = "R1"});
      send_to_mh(static_cast<MhId>(successor), token, /*fifo=*/false);
    });
  }

  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  R1Mutex& owner_;
  std::uint32_t index_;
  std::uint32_t n_;
  CsMonitor& monitor_;
  MutexOptions opts_;
  bool wants_ = false;
  std::uint64_t completed_ = 0;
  std::deque<std::function<void()>> deferred_;
};

R1Mutex::R1Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts)
    : net_(net), monitor_(monitor) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), "R1");
  const std::uint32_t n = net.num_mh();
  agents_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto agent = std::make_shared<Agent>(*this, i, n, monitor, opts);
    agents_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(net::protocol::kMutexR1, agent);
  }
}

void R1Mutex::start_token(std::uint64_t traversals) {
  target_traversals_ = traversals;
  agents_[0]->inject(traversals);
}

void R1Mutex::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  agents_[net::index(mh)]->want_cs();
}

std::uint64_t R1Mutex::completed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& agent : agents_) total += agent->completed();
  return total;
}

std::uint64_t R1Mutex::traversals_done() const noexcept { return traversals_done_; }

}  // namespace mobidist::mutex
