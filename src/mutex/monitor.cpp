#include "mutex/monitor.hpp"

#include <utility>

namespace mobidist::mutex {

void CsMonitor::bind_metrics(obs::Registry& registry) {
  wait_hist_ = &registry.histogram("mutex.cs_wait", obs::latency_buckets());
  grants_counter_ = &registry.counter("mutex.cs_grants");
  violations_counter_ = &registry.counter("mutex.cs_violations");
}

void CsMonitor::bind_stream(obs::EventStream& stream, std::string label) {
  stream_ = &stream;
  stream_label_ = std::move(label);
}

void CsMonitor::count_violation() noexcept {
  ++violations_;
  if (violations_counter_ != nullptr) ++*violations_counter_;
}

void CsMonitor::note_request(net::MhId mh, sim::SimTime now) {
  pending_requests_[mh].push_back(now);
  if (stream_ != nullptr) {
    stream_->emit(now, {.kind = obs::EventKind::kCsRequest,
                        .entity = obs::Entity::mh(net::index(mh)),
                        .detail = stream_label_});
  }
}

std::size_t CsMonitor::enter(net::MhId mh, std::uint64_t order_key, sim::SimTime now) {
  if (holder_.has_value()) count_violation();  // overlapping critical sections
  holder_ = mh;
  Grant grant{mh, order_key, 0, now, 0, false, false};
  if (auto it = pending_requests_.find(mh);
      it != pending_requests_.end() && !it->second.empty()) {
    grant.requested = it->second.front();
    grant.has_request_time = true;
    it->second.pop_front();
  }
  if (grants_counter_ != nullptr) ++*grants_counter_;
  if (wait_hist_ != nullptr && grant.has_request_time) {
    wait_hist_->record(grant.entered - grant.requested);
  }
  if (stream_ != nullptr) {
    grant.enter_event = stream_->emit(now, {.kind = obs::EventKind::kCsEnter,
                                            .entity = obs::Entity::mh(net::index(mh)),
                                            .arg = order_key,
                                            .detail = stream_label_});
  }
  history_.push_back(grant);
  holder_grant_ = history_.size() - 1;
  return history_.size() - 1;
}

double CsMonitor::mean_grant_latency() const noexcept {
  double total = 0;
  std::uint64_t counted = 0;
  for (const auto& grant : history_) {
    if (!grant.has_request_time) continue;
    total += static_cast<double>(grant.entered - grant.requested);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

void CsMonitor::exit(std::size_t grant_index, sim::SimTime now) {
  if (grant_index >= history_.size() || history_[grant_index].done) {
    count_violation();  // exit without matching entry
    return;
  }
  history_[grant_index].exited = now;
  history_[grant_index].done = true;
  if (stream_ != nullptr) {
    stream_->emit(now, {.kind = obs::EventKind::kCsExit,
                        .entity = obs::Entity::mh(net::index(history_[grant_index].mh)),
                        .cause = history_[grant_index].enter_event,
                        .detail = stream_label_});
  }
  if (holder_grant_ == grant_index) {
    holder_.reset();
    holder_grant_.reset();
  }
}

std::uint64_t CsMonitor::order_inversions() const noexcept {
  std::uint64_t inversions = 0;
  for (std::size_t i = 1; i < history_.size(); ++i) {
    if (history_[i].order_key < history_[i - 1].order_key) ++inversions;
  }
  return inversions;
}

}  // namespace mobidist::mutex
