#include "mutex/r2.hpp"

#include <algorithm>
#include <deque>
#include <functional>

namespace mobidist::mutex {

using net::Envelope;
using net::MhId;
using net::MssId;

/// MSS ring node: request queue, grant queue, token handling.
class R2Mutex::StationAgent : public net::MssAgent {
 public:
  StationAgent(R2Mutex& owner, std::uint32_t index, std::uint32_t m)
      : owner_(owner), index_(index), m_(m) {}

  void on_message(const Envelope& env) override {
    if (const auto* request = net::body_as<R2Request>(env)) {
      requests_.push_back(*request);
      return;
    }
    if (const auto* pass = net::body_as<R2TokenPass>(env)) {
      receive_token(pass->token);
      return;
    }
    if (const auto* ret = net::body_as<R2TokenReturn>(env)) {
      if (ret->home == self()) {
        net().emit({.kind = obs::EventKind::kTokenArrive,
                    .entity = net::entity_of(self()),
                    .arg = token_.token_val,
                    .detail = owner_.variant_label()});
        token_out_ = false;
        serve_next();
      } else {
        // Relay the return from the MH's current cell to the token's
        // home MSS (the c_fixed leg of the 3*c_w + c_f + c_s request cost).
        send_wired(ret->home, *ret);
      }
      return;
    }
  }

  /// The token chased a disconnected MH: its flag-holding MSS returns it
  /// (we model that return as one fixed-network message, as the paper
  /// describes) and the ring moves on.
  void on_mh_unreachable(MhId /*mh*/, const net::Body& body) override {
    const auto* grant = body.get<R2TokenToMh>();
    if (grant == nullptr) return;
    ++owner_.skipped_disconnected_;
    ++owner_.skipped_disconnected_counter_;
    net().ledger().charge_fixed();  // the modeled token-return message
    net().emit({.kind = obs::EventKind::kTokenArrive,
                .entity = net::entity_of(self()),
                .arg = grant->token_val,
                .detail = owner_.variant_label()});
    token_out_ = false;
    serve_next();
  }

  void inject(R2Token token) { receive_token(std::move(token)); }

  [[nodiscard]] std::size_t queued() const noexcept {
    return requests_.size() + grants_.size();
  }

 private:
  void receive_token(R2Token token) {
    net().emit({.kind = obs::EventKind::kTokenArrive,
                .entity = net::entity_of(self()),
                .arg = token.token_val,
                .detail = owner_.variant_label()});
    if (index_ == 0 && !injected_done_) {
      injected_done_ = true;  // first arrival is the injection, not a loop
    } else if (index_ == 0) {
      ++token.token_val;  // completed one traversal
      owner_.traversals_done_ = token.token_val - 1;
      if (owner_.traversals_done_ >= owner_.target_traversals_) {
        owner_.absorbed_ = true;
        return;
      }
    }
    token_ = std::move(token);
    holding_ = true;
    if (owner_.variant_ == RingVariant::kTokenList) {
      // "On arrival of the token, M deletes all pairs from token_list
      // whose first element is M."
      std::erase_if(token_.served, [this](const auto& pair) { return pair.first == index_; });
    }
    // Move eligible pending requests to the grant queue — only now, at
    // token arrival (later arrivals wait for the next traversal).
    std::deque<R2Request> keep;
    for (const auto& request : requests_) {
      if (eligible(request)) {
        grants_.push_back(request);
      } else {
        keep.push_back(request);
      }
    }
    requests_ = std::move(keep);
    serve_next();
  }

  [[nodiscard]] bool eligible(const R2Request& request) const {
    switch (owner_.variant_) {
      case RingVariant::kBasic:
        return true;
      case RingVariant::kCounter:
        // R2': served this traversal already iff access_count caught up
        // with token_val.
        return request.access_count < token_.token_val;
      case RingVariant::kTokenList:
        return std::none_of(token_.served.begin(), token_.served.end(),
                            [&](const auto& pair) {
                              return pair.second == net::index(request.mh);
                            });
    }
    return true;
  }

  void serve_next() {
    if (!holding_ || token_out_) return;
    if (grants_.empty()) {
      pass_token();
      return;
    }
    const R2Request request = grants_.front();
    grants_.pop_front();
    // Label before recording: a repeat within this traversal must be
    // visible to grant_label's stale-snapshot detection.
    const char* label = owner_.grant_label(request.mh, token_.token_val);
    owner_.record_grant(token_.token_val, request.mh);
    if (owner_.variant_ == RingVariant::kTokenList) {
      token_.served.emplace_back(index_, net::index(request.mh));
    }
    token_out_ = true;
    net().emit({.kind = obs::EventKind::kTokenDepart,
                .entity = net::entity_of(self()),
                .peer = net::entity_of(request.mh),
                .arg = token_.token_val,
                .detail = label});
    // "sends the token to the MH that made the request (which may
    // necessitate a search if the MH has changed its cell)".
    send_to_mh(request.mh, R2TokenToMh{token_.token_val, self()},
               net::SendPolicy::kNotifyIfDisconnected);
  }

  void pass_token() {
    holding_ = false;
    if (owner_.absorb_when_idle_ && owner_.all_queues_empty()) {
      owner_.absorbed_ = true;
      owner_.traversals_done_ = token_.token_val;  // loops started so far
      return;
    }
    const auto successor = static_cast<MssId>((index_ + 1) % m_);
    ++owner_.token_passes_counter_;
    net().emit({.kind = obs::EventKind::kTokenDepart,
                .entity = net::entity_of(self()),
                .peer = net::entity_of(successor),
                .arg = token_.token_val,
                .detail = owner_.variant_label()});
    send_wired(successor, R2TokenPass{token_});
  }

  R2Mutex& owner_;
  std::uint32_t index_;
  std::uint32_t m_;
  std::deque<R2Request> requests_;
  std::deque<R2Request> grants_;
  R2Token token_;
  bool holding_ = false;
  bool token_out_ = false;     ///< token is visiting a MH right now
  bool injected_done_ = false;
};

/// MH participant: submit requests, use the token, hand it back.
class R2Mutex::HostAgent : public net::MhAgent {
 public:
  HostAgent(R2Mutex& owner, CsMonitor& monitor, MutexOptions opts)
      : owner_(owner), monitor_(monitor), opts_(opts) {}

  void local_request() {
    run_when_connected([this] {
      const std::uint64_t reported = malicious_ ? 0 : access_count_;
      send_uplink(R2Request{self(), reported});
    });
  }

  void set_malicious(bool value) noexcept { malicious_ = value; }

  void on_message(const Envelope& env) override {
    const auto* token = net::body_as<R2TokenToMh>(env);
    if (token == nullptr) return;
    // "When a MH receives the token, it assigns the current value of
    // token_val to its copy of access_count."
    access_count_ = token->token_val;
    const auto arrive_id = net().emit({.kind = obs::EventKind::kTokenArrive,
                                       .entity = net::entity_of(self()),
                                       .arg = token->token_val,
                                       .detail = owner_.variant_label()});
    const std::size_t grant = monitor_.enter(self(), token->token_val, net().sched().now());
    net().sched().schedule(opts_.cs_hold, [this, grant, arrive_id, home = token->from,
                                           val = token->token_val] {
      obs::CauseScope scope(net().events(), arrive_id);
      monitor_.exit(grant, net().sched().now());
      ++owner_.completed_;
      run_when_connected([this, home, val] {
        net().emit({.kind = obs::EventKind::kTokenDepart,
                    .entity = net::entity_of(self()),
                    .peer = net::entity_of(home),
                    .arg = val,
                    .detail = owner_.variant_label()});
        send_uplink(R2TokenReturn{home});
      });
    });
  }

  void on_joined_cell(MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  R2Mutex& owner_;
  CsMonitor& monitor_;
  MutexOptions opts_;
  std::uint64_t access_count_ = 0;
  bool malicious_ = false;
  std::deque<std::function<void()>> deferred_;
};

R2Mutex::R2Mutex(net::Network& net, CsMonitor& monitor, RingVariant variant,
                 MutexOptions opts)
    : net_(net),
      monitor_(monitor),
      variant_(variant),
      token_passes_counter_(net.metrics().counter("mutex.r2.token_passes")),
      token_grants_counter_(net.metrics().counter("mutex.r2.token_grants")),
      skipped_disconnected_counter_(net.metrics().counter("mutex.r2.skipped_disconnected")) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), variant_label());
  const std::uint32_t m = net.num_mss();
  stations_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto agent = std::make_shared<StationAgent>(*this, i, m);
    stations_.push_back(agent);
    net.mss(static_cast<MssId>(i)).register_agent(net::protocol::kMutexR2, agent);
  }
  hosts_.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    auto agent = std::make_shared<HostAgent>(*this, monitor, opts);
    hosts_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(net::protocol::kMutexR2, agent);
  }
}

void R2Mutex::start_token(std::uint64_t max_traversals) {
  target_traversals_ = max_traversals;
  stations_[0]->inject(R2Token{});
}

void R2Mutex::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  hosts_[net::index(mh)]->local_request();
}

void R2Mutex::set_malicious(MhId mh, bool value) {
  if (value) any_malicious_ = true;
  hosts_[net::index(mh)]->set_malicious(value);
}

const char* R2Mutex::variant_label() const noexcept {
  switch (variant_) {
    case RingVariant::kBasic: return "R2";
    case RingVariant::kCounter: return "R2'";
    case RingVariant::kTokenList: return "R2''";
  }
  return "R2";
}

const char* R2Mutex::grant_label(net::MhId mh, std::uint64_t token_val) const {
  if (variant_ == RingVariant::kCounter) {
    if (any_malicious_) return "R2'!";
    if (grants_for(mh, token_val) > 0) return "R2'~";  // stale-snapshot repeat
  }
  return variant_label();
}

void R2Mutex::record_grant(std::uint64_t token_val, MhId mh) {
  ++token_grants_counter_;
  ++grant_counts_[{token_val, net::index(mh)}];
}

bool R2Mutex::all_queues_empty() const {
  for (const auto& station : stations_) {
    if (station->queued() != 0) return false;
  }
  return true;
}

std::uint64_t R2Mutex::grants_in_traversal(std::uint64_t token_val) const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : grant_counts_) {
    if (key.first == token_val) total += count;
  }
  return total;
}

std::uint64_t R2Mutex::grants_for(MhId mh, std::uint64_t token_val) const {
  const auto it = grant_counts_.find({token_val, net::index(mh)});
  return it == grant_counts_.end() ? 0 : it->second;
}

}  // namespace mobidist::mutex
