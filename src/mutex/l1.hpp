#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mutex/lamport_engine.hpp"
#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "net/network.hpp"

namespace mobidist::mutex {

/// Algorithm L1 (§3.1.1): Lamport's mutual exclusion executed *directly
/// on the N mobile hosts* — the paper's strawman.
///
/// Every engine message travels MH-to-MH over the relay service, so each
/// costs 2*c_wireless + c_search; one CS execution costs
/// 3*(N-1)*(2*c_wireless + c_search) and drains 6*(N-1) wireless-hop
/// energy units across the MHs. Every MH must participate in every
/// execution (it replies to every request), which is exactly why the
/// paper rejects this structuring: no doze mode, no disconnection.
///
/// Construct before Network::start(); call request() from inside the
/// simulation (scheduled events).
class L1Mutex {
 public:
  L1Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts = {});

  /// Ask for one CS execution on behalf of `mh`. If the MH is between
  /// cells the request waits until it lands.
  void request(net::MhId mh);

  /// CS executions fully completed (entered and released).
  [[nodiscard]] std::uint64_t completed() const noexcept;

 private:
  class Agent;
  net::Network& net_;
  CsMonitor& monitor_;
  std::vector<std::shared_ptr<Agent>> agents_;
};

}  // namespace mobidist::mutex
