#include "mutex/lamport_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobidist::mutex {

LamportEngine::LamportEngine(std::uint32_t self, std::uint32_t n) : self_(self), n_(n) {
  if (self >= n) throw std::invalid_argument("LamportEngine: self out of range");
  latest_ts_.assign(n, 0);
}

void LamportEngine::broadcast(const LamportMsg& msg) {
  for (std::uint32_t peer = 0; peer < n_; ++peer) {
    if (peer == self_) continue;
    send_(peer, msg);
  }
}

std::uint64_t LamportEngine::submit(std::uint64_t req_id) {
  const std::uint64_t ts = ++clock_;
  const Entry entry{ts, self_, req_id};
  if (!index_.emplace(std::pair{self_, req_id}, ts).second) {
    throw std::logic_error("LamportEngine: duplicate local req_id");
  }
  queue_.insert(entry);
  sent_requests_ += n_ - 1;
  broadcast(LamportMsg{LamportMsg::Kind::kRequest, ts, self_, req_id});
  check_grant();  // n == 1 degenerates to immediate grant
  return ts;
}

void LamportEngine::release(std::uint64_t req_id) {
  const auto it = index_.find({self_, req_id});
  if (it == index_.end()) {
    throw std::logic_error("LamportEngine: release of unknown req_id");
  }
  const Entry entry{it->second, self_, req_id};
  queue_.erase(entry);
  index_.erase(it);
  if (granted_ && *granted_ == entry) granted_.reset();
  const std::uint64_t ts = ++clock_;
  sent_releases_ += n_ - 1;
  broadcast(LamportMsg{LamportMsg::Kind::kRelease, ts, self_, req_id});
  check_grant();
}

void LamportEngine::on_message(std::uint32_t from, const LamportMsg& msg) {
  if (from >= n_ || from == self_) {
    throw std::logic_error("LamportEngine: message from invalid peer");
  }
  clock_ = std::max(clock_, msg.clock) + 1;
  latest_ts_[from] = std::max(latest_ts_[from], msg.clock);
  switch (msg.kind) {
    case LamportMsg::Kind::kRequest: {
      queue_.insert(Entry{msg.clock, msg.origin, msg.req_id});
      index_.emplace(std::pair{msg.origin, msg.req_id}, msg.clock);
      const std::uint64_t reply_ts = ++clock_;
      ++sent_replies_;
      send_(from, LamportMsg{LamportMsg::Kind::kReply, reply_ts, self_, msg.req_id});
      break;
    }
    case LamportMsg::Kind::kReply:
      break;
    case LamportMsg::Kind::kRelease: {
      const auto it = index_.find({msg.origin, msg.req_id});
      if (it != index_.end()) {
        queue_.erase(Entry{it->second, msg.origin, msg.req_id});
        index_.erase(it);
      }
      break;
    }
  }
  check_grant();
}

void LamportEngine::check_grant() {
  if (queue_.empty()) return;
  const Entry head = *queue_.begin();
  if (head.origin != self_) return;
  if (granted_ && *granted_ == head) return;  // already announced
  // Entry rule: our request heads the queue AND every peer has been
  // heard from with a timestamp later than the request's.
  for (std::uint32_t peer = 0; peer < n_; ++peer) {
    if (peer == self_) continue;
    if (latest_ts_[peer] <= head.ts) return;
  }
  granted_ = head;
  if (on_acquired_) on_acquired_(head.req_id, head.ts);
}

}  // namespace mobidist::mutex
