#include "mutex/l1.hpp"

#include <deque>
#include <functional>
#include <utility>

namespace mobidist::mutex {

using net::Envelope;
using net::MhId;

/// Per-MH participant: wraps a LamportEngine whose transport is the
/// MH-to-MH relay (FIFO mode). Sends attempted while the host is between
/// cells are queued and flushed on the next join.
class L1Mutex::Agent : public net::MhAgent {
 public:
  Agent(std::uint32_t self, std::uint32_t n, CsMonitor& monitor, MutexOptions opts)
      : engine_(self, n), monitor_(monitor), opts_(opts) {
    engine_.set_send([this](std::uint32_t peer, const LamportMsg& msg) {
      enqueue([this, peer, msg] { send_to_mh(static_cast<MhId>(peer), msg, /*fifo=*/true); });
    });
    engine_.set_on_acquired([this](std::uint64_t req_id, std::uint64_t ts) {
      enter_cs(req_id, ts);
    });
  }

  void local_request() {
    enqueue([this] { engine_.submit(next_req_id_++); });
  }

  void on_message(const Envelope& env) override {
    const auto* msg = net::body_as<LamportMsg>(env);
    if (msg == nullptr) return;
    engine_.on_message(net::index(env.src.mh()), *msg);
  }

  void on_joined_cell(net::MssId) override { flush(); }

  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  /// Run now if the host can transmit, otherwise park until it rejoins.
  void enqueue(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  void flush() {
    // Actions may trigger sends that defer again if the host bounces;
    // swap first so re-deferrals land in a fresh queue.
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

  void enter_cs(std::uint64_t req_id, std::uint64_t ts) {
    // Order key: (timestamp, participant) — the total order Lamport's
    // algorithm serves requests in.
    const std::uint64_t key = (ts << 20) | net::index(self());
    const std::size_t grant = monitor_.enter(self(), key, net().sched().now());
    net().sched().schedule(opts_.cs_hold, [this, req_id, grant] {
      monitor_.exit(grant, net().sched().now());
      enqueue([this, req_id] {
        engine_.release(req_id);
        ++completed_;
      });
    });
  }

  LamportEngine engine_;
  CsMonitor& monitor_;
  MutexOptions opts_;
  std::deque<std::function<void()>> deferred_;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t completed_ = 0;
};

L1Mutex::L1Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts)
    : net_(net), monitor_(monitor) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), "L1");
  const std::uint32_t n = net.num_mh();
  agents_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto agent = std::make_shared<Agent>(i, n, monitor, opts);
    agents_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(net::protocol::kMutexL1, agent);
  }
}

void L1Mutex::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  agents_[net::index(mh)]->local_request();
}

std::uint64_t L1Mutex::completed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& agent : agents_) total += agent->completed();
  return total;
}

}  // namespace mobidist::mutex
