#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "net/network.hpp"

namespace mobidist::mutex {

/// The circulating token of algorithm R1.
struct R1Token {
  std::uint64_t traversal = 0;  ///< completed loops (counted at MH 0)
};

/// Algorithm R1 (§3.1.2): Le Lann's token ring threaded through the N
/// mobile hosts — the paper's second strawman.
///
/// Every hop is MH-to-MH (2*c_wireless + c_search), so one traversal of
/// the ring costs N*(2*c_wireless + c_search) *regardless of how many
/// requests it serves* — even an idle traversal drains every MH's
/// battery and interrupts every dozing MH. A disconnected MH halts the
/// ring (the token parks until it reconnects), which the tests
/// demonstrate.
///
/// The service injects the token at MH 0 and absorbs it after
/// `traversals` complete loops so simulations terminate.
class R1Mutex {
 public:
  R1Mutex(net::Network& net, CsMonitor& monitor, MutexOptions opts = {});

  /// Launch the token for `traversals` loops, starting at MH 0.
  void start_token(std::uint64_t traversals);

  /// Mark `mh` as wanting the CS on the token's next visit.
  void request(net::MhId mh);

  /// CS executions completed so far.
  [[nodiscard]] std::uint64_t completed() const noexcept;
  /// Loops finished so far.
  [[nodiscard]] std::uint64_t traversals_done() const noexcept;
  /// True once the token finished its last traversal and was retired.
  [[nodiscard]] bool token_absorbed() const noexcept { return absorbed_; }

 private:
  class Agent;
  net::Network& net_;
  CsMonitor& monitor_;
  std::vector<std::shared_ptr<Agent>> agents_;
  std::uint64_t target_traversals_ = 0;
  std::uint64_t traversals_done_ = 0;
  bool absorbed_ = false;

  friend class Agent;
};

}  // namespace mobidist::mutex
