#pragma once

#include "sim/time.hpp"

namespace mobidist::mutex {

/// Knobs shared by all mutual-exclusion algorithms.
struct MutexOptions {
  /// Virtual time a MH spends inside the critical section per grant.
  sim::Duration cs_hold = 5;
};

}  // namespace mobidist::mutex
