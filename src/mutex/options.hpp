#pragma once

#include <span>
#include <string_view>

#include "sim/time.hpp"

namespace mobidist::mutex {

/// Knobs shared by all mutual-exclusion algorithms.
struct MutexOptions {
  /// Virtual time a MH spends inside the critical section per grant.
  sim::Duration cs_hold = 5;
};

/// The variant strings the scenario runner's "mutex" workload accepts
/// (exp::run_scenario dispatches on these; unknown strings fail with
/// this list). l1/l2 are the Lamport family, r1/r2/r2p/r2pp the ring
/// family (r1 runs on the MH ring; the ring workload shares these
/// names), pathrev the Naimi–Trehel path-reversal tree.
inline constexpr std::string_view kMutexVariantNames[] = {
    "l1", "l2", "r1", "r2", "r2p", "r2pp", "pathrev",
};

/// The variant strings the "ring" workload accepts (the ring family
/// subset of kMutexVariantNames, with its chase/malicious fixtures).
inline constexpr std::string_view kRingVariantNames[] = {
    "r1", "r2", "r2p", "r2pp",
};

}  // namespace mobidist::mutex
