#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

namespace mobidist::mutex {

/// One message of Lamport's 1978 mutual-exclusion algorithm.
struct LamportMsg {
  /// Message kind: REQUEST / REPLY / RELEASE per the 1978 paper.
  enum class Kind : std::uint8_t { kRequest, kReply, kRelease };
  Kind kind = Kind::kRequest;
  std::uint64_t clock = 0;   ///< sender's logical clock at send time
  std::uint32_t origin = 0;  ///< participant the request/release belongs to
  std::uint64_t req_id = 0;  ///< request tag (kRequest/kRelease); L2 keys MHs by it
};

/// Transport-agnostic implementation of Lamport's timestamp mutual
/// exclusion among n participants with FIFO pairwise channels.
///
/// The same engine runs both L1 (participants = the N mobile hosts,
/// transport = the MH-to-MH relay) and L2 (participants = the M MSSs,
/// transport = the wired mesh). A participant may have several requests
/// outstanding at once — L2 needs this, since one MSS requests on behalf
/// of many local MHs, each tagged with its own req_id.
///
/// Correctness contract (checked by unit tests): requests are granted in
/// strictly increasing (timestamp, origin) order, one at a time
/// system-wide, provided every participant processes every message and
/// channels are FIFO.
class LamportEngine {
 public:
  /// Deliver `msg` to participant `peer`.
  using SendFn = std::function<void(std::uint32_t peer, const LamportMsg& msg)>;
  /// Local request `req_id` (timestamp `ts`) now holds the lock.
  using AcquireFn = std::function<void(std::uint64_t req_id, std::uint64_t ts)>;

  LamportEngine(std::uint32_t self, std::uint32_t n);

  /// Install the transport callback used for every outgoing message.
  void set_send(SendFn send) { send_ = std::move(send); }
  /// Install the callback fired when a local request acquires the lock.
  void set_on_acquired(AcquireFn fn) { on_acquired_ = std::move(fn); }

  /// Submit a local request. Returns the Lamport timestamp assigned —
  /// in L2 this is "the timestamp of hl's request" the paper's
  /// correctness argument relies on. Broadcasts REQUEST to all peers.
  std::uint64_t submit(std::uint64_t req_id);

  /// Release a previously granted (or still pending — the L2 disconnect
  /// path) local request. Broadcasts RELEASE to all peers.
  void release(std::uint64_t req_id);

  /// Deliver a peer's message.
  void on_message(std::uint32_t from, const LamportMsg& msg);

  /// Current Lamport logical clock value.
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }
  /// Entries in the local view of the global request queue.
  [[nodiscard]] std::size_t queue_size() const noexcept { return queue_.size(); }
  /// True while this participant's request `req_id` is still queued.
  [[nodiscard]] bool has_local_request(std::uint64_t req_id) const noexcept {
    return index_.contains({self_, req_id});
  }
  /// REQUEST messages sent by this participant (cost cross-checks).
  [[nodiscard]] std::uint64_t sent_requests() const noexcept { return sent_requests_; }
  /// REPLY messages sent by this participant (cost cross-checks).
  [[nodiscard]] std::uint64_t sent_replies() const noexcept { return sent_replies_; }
  /// RELEASE messages sent by this participant (cost cross-checks).
  [[nodiscard]] std::uint64_t sent_releases() const noexcept { return sent_releases_; }

 private:
  struct Entry {
    std::uint64_t ts;
    std::uint32_t origin;
    std::uint64_t req_id;
    friend auto operator<=>(const Entry&, const Entry&) = default;
  };

  void broadcast(const LamportMsg& msg);
  void check_grant();

  std::uint32_t self_;
  std::uint32_t n_;
  std::uint64_t clock_ = 0;
  std::set<Entry> queue_;
  /// (origin, req_id) -> ts, so releases can find their entry.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> index_;
  /// Highest clock value seen from each peer (self slot unused).
  std::vector<std::uint64_t> latest_ts_;
  /// The local entry currently holding the lock, if any.
  std::optional<Entry> granted_;
  SendFn send_;
  AcquireFn on_acquired_;
  std::uint64_t sent_requests_ = 0;
  std::uint64_t sent_replies_ = 0;
  std::uint64_t sent_releases_ = 0;
};

}  // namespace mobidist::mutex
