#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mobidist::fault {

/// One scheduled MSS outage: the station is unreachable during
/// [at, at + down_for). Algorithm state survives (fail-stop with stable
/// storage); only the network interface dies.
struct MssCrash {
  std::uint32_t mss = 0;
  sim::SimTime at = 0;
  sim::Duration down_for = 0;
};

/// A wired partition between two MSSs: messages on the (a, b) link in
/// either direction are held until `until` while now is in [from, until).
struct CellPartition {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  sim::SimTime from = 0;
  sim::SimTime until = 0;
};

/// Everything that can go wrong in one run, fixed up front so the whole
/// fault schedule is a pure function of (seed, profile).
struct FaultProfile {
  // Wireless hop (both directions share one loss/dup/spike model).
  double wireless_loss = 0.0;       ///< per-frame drop probability
  double wireless_dup = 0.0;        ///< per-delivered-frame duplication probability
  double wireless_reorder = 0.0;    ///< per-frame extra-delay-spike probability
  sim::Duration wireless_spike_max = 8;

  // Fixed network: occasional delay spikes (never loss -- the paper's
  /// wired mesh stays reliable) plus the structural faults below.
  double wired_spike = 0.0;
  sim::Duration wired_spike_max = 16;

  std::vector<MssCrash> crashes;
  std::vector<CellPartition> partitions;

  /// When an MSS crashes, its cell loses coverage: connected MHs notice
  /// the dead beacon and re-home to the next cell through the ordinary
  /// leave/join/handoff path. Disable to model a silent outage instead.
  bool evacuate_on_crash = true;

  // Deterministic unit-test knobs: unconditionally drop the first N
  // wireless frames / duplicate the first N delivered wireless frames,
  // before any probabilistic draw applies.
  std::uint32_t drop_first_wireless = 0;
  std::uint32_t dup_first_wireless = 0;

  // Retransmission timer for the reliable wireless hop:
  // backoff(attempt) = min(rto_base << attempt, rto_cap).
  sim::Duration rto_base = 16;
  sim::Duration rto_cap = 256;

  /// True when the profile can never perturb a run (the no-op profile
  /// used to prove fault-off and fault-free runs are byte-identical).
  [[nodiscard]] bool trivial() const noexcept;
};

/// Seed mixer for the fault plane's private RNG stream. The plane must
/// never draw from the network's rng_ (and must not fork it via
/// Rng::split(), which advances the parent): either would shift the
/// fault-free message schedule, breaking the invariant that a
/// zero-probability profile is a byte-identical no-op.
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t network_seed) noexcept;

/// Deterministic fault injector. Passive: the Network consults it at
/// every wireless frame and wired arrival; all randomness comes from the
/// plane's own stream, all structural faults (crashes, partitions) are
/// pure functions of the profile and the current sim time.
class FaultPlane {
 public:
  FaultPlane(std::uint64_t seed, FaultProfile profile);

  [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }

  // --- per-frame draws (consume the fault stream, in call order) ------------

  /// Should this wireless frame be lost? Counts one frame against the
  /// drop_first_wireless knob before falling back to the probability.
  [[nodiscard]] bool draw_wireless_loss();
  /// Should this delivered wireless frame get a link-layer copy?
  [[nodiscard]] bool draw_wireless_dup();
  /// Extra delay for this wireless frame (0 = no spike).
  [[nodiscard]] sim::Duration draw_wireless_spike();
  /// Extra delay for this wired message (0 = no spike).
  [[nodiscard]] sim::Duration draw_wired_spike();
  /// Latency for a duplicated copy, in [lo, hi] like the primary frame.
  [[nodiscard]] sim::Duration draw_latency(sim::Duration lo, sim::Duration hi);
  /// Transit time for an MH evacuating a crashed cell.
  [[nodiscard]] sim::Duration draw_evacuation_transit();

  // --- structural faults (no draws; schedule + time only) -------------------

  /// Is `mss` inside one of its crash windows at `now`?
  [[nodiscard]] bool crashed(std::uint32_t mss, sim::SimTime now) const noexcept;
  /// Earliest time >= now at which a wired message from `from` may be
  /// delivered at `to` (crash of the destination, or a partition of the
  /// link, pushes delivery to the end of the blocking window). Returns
  /// `now` when the link is clear.
  [[nodiscard]] sim::SimTime wired_release_at(std::uint32_t from, std::uint32_t to,
                                              sim::SimTime now) const noexcept;

  // --- metrics (lazily registered: an inert plane leaves no trace) ----------

  void bind_metrics(obs::Registry& registry) noexcept { registry_ = &registry; }
  void count_loss();        ///< fault.injected_loss
  void count_dup();         ///< fault.injected_dup
  void count_spike();       ///< fault.injected_spike
  void count_crash_drop();  ///< fault.injected_crash_drop
  void count_deferral();    ///< fault.injected_wired_deferral

 private:
  void bump(obs::Counter*& slot, const char* name);

  FaultProfile profile_;
  sim::Rng rng_;
  std::uint64_t frames_seen_ = 0;     ///< drop_first_wireless progress
  std::uint64_t delivered_seen_ = 0;  ///< dup_first_wireless progress
  obs::Registry* registry_ = nullptr;
  obs::Counter* loss_ = nullptr;
  obs::Counter* dup_ = nullptr;
  obs::Counter* spike_ = nullptr;
  obs::Counter* crash_drop_ = nullptr;
  obs::Counter* deferral_ = nullptr;
};

}  // namespace mobidist::fault
