#include "fault/fault_plane.hpp"

#include <algorithm>
#include <utility>

namespace mobidist::fault {

bool FaultProfile::trivial() const noexcept {
  return wireless_loss <= 0.0 && wireless_dup <= 0.0 && wireless_reorder <= 0.0 &&
         wired_spike <= 0.0 && crashes.empty() && partitions.empty() &&
         drop_first_wireless == 0 && dup_first_wireless == 0;
}

std::uint64_t fault_stream_seed(std::uint64_t network_seed) noexcept {
  // Any fixed perturbation works; the constant just keeps the fault
  // stream away from the network stream for identical raw seeds (the
  // Rng constructor's splitmix64 scrambles whatever we feed it).
  constexpr std::uint64_t kFaultStreamSalt = 0xfa171'7f4a5eULL;
  return network_seed ^ kFaultStreamSalt;
}

FaultPlane::FaultPlane(std::uint64_t seed, FaultProfile profile)
    : profile_(std::move(profile)), rng_(seed) {}

bool FaultPlane::draw_wireless_loss() {
  if (frames_seen_ < profile_.drop_first_wireless) {
    ++frames_seen_;
    return true;
  }
  ++frames_seen_;
  return profile_.wireless_loss > 0.0 && rng_.chance(profile_.wireless_loss);
}

bool FaultPlane::draw_wireless_dup() {
  if (delivered_seen_ < profile_.dup_first_wireless) {
    ++delivered_seen_;
    return true;
  }
  ++delivered_seen_;
  return profile_.wireless_dup > 0.0 && rng_.chance(profile_.wireless_dup);
}

sim::Duration FaultPlane::draw_wireless_spike() {
  if (profile_.wireless_reorder <= 0.0 || !rng_.chance(profile_.wireless_reorder)) return 0;
  count_spike();
  return 1 + rng_.below(profile_.wireless_spike_max);
}

sim::Duration FaultPlane::draw_wired_spike() {
  if (profile_.wired_spike <= 0.0 || !rng_.chance(profile_.wired_spike)) return 0;
  count_spike();
  return 1 + rng_.below(profile_.wired_spike_max);
}

sim::Duration FaultPlane::draw_latency(sim::Duration lo, sim::Duration hi) {
  if (hi <= lo) return lo;
  return lo + rng_.below(hi - lo + 1);
}

sim::Duration FaultPlane::draw_evacuation_transit() { return 1 + rng_.below(4); }

bool FaultPlane::crashed(std::uint32_t mss, sim::SimTime now) const noexcept {
  for (const auto& crash : profile_.crashes) {
    if (crash.mss == mss && now >= crash.at && now < crash.at + crash.down_for) return true;
  }
  return false;
}

sim::SimTime FaultPlane::wired_release_at(std::uint32_t from, std::uint32_t to,
                                          sim::SimTime now) const noexcept {
  sim::SimTime release = now;
  for (const auto& crash : profile_.crashes) {
    if (crash.mss != to) continue;
    if (now >= crash.at && now < crash.at + crash.down_for) {
      release = std::max(release, crash.at + crash.down_for);
    }
  }
  for (const auto& part : profile_.partitions) {
    const bool on_link = (part.a == from && part.b == to) || (part.a == to && part.b == from);
    if (on_link && now >= part.from && now < part.until) {
      release = std::max(release, part.until);
    }
  }
  return release;
}

void FaultPlane::bump(obs::Counter*& slot, const char* name) {
  if (registry_ == nullptr) return;
  if (slot == nullptr) slot = &registry_->counter(name);
  ++*slot;
}

void FaultPlane::count_loss() { bump(loss_, "fault.injected_loss"); }
void FaultPlane::count_dup() { bump(dup_, "fault.injected_dup"); }
void FaultPlane::count_spike() { bump(spike_, "fault.injected_spike"); }
void FaultPlane::count_crash_drop() { bump(crash_drop_, "fault.injected_crash_drop"); }
void FaultPlane::count_deferral() { bump(deferral_, "fault.injected_wired_deferral"); }

}  // namespace mobidist::fault
