#include "core/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>

namespace mobidist::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
bool looks_numeric(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != 'x' && c != 'e' && c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      os << "  ";
      if (looks_numeric(cells[i])) {
        os << std::string(pad, ' ') << cells[i];
      } else {
        os << cells[i] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string num(double value) {
  if (std::abs(value - std::round(value)) < 1e-9 && std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(std::llround(value));
    return os.str();
  }
  std::ostringstream os;
  os.precision(value < 1.0 ? 3 : 4);
  os << value;
  return os.str();
}

std::string ratio(double value) { return "x" + num(value); }

std::string summarize(const cost::CostLedger& ledger, const cost::CostParams& params) {
  std::ostringstream os;
  os << "fixed=" << ledger.fixed_msgs() << " wireless=" << ledger.wireless_msgs()
     << " searches=" << ledger.searches() << " total=" << num(ledger.total(params));
  return os.str();
}

}  // namespace mobidist::core
