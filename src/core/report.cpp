#include "core/report.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/binlog.hpp"
#include "obs/checkers.hpp"
#include "obs/events.hpp"

namespace mobidist::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
bool looks_numeric(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' &&
        c != '+' && c != 'x' && c != 'e' && c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      os << "  ";
      if (looks_numeric(cells[i])) {
        os << std::string(pad, ' ') << cells[i];
      } else {
        os << cells[i] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string num(double value) {
  if (std::abs(value - std::round(value)) < 1e-9 && std::abs(value) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(std::llround(value));
    return os.str();
  }
  std::ostringstream os;
  os.precision(value < 1.0 ? 3 : 4);
  os << value;
  return os.str();
}

std::string ratio(double value) { return "x" + num(value); }

std::string summarize(const cost::CostLedger& ledger, const cost::CostParams& params) {
  std::ostringstream os;
  os << "fixed=" << ledger.fixed_msgs() << " wireless=" << ledger.wireless_msgs()
     << " searches=" << ledger.searches() << " total=" << num(ledger.total(params));
  return os.str();
}

// --- JSON bench artifacts ---------------------------------------------------

std::string resolve_env_dir(const char* var, std::string_view fallback) {
  const char* value = std::getenv(var);
  std::string dir = (value != nullptr && *value != '\0') ? std::string(value)
                                                         : std::string(fallback);
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir;
}

TraceFormat resolve_trace_format() {
  const char* value = std::getenv("MOBIDIST_TRACE_FORMAT");
  const std::string_view text = (value != nullptr) ? value : "";
  if (text.empty() || text == "jsonl") return TraceFormat::kJsonl;
  if (text == "binlog") return TraceFormat::kBinlog;
  throw std::runtime_error("MOBIDIST_TRACE_FORMAT must be \"jsonl\" or \"binlog\", got \"" +
                           std::string(text) + '"');
}

void write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  out.flush();
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest round-trip double rendering via std::to_chars: identical
/// values are always byte-identical text, independent of the process
/// locale (snprintf "%.6f" honoured LC_NUMERIC's decimal separator and
/// truncated to six fractional digits). core cannot depend on exp, so
/// this mirrors exp::json::format_double rather than calling it.
std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) return "0";  // cannot happen with this buffer size
  return std::string(buf, ptr);
}

std::string quoted(std::string_view text) { return '"' + json_escape(text) + '"'; }

const char* search_mode_name(net::SearchMode mode) {
  return mode == net::SearchMode::kOracle ? "oracle" : "broadcast";
}

const char* placement_name(net::InitialPlacement placement) {
  switch (placement) {
    case net::InitialPlacement::kRoundRobin: return "round_robin";
    case net::InitialPlacement::kRandom: return "random";
    case net::InitialPlacement::kAllInCell0: return "all_in_cell0";
  }
  return "unknown";
}

std::string config_json(const net::NetConfig& cfg) {
  std::ostringstream os;
  const auto& lat = cfg.latency;
  os << "{\"num_mss\":" << cfg.num_mss << ",\"num_mh\":" << cfg.num_mh
     << ",\"seed\":" << cfg.seed << ",\"search\":" << quoted(search_mode_name(cfg.search))
     << ",\"placement\":" << quoted(placement_name(cfg.placement))
     << ",\"charge_search_for_local\":" << (cfg.charge_search_for_local ? "true" : "false")
     << ",\"latency\":{\"wired_min\":" << lat.wired_min << ",\"wired_max\":" << lat.wired_max
     << ",\"wireless_min\":" << lat.wireless_min << ",\"wireless_max\":" << lat.wireless_max
     << ",\"search_min\":" << lat.search_min << ",\"search_max\":" << lat.search_max
     << ",\"broadcast_retry\":" << lat.broadcast_retry << "}}";
  return os.str();
}

std::string ledger_json(const cost::CostLedger& ledger, const cost::CostParams& params) {
  std::ostringstream os;
  os << "{\"fixed_msgs\":" << ledger.fixed_msgs()
     << ",\"wireless_msgs\":" << ledger.wireless_msgs()
     << ",\"searches\":" << ledger.searches() << ",\"wireless_tx\":" << ledger.wireless_tx()
     << ",\"wireless_rx\":" << ledger.wireless_rx()
     << ",\"total_cost\":" << json_double(ledger.total(params))
     << ",\"total_energy\":" << json_double(ledger.total_energy(params)) << "}";
  return os.str();
}

std::string cost_params_json(const cost::CostParams& params) {
  std::ostringstream os;
  os << "{\"c_fixed\":" << json_double(params.c_fixed)
     << ",\"c_wireless\":" << json_double(params.c_wireless)
     << ",\"c_search\":" << json_double(params.c_search)
     << ",\"energy_tx\":" << json_double(params.energy_tx)
     << ",\"energy_rx\":" << json_double(params.energy_rx) << "}";
  return os.str();
}

}  // namespace

std::string metrics_json(const obs::Registry& registry) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) os << ',';
    first = false;
    os << quoted(name) << ':' << counter.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) os << ',';
    first = false;
    os << quoted(name) << ':' << gauge.value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : registry.histograms()) {
    if (!first) os << ',';
    first = false;
    os << quoted(name) << ":{\"bounds\":[";
    const auto& bounds = hist.bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i != 0) os << ',';
      os << bounds[i];
    }
    os << "],\"counts\":[";
    const auto counts = hist.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) os << ',';
      os << counts[i];
    }
    os << "],\"count\":" << hist.count() << ",\"sum\":" << hist.sum();
    if (hist.count() != 0) {
      os << ",\"min\":" << hist.min() << ",\"max\":" << hist.max();
    }
    os << '}';
  }
  os << "}}";
  return os.str();
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void BenchReport::add_run(std::string label, const net::Network& net,
                          const cost::CostParams& params) {
  // Every bench run is a correctness oracle: the paper's safety
  // properties must hold on the event stream it just produced.
  const auto failures = obs::check_all(net.events());
  if (!failures.empty()) {
    std::string what = "BenchReport: trace checkers failed for run \"" + label + "\"";
    const std::size_t shown = std::min<std::size_t>(failures.size(), 5);
    for (std::size_t i = 0; i < shown; ++i) {
      what += "\n  " + obs::to_string(failures[i]);
    }
    if (failures.size() > shown) {
      what += "\n  ... and " + std::to_string(failures.size() - shown) + " more";
    }
    throw std::runtime_error(what);
  }

  const auto& stream = net.events();
  const auto binlog = obs::binlog_stats(stream);
  binlog_emitted_ += binlog.emitted;
  binlog_dropped_ += binlog.dropped;
  binlog_bytes_ += binlog.bytes;
  std::ostringstream os;
  os << "{\"label\":" << quoted(label) << ",\"config\":" << config_json(net.config())
     << ",\"cost_params\":" << cost_params_json(params)
     << ",\"events\":" << net.sched().fired()
     << ",\"event_stream\":{\"emitted\":" << stream.emitted()
     << ",\"retained\":" << stream.retained() << ",\"dropped\":" << stream.dropped()
     << "},\"text_trace\":{\"retained\":" << net.trace().records().size()
     << ",\"dropped\":" << net.trace().dropped() << "}"
     << ",\"ledger\":" << ledger_json(net.ledger(), params)
     << ",\"metrics\":" << metrics_json(net.metrics()) << "}";
  total_events_ += net.sched().fired();

  // Optional per-run trace artifacts, gated on MOBIDIST_TRACE_DIR (unset
  // = disabled; set-but-unwritable = loud failure, like the bench dir).
  const std::string trace_dir = resolve_env_dir("MOBIDIST_TRACE_DIR", "");
  if (!trace_dir.empty()) {
    std::string slug = label;
    for (char& c : slug) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
    }
    const std::string base =
        trace_dir + "TRACE_" + name_ + "_" + std::to_string(runs_.size()) + "_" + slug;
    if (resolve_trace_format() == TraceFormat::kBinlog) {
      // Compact binary artifact; tools/trace_dump decodes it back to the
      // exact JSONL (and Perfetto view) the branch below writes.
      write_text_file(base + ".binlog", obs::serialize_binlog(stream));
    } else {
      write_text_file(base + ".jsonl", obs::to_jsonl(stream));
      write_text_file(base + ".trace.json", obs::to_chrome_trace(stream));
    }
  }

  runs_.push_back(os.str());
  seeds_.push_back(net.config().seed);
}

void BenchReport::note(std::string key, std::string value) {
  notes_.emplace_back(std::move(key), std::move(value));
}

std::string BenchReport::body_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << kBenchSchemaVersion << ",\"name\":" << quoted(name_)
     << ",\"meta\":{\"runs\":" << runs_.size() << ",\"seeds\":[";
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    if (i != 0) os << ',';
    os << seeds_[i];
  }
  os << "]},\"notes\":{";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i != 0) os << ',';
    os << quoted(notes_[i].first) << ':' << quoted(notes_[i].second);
  }
  os << "},\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (i != 0) os << ',';
    os << runs_[i];
  }
  os << ']';
  return os.str();
}

std::string BenchReport::deterministic_json() const { return body_json() + "}"; }

std::string BenchReport::json() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(elapsed).count();
  const double events_per_sec =
      ms > 0.0 ? static_cast<double>(total_events_) / (ms / 1000.0) : 0.0;
  const char* sha = std::getenv("MOBIDIST_GIT_SHA");
  std::ostringstream os;
  os << body_json() << ",\"timing\":{\"wall_clock_ms\":" << json_double(ms)
     << ",\"events_per_sec\":" << json_double(events_per_sec) << "}"
     << ",\"provenance\":{\"git_sha\":" << quoted(sha != nullptr ? sha : "")
     << ",\"binlog\":{\"emitted\":" << binlog_emitted_ << ",\"dropped\":" << binlog_dropped_
     << ",\"bytes\":" << binlog_bytes_ << "}}}";
  return os.str();
}

std::string BenchReport::write() const {
  const std::string path =
      resolve_env_dir("MOBIDIST_BENCH_DIR", ".") + "BENCH_" + name_ + ".json";
  try {
    write_text_file(path, json() + '\n');
  } catch (const std::runtime_error& err) {
    throw std::runtime_error("BenchReport: " + std::string(err.what()));
  }
  return path;
}

}  // namespace mobidist::core
