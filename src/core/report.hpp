#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cost/cost_model.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mobidist::core {

/// Fixed-width text table used by the experiment benches to print the
/// paper-formula vs. simulated-measurement comparisons.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Render with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly ("12.5", "3", "0.042").
[[nodiscard]] std::string num(double value);
/// Format a ratio as "x1.37".
[[nodiscard]] std::string ratio(double value);

/// One-line summary of a ledger under given params:
/// "fixed=12 wireless=6 searches=3 total=96".
[[nodiscard]] std::string summarize(const cost::CostLedger& ledger,
                                    const cost::CostParams& params);

// --- JSON bench artifacts ---------------------------------------------------

/// BENCH_*.json layout version. Version 1 was the unversioned layout
/// (no "schema_version" / "meta" members); version 2 adds both.
/// Artifact consumers (exp::compare_to_baseline and external tooling)
/// refuse to compare artifacts across versions.
inline constexpr int kBenchSchemaVersion = 2;

/// Escape `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Resolve an artifact directory from environment variable `var`,
/// normalized to end in '/'. Unset or empty falls back to `fallback`
/// (returned unnormalized when itself empty, so callers can treat "" as
/// "feature disabled"). Shared by MOBIDIST_BENCH_DIR and
/// MOBIDIST_TRACE_DIR so the two cannot drift semantically.
[[nodiscard]] std::string resolve_env_dir(const char* var, std::string_view fallback);

/// On-disk format for TRACE_* artifacts when MOBIDIST_TRACE_DIR is set.
enum class TraceFormat {
  kJsonl,   ///< TRACE_*.jsonl + Perfetto .trace.json (the default)
  kBinlog,  ///< compact TRACE_*.binlog; decode with tools/trace_dump
};

/// Read MOBIDIST_TRACE_FORMAT: unset/"" / "jsonl" -> kJsonl, "binlog"
/// -> kBinlog; anything else throws (a typo must not silently disable
/// trace artifacts). Shared by BenchReport and the experiment runner.
[[nodiscard]] TraceFormat resolve_trace_format();

/// Write `content` to `path`, throwing std::runtime_error on any
/// failure (missing directory, unwritable file) so misconfigured
/// artifact dirs fail loudly instead of silently dropping output.
void write_text_file(const std::string& path, std::string_view content);

/// Serialize every metric in `registry` as a JSON object with
/// "counters" / "gauges" / "histograms" sections, iterated in name order
/// so identical registries produce byte-identical text.
[[nodiscard]] std::string metrics_json(const obs::Registry& registry);

/// Collects per-run snapshots from a bench binary and writes the
/// `BENCH_<name>.json` artifact.
///
/// Usage: construct one per bench, call add_run() for each simulated
/// system *while its Network is still alive* (the snapshot is serialized
/// immediately), optionally note() free-form key/values, then write().
///
/// Everything except the "timing" object is a pure function of the
/// simulation: two runs of the same bench with the same seeds produce
/// byte-identical deterministic_json(). Wall-clock derived numbers live
/// only under "timing", which json()/write() append.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Snapshot one simulated system: config, seed, cost-ledger totals
  /// under `params`, scheduler events fired, the full metric registry,
  /// and event-stream / text-trace retention counts.
  ///
  /// Also (a) runs every obs checker over the system's event stream and
  /// throws std::runtime_error on a violation — each bench doubles as a
  /// correctness oracle — and (b) when MOBIDIST_TRACE_DIR is set, writes
  /// the stream as TRACE_<bench>_<n>_<label>.jsonl plus a
  /// Perfetto-loadable .trace.json next to it (same fail-loudly
  /// semantics as MOBIDIST_BENCH_DIR).
  void add_run(std::string label, const net::Network& net, const cost::CostParams& params);

  /// Attach a free-form note (emitted under "notes" in insertion order).
  void note(std::string key, std::string value);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t runs() const noexcept { return runs_.size(); }

  /// The seed-determined portion of the artifact (no "timing" object).
  [[nodiscard]] std::string deterministic_json() const;

  /// Full artifact: deterministic body plus "timing" {wall_clock_ms,
  /// events_per_sec} measured since construction.
  [[nodiscard]] std::string json() const;

  /// Write the artifact to `$MOBIDIST_BENCH_DIR/BENCH_<name>.json`
  /// (current directory if the variable is unset) and return the path.
  /// Throws std::runtime_error if the file cannot be written (e.g. the
  /// directory does not exist).
  std::string write() const;

 private:
  [[nodiscard]] std::string body_json() const;

  std::string name_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::string> runs_;        // pre-serialized run objects
  std::vector<std::uint64_t> seeds_;     // cfg.seed of each run, in order
  std::uint64_t total_events_ = 0;
  // Binary-telemetry sink totals across runs, surfaced in provenance.
  std::uint64_t binlog_emitted_ = 0;
  std::uint64_t binlog_dropped_ = 0;
  std::uint64_t binlog_bytes_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mobidist::core
