#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"

namespace mobidist::core {

/// Fixed-width text table used by the experiment benches to print the
/// paper-formula vs. simulated-measurement comparisons.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);

  /// Render with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly ("12.5", "3", "0.042").
[[nodiscard]] std::string num(double value);
/// Format a ratio as "x1.37".
[[nodiscard]] std::string ratio(double value);

/// One-line summary of a ledger under given params:
/// "fixed=12 wireless=6 searches=3 total=96".
[[nodiscard]] std::string summarize(const cost::CostLedger& ledger,
                                    const cost::CostParams& params);

}  // namespace mobidist::core
