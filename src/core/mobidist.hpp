#pragma once

/// Umbrella header: the full public API of the mobidist library — a
/// faithful C++ implementation of "Structuring Distributed Algorithms
/// for Mobile Hosts" (Badrinath, Acharya, Imielinski; ICDCS 1994).
///
/// Layers, bottom-up:
///   sim/      deterministic discrete-event kernel
///   cost/     the paper's cost model (c_fixed / c_wireless / c_search)
///   net/      the §2 system model: MSSs, MHs, cells, handoff, search
///   mobility/ background mobility processes
///   workload/ request and message schedules
///   obs/      metric registry (counters, gauges, histograms)
///   mutex/    §3: L1, L2, R1, R2, R2', R2''
///   group/    §4: pure search, always inform, location view
///   proxy/    §5: proxy scopes/obligations + Lamport-over-proxies
///   analysis/ the paper's closed-form cost expressions

#include "analysis/formulas.hpp"
#include "core/report.hpp"
#include "cost/cost_model.hpp"
#include "group/always_inform.hpp"
#include "group/group.hpp"
#include "group/location_view.hpp"
#include "group/pure_search.hpp"
#include "mobility/mobility_model.hpp"
#include "mutex/l1.hpp"
#include "mutex/l2.hpp"
#include "mutex/monitor.hpp"
#include "mutex/r1.hpp"
#include "mutex/r2.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "proxy/proxy.hpp"
#include "proxy/static_algorithm.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "workload/workload.hpp"

namespace mobidist {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace mobidist
