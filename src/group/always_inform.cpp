#include "group/always_inform.hpp"

#include <any>
#include <deque>
#include <stdexcept>
#include <functional>
#include <map>

namespace mobidist::group {

using net::Envelope;
using net::MhId;
using net::MssId;

namespace {

struct GroupMsg {
  std::uint64_t msg_id = 0;
  MhId sender = net::kInvalidMh;
};

struct LocUpdate {
  MhId mover = net::kInvalidMh;
  MssId new_mss = net::kInvalidMss;
};

/// Source-routed unit: "send to dst_mh via dst_mss" (the LD(G) lookup
/// already happened at the sender).
struct Directed {
  MhId dst_mh = net::kInvalidMh;
  MssId dst_mss = net::kInvalidMss;
  net::Body inner;  // GroupMsg or LocUpdate
};

}  // namespace

/// Member-side: holds LD(G), sends group messages and move updates.
class AlwaysInformGroup::HostAgent : public net::MhAgent {
 public:
  explicit HostAgent(AlwaysInformGroup& owner) : owner_(owner) {}

  void on_start() override {
    // Seed the directory from the initial placement (setup knowledge,
    // like the membership list itself).
    for (const auto member : owner_.group_.members) {
      directory_[member] = net().mh(member).last_mss();
    }
  }

  void send_group(std::uint64_t msg_id) {
    run_when_connected([this, msg_id] { fan_out(net::Body(GroupMsg{msg_id, self()})); });
  }

  void on_message(const Envelope& env) override {
    if (const auto* msg = net::body_as<GroupMsg>(env)) {
      owner_.monitor_.delivered(msg->msg_id, self());
      return;
    }
    if (const auto* update = net::body_as<LocUpdate>(env)) {
      directory_[update->mover] = update->new_mss;
      return;
    }
  }

  void on_joined_cell(MssId mss) override {
    directory_[self()] = mss;
    // "After a move, a MH sends a location update message to the current
    // location of each group member."
    ++owner_.loc_updates_;
    net().emit({.kind = obs::EventKind::kLocationUpdate,
                .entity = net::entity_of(self()),
                .peer = net::entity_of(mss),
                .detail = "always_inform"});
    fan_out(net::Body(LocUpdate{self(), mss}));
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  /// One Directed uplink per other member: 2*c_wireless + c_fixed each.
  void fan_out(const net::Body& inner) {
    for (const auto member : owner_.group_.members) {
      if (member == self()) continue;
      send_uplink(Directed{member, directory_[member], inner});
    }
  }

  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  AlwaysInformGroup& owner_;
  std::map<MhId, MssId> directory_;  ///< LD(G)
  std::deque<std::function<void()>> deferred_;
};

/// MSS-side: pure forwarding of Directed units plus the footnote-1 chase
/// when the directory entry was stale.
class AlwaysInformGroup::StationAgent : public net::MssAgent {
 public:
  explicit StationAgent(AlwaysInformGroup& owner) : owner_(owner) {}

  void on_message(const Envelope& env) override {
    const auto* directed = net::body_as<Directed>(env);
    if (directed == nullptr) return;
    if (directed->dst_mss != self()) {
      // First leg: relay over the fixed network to the recorded MSS.
      send_wired(directed->dst_mss, *directed);
      return;
    }
    // Final leg: one wireless hop. Stale entries fail over to a chase.
    send_local(directed->dst_mh, directed->inner);
  }

  void on_local_send_failed(MhId mh, const net::Body& body) override {
    ++owner_.stale_chases_;
    send_to_mh(mh, body, net::SendPolicy::kEventualDelivery);
  }

 private:
  AlwaysInformGroup& owner_;
};

AlwaysInformGroup::AlwaysInformGroup(net::Network& net, Group group, net::ProtocolId proto)
    : net_(net),
      group_(std::move(group)),
      loc_updates_(net.metrics().counter("group.always_inform.loc_updates")),
      stale_chases_(net.metrics().counter("group.always_inform.stale_chases")) {
  for (std::uint32_t i = 0; i < net.num_mss(); ++i) {
    net.mss(static_cast<MssId>(i))
        .register_agent(proto, std::make_shared<StationAgent>(*this));
  }
  host_agents_.resize(net.num_mh());
  for (const auto member : group_.members) {
    auto agent = std::make_shared<HostAgent>(*this);
    host_agents_[net::index(member)] = agent;
    net.mh(member).register_agent(proto, agent);
  }
}

std::uint64_t AlwaysInformGroup::send_group_message(MhId sender) {
  if (!group_.contains(sender)) {
    throw std::invalid_argument("AlwaysInformGroup: sender is not a member");
  }
  const std::uint64_t msg_id = next_msg_++;
  monitor_.sent(msg_id, sender);
  host_agents_[net::index(sender)]->send_group(msg_id);
  return msg_id;
}

}  // namespace mobidist::group
