#include "group/pure_search.hpp"

#include <deque>
#include <stdexcept>
#include <functional>

namespace mobidist::group {

using net::Envelope;
using net::MhId;

namespace {
/// The group payload: id + original sender (dedup key and attribution).
struct GroupMsg {
  std::uint64_t msg_id = 0;
  MhId sender = net::kInvalidMh;
};
}  // namespace

class PureSearchGroup::Agent : public net::MhAgent {
 public:
  Agent(PureSearchGroup& owner) : owner_(owner) {}

  void send(std::uint64_t msg_id) {
    run_when_connected([this, msg_id] {
      for (const auto member : owner_.group_.members) {
        if (member == self()) continue;
        send_to_mh(member, GroupMsg{msg_id, self()}, /*fifo=*/false);
      }
    });
  }

  void on_message(const Envelope& env) override {
    const auto* msg = net::body_as<GroupMsg>(env);
    if (msg == nullptr) return;
    owner_.monitor_.delivered(msg->msg_id, self());
  }

  void on_joined_cell(net::MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  PureSearchGroup& owner_;
  std::deque<std::function<void()>> deferred_;
};

PureSearchGroup::PureSearchGroup(net::Network& net, Group group, net::ProtocolId proto)
    : net_(net),
      group_(std::move(group)),
      group_msgs_(net.metrics().counter("group.pure_search.group_msgs")) {
  agents_.resize(net.num_mh());
  for (const auto member : group_.members) {
    auto agent = std::make_shared<Agent>(*this);
    agents_[net::index(member)] = agent;
    net.mh(member).register_agent(proto, agent);
  }
}

std::uint64_t PureSearchGroup::send_group_message(MhId sender) {
  if (!group_.contains(sender)) {
    throw std::invalid_argument("PureSearchGroup: sender is not a member");
  }
  const std::uint64_t msg_id = next_msg_++;
  ++group_msgs_;
  monitor_.sent(msg_id, sender);
  agents_[net::index(sender)]->send(msg_id);
  return msg_id;
}

}  // namespace mobidist::group
