#include "group/location_view.hpp"

#include <any>
#include <deque>
#include <stdexcept>
#include <map>
#include <functional>

namespace mobidist::group {

using net::Envelope;
using net::MhId;
using net::MssId;

namespace {

struct GroupMsg {
  std::uint64_t msg_id = 0;
  MhId sender = net::kInvalidMh;
};

/// Member uplink: please multicast this to the group.
struct LvSend {
  GroupMsg msg;
};

/// MSS-to-MSS data fan-out along the view. `view_version` stamps the
/// sender's replica version so recipients can tell whether the sender
/// already knew about recent view changes (drives the chase logic for
/// members that departed to a freshly added cell).
struct LvData {
  GroupMsg msg;
  std::uint64_t view_version = 0;
};

/// New MSS M -> previous MSS M': member `mh` now lives at `new_mss`.
/// `move_seq` is the MH's monotone join counter, used to order the
/// resulting view changes per member.
struct LvMemberMoved {
  MhId mh = net::kInvalidMh;
  MssId new_mss = net::kInvalidMss;
  std::uint64_t move_seq = 0;
};

/// MSS -> coordinator: view-change request. Each MSS reports only about
/// *itself*, based on its ground-truth local member count: "add me" when
/// its first member arrives, "delete me" when its last member leaves.
/// Because one cell's adds and dels travel a single FIFO channel to the
/// coordinator, they apply in true order — which is what makes the view
/// converge under concurrent moves by different MHs through the same
/// cell (a decision based on replicated view copies cannot, as two
/// causally unrelated changes race).
struct LvViewChange {
  MssId add = net::kInvalidMss;
  MssId del = net::kInvalidMss;
  /// For deletes: the new cells of every member that recently departed
  /// the deleted cell and whose add this cell has not yet seen applied.
  /// The coordinator holds the delete until each of those adds has been
  /// applied *at some version* (each is applied or in flight, since a
  /// cell that gains its first member always reports itself). Because
  /// replicas apply updates in version order, any view that contains
  /// this delete then also contains those adds — so a message fanned out
  /// on any view prefix either reaches a departed member's new cell
  /// directly or reaches this cell, whose departure records chase it.
  std::vector<MssId> after_adds;
};

/// Coordinator -> newly added MSS: the full latest view.
struct LvFullView {
  std::uint64_t version = 0;
  std::vector<MssId> view;
};

/// Coordinator -> existing view members: incremental update.
struct LvDelta {
  std::uint64_t version = 0;
  MssId add = net::kInvalidMss;
  MssId del = net::kInvalidMss;
};

/// View-less MSS -> coordinator: I host a member but have no copy
/// (races around reconnects); coordinator answers with LvFullView.
struct LvViewRequest {
  MssId from = net::kInvalidMss;
};

}  // namespace

class LocationViewGroup::StationAgent : public net::MssAgent {
 public:
  StationAgent(LocationViewGroup& owner, bool is_coordinator)
      : owner_(owner), is_coordinator_(is_coordinator) {}

  // Setup (before start): direct seeding from the initial placement.
  void seed_local(MhId member) { local_members_.insert(member); }
  void seed_view(const std::set<MssId>& view) {
    view_ = view;
    has_view_ = true;
  }
  void seed_master(const std::set<MssId>& view) {
    master_ = view;
    ever_added_ = view;
  }

  [[nodiscard]] const std::set<MssId>& master() const noexcept { return master_; }

  void on_message(const Envelope& env) override {
    if (const auto* send = net::body_as<LvSend>(env)) return handle_send(send->msg);
    if (const auto* data = net::body_as<LvData>(env)) {
      return deliver_local(data->msg, data->view_version);
    }
    if (const auto* moved = net::body_as<LvMemberMoved>(env)) return handle_moved(*moved);
    if (const auto* change = net::body_as<LvViewChange>(env)) return handle_change(*change);
    if (const auto* full = net::body_as<LvFullView>(env)) return handle_full(*full);
    if (const auto* delta = net::body_as<LvDelta>(env)) return handle_delta(*delta);
    if (const auto* request = net::body_as<LvViewRequest>(env)) {
      // Coordinator: answer a view-less MSS with the latest copy.
      send_wired(request->from, LvFullView{version_, as_vector(master_)});
      return;
    }
  }

  void on_mh_joined(MhId mh, MssId prev) override {
    if (!owner_.group_.contains(mh)) return;
    net().emit({.kind = obs::EventKind::kLocationUpdate,
                .entity = net::entity_of(mh),
                .peer = net::entity_of(self()),
                .detail = "location_view"});
    const bool was_empty = local_members_.empty();
    local_members_.insert(mh);
    member_arrival_seq_[mh] = net().mh(mh).joins_completed();
    if (was_empty) {
      // First member here: by ground truth this cell must be in LV(G).
      // (Idempotent at the coordinator if we are already listed.)
      send_wired(owner_.coordinator_, LvViewChange{self(), net::kInvalidMss, {}});
    }
    if (prev != net::kInvalidMss && prev != self()) {
      // "M requests M' to notify the group coordinator": M' erases the
      // member and reports its own emptiness to the coordinator.
      send_wired(prev, LvMemberMoved{mh, self(), net().mh(mh).joins_completed()});
    }
  }

  /// The substrate cleared this cell's "disconnected" flag for `mh`
  /// because it reconnected elsewhere (possibly without supplying this
  /// cell's id): drop it from the member bookkeeping.
  void on_disconnected_mh_migrated(MhId mh, MssId new_mss) override {
    if (!owner_.group_.contains(mh)) return;
    forget_member(mh, new_mss);
  }

  // A disconnected member stays "located" here (its flag lives in this
  // cell), so LV(G) is untouched — the paper's disconnection story.
  void on_mh_disconnected(MhId /*mh*/) override {}

  void on_local_send_failed(MhId mh, const net::Body& body) override {
    // The member moved while the message was in flight (the paper
    // assumes this away; we chase instead of dropping).
    ++owner_.chases_;
    send_to_mh(mh, body, net::SendPolicy::kEventualDelivery);
  }

  [[nodiscard]] bool has_view() const noexcept { return has_view_; }
  [[nodiscard]] const std::set<MssId>& view() const noexcept { return view_; }
  [[nodiscard]] const std::set<MhId>& local_members() const noexcept {
    return local_members_;
  }

 private:
  static std::vector<MssId> as_vector(const std::set<MssId>& view) {
    return {view.begin(), view.end()};
  }

  void handle_send(const GroupMsg& msg) {
    if (!has_view_) {
      // Our add is still in flight; queue and ask for the view.
      pending_.push_back(msg);
      if (!view_requested_) {
        view_requested_ = true;
        send_wired(owner_.coordinator_, LvViewRequest{self()});
      }
      return;
    }
    for (const auto mss : view_) {
      if (mss == self()) continue;
      send_wired(mss, LvData{msg, version_seen_});
    }
    deliver_local(msg, version_seen_);
  }

  void deliver_local(const GroupMsg& msg, std::uint64_t sender_version) {
    for (const auto member : local_members_) {
      if (member == msg.sender) continue;
      send_local(member, msg);
    }
    // Forward to members that recently departed towards a cell the data
    // sender may not have had in its view yet: chase when the change has
    // not been confirmed here, or the sender's view predates it.
    // Duplicates are suppressed at the member.
    for (const auto& departure : departed_) {
      if (departure.mh == msg.sender) continue;
      if (departure.confirmed_version != 0 &&
          sender_version >= departure.confirmed_version) {
        continue;  // the sender's view already covered the new cell
      }
      ++owner_.chases_;
      send_to_mh(departure.mh, msg, net::SendPolicy::kEventualDelivery);
    }
  }

  void handle_moved(const LvMemberMoved& moved) {
    // A rapid out-and-back bounce can deliver this departure notice
    // *after* the member has already re-arrived here; acting on it would
    // evict a live member. Ignore departures older than the latest
    // arrival we have seen.
    if (const auto it = member_arrival_seq_.find(moved.mh);
        it != member_arrival_seq_.end() && moved.move_seq <= it->second) {
      return;
    }
    forget_member(moved.mh, moved.new_mss);
  }

  /// Shared departure bookkeeping: erase the member, keep a forwarding
  /// record while stale-view senders may still address us, and report
  /// our own emptiness to the coordinator (ground truth).
  void forget_member(MhId mh, MssId new_mss) {
    local_members_.erase(mh);
    // Keep a forwarding record unconditionally: our own replica may be
    // staler than a future sender's, so "the new cell is in my view" is
    // not evidence the sender will reach it. If we already see the new
    // cell, stamp the record with our version so senders at least as
    // current skip the chase.
    prune_departures();
    const std::uint64_t confirmed =
        (has_view_ && view_.contains(new_mss)) ? std::max<std::uint64_t>(1, version_seen_)
                                               : 0;
    departed_.push_back(Departure{mh, new_mss, net().sched().now(), confirmed});
    if (local_members_.empty() && has_view_) {
      // We vacated: drop the copy now; the coordinator stops sending us
      // updates once it processes the request. The delete is ordered
      // after every unconfirmed departure's add (see
      // LvViewChange::after_adds).
      has_view_ = false;
      view_.clear();
      LvViewChange change{net::kInvalidMss, self(), {}};
      for (const auto& departure : departed_) {
        if (departure.confirmed_version == 0) change.after_adds.push_back(departure.new_mss);
      }
      send_wired(owner_.coordinator_, std::move(change));
    }
  }

  void prune_departures() {
    const auto now = net().sched().now();
    std::erase_if(departed_, [now](const Departure& departure) {
      return now - departure.at > kDepartureGrace;
    });
  }

  void handle_change(const LvViewChange& change) {
    for (const auto dependency : change.after_adds) {
      if (!ever_added_.contains(dependency)) {
        // A departed member's new cell has not registered yet; its add
        // is in flight. Hold the delete so no distributed view prefix
        // drops the old cell before gaining the new one.
        waiting_for_add_[dependency].push_back(change);
        return;
      }
    }
    bool changed = false;
    if (change.add != net::kInvalidMss) {
      ever_added_.insert(change.add);
      if (master_.insert(change.add).second) changed = true;
    }
    if (change.del != net::kInvalidMss && master_.erase(change.del) > 0) changed = true;
    if (!changed) return;  // idempotent duplicate
    ++version_;
    ++owner_.significant_moves_;
    {
      std::string delta;
      if (change.add != net::kInvalidMss) delta += "+" + net::to_string(change.add);
      if (change.del != net::kInvalidMss) {
        if (!delta.empty()) delta += ' ';
        delta += "-" + net::to_string(change.del);
      }
      // `delta` outlives the emit call (the stream interns a copy); the
      // distinct-tag population here is bounded by the intern-table cap.
      net().emit({.kind = obs::EventKind::kViewChange,
                  .entity = net::entity_of(self()),
                  .arg = version_,
                  .detail = delta});
    }
    owner_.max_view_.set_max(static_cast<std::int64_t>(master_.size()));
    // Full copy to a newly added MSS, increments to everyone else.
    if (change.add != net::kInvalidMss) {
      send_wired(change.add, LvFullView{version_, as_vector(master_)});
    }
    for (const auto mss : master_) {
      if (mss == change.add) continue;
      if (mss == self()) {
        apply(version_, change.add, change.del);
        continue;
      }
      send_wired(mss, LvDelta{version_, change.add, change.del});
    }
    // An applied add may release deferred deletes.
    if (change.add != net::kInvalidMss) {
      if (auto it = waiting_for_add_.find(change.add); it != waiting_for_add_.end()) {
        auto released = std::move(it->second);
        waiting_for_add_.erase(it);
        for (const auto& deferred : released) handle_change(deferred);
      }
    }
  }

  void handle_full(const LvFullView& full) {
    view_.clear();
    view_.insert(full.view.begin(), full.view.end());
    has_view_ = true;
    view_requested_ = false;
    version_seen_ = full.version;
    for (auto& departure : departed_) {
      if (departure.confirmed_version == 0 && view_.contains(departure.new_mss)) {
        departure.confirmed_version = full.version;
      }
    }
    flush_pending();
  }

  void handle_delta(const LvDelta& delta) {
    if (!has_view_) return;  // stale delta after we vacated
    apply(delta.version, delta.add, delta.del);
  }

  void apply(std::uint64_t version, MssId add, MssId del) {
    version_seen_ = version;
    if (add != net::kInvalidMss) {
      view_.insert(add);
      // Confirm forwarding records waiting on this cell's addition.
      for (auto& departure : departed_) {
        if (departure.confirmed_version == 0 && departure.new_mss == add) {
          departure.confirmed_version = version;
        }
      }
    }
    if (del != net::kInvalidMss) view_.erase(del);
    if (del == self()) {
      has_view_ = false;
      view_.clear();
    }
  }

  void flush_pending() {
    std::deque<GroupMsg> ready;
    ready.swap(pending_);
    for (const auto& msg : ready) handle_send(msg);
  }

  /// Forwarding record for a member that left towards a cell that may
  /// not have propagated into every replica's view yet.
  struct Departure {
    MhId mh = net::kInvalidMh;
    MssId new_mss = net::kInvalidMss;
    sim::SimTime at = 0;
    std::uint64_t confirmed_version = 0;  ///< 0 = change not yet seen here
  };
  /// Backstop retention for forwarding records (virtual ticks); the
  /// version check is the primary cutoff.
  static constexpr sim::Duration kDepartureGrace = 5000;

  LocationViewGroup& owner_;
  bool is_coordinator_;
  // Replica state.
  bool has_view_ = false;
  std::set<MssId> view_;
  std::uint64_t version_seen_ = 0;
  std::set<MhId> local_members_;
  std::map<MhId, std::uint64_t> member_arrival_seq_;
  std::deque<GroupMsg> pending_;
  std::deque<Departure> departed_;
  bool view_requested_ = false;
  // Coordinator state (used only on the coordinator).
  std::set<MssId> master_;
  std::set<MssId> ever_added_;  ///< monotone: cells whose add was ever applied
  std::uint64_t version_ = 0;
  /// Deletes held until the departing member's new cell registers.
  std::map<MssId, std::vector<LvViewChange>> waiting_for_add_;
};

class LocationViewGroup::HostAgent : public net::MhAgent {
 public:
  explicit HostAgent(LocationViewGroup& owner) : owner_(owner) {}

  void send_group(std::uint64_t msg_id) {
    run_when_connected([this, msg_id] { send_uplink(LvSend{GroupMsg{msg_id, self()}}); });
  }

  void on_message(const Envelope& env) override {
    const auto* msg = net::body_as<GroupMsg>(env);
    if (msg == nullptr) return;
    if (!seen_.insert(msg->msg_id).second) {
      owner_.monitor_.duplicate();
      return;
    }
    owner_.monitor_.delivered(msg->msg_id, self());
  }

  void on_joined_cell(MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  LocationViewGroup& owner_;
  std::set<std::uint64_t> seen_;
  std::deque<std::function<void()>> deferred_;
};

LocationViewGroup::LocationViewGroup(net::Network& net, Group group, MssId coordinator,
                                     net::ProtocolId proto)
    : net_(net),
      group_(std::move(group)),
      coordinator_(coordinator),
      significant_moves_(net.metrics().counter("group.location_view.significant_moves")),
      max_view_(net.metrics().gauge("group.location_view.max_view")),
      chases_(net.metrics().counter("group.location_view.chases")) {
  stations_.resize(net.num_mss());
  for (std::uint32_t i = 0; i < net.num_mss(); ++i) {
    const auto id = static_cast<MssId>(i);
    auto agent = std::make_shared<StationAgent>(*this, id == coordinator_);
    stations_[i] = agent;
    net.mss(id).register_agent(proto, agent);
  }
  hosts_.resize(net.num_mh());
  for (const auto member : group_.members) {
    auto agent = std::make_shared<HostAgent>(*this);
    hosts_[net::index(member)] = agent;
    net.mh(member).register_agent(proto, agent);
  }
  // Seed the initial view from the placement: LV(G)^0.
  std::set<MssId> initial;
  for (const auto member : group_.members) {
    const MssId at = net.mh(member).last_mss();
    initial.insert(at);
    stations_[net::index(at)]->seed_local(member);
  }
  for (const auto mss : initial) stations_[net::index(mss)]->seed_view(initial);
  stations_[net::index(coordinator_)]->seed_master(initial);
  max_view_.set_max(static_cast<std::int64_t>(initial.size()));
}

std::uint64_t LocationViewGroup::send_group_message(MhId sender) {
  if (!group_.contains(sender)) {
    throw std::invalid_argument("LocationViewGroup: sender is not a member");
  }
  const std::uint64_t msg_id = next_msg_++;
  monitor_.sent(msg_id, sender);
  hosts_[net::index(sender)]->send_group(msg_id);
  return msg_id;
}

const std::set<MssId>& LocationViewGroup::current_view() const noexcept {
  return stations_[net::index(coordinator_)]->master();
}

std::uint64_t LocationViewGroup::duplicates_suppressed() const noexcept {
  return monitor_.duplicates_suppressed();
}

}  // namespace mobidist::group
