#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/ids.hpp"

namespace mobidist::group {

/// A process group of mobile hosts (§4). Membership is static for the
/// lifetime of the group — the paper explicitly separates the (solved)
/// membership problem from the (new) group-location problem.
struct Group {
  std::vector<net::MhId> members;  ///< sorted, unique

  [[nodiscard]] bool contains(net::MhId mh) const {
    return std::binary_search(members.begin(), members.end(), mh);
  }
  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }

  [[nodiscard]] static Group of(std::vector<net::MhId> mhs) {
    std::sort(mhs.begin(), mhs.end());
    mhs.erase(std::unique(mhs.begin(), mhs.end()), mhs.end());
    return Group{std::move(mhs)};
  }
};

/// Observes group-message delivery; the oracle for the exactly-once /
/// at-least-once properties. Strategies report raw deliveries here
/// *after* their own duplicate suppression.
class DeliveryMonitor {
 public:
  void sent(std::uint64_t msg_id, net::MhId sender) {
    senders_[msg_id] = sender;
    ++sent_;
  }

  void delivered(std::uint64_t msg_id, net::MhId member) {
    ++deliveries_[msg_id][member];
  }

  void duplicate() noexcept { ++duplicates_suppressed_; }

  [[nodiscard]] std::uint64_t total_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept {
    return duplicates_suppressed_;
  }

  /// Deliveries of `msg_id` to `member`.
  [[nodiscard]] std::uint64_t count(std::uint64_t msg_id, net::MhId member) const {
    const auto it = deliveries_.find(msg_id);
    if (it == deliveries_.end()) return 0;
    const auto jt = it->second.find(member);
    return jt == it->second.end() ? 0 : jt->second;
  }

  /// Every sent message reached every member except its sender exactly
  /// once.
  [[nodiscard]] bool exactly_once(const Group& group) const {
    for (const auto& [msg_id, sender] : senders_) {
      for (const auto member : group.members) {
        if (member == sender) continue;
        if (count(msg_id, member) != 1) return false;
      }
    }
    return true;
  }

  /// (message, member) pairs that never arrived.
  [[nodiscard]] std::uint64_t missing(const Group& group) const {
    std::uint64_t gaps = 0;
    for (const auto& [msg_id, sender] : senders_) {
      for (const auto member : group.members) {
        if (member == sender) continue;
        if (count(msg_id, member) == 0) ++gaps;
      }
    }
    return gaps;
  }

  /// (message, member) pairs delivered more than once.
  [[nodiscard]] std::uint64_t over_delivered(const Group& group) const {
    std::uint64_t extra = 0;
    for (const auto& [msg_id, sender] : senders_) {
      for (const auto member : group.members) {
        if (count(msg_id, member) > 1) ++extra;
      }
    }
    return extra;
  }

 private:
  std::map<std::uint64_t, net::MhId> senders_;
  std::map<std::uint64_t, std::map<net::MhId, std::uint64_t>> deliveries_;
  std::uint64_t sent_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
};

}  // namespace mobidist::group
