#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "group/group.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mobidist::group {

/// §4.1 Pure-search strategy: no location state at all. A sender fires a
/// point-to-point MH-to-MH message at every other member; each one
/// incurs a full search.
///
/// Cost per group message: (|G|-1) * (2*c_wireless + c_search) —
/// independent of mobility (MOB never appears), which is exactly what
/// the E5 bench shows against always-inform and location-view.
class PureSearchGroup {
 public:
  PureSearchGroup(net::Network& net, Group group,
                  net::ProtocolId proto = net::protocol::kGroupData);

  /// Send one group message from `sender` (must be a member). Callable
  /// from inside the simulation. Returns the message id.
  std::uint64_t send_group_message(net::MhId sender);

  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] DeliveryMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const DeliveryMonitor& monitor() const noexcept { return monitor_; }

 private:
  class Agent;
  net::Network& net_;
  Group group_;
  DeliveryMonitor monitor_;
  std::vector<std::shared_ptr<Agent>> agents_;
  std::uint64_t next_msg_ = 1;
  obs::Counter& group_msgs_;  // "group.pure_search.group_msgs"
};

}  // namespace mobidist::group
