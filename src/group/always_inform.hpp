#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "group/group.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mobidist::group {

/// §4.2 Always-inform strategy: every member MH keeps a full location
/// directory LD(G) (member -> MSS). Group messages go point-to-point to
/// each member's recorded MSS (2*c_wireless + c_fixed each, no search);
/// every move floods a location update to all members at the same cost.
///
/// Effective cost per group message: (MOB/MSG + 1) * (|G|-1) *
/// (2*c_wireless + c_fixed) — the mobility-to-message ratio is the whole
/// story, which E5 sweeps.
///
/// A stale directory entry (target moved while the message was in
/// flight) triggers the footnote-1 "second copy": the recorded MSS
/// chases the member with a real search. Those chases are counted.
class AlwaysInformGroup {
 public:
  AlwaysInformGroup(net::Network& net, Group group,
                    net::ProtocolId proto = net::protocol::kGroupData);

  /// Send one group message from `sender` (must be a member).
  std::uint64_t send_group_message(net::MhId sender);

  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] DeliveryMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const DeliveryMonitor& monitor() const noexcept { return monitor_; }

  /// Location-update fan-outs performed (one per completed member move).
  [[nodiscard]] std::uint64_t location_updates() const noexcept { return loc_updates_; }
  /// Stale-directory chases (footnote-1 second copies).
  [[nodiscard]] std::uint64_t stale_chases() const noexcept { return stale_chases_; }

 private:
  class HostAgent;
  class StationAgent;
  friend class HostAgent;
  friend class StationAgent;

  net::Network& net_;
  Group group_;
  DeliveryMonitor monitor_;
  std::vector<std::shared_ptr<HostAgent>> host_agents_;  // indexed by MH
  std::uint64_t next_msg_ = 1;
  // Registry-backed counters ("group.always_inform.*"), bound to the
  // network's registry at construction.
  obs::Counter& loc_updates_;
  obs::Counter& stale_chases_;
};

}  // namespace mobidist::group
