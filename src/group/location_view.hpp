#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "group/group.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace mobidist::group {

/// §4.3 Location view: LV(G) is the set of MSSs currently hosting at
/// least one group member, replicated at exactly those MSSs (plus a
/// fixed coordinator MSS that serializes changes).
///
/// Only *significant* moves touch LV(G): entering a cell outside the
/// view, or vacating a cell as its last member. The change protocol is
/// the paper's, verbatim: the new MSS M tells the previous MSS M', M'
/// asks the coordinator (a combined add+delete when both apply), and the
/// coordinator fans the update to the view (full copy to a newly added
/// MSS, increments to the rest) — at most (|LV|+3) fixed messages.
///
/// Group send: one wireless uplink, (|LV|-1) fixed messages, one
/// wireless downlink per receiving member: (|LV|-1)*c_fixed +
/// |G|*c_wireless per message.
///
/// The paper assumes LV does not change while a message is in transit;
/// when it does anyway, a recipient MSS whose member just left chases it
/// with a search (counted in chases()), and member-side dedup keeps
/// delivery exactly-once.
class LocationViewGroup {
 public:
  LocationViewGroup(net::Network& net, Group group,
                    net::MssId coordinator = static_cast<net::MssId>(0),
                    net::ProtocolId proto = net::protocol::kGroupLocation);

  /// Send one group message from `sender` (must be a member).
  std::uint64_t send_group_message(net::MhId sender);

  [[nodiscard]] const Group& group() const noexcept { return group_; }
  [[nodiscard]] DeliveryMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const DeliveryMonitor& monitor() const noexcept { return monitor_; }

  /// Moves that actually changed LV(G) (the paper's f * MOB).
  [[nodiscard]] std::uint64_t significant_moves() const noexcept {
    return significant_moves_;
  }
  /// Largest |LV(G)| seen at the coordinator (the paper's |LV(G)^max|).
  [[nodiscard]] std::size_t max_view_size() const noexcept {
    return static_cast<std::size_t>(max_view_.value());
  }
  /// Coordinator's current master view.
  [[nodiscard]] const std::set<net::MssId>& current_view() const noexcept;
  /// Footnote-1 style chases of members that moved mid-delivery.
  [[nodiscard]] std::uint64_t chases() const noexcept { return chases_; }
  /// Duplicate deliveries suppressed at members.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept;

 private:
  class StationAgent;
  class HostAgent;
  friend class StationAgent;
  friend class HostAgent;

  net::Network& net_;
  Group group_;
  net::MssId coordinator_;
  DeliveryMonitor monitor_;
  std::vector<std::shared_ptr<StationAgent>> stations_;  // indexed by MSS
  std::vector<std::shared_ptr<HostAgent>> hosts_;        // indexed by MH
  std::uint64_t next_msg_ = 1;
  // Registry-backed metrics ("group.location_view.*"), bound to the
  // network's registry at construction.
  obs::Counter& significant_moves_;
  obs::Gauge& max_view_;
  obs::Counter& chases_;
};

}  // namespace mobidist::group
