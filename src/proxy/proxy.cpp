#include "proxy/proxy.hpp"

#include <deque>
#include <utility>

namespace mobidist::proxy {

using net::Envelope;
using net::MhId;
using net::MssId;

namespace {

/// MH -> proxy payload (possibly forwarded once over the wire).
struct Up {
  MhId mh = net::kInvalidMh;
  std::any body;
};

/// Proxy -> MH payload, routed via the cached location. `policy`
/// travels along so a stale-cache chase honours the algorithm's
/// disconnect obligation.
struct Down {
  MhId mh = net::kInvalidMh;
  MssId proxy = net::kInvalidMss;
  std::any body;
  net::SendPolicy policy = net::SendPolicy::kEventualDelivery;
};

/// Proxy <-> proxy payload (the static algorithm's messages).
struct Peer {
  std::any body;
};

/// New local MSS -> home proxy: the MH now lives in my cell.
struct Inform {
  MhId mh = net::kInvalidMh;
  MssId at = net::kInvalidMss;
};

}  // namespace

class ProxyService::StationAgent : public net::MssAgent {
 public:
  explicit StationAgent(ProxyService& owner) : owner_(owner) {}

  void on_message(const Envelope& env) override {
    if (const auto* up = net::body_as<Up>(env)) {
      const MssId proxy = owner_.proxy_of(up->mh);
      if (proxy != self()) {
        // Not ours (the MH moved between uplink and processing, or the
        // local MSS is just a relay for a home-scoped MH): forward.
        send_wired(proxy, *up);
        return;
      }
      if (owner_.proxy_handler_) owner_.proxy_handler_(self(), up->mh, up->body);
      return;
    }
    if (const auto* down = net::body_as<Down>(env)) {
      // We are (believed to be) the MH's current cell: last wireless hop.
      send_local(down->mh, *down);
      return;
    }
    if (const auto* peer = net::body_as<Peer>(env)) {
      if (owner_.peer_handler_) owner_.peer_handler_(self(), env.src.mss(), peer->body);
      return;
    }
    if (const auto* inform = net::body_as<Inform>(env)) {
      ++owner_.informs_;
      owner_.cached_loc_[net::index(inform->mh)] = inform->at;
      return;
    }
  }

  void on_mh_joined(MhId mh, MssId /*prev*/) override {
    switch (owner_.opts_.scope) {
      case ProxyScope::kLocalMss:
        return;  // the proxy moved with the MH; nothing to inform
      case ProxyScope::kFixedHome:
        break;  // inform on every move
      case ProxyScope::kLazyHome:
        if (net().mh(mh).joins_completed() % owner_.opts_.inform_every != 0) return;
        break;
    }
    const MssId home = owner_.home_[net::index(mh)];
    if (home == self()) {
      ++owner_.informs_;
      owner_.cached_loc_[net::index(mh)] = self();
      return;
    }
    send_wired(home, Inform{mh, self()});
  }

  /// A Down frame missed (stale cache / MH left this cell): chase.
  void on_local_send_failed(MhId mh, const net::Body& body) override {
    ++owner_.location_misses_;
    const auto* down = body.get<Down>();
    if (down == nullptr) return;
    send_to_mh(mh, *down, down->policy);
  }

  void on_mh_unreachable(MhId mh, const net::Body& body) override {
    const auto* down = body.get<Down>();
    if (down == nullptr) return;
    if (owner_.unreachable_handler_) {
      owner_.unreachable_handler_(down->proxy, mh, down->body);
    }
  }

  // Expose protected sends to the owning service.
  void do_send_wired(MssId to, net::Body body) { send_wired(to, std::move(body)); }
  void do_send_local(MhId mh, net::Body body) { send_local(mh, std::move(body)); }
  void do_send_to_mh(MhId mh, net::Body body, net::SendPolicy policy) {
    send_to_mh(mh, std::move(body), policy);
  }

 private:
  ProxyService& owner_;
};

class ProxyService::HostAgent : public net::MhAgent {
 public:
  explicit HostAgent(ProxyService& owner) : owner_(owner) {}

  void client_send(std::any body) {
    run_when_connected(
        [this, body = std::move(body)] { send_uplink(Up{self(), body}); });
  }

  void on_message(const Envelope& env) override {
    const auto* down = net::body_as<Down>(env);
    if (down == nullptr) return;
    if (owner_.client_handler_) owner_.client_handler_(self(), down->body);
  }

  void on_joined_cell(net::MssId) override {
    std::deque<std::function<void()>> ready;
    ready.swap(deferred_);
    for (auto& action : ready) action();
  }

 private:
  void run_when_connected(std::function<void()> action) {
    if (net().mh(self()).connected()) {
      action();
    } else {
      deferred_.push_back(std::move(action));
    }
  }

  ProxyService& owner_;
  std::deque<std::function<void()>> deferred_;
};

ProxyService::ProxyService(net::Network& net, ProxyOptions opts, net::ProtocolId proto)
    : net_(net), opts_(opts), proto_(proto) {
  home_.resize(net.num_mh());
  cached_loc_.resize(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    home_[i] = net.mh(static_cast<MhId>(i)).last_mss();  // initial cell
    cached_loc_[i] = home_[i];
  }
  stations_.reserve(net.num_mss());
  for (std::uint32_t i = 0; i < net.num_mss(); ++i) {
    auto agent = std::make_shared<StationAgent>(*this);
    stations_.push_back(agent);
    net.mss(static_cast<MssId>(i)).register_agent(proto, agent);
  }
  hosts_.reserve(net.num_mh());
  for (std::uint32_t i = 0; i < net.num_mh(); ++i) {
    auto agent = std::make_shared<HostAgent>(*this);
    hosts_.push_back(agent);
    net.mh(static_cast<MhId>(i)).register_agent(proto, agent);
  }
}

MssId ProxyService::proxy_of(MhId mh) const {
  if (opts_.scope == ProxyScope::kLocalMss) {
    const MssId current = net_.mh(mh).current_mss();
    return current != net::kInvalidMss ? current : net_.mh(mh).last_mss();
  }
  return home_[net::index(mh)];
}

void ProxyService::client_send(MhId mh, std::any body) {
  hosts_[net::index(mh)]->client_send(std::move(body));
}

void ProxyService::proxy_send(MssId proxy, MhId mh, std::any body, net::SendPolicy policy) {
  auto& station = *stations_[net::index(proxy)];
  Down down{mh, proxy, std::move(body), policy};
  if (opts_.scope == ProxyScope::kLocalMss) {
    // The MH is supposed to be local; a miss triggers the search
    // obligation (or the notify path for disconnect-aware algorithms).
    if (net_.mh(mh).current_mss() == proxy) {
      station.do_send_local(mh, std::move(down));
    } else {
      ++location_misses_;
      station.do_send_to_mh(mh, std::move(down), policy);
    }
    return;
  }
  const MssId believed = cached_loc_[net::index(mh)];
  if (believed == proxy) {
    station.do_send_local(mh, std::move(down));
    return;
  }
  station.do_send_wired(believed, std::move(down));
}

void ProxyService::peer_send(MssId from, MssId to, std::any body) {
  stations_[net::index(from)]->do_send_wired(to, Peer{std::move(body)});
}

}  // namespace mobidist::proxy
