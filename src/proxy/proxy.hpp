#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"

namespace mobidist::proxy {

/// §5: which MSS acts as a MH's proxy (the "scope" parameter).
enum class ProxyScope : std::uint8_t {
  /// The proxy is always the MH's current local MSS (the L2/R2 choice):
  /// zero inform traffic, but deliveries to a moved MH need a search.
  kLocalMss,
  /// One fixed MSS per MH for its lifetime ("total separation of
  /// mobility from the algorithm"): the proxy is informed of every move
  /// (one fixed message each), deliveries never search.
  kFixedHome,
  /// The "less static solution" the paper calls for: a home proxy that
  /// is informed only on every k-th move. Deliveries use the (possibly
  /// stale) cached location and fall back to a search when it misses —
  /// the classic inform/search trade-off, tunable by k.
  kLazyHome,
};

/// Tuning knobs for the proxy layer (scope policy + inform rate).
struct ProxyOptions {
  ProxyScope scope = ProxyScope::kFixedHome;
  /// kLazyHome: inform the proxy on every k-th completed move.
  std::uint32_t inform_every = 2;
};

/// The mobility-decoupling layer of §5. It gives algorithm authors three
/// channels and hides every mobility concern behind them:
///
///   - client_send:  MH -> its proxy           (the MH's only API)
///   - proxy_send:   proxy -> one of its MHs   (never needs to know cells)
///   - peer_send:    proxy -> proxy            (the static algorithm's wire)
///
/// A distributed algorithm written for static hosts runs unchanged at
/// the proxies over peer_send; ProxiedLamport (static_algorithm.hpp) is
/// the worked example. The scope policy decides the inform/search cost
/// split; the obligation (what happens when a MH moved or disconnected
/// mid-computation) is expressed per send via net::SendPolicy plus the
/// unreachable callback.
class ProxyService {
 public:
  /// Invoked at the proxy MSS when one of its MHs sends something up.
  using ProxyHandler =
      std::function<void(net::MssId proxy, net::MhId from, const std::any& body)>;
  /// Invoked at a MH when its proxy sends something down.
  using ClientHandler = std::function<void(net::MhId self, const std::any& body)>;
  /// Invoked at a proxy when a peer proxy sends something over the wire.
  using PeerHandler =
      std::function<void(net::MssId self, net::MssId from, const std::any& body)>;
  /// Invoked at the proxy when a proxy_send with kNotifyIfDisconnected
  /// could not reach the MH.
  using UnreachableHandler =
      std::function<void(net::MssId proxy, net::MhId mh, const std::any& body)>;

  ProxyService(net::Network& net, ProxyOptions opts,
               net::ProtocolId proto = net::protocol::kProxy);

  /// Install the MH-to-proxy upcall handler.
  void set_proxy_handler(ProxyHandler handler) { proxy_handler_ = std::move(handler); }
  /// Install the proxy-to-MH downcall handler.
  void set_client_handler(ClientHandler handler) { client_handler_ = std::move(handler); }
  /// Install the proxy-to-proxy wire handler.
  void set_peer_handler(PeerHandler handler) { peer_handler_ = std::move(handler); }
  /// Install the handler for proxy_sends that found the MH unreachable.
  void set_unreachable_handler(UnreachableHandler handler) {
    unreachable_handler_ = std::move(handler);
  }

  /// The MSS currently acting as `mh`'s proxy. For kLocalMss this tracks
  /// the MH; for the home scopes it is the MH's initial cell.
  [[nodiscard]] net::MssId proxy_of(net::MhId mh) const;

  /// MH -> its proxy: one wireless uplink plus, if the local MSS is not
  /// the proxy, one fixed-network forward. Deferred while in transit.
  void client_send(net::MhId mh, std::any body);

  /// Proxy -> MH. Home scopes route via the cached location (fixed +
  /// wireless) and chase with a search only when the cache is stale;
  /// kLocalMss delivers locally or searches (the L2 obligation).
  void proxy_send(net::MssId proxy, net::MhId mh, std::any body,
                  net::SendPolicy policy = net::SendPolicy::kEventualDelivery);

  /// Proxy -> peer proxy over the wired mesh (the static algorithm's
  /// transport).
  void peer_send(net::MssId from, net::MssId to, std::any body);

  /// Location-inform messages proxies received (cost driver #1).
  [[nodiscard]] std::uint64_t informs() const noexcept { return informs_; }
  /// Deliveries that needed a search because the cached location was
  /// stale or the scope was local (cost driver #2).
  [[nodiscard]] std::uint64_t location_misses() const noexcept { return location_misses_; }

 private:
  class StationAgent;
  class HostAgent;
  friend class StationAgent;
  friend class HostAgent;

  net::Network& net_;
  ProxyOptions opts_;
  net::ProtocolId proto_;
  std::vector<net::MssId> home_;        ///< per-MH fixed/lazy home proxy
  std::vector<net::MssId> cached_loc_;  ///< proxy's view of the MH's cell
  std::vector<std::shared_ptr<StationAgent>> stations_;
  std::vector<std::shared_ptr<HostAgent>> hosts_;
  ProxyHandler proxy_handler_;
  ClientHandler client_handler_;
  PeerHandler peer_handler_;
  UnreachableHandler unreachable_handler_;
  std::uint64_t informs_ = 0;
  std::uint64_t location_misses_ = 0;
};

}  // namespace mobidist::proxy
