#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "mutex/lamport_engine.hpp"
#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "mutex/path_reversal.hpp"
#include "proxy/proxy.hpp"

namespace mobidist::proxy {

/// §5's demonstration: Lamport's *static-host* mutual exclusion running
/// unchanged at the proxies, with every mobility concern delegated to
/// the ProxyService.
///
/// Contrast with mutex::L2Mutex, which hand-weaves mobility handling
/// into the algorithm: here the algorithm layer only sees
/// (client_send / proxy_send / peer_send) and is scope-agnostic — the
/// same code runs with a local-MSS proxy (L2-like costs: a search per
/// grant), a fixed home proxy (an inform per move, no searches), or a
/// lazy home proxy (tunable in between). The E6 bench sweeps exactly
/// that trade-off.
class ProxiedLamport {
 public:
  ProxiedLamport(net::Network& net, ProxyService& proxies, mutex::CsMonitor& monitor,
                 mutex::MutexOptions opts = {});

  /// Ask for one CS execution on behalf of `mh`.
  void request(net::MhId mh);

  /// CS executions completed (granted, held, released).
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  /// Requests dropped because the MH was disconnected at grant time.
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }

 private:
  // Client -> proxy bodies.
  struct InitReq {};
  struct ReleaseReq {
    std::uint64_t req_id = 0;
    net::MssId home = net::kInvalidMss;
  };
  // Proxy -> client body.
  struct Granted {
    std::uint64_t req_id = 0;
    net::MssId home = net::kInvalidMss;
    std::uint64_t ts = 0;
  };
  // Peer body.
  struct Wire {
    mutex::LamportMsg msg;
  };

  void on_client_message(net::MssId proxy, net::MhId from, const std::any& body);
  void on_down_message(net::MhId self, const std::any& body);
  void on_peer_message(net::MssId self, net::MssId from, const std::any& body);
  void on_unreachable(net::MssId proxy, net::MhId mh, const std::any& body);
  void finish_release(const ReleaseReq& release);

  net::Network& net_;
  ProxyService& proxies_;
  mutex::CsMonitor& monitor_;
  mutex::MutexOptions opts_;
  std::vector<std::unique_ptr<mutex::LamportEngine>> engines_;  // one per MSS
  std::vector<std::map<std::uint64_t, net::MhId>> pending_;     // per MSS: req -> MH
  std::vector<std::uint64_t> next_req_;                         // per MSS
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
};

/// The Naimi–Trehel path-reversal engine running unchanged at the
/// proxies — the same mutex::PathRevEngine state machine PathRevMutex
/// wires directly onto the MSS tier, here driven purely through the §5
/// channels (client_send / proxy_send / peer_send). Every mobility
/// concern is the ProxyService's: under kFixedHome requests queue at a
/// stable home and never need re-homing, under kLocalMss/kLazyHome the
/// grant chases the MH through the proxy layer's cached-location /
/// search machinery. Like ProxiedLamport, a grant that finds its MH
/// disconnected is aborted at the proxy (the token returns to the
/// engine; the request is dropped, counted in aborted()).
///
/// Token events carry the "NTx" tag so the token-uniqueness checker
/// tracks this instance separately from a direct "NT" run.
class ProxiedPathRev {
 public:
  ProxiedPathRev(net::Network& net, ProxyService& proxies, mutex::CsMonitor& monitor,
                 mutex::MutexOptions opts = {});

  /// Ask for one CS execution on behalf of `mh`.
  void request(net::MhId mh);

  /// CS executions completed (granted, held, token returned).
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  /// Grants dropped because the MH was disconnected at grant time.
  [[nodiscard]] std::uint64_t aborted() const noexcept { return aborted_; }

  /// Event-stream tag for the proxied wiring.
  [[nodiscard]] static constexpr const char* label() noexcept { return "NTx"; }

 private:
  // Client -> proxy bodies.
  struct ReqUp {};
  struct ReturnUp {
    net::MssId home = net::kInvalidMss;
    std::uint64_t serial = 0;
  };
  // Proxy -> client body.
  struct GrantDown {
    net::MssId home = net::kInvalidMss;
    std::uint64_t serial = 0;
  };
  // Peer bodies.
  struct ClaimWire {
    std::uint32_t origin = 0;
  };
  struct TokenWire {
    std::uint64_t serial = 0;
  };
  struct ReturnWire {
    net::MssId home = net::kInvalidMss;
    std::uint64_t serial = 0;
  };

  void on_client_message(net::MssId proxy, net::MhId from, const std::any& body);
  void on_down_message(net::MhId self, const std::any& body);
  void on_peer_message(net::MssId self, net::MssId from, const std::any& body);
  void on_unreachable(net::MssId proxy, net::MhId mh, const std::any& body);
  void token_arrived_at(net::MssId node, std::uint64_t serial);

  net::Network& net_;
  ProxyService& proxies_;
  mutex::CsMonitor& monitor_;
  mutex::MutexOptions opts_;
  std::vector<std::unique_ptr<mutex::PathRevEngine>> engines_;  // one per MSS
  std::vector<std::uint64_t> pending_;                          // per MH
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t transfers_ = 0;
  obs::Counter& claim_hops_counter_;
  obs::Counter& token_passes_counter_;
};

}  // namespace mobidist::proxy
