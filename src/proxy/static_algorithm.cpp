#include "proxy/static_algorithm.hpp"

namespace mobidist::proxy {

using net::MhId;
using net::MssId;

ProxiedLamport::ProxiedLamport(net::Network& net, ProxyService& proxies,
                               mutex::CsMonitor& monitor, mutex::MutexOptions opts)
    : net_(net), proxies_(proxies), monitor_(monitor), opts_(opts) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), "proxy");
  const std::uint32_t m = net.num_mss();
  pending_.resize(m);
  next_req_.assign(m, 1);
  engines_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto engine = std::make_unique<mutex::LamportEngine>(i, m);
    engine->set_send([this, i](std::uint32_t peer, const mutex::LamportMsg& msg) {
      proxies_.peer_send(static_cast<MssId>(i), static_cast<MssId>(peer), Wire{msg});
    });
    engine->set_on_acquired([this, i](std::uint64_t req_id, std::uint64_t ts) {
      const auto it = pending_[i].find(req_id);
      if (it == pending_[i].end()) return;  // aborted meanwhile
      // The grant travels through the proxy layer; if the MH turns out
      // to be disconnected we are notified and release on its behalf.
      proxies_.proxy_send(static_cast<MssId>(i), it->second,
                          Granted{req_id, static_cast<MssId>(i), ts},
                          net::SendPolicy::kNotifyIfDisconnected);
    });
    engines_.push_back(std::move(engine));
  }
  proxies_.set_proxy_handler([this](MssId proxy, MhId from, const std::any& body) {
    on_client_message(proxy, from, body);
  });
  proxies_.set_client_handler(
      [this](MhId self, const std::any& body) { on_down_message(self, body); });
  proxies_.set_peer_handler([this](MssId self, MssId from, const std::any& body) {
    on_peer_message(self, from, body);
  });
  proxies_.set_unreachable_handler([this](MssId proxy, MhId mh, const std::any& body) {
    on_unreachable(proxy, mh, body);
  });
}

void ProxiedLamport::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  proxies_.client_send(mh, InitReq{});
}

void ProxiedLamport::on_client_message(MssId proxy, MhId from, const std::any& body) {
  const auto index = net::index(proxy);
  if (std::any_cast<InitReq>(&body) != nullptr) {
    const std::uint64_t req_id = next_req_[index]++;
    pending_[index].emplace(req_id, from);
    engines_[index]->submit(req_id);
    return;
  }
  if (const auto* release = std::any_cast<ReleaseReq>(&body)) {
    // With a local-MSS scope the MH may have moved since the grant: the
    // release lands at its *current* proxy, which relays it to the home
    // engine over the wire (the L2 release-resource relay, one c_fixed).
    if (release->home != proxy) {
      proxies_.peer_send(proxy, release->home, *release);
      return;
    }
    finish_release(*release);
    return;
  }
}

void ProxiedLamport::finish_release(const ReleaseReq& release) {
  const auto index = net::index(release.home);
  if (pending_[index].erase(release.req_id) > 0) {
    ++completed_;
    engines_[index]->release(release.req_id);
  }
}

void ProxiedLamport::on_down_message(MhId self, const std::any& body) {
  const auto* granted = std::any_cast<Granted>(&body);
  if (granted == nullptr) return;
  const std::uint64_t key = (granted->ts << 20) | net::index(granted->home);
  const std::size_t grant = monitor_.enter(self, key, net_.sched().now());
  net_.sched().schedule(opts_.cs_hold, [this, self, grant, msg = *granted] {
    monitor_.exit(grant, net_.sched().now());
    proxies_.client_send(self, ReleaseReq{msg.req_id, msg.home});
  });
}

void ProxiedLamport::on_peer_message(MssId self, MssId from, const std::any& body) {
  if (const auto* wire = std::any_cast<Wire>(&body)) {
    engines_[net::index(self)]->on_message(net::index(from), wire->msg);
    return;
  }
  if (const auto* release = std::any_cast<ReleaseReq>(&body)) {
    finish_release(*release);
    return;
  }
}

void ProxiedLamport::on_unreachable(MssId proxy, MhId /*mh*/, const std::any& body) {
  const auto* granted = std::any_cast<Granted>(&body);
  if (granted == nullptr) return;
  const auto index = net::index(granted->home);
  (void)proxy;
  if (pending_[index].erase(granted->req_id) > 0) {
    ++aborted_;
    engines_[index]->release(granted->req_id);
  }
}

}  // namespace mobidist::proxy
