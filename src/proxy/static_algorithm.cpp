#include "proxy/static_algorithm.hpp"

namespace mobidist::proxy {

using net::MhId;
using net::MssId;

ProxiedLamport::ProxiedLamport(net::Network& net, ProxyService& proxies,
                               mutex::CsMonitor& monitor, mutex::MutexOptions opts)
    : net_(net), proxies_(proxies), monitor_(monitor), opts_(opts) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), "proxy");
  const std::uint32_t m = net.num_mss();
  pending_.resize(m);
  next_req_.assign(m, 1);
  engines_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto engine = std::make_unique<mutex::LamportEngine>(i, m);
    engine->set_send([this, i](std::uint32_t peer, const mutex::LamportMsg& msg) {
      proxies_.peer_send(static_cast<MssId>(i), static_cast<MssId>(peer), Wire{msg});
    });
    engine->set_on_acquired([this, i](std::uint64_t req_id, std::uint64_t ts) {
      const auto it = pending_[i].find(req_id);
      if (it == pending_[i].end()) return;  // aborted meanwhile
      // The grant travels through the proxy layer; if the MH turns out
      // to be disconnected we are notified and release on its behalf.
      proxies_.proxy_send(static_cast<MssId>(i), it->second,
                          Granted{req_id, static_cast<MssId>(i), ts},
                          net::SendPolicy::kNotifyIfDisconnected);
    });
    engines_.push_back(std::move(engine));
  }
  proxies_.set_proxy_handler([this](MssId proxy, MhId from, const std::any& body) {
    on_client_message(proxy, from, body);
  });
  proxies_.set_client_handler(
      [this](MhId self, const std::any& body) { on_down_message(self, body); });
  proxies_.set_peer_handler([this](MssId self, MssId from, const std::any& body) {
    on_peer_message(self, from, body);
  });
  proxies_.set_unreachable_handler([this](MssId proxy, MhId mh, const std::any& body) {
    on_unreachable(proxy, mh, body);
  });
}

void ProxiedLamport::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  proxies_.client_send(mh, InitReq{});
}

void ProxiedLamport::on_client_message(MssId proxy, MhId from, const std::any& body) {
  const auto index = net::index(proxy);
  if (std::any_cast<InitReq>(&body) != nullptr) {
    const std::uint64_t req_id = next_req_[index]++;
    pending_[index].emplace(req_id, from);
    engines_[index]->submit(req_id);
    return;
  }
  if (const auto* release = std::any_cast<ReleaseReq>(&body)) {
    // With a local-MSS scope the MH may have moved since the grant: the
    // release lands at its *current* proxy, which relays it to the home
    // engine over the wire (the L2 release-resource relay, one c_fixed).
    if (release->home != proxy) {
      proxies_.peer_send(proxy, release->home, *release);
      return;
    }
    finish_release(*release);
    return;
  }
}

void ProxiedLamport::finish_release(const ReleaseReq& release) {
  const auto index = net::index(release.home);
  if (pending_[index].erase(release.req_id) > 0) {
    ++completed_;
    engines_[index]->release(release.req_id);
  }
}

void ProxiedLamport::on_down_message(MhId self, const std::any& body) {
  const auto* granted = std::any_cast<Granted>(&body);
  if (granted == nullptr) return;
  const std::uint64_t key = (granted->ts << 20) | net::index(granted->home);
  const std::size_t grant = monitor_.enter(self, key, net_.sched().now());
  net_.sched().schedule(opts_.cs_hold, [this, self, grant, msg = *granted] {
    monitor_.exit(grant, net_.sched().now());
    proxies_.client_send(self, ReleaseReq{msg.req_id, msg.home});
  });
}

void ProxiedLamport::on_peer_message(MssId self, MssId from, const std::any& body) {
  if (const auto* wire = std::any_cast<Wire>(&body)) {
    engines_[net::index(self)]->on_message(net::index(from), wire->msg);
    return;
  }
  if (const auto* release = std::any_cast<ReleaseReq>(&body)) {
    finish_release(*release);
    return;
  }
}

void ProxiedLamport::on_unreachable(MssId proxy, MhId /*mh*/, const std::any& body) {
  const auto* granted = std::any_cast<Granted>(&body);
  if (granted == nullptr) return;
  const auto index = net::index(granted->home);
  (void)proxy;
  if (pending_[index].erase(granted->req_id) > 0) {
    ++aborted_;
    engines_[index]->release(granted->req_id);
  }
}

// --- ProxiedPathRev ---------------------------------------------------------

ProxiedPathRev::ProxiedPathRev(net::Network& net, ProxyService& proxies,
                               mutex::CsMonitor& monitor, mutex::MutexOptions opts)
    : net_(net),
      proxies_(proxies),
      monitor_(monitor),
      opts_(opts),
      claim_hops_counter_(net.metrics().counter("proxy.pathrev.claim_hops")),
      token_passes_counter_(net.metrics().counter("proxy.pathrev.token_passes")) {
  monitor.bind_metrics(net.metrics());
  monitor.bind_stream(net.events(), label());
  const std::uint32_t m = net.num_mss();
  pending_.assign(net.num_mh(), 0);
  engines_.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    engines_.push_back(std::make_unique<mutex::PathRevEngine>(
        i, /*has_token=*/i == 0, i == 0 ? mutex::PathRevEngine::kNoNode : 0,
        mutex::PathRevEngine::Hooks{
            [this, i](std::uint32_t to, std::uint32_t origin) {
              ++claim_hops_counter_;
              net_.emit({.kind = obs::EventKind::kReqForward,
                         .entity = obs::Entity::mss(i),
                         .peer = obs::Entity::mss(to),
                         .arg = origin,
                         .detail = label()});
              proxies_.peer_send(static_cast<MssId>(i), static_cast<MssId>(to),
                                 ClaimWire{origin});
            },
            [this, i](std::uint32_t to) {
              const std::uint64_t serial = ++transfers_;
              ++token_passes_counter_;
              net_.emit({.kind = obs::EventKind::kTokenDepart,
                         .entity = obs::Entity::mss(i),
                         .peer = obs::Entity::mss(to),
                         .arg = serial,
                         .detail = label()});
              proxies_.peer_send(static_cast<MssId>(i), static_cast<MssId>(to),
                                 TokenWire{serial});
            },
            [this, i](MhId mh) {
              const std::uint64_t serial = ++transfers_;
              net_.emit({.kind = obs::EventKind::kTokenDepart,
                         .entity = obs::Entity::mss(i),
                         .peer = obs::Entity::mh(net::index(mh)),
                         .arg = serial,
                         .detail = label()});
              proxies_.proxy_send(static_cast<MssId>(i), mh,
                                  GrantDown{static_cast<MssId>(i), serial},
                                  net::SendPolicy::kNotifyIfDisconnected);
            },
            [this, i](std::uint32_t new_father) {
              net_.emit({.kind = obs::EventKind::kPathReversal,
                         .entity = obs::Entity::mss(i),
                         .peer = obs::Entity::mss(new_father),
                         .detail = label()});
            },
        }));
  }
  // The injection: node 0 starts with the token.
  net_.emit({.kind = obs::EventKind::kTokenArrive,
             .entity = obs::Entity::mss(0),
             .arg = 0,
             .detail = label()});
  proxies_.set_proxy_handler([this](MssId proxy, MhId from, const std::any& body) {
    on_client_message(proxy, from, body);
  });
  proxies_.set_client_handler(
      [this](MhId self, const std::any& body) { on_down_message(self, body); });
  proxies_.set_peer_handler([this](MssId self, MssId from, const std::any& body) {
    on_peer_message(self, from, body);
  });
  proxies_.set_unreachable_handler([this](MssId proxy, MhId mh, const std::any& body) {
    on_unreachable(proxy, mh, body);
  });
}

void ProxiedPathRev::request(MhId mh) {
  monitor_.note_request(mh, net_.sched().now());
  ++pending_[net::index(mh)];
  proxies_.client_send(mh, ReqUp{});
}

void ProxiedPathRev::token_arrived_at(MssId node, std::uint64_t serial) {
  net_.emit({.kind = obs::EventKind::kTokenArrive,
             .entity = obs::Entity::mss(net::index(node)),
             .arg = serial,
             .detail = label()});
}

void ProxiedPathRev::on_client_message(MssId proxy, MhId from, const std::any& body) {
  if (std::any_cast<ReqUp>(&body) != nullptr) {
    engines_[net::index(proxy)]->local_request(from);
    return;
  }
  if (const auto* ret = std::any_cast<ReturnUp>(&body)) {
    // With a local-MSS scope the MH may have moved since the grant: the
    // return lands at its *current* proxy, which relays it home.
    if (ret->home != proxy) {
      proxies_.peer_send(proxy, ret->home, ReturnWire{ret->home, ret->serial});
      return;
    }
    token_arrived_at(proxy, ret->serial);
    engines_[net::index(proxy)]->grant_done();
    return;
  }
}

void ProxiedPathRev::on_down_message(MhId self, const std::any& body) {
  const auto* grant = std::any_cast<GrantDown>(&body);
  if (grant == nullptr) return;
  const auto arrive_id = net_.emit({.kind = obs::EventKind::kTokenArrive,
                                    .entity = obs::Entity::mh(net::index(self)),
                                    .arg = grant->serial,
                                    .detail = label()});
  auto return_token = [this, self, home = grant->home, serial = grant->serial] {
    net_.emit({.kind = obs::EventKind::kTokenDepart,
               .entity = obs::Entity::mh(net::index(self)),
               .peer = obs::Entity::mss(net::index(home)),
               .arg = serial,
               .detail = label()});
    proxies_.client_send(self, ReturnUp{home, serial});
  };
  auto& pending = pending_[net::index(self)];
  if (pending == 0) {
    return_token();  // defensive: never enter the CS on a surplus grant
    return;
  }
  --pending;
  const std::size_t cs = monitor_.enter(self, grant->serial, net_.sched().now());
  net_.sched().schedule(opts_.cs_hold, [this, cs, arrive_id, return_token] {
    obs::CauseScope scope(net_.events(), arrive_id);
    monitor_.exit(cs, net_.sched().now());
    ++completed_;
    return_token();
  });
}

void ProxiedPathRev::on_peer_message(MssId self, MssId /*from*/, const std::any& body) {
  const auto index = net::index(self);
  if (const auto* claim = std::any_cast<ClaimWire>(&body)) {
    engines_[index]->on_claim(claim->origin);
    return;
  }
  if (const auto* token = std::any_cast<TokenWire>(&body)) {
    token_arrived_at(self, token->serial);
    engines_[index]->on_token();
    return;
  }
  if (const auto* ret = std::any_cast<ReturnWire>(&body)) {
    token_arrived_at(self, ret->serial);
    engines_[index]->grant_done();
    return;
  }
}

void ProxiedPathRev::on_unreachable(MssId /*proxy*/, MhId mh, const std::any& body) {
  const auto* grant = std::any_cast<GrantDown>(&body);
  if (grant == nullptr) return;
  // Abort on the MH's behalf (the ProxiedLamport obligation): the token
  // bounces back to the granting engine and the request is dropped. The
  // arrival is booked at the grant's home — the depart_from endpoint the
  // conservation checker accepts for a bounce.
  ++aborted_;
  auto& pending = pending_[net::index(mh)];
  if (pending > 0) --pending;
  net_.ledger().charge_fixed();  // the modeled token-return message
  token_arrived_at(grant->home, grant->serial);
  engines_[net::index(grant->home)]->grant_done();
}

}  // namespace mobidist::proxy
