#include "sim/shard.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mobidist::sim {

ShardGroup::ShardGroup(std::vector<Scheduler*> shards, Duration lookahead,
                       std::function<void(std::uint32_t)> on_worker)
    : shards_(std::move(shards)), lookahead_(lookahead), on_worker_(std::move(on_worker)) {
  if (shards_.empty()) throw std::invalid_argument("ShardGroup: need at least one shard");
  for (auto* shard : shards_) {
    if (shard == nullptr) throw std::invalid_argument("ShardGroup: null shard scheduler");
  }
  // lookahead == 0 would admit mail arriving *at* the horizon, i.e. at a
  // time the current window may already have executed past.
  if (lookahead_ < 1) throw std::invalid_argument("ShardGroup: lookahead must be >= 1");
  outbox_.resize(shards_.size());
}

void ShardGroup::post(std::uint32_t src_shard, Mail mail) {
  assert(src_shard < outbox_.size());
  assert(mail.dst_shard < shards_.size());
  // The conservative contract: mail sent during a window must land
  // strictly beyond it, so barrier injection can never schedule into a
  // shard's past. horizon_ is 0 before the first window (setup-phase
  // posts are unconstrained).
  assert(mail.at >= horizon_ && "ShardGroup: mail arrival inside the current window");
  outbox_[src_shard].push_back(std::move(mail));
}

std::uint64_t ShardGroup::total_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto* shard : shards_) total += shard->fired();
  return total;
}

bool ShardGroup::open_window(std::uint64_t event_limit) {
  // Barrier point: all workers idle, so every outbox is quiescent.
  for (auto& box : outbox_) {
    if (box.empty()) continue;
    pending_.insert(pending_.end(), std::make_move_iterator(box.begin()),
                    std::make_move_iterator(box.end()));
    box.clear();
  }
  if (event_limit != 0 && total_fired() >= event_limit) {
    hit_limit_ = true;
    return false;
  }
  // T = global minimum next-event time, counting undelivered mail: a
  // shard whose only future work is inbound mail must not be left behind,
  // and the window boundary must be a pure function of global state so
  // every shard count produces the same boundary sequence.
  bool any = false;
  SimTime t = 0;
  for (auto* shard : shards_) {
    if (const auto next = shard->next_time()) {
      t = any ? std::min(t, *next) : *next;
      any = true;
    }
  }
  for (const auto& mail : pending_) {
    t = any ? std::min(t, mail.at) : mail.at;
    any = true;
  }
  if (!any) return false;
  horizon_ = t + lookahead_;
  // Canonical injection order: (arrival, src_lane, src_seq) is a total
  // order independent of shard grouping, so same-instant mail gets the
  // same FIFO tie-break seqs in the destination scheduler for every
  // shard count. Keys are unique (src_seq is monotone per lane), so
  // std::sort is deterministic here.
  std::sort(pending_.begin(), pending_.end(), [](const Mail& a, const Mail& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.src_lane != b.src_lane) return a.src_lane < b.src_lane;
    return a.src_seq < b.src_seq;
  });
  auto keep = pending_.begin();
  while (keep != pending_.end() && keep->at < horizon_) {
    shards_[keep->dst_shard]->schedule_at(keep->at, std::move(keep->fn));
    ++keep;
  }
  pending_.erase(pending_.begin(), keep);
  ++windows_;
  return true;
}

std::uint64_t ShardGroup::run(std::uint64_t event_limit) {
  hit_limit_ = false;
  windows_ = 0;
  const std::uint64_t fired_before = total_fired();

  if (shards_.size() == 1) {
    // Single shard: same window protocol (identical boundary sequence and
    // mailbox injection order), executed inline without threads.
    if (on_worker_) on_worker_(0);
    while (open_window(event_limit)) shards_[0]->run_until(horizon_ - 1);
    return total_fired() - fired_before;
  }

  const auto n = static_cast<std::uint32_t>(shards_.size());
  std::barrier window_start(n + 1);
  std::barrier window_done(n + 1);
  std::atomic<bool> stop{false};
  std::exception_ptr failure;
  std::mutex failure_mu;

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers.emplace_back([&, i] {
      if (on_worker_) on_worker_(i);
      for (;;) {
        window_start.arrive_and_wait();
        if (stop.load(std::memory_order_relaxed)) return;
        try {
          shards_[i]->run_until(horizon_ - 1);
        } catch (...) {
          const std::scoped_lock lock(failure_mu);
          if (!failure) failure = std::current_exception();
        }
        window_done.arrive_and_wait();
      }
    });
  }

  for (;;) {
    bool more = false;
    {
      const std::scoped_lock lock(failure_mu);
      if (!failure) more = open_window(event_limit);
    }
    if (!more) {
      stop.store(true, std::memory_order_relaxed);
      window_start.arrive_and_wait();
      break;
    }
    window_start.arrive_and_wait();
    window_done.arrive_and_wait();
  }
  for (auto& worker : workers) worker.join();
  {
    const std::scoped_lock lock(failure_mu);
    if (failure) std::rethrow_exception(failure);
  }
  return total_fired() - fired_before;
}

}  // namespace mobidist::sim
