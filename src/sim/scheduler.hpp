#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace mobidist::sim {

/// Opaque handle identifying a scheduled event; used to cancel timers.
///
/// Handles are never reused within one Scheduler instance: the id packs
/// a pooled slot index with that slot's generation counter, so a handle
/// kept across the event's firing (or cancellation) goes stale instead
/// of aliasing a later event.
struct EventHandle {
  std::uint64_t id = 0;

  /// True for handles returned by schedule(); default-constructed
  /// handles are invalid and cancel() ignores them.
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
  friend bool operator==(EventHandle, EventHandle) = default;
};

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events scheduled for the same virtual instant fire in the order they
/// were scheduled (FIFO tie-break by sequence number), which makes every
/// simulation run a pure function of (initial state, seed).
///
/// The hot path is allocation-free at steady state: callbacks live in
/// pooled slots via SmallFn's inline buffer, the priority queue is a
/// flat-array 4-ary heap of 24-byte entries, and cancel() destroys the
/// callback in place (releasing its captures immediately) while the
/// corpse entry is reclaimed lazily — eagerly compacted whenever corpses
/// outnumber live events, so schedule-then-cancel churn of far-future
/// timers cannot grow the queue without bound.
class Scheduler {
 public:
  /// Event callback type. SmallFn's inline buffer is sized for the
  /// substrate's largest hot-path capture, so scheduling never heap
  /// -allocates for ordinary events.
  using Callback = SmallFn;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` ticks from now. Returns a handle that
  /// can be passed to cancel().
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedule `fn` at an absolute virtual time; `at` must be >= now().
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Cancel a pending event. Returns true if the event existed and had
  /// not yet fired (or been cancelled). Cancelling an invalid/expired
  /// handle is a harmless no-op returning false. The callback is
  /// destroyed immediately, releasing whatever its captures own.
  bool cancel(EventHandle h);

  /// Run events until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run events with firing time <= `until`. Virtual time is left at
  /// `until` if the queue drained earlier, so subsequent relative
  /// scheduling behaves intuitively. Returns events fired.
  std::uint64_t run_until(SimTime until);

  /// Fire at most one event. Returns false if the queue is empty.
  bool step();

  /// Firing time of the earliest live event without executing it;
  /// nullopt when the queue is drained. Corpses surfacing at the front
  /// are reclaimed as a side effect (same cleanup as run_until's peek),
  /// which is why this is not const. The conservative-window coordinator
  /// (sim::ShardGroup) uses this to compute the global minimum next-event
  /// time across shards.
  [[nodiscard]] std::optional<SimTime> next_time();

  /// Events currently pending (scheduled, not fired, not cancelled).
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Heap entries currently queued, including cancelled corpses not yet
  /// reclaimed. Compaction keeps this <= 2 * pending() + a small floor;
  /// exposed so tests can pin the bound.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return heap_.size(); }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

  /// Safety valve for runaway simulations: run()/run_until() stop after
  /// this many events. 0 disables the limit (default).
  void set_event_limit(std::uint64_t limit) noexcept { limit_ = limit; }

  /// True if the last run()/run_until() stopped due to the event limit.
  [[nodiscard]] bool hit_event_limit() const noexcept { return hit_limit_; }

 private:
  /// One pooled callback slot. A slot owns at most one in-flight event;
  /// it is recycled (generation bumped) only after its heap entry has
  /// left the queue, so heap entries never need a generation of their own.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;
    bool scheduled = false;  // false after fire or cancel
  };

  /// 24-byte heap entry; the callback stays in its slot so sift moves
  /// are cheap flat copies.
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-instant events
    std::uint32_t slot;
  };

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;  // seqs are unique: a strict total order
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void push_entry(Entry e);
  Entry pop_entry() noexcept;
  void release_slot(std::uint32_t slot) noexcept;
  void compact();
  /// Pop entries until a live one surfaces; returns false when drained.
  bool pop_live(Entry& out);

  std::vector<Entry> heap_;      // 4-ary min-heap ordered by (at, seq)
  std::vector<Slot> slots_;      // slab of callback slots
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::size_t live_ = 0;         // scheduled, not fired/cancelled
  std::size_t corpses_ = 0;      // cancelled entries still in heap_
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t limit_ = 0;
  bool hit_limit_ = false;
};

}  // namespace mobidist::sim
