#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace mobidist::sim {

/// Opaque handle identifying a scheduled event; used to cancel timers.
///
/// Handles are never reused within one Scheduler instance.
struct EventHandle {
  std::uint64_t id = 0;

  [[nodiscard]] bool valid() const noexcept { return id != 0; }
  friend bool operator==(EventHandle, EventHandle) = default;
};

/// Deterministic single-threaded discrete-event scheduler.
///
/// Events scheduled for the same virtual instant fire in the order they
/// were scheduled (FIFO tie-break by sequence number), which makes every
/// simulation run a pure function of (initial state, seed).
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time. Starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` ticks from now. Returns a handle that
  /// can be passed to cancel().
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedule `fn` at an absolute virtual time; `at` must be >= now().
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Cancel a pending event. Returns true if the event existed and had
  /// not yet fired (or been cancelled). Cancelling an invalid/expired
  /// handle is a harmless no-op returning false.
  bool cancel(EventHandle h);

  /// Run events until the queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run events with firing time <= `until`. Virtual time is left at
  /// `until` if the queue drained earlier, so subsequent relative
  /// scheduling behaves intuitively. Returns events fired.
  std::uint64_t run_until(SimTime until);

  /// Fire at most one event. Returns false if the queue is empty.
  bool step();

  /// Events currently pending (scheduled, not fired, not cancelled).
  [[nodiscard]] std::size_t pending() const noexcept { return live_ids_.size(); }

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

  /// Safety valve for runaway simulations: run()/run_until() stop after
  /// this many events. 0 disables the limit (default).
  void set_event_limit(std::uint64_t limit) noexcept { limit_ = limit; }

  /// True if the last run()/run_until() stopped due to the event limit.
  [[nodiscard]] bool hit_event_limit() const noexcept { return hit_limit_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among same-instant events
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Event& out);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_ids_;  // scheduled, not fired/cancelled
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t limit_ = 0;
  bool hit_limit_ = false;
};

}  // namespace mobidist::sim
