#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace mobidist::sim {

namespace {

// Handle layout: generation in the high 32 bits, slot index + 1 in the
// low 32 bits (the +1 keeps id 0 reserved for "invalid").
constexpr std::uint64_t pack_handle(std::uint32_t generation, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(generation) << 32) |
         (static_cast<std::uint64_t>(slot) + 1);
}

// Corpses below this count are never worth a compaction pass.
constexpr std::size_t kCompactFloor = 64;

}  // namespace

EventHandle Scheduler::schedule(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Scheduler::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  if (!fn) throw std::invalid_argument("Scheduler: null callback");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.scheduled = true;
  push_entry(Entry{at, next_seq_++, slot});
  ++live_;
  return EventHandle{pack_handle(s.generation, slot)};
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const auto slot = static_cast<std::uint32_t>((h.id & 0xffffffffU) - 1);
  const auto generation = static_cast<std::uint32_t>(h.id >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.scheduled || s.generation != generation) return false;
  // Destroy the callback now (its captures may hold large payloads); the
  // heap entry becomes a corpse, dropped when it surfaces or compacted
  // away when corpses outnumber live events.
  s.fn.reset();
  s.scheduled = false;
  --live_;
  ++corpses_;
  if (corpses_ > live_ && corpses_ >= kCompactFloor) compact();
  return true;
}

void Scheduler::sift_up(std::size_t i) noexcept {
  const Entry e = heap_[i];
  while (i != 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Scheduler::push_entry(Entry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

Scheduler::Entry Scheduler::pop_entry() noexcept {
  assert(!heap_.empty());
  const Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return top;
}

void Scheduler::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  ++s.generation;  // stale handles to this slot stop matching
  free_.push_back(slot);
}

void Scheduler::compact() {
  // Drop every corpse in one pass, then restore the heap invariant
  // bottom-up. O(queue) — amortized against the cancels that created the
  // corpses, and it keeps queue_depth() <= 2 * pending() + kCompactFloor.
  std::size_t kept = 0;
  for (const Entry& e : heap_) {
    if (slots_[e.slot].scheduled) {
      heap_[kept++] = e;
    } else {
      release_slot(e.slot);
    }
  }
  heap_.resize(kept);
  corpses_ = 0;
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

std::optional<SimTime> Scheduler::next_time() {
  while (!heap_.empty()) {
    if (slots_[heap_.front().slot].scheduled) return heap_.front().at;
    release_slot(pop_entry().slot);
    --corpses_;
  }
  return std::nullopt;
}

bool Scheduler::pop_live(Entry& out) {
  while (!heap_.empty()) {
    const Entry e = pop_entry();
    if (slots_[e.slot].scheduled) {
      out = e;
      return true;
    }
    // A corpse surfaced: its slot can be recycled now.
    release_slot(e.slot);
    --corpses_;
  }
  return false;
}

bool Scheduler::step() {
  Entry e;
  if (!pop_live(e)) return false;
  Slot& s = slots_[e.slot];
  Callback fn = std::move(s.fn);
  s.fn.reset();
  s.scheduled = false;
  release_slot(e.slot);
  --live_;
  now_ = e.at;
  ++fired_;
  fn();
  return true;
}

std::uint64_t Scheduler::run() {
  hit_limit_ = false;
  std::uint64_t n = 0;
  while (step()) {
    ++n;
    if (limit_ != 0 && fired_ >= limit_) {
      hit_limit_ = true;
      break;
    }
  }
  return n;
}

std::uint64_t Scheduler::run_until(SimTime until) {
  hit_limit_ = false;
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    // Peek: drop corpses at the front without touching live events past
    // the horizon (they stay queued untouched).
    if (!slots_[heap_.front().slot].scheduled) {
      release_slot(pop_entry().slot);
      --corpses_;
      continue;
    }
    if (heap_.front().at > until) break;
    const Entry e = pop_entry();
    Slot& s = slots_[e.slot];
    Callback fn = std::move(s.fn);
    s.fn.reset();
    s.scheduled = false;
    release_slot(e.slot);
    --live_;
    now_ = e.at;
    ++fired_;
    fn();
    ++n;
    if (limit_ != 0 && fired_ >= limit_) {
      hit_limit_ = true;
      return n;
    }
  }
  if (until > now_) now_ = until;
  return n;
}

}  // namespace mobidist::sim
