#include "sim/scheduler.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mobidist::sim {

EventHandle Scheduler::schedule(Duration delay, Callback fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Scheduler::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  if (!fn) throw std::invalid_argument("Scheduler: null callback");
  const std::uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  live_ids_.insert(id);
  return EventHandle{id};
}

bool Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Erase from the live set; the queue drops the corpse lazily when the
  // event reaches the front (a priority_queue cannot cheaply remove an
  // arbitrary element).
  return live_ids_.erase(h.id) > 0;
}

bool Scheduler::pop_one(Event& out) {
  while (!queue_.empty()) {
    // top() is const; the move is safe because we pop immediately after.
    out = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (live_ids_.erase(out.id) > 0) return true;  // not cancelled
  }
  return false;
}

bool Scheduler::step() {
  Event ev;
  if (!pop_one(ev)) return false;
  now_ = ev.at;
  ++fired_;
  ev.fn();
  return true;
}

std::uint64_t Scheduler::run() {
  hit_limit_ = false;
  std::uint64_t n = 0;
  while (step()) {
    ++n;
    if (limit_ != 0 && fired_ >= limit_) {
      hit_limit_ = true;
      break;
    }
  }
  return n;
}

std::uint64_t Scheduler::run_until(SimTime until) {
  hit_limit_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev;
    if (!pop_one(ev)) break;
    if (ev.at > until) {
      // pop_one skipped cancelled corpses and surfaced a live event past
      // the horizon: requeue it untouched and stop.
      live_ids_.insert(ev.id);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.at;
    ++fired_;
    ev.fn();
    ++n;
    if (limit_ != 0 && fired_ >= limit_) {
      hit_limit_ = true;
      return n;
    }
  }
  if (until > now_) now_ = until;
  return n;
}

}  // namespace mobidist::sim
