#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mobidist::sim {

/// Move-only type-erased `void()` callable with a fixed inline buffer.
///
/// The scheduler's replacement for `std::function<void()>`: callables
/// whose captures fit in kInlineCapacity bytes (every hot-path lambda in
/// `net` does) are stored in place, so scheduling them performs no heap
/// allocation. Larger callables fall back to a single heap allocation,
/// trading speed for correctness rather than failing to compile.
///
/// Unlike `std::function` it is move-only, so captures may own
/// non-copyable resources and moving a SmallFn never allocates.
class SmallFn {
 public:
  /// Inline storage size. Sized for the largest `net` hot-path capture
  /// (a 128-byte Envelope plus the downlink failure callback and retry
  /// bookkeeping, ~200 bytes) with headroom; raising it is cheap because
  /// Scheduler slots are pooled.
  static constexpr std::size_t kInlineCapacity = 256;

  SmallFn() noexcept = default;

  /// Wrap any `void()` callable. Lives inline when it fits (size and
  /// alignment) and its move constructor cannot throw; otherwise on the
  /// heap.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { steal(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroy the held callable (if any); the SmallFn becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  /// True when a callable is held (empty SmallFns must not be invoked).
  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invoke the held callable. Precondition: non-empty.
  void operator()() { ops_->invoke(this); }

 private:
  struct Ops {
    void (*invoke)(SmallFn* self);
    void (*relocate)(SmallFn* dst, SmallFn* src) noexcept;  // move into dst, leave src empty
    void (*destroy)(SmallFn* self) noexcept;
  };

  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  [[nodiscard]] Fn* inline_target() noexcept {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }

  template <typename Fn>
  static void inline_invoke(SmallFn* self) {
    (*self->inline_target<Fn>())();
  }
  template <typename Fn>
  static void inline_relocate(SmallFn* dst, SmallFn* src) noexcept {
    ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*src->inline_target<Fn>()));
    src->inline_target<Fn>()->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(SmallFn* self) noexcept {
    self->inline_target<Fn>()->~Fn();
  }
  template <typename Fn>
  static void heap_invoke(SmallFn* self) {
    (*static_cast<Fn*>(self->heap_))();
  }
  static void heap_relocate(SmallFn* dst, SmallFn* src) noexcept {
    dst->heap_ = src->heap_;
    src->heap_ = nullptr;
  }
  template <typename Fn>
  static void heap_destroy(SmallFn* self) noexcept {
    delete static_cast<Fn*>(self->heap_);
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {&inline_invoke<Fn>, &inline_relocate<Fn>,
                                     &inline_destroy<Fn>};

  template <typename Fn>
  static constexpr Ops kHeapOps = {&heap_invoke<Fn>, &heap_relocate,
                                   &heap_destroy<Fn>};

  void steal(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(this, &other);
      other.ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace mobidist::sim
