#pragma once

#include <array>
#include <cstdint>

namespace mobidist::sim {

/// Deterministic xoshiro256** PRNG (Blackman & Vigna).
///
/// Used instead of std::mt19937 so that simulation results are
/// reproducible across standard libraries and platforms. Seeding goes
/// through splitmix64, so any 64-bit seed (including 0) is safe.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Geometric-style Zipf sample in [0, n): rank r drawn with weight
  /// 1/(r+1)^s. Used by hotspot mobility/workload generators.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Fork an independent, deterministic child stream. Children of the
  /// same parent are distinct; the parent advances one step per spawn.
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace mobidist::sim
