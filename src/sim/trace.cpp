#include "sim/trace.hpp"

#include <sstream>
#include <utility>

namespace mobidist::sim {

std::string_view to_string(TraceLevel level) noexcept {
  switch (level) {
    case TraceLevel::kDebug: return "DEBUG";
    case TraceLevel::kInfo: return "INFO";
    case TraceLevel::kWarn: return "WARN";
    case TraceLevel::kError: return "ERROR";
  }
  return "?";
}

void Trace::log(SimTime at, TraceLevel level, std::string_view component, std::string text) {
  if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
  TraceRecord rec{at, level, std::string(component), std::move(text)};
  if (sink_) sink_(rec);
  if (capacity_ == 0) return;
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(rec));
}

void Trace::clear() {
  records_.clear();
  dropped_ = 0;
}

std::size_t Trace::count_containing(std::string_view needle) const {
  std::size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.text.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::string Trace::format(const TraceRecord& rec) {
  std::ostringstream os;
  os << "[t=" << rec.at << "] " << to_string(rec.level) << " " << rec.component << " | "
     << rec.text;
  return os.str();
}

}  // namespace mobidist::sim
