#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace mobidist::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire-style rejection: discard the biased low zone.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  assert(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF over the (small-n) harmonic weights; n here is a cell or
  // host count, so the linear scan is fine.
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) total += 1.0 / std::pow(static_cast<double>(r + 1), s);
  double target = uniform01() * total;
  for (std::uint64_t r = 0; r < n; ++r) {
    target -= 1.0 / std::pow(static_cast<double>(r + 1), s);
    if (target <= 0.0) return r;
  }
  return n - 1;
}

Rng Rng::split() noexcept {
  return Rng(next());
}

}  // namespace mobidist::sim
