#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace mobidist::sim {

/// Conservative-window coordinator for a group of shard schedulers (the
/// "localities" of the sharded simulation core).
///
/// The group advances virtual time in windows. Each window:
///
///   1. Drain every shard's outbox of cross-shard mail into the pending
///      set, then compute T = the global minimum next-event time across
///      all shard schedulers AND all pending mail arrivals.
///   2. Set horizon = T + lookahead. Inject every pending mail with
///      arrival < horizon into its destination scheduler, in the
///      canonical order (arrival, src_lane, src_seq) — so the FIFO
///      tie-break seq each mail receives is a function of the mail set,
///      not of which shard produced it first in wall-clock time.
///   3. Run every shard in parallel up to (and including) horizon - 1.
///
/// Safety: `lookahead` must be a lower bound on cross-shard latency.
/// Then any mail posted during a window has arrival >= send_time +
/// lookahead >= T + lookahead = horizon, i.e. strictly beyond the events
/// this window executes, so injecting at the next barrier can never
/// schedule into a shard's past. post() asserts this invariant.
///
/// Determinism: window boundaries are computed from the *global* minimum
/// (even for a single-shard group), and all cross-lane traffic rides the
/// mailbox, so the per-lane projection of the execution order is
/// identical for every shard count. With one shard run() executes inline
/// on the calling thread; with more it drives persistent worker threads
/// through a pair of barriers per window.
class ShardGroup {
 public:
  /// One cross-shard message: run `fn` on shard `dst_shard` at virtual
  /// time `at`. (src_lane, src_seq) is the canonical injection tie-break;
  /// src_seq must be monotone per source lane.
  struct Mail {
    SimTime at = 0;
    std::uint32_t dst_shard = 0;
    std::uint32_t src_lane = 0;
    std::uint64_t src_seq = 0;
    SmallFn fn;
  };

  /// `shards` outlive the group; `lookahead` >= 1 is the safe window
  /// width (the wired-latency lower bound in the net layer).
  /// `on_worker`, when set, runs once on each worker thread before it
  /// executes any event (the Network installs its thread-local shard
  /// index there); it is also invoked inline for the single-shard run.
  ShardGroup(std::vector<Scheduler*> shards, Duration lookahead,
             std::function<void(std::uint32_t)> on_worker = {});

  /// Post cross-shard mail from shard `src_shard` (the caller's own
  /// shard; during a window only that shard's thread may use its slot).
  /// Asserts at >= current horizon — the conservative-lookahead contract.
  void post(std::uint32_t src_shard, Mail mail);

  /// Run windows until every scheduler drains and no mail is pending.
  /// Returns total events fired during this call. `event_limit` != 0
  /// stops (with hit_event_limit()) once the group-wide fired() total
  /// reaches it — checked at window boundaries, so the limit is honoured
  /// with window granularity rather than exactly.
  std::uint64_t run(std::uint64_t event_limit = 0);

  /// True if the last run() stopped on the event limit.
  [[nodiscard]] bool hit_event_limit() const noexcept { return hit_limit_; }
  /// Conservative windows executed by the last run().
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  /// The safe lookahead this group synchronizes with.
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }
  /// Sum of fired() across the member schedulers.
  [[nodiscard]] std::uint64_t total_fired() const noexcept;
  /// Number of member schedulers.
  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }

 private:
  /// Compute the next window and inject deliverable mail; false when the
  /// group is drained (or the event limit tripped). Runs on the
  /// coordinator thread between barriers.
  bool open_window(std::uint64_t event_limit);

  std::vector<Scheduler*> shards_;
  Duration lookahead_;
  std::function<void(std::uint32_t)> on_worker_;
  /// Per-shard outboxes: slot i is written only by shard i's thread
  /// during a window and drained only by the coordinator between
  /// windows, so no locking is needed.
  std::vector<std::vector<Mail>> outbox_;
  /// Mail not yet deliverable (arrival >= the last horizon), owned by
  /// the coordinator.
  std::vector<Mail> pending_;
  SimTime horizon_ = 0;
  std::uint64_t windows_ = 0;
  bool hit_limit_ = false;
};

}  // namespace mobidist::sim
