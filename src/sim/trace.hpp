#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace mobidist::sim {

/// Severity of a trace record.
enum class TraceLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Level name as rendered in formatted records: "DEBUG" / "INFO" / ...
[[nodiscard]] std::string_view to_string(TraceLevel level) noexcept;

/// One trace record: virtual timestamp, component tag, free-form text.
struct TraceRecord {
  SimTime at = 0;
  TraceLevel level = TraceLevel::kInfo;
  std::string component;
  std::string text;
};

/// Bounded in-memory event trace for debugging simulations.
///
/// Records below `min_level` are dropped at the door; the buffer keeps
/// the most recent `capacity` records. An optional sink receives every
/// accepted record as it arrives (used by examples to stream to stdout).
class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// Drop records below `level` at the door (default: kInfo).
  void set_min_level(TraceLevel level) noexcept { min_level_ = level; }
  /// Current acceptance threshold.
  [[nodiscard]] TraceLevel min_level() const noexcept { return min_level_; }

  /// True when a record at `level` would be accepted. Callers that build
  /// a record text with string concatenation should check this first so
  /// that disabled levels cost nothing on the hot path.
  [[nodiscard]] bool enabled(TraceLevel level) const noexcept { return level >= min_level_; }

  /// Observer invoked for every accepted record as it arrives.
  using Sink = std::function<void(const TraceRecord&)>;
  /// Install (or clear, with {}) the streaming sink.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Append one record (dropped silently when below min_level()). Hot
  /// call sites should guard with enabled() before building `text`.
  void log(SimTime at, TraceLevel level, std::string_view component, std::string text);

  /// Retained records, oldest first (bounded by the capacity).
  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept { return records_; }
  /// Accepted records evicted to keep the buffer within capacity.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  /// Forget all retained records and the dropped() count.
  void clear();

  /// Number of retained records whose text contains `needle` (test helper).
  [[nodiscard]] std::size_t count_containing(std::string_view needle) const;

  /// Render one record as "[t=123] INFO  net | text".
  [[nodiscard]] static std::string format(const TraceRecord& rec);

 private:
  std::size_t capacity_;
  TraceLevel min_level_ = TraceLevel::kInfo;
  std::deque<TraceRecord> records_;
  std::size_t dropped_ = 0;
  Sink sink_;
};

}  // namespace mobidist::sim
