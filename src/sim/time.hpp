#pragma once

#include <cstdint>
#include <limits>

namespace mobidist::sim {

/// Virtual simulation time, measured in abstract ticks.
///
/// The kernel never interprets ticks as a physical unit; workloads pick
/// their own scale (tests mostly treat one tick as one microsecond).
using SimTime = std::uint64_t;

/// A span of virtual time, in the same tick unit as SimTime.
using Duration = std::uint64_t;

/// Sentinel for "never" / "not scheduled".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

}  // namespace mobidist::sim
