#pragma once

#include <cstddef>
#include <cstdint>

#include "cost/cost_model.hpp"

namespace mobidist::analysis {

// Closed-form cost expressions from the paper, verbatim. Benches print
// them next to simulated measurements; tests assert exact agreement in
// controlled scenarios. All return "cost units" under the given params.

// --- §3.1.1 Lamport-style mutual exclusion --------------------------------

/// L1: one CS execution among N mobile hosts:
/// 3*(N-1)*(2*c_wireless + c_search).
[[nodiscard]] double l1_execution_cost(std::uint32_t n, const cost::CostParams& p);

/// L1 wireless hops per execution: 6*(N-1) (= total MH energy in unit
/// -energy terms).
[[nodiscard]] std::uint64_t l1_wireless_hops(std::uint32_t n);

/// L1 energy at the initiating MH: proportional to 3*(N-1).
[[nodiscard]] std::uint64_t l1_initiator_energy(std::uint32_t n);

/// L2: one CS execution with M MSSs:
/// (3*c_wireless + c_fixed + c_search) + 3*(M-1)*c_fixed.
[[nodiscard]] double l2_execution_cost(std::uint32_t m, const cost::CostParams& p);

/// L2 wireless messages per execution: exactly 3.
[[nodiscard]] constexpr std::uint64_t l2_wireless_msgs() { return 3; }

// --- §3.1.2 token-ring mutual exclusion -----------------------------------

/// R1: one traversal of the N-host ring: N*(2*c_wireless + c_search) —
/// independent of the number of requests served.
[[nodiscard]] double r1_traversal_cost(std::uint32_t n, const cost::CostParams& p);

/// R2/R2': K requests served during one ring traversal:
/// K*(3*c_wireless + c_fixed + c_search) + M*c_fixed.
[[nodiscard]] double r2_cost(std::uint64_t k, std::uint32_t m, const cost::CostParams& p);

/// Upper bound on grants per traversal: N*M for R2, N for R2'.
[[nodiscard]] constexpr std::uint64_t r2_max_grants_per_traversal(std::uint32_t n,
                                                                  std::uint32_t m) {
  return static_cast<std::uint64_t>(n) * m;
}
[[nodiscard]] constexpr std::uint64_t r2prime_max_grants_per_traversal(std::uint32_t n) {
  return n;
}

// --- Naimi–Trehel path reversal on the MSS tier (bench e10) ---------------

/// The m-th harmonic number H_m = sum_{k=1..m} 1/k (H_0 = 0).
[[nodiscard]] double harmonic(std::uint32_t m);

/// Average wired messages per CS entry under random requests across M
/// MSS nodes: H_M claim-forward hops on the dynamic father tree plus
/// one token transfer (Lavault's average-case analysis of Naimi–Trehel,
/// O(log M); see arxiv cs/0611098). Worst case is M-1 + 1.
[[nodiscard]] double pathrev_avg_messages(std::uint32_t m);

/// Average-cost upper bound for one full CS entry through an MSS
/// attachment point: (H_M + 1) wired messages plus the L2-style
/// wireless envelope (request up, grant down, return up) and one
/// search for the grant's last wireless hop:
/// (H_M + 1)*c_fixed + 3*c_wireless + c_search.
[[nodiscard]] double pathrev_entry_cost_bound(std::uint32_t m, const cost::CostParams& p);

// --- mobility models: expected significant-move fraction f (E11) ----------

/// Uniform pattern over M cells split into R contiguous regions (R
/// divides M): a move departs anywhere and lands uniformly on one of
/// the other M-1 cells, M/R - 1 of which share the region, so
/// f = (M - M/R) / (M - 1).
[[nodiscard]] double uniform_region_f(std::uint32_t m, std::uint32_t r);

/// Neighbor (ring) pattern over M cells in R regions (R divides M, at
/// least two cells per region... R == M degenerates to f = 1): each
/// region has two boundary cells and each crosses with probability 1/2,
/// so under the uniform stationary cell distribution f = R / M.
[[nodiscard]] double neighbor_region_f(std::uint32_t m, std::uint32_t r);

// --- §4 group location management -------------------------------------

/// §4.1 pure search, one group message: (|G|-1)*(2*c_wireless + c_search).
[[nodiscard]] double pure_search_msg_cost(std::size_t g, const cost::CostParams& p);

/// §4.2 always inform, one fan-out (group message or location update):
/// (|G|-1)*(2*c_wireless + c_fixed).
[[nodiscard]] double always_inform_unit_cost(std::size_t g, const cost::CostParams& p);

/// §4.2 total over a window: (MOB + MSG) * unit.
[[nodiscard]] double always_inform_total(std::uint64_t mob, std::uint64_t msg,
                                         std::size_t g, const cost::CostParams& p);

/// §4.2 effective cost per group message: (MOB/MSG + 1) * unit.
[[nodiscard]] double always_inform_effective(double mob_msg_ratio, std::size_t g,
                                             const cost::CostParams& p);

/// §4.3 location view, one group message:
/// (|LV|-1)*c_fixed + |G|*c_wireless.
[[nodiscard]] double location_view_msg_cost(std::size_t lv, std::size_t g,
                                            const cost::CostParams& p);

/// §4.3 one view update: at most (|LV|+3)*c_fixed.
[[nodiscard]] double location_view_update_bound(std::size_t lv, const cost::CostParams& p);

/// §4.3 effective cost bound per group message:
/// ((f*MOB/MSG + 1)*|LV^max| + 3*f*MOB/MSG - 1)*c_fixed + |G|*c_wireless.
[[nodiscard]] double location_view_effective_bound(double significant_mob_msg_ratio,
                                                   std::size_t lv_max, std::size_t g,
                                                   const cost::CostParams& p);

}  // namespace mobidist::analysis
