#include "analysis/formulas.hpp"

namespace mobidist::analysis {

double l1_execution_cost(std::uint32_t n, const cost::CostParams& p) {
  return 3.0 * (n - 1) * (2 * p.c_wireless + p.c_search);
}

std::uint64_t l1_wireless_hops(std::uint32_t n) { return 6ULL * (n - 1); }

std::uint64_t l1_initiator_energy(std::uint32_t n) { return 3ULL * (n - 1); }

double l2_execution_cost(std::uint32_t m, const cost::CostParams& p) {
  return (3 * p.c_wireless + p.c_fixed + p.c_search) + 3.0 * (m - 1) * p.c_fixed;
}

double r1_traversal_cost(std::uint32_t n, const cost::CostParams& p) {
  return static_cast<double>(n) * (2 * p.c_wireless + p.c_search);
}

double r2_cost(std::uint64_t k, std::uint32_t m, const cost::CostParams& p) {
  return static_cast<double>(k) * (3 * p.c_wireless + p.c_fixed + p.c_search) +
         static_cast<double>(m) * p.c_fixed;
}

double harmonic(std::uint32_t m) {
  double h = 0.0;
  for (std::uint32_t k = 1; k <= m; ++k) h += 1.0 / k;
  return h;
}

double pathrev_avg_messages(std::uint32_t m) { return harmonic(m) + 1.0; }

double pathrev_entry_cost_bound(std::uint32_t m, const cost::CostParams& p) {
  return pathrev_avg_messages(m) * p.c_fixed + 3.0 * p.c_wireless + p.c_search;
}

double uniform_region_f(std::uint32_t m, std::uint32_t r) {
  const double cells_per_region = static_cast<double>(m) / r;
  return (static_cast<double>(m) - cells_per_region) / (static_cast<double>(m) - 1.0);
}

double neighbor_region_f(std::uint32_t m, std::uint32_t r) {
  return static_cast<double>(r) / static_cast<double>(m);
}

double pure_search_msg_cost(std::size_t g, const cost::CostParams& p) {
  return static_cast<double>(g - 1) * (2 * p.c_wireless + p.c_search);
}

double always_inform_unit_cost(std::size_t g, const cost::CostParams& p) {
  return static_cast<double>(g - 1) * (2 * p.c_wireless + p.c_fixed);
}

double always_inform_total(std::uint64_t mob, std::uint64_t msg, std::size_t g,
                           const cost::CostParams& p) {
  return static_cast<double>(mob + msg) * always_inform_unit_cost(g, p);
}

double always_inform_effective(double mob_msg_ratio, std::size_t g,
                               const cost::CostParams& p) {
  return (mob_msg_ratio + 1.0) * always_inform_unit_cost(g, p);
}

double location_view_msg_cost(std::size_t lv, std::size_t g, const cost::CostParams& p) {
  return static_cast<double>(lv - 1) * p.c_fixed + static_cast<double>(g) * p.c_wireless;
}

double location_view_update_bound(std::size_t lv, const cost::CostParams& p) {
  return (static_cast<double>(lv) + 3.0) * p.c_fixed;
}

double location_view_effective_bound(double significant_mob_msg_ratio, std::size_t lv_max,
                                     std::size_t g, const cost::CostParams& p) {
  const double fr = significant_mob_msg_ratio;
  return ((fr + 1.0) * static_cast<double>(lv_max) + 3.0 * fr - 1.0) * p.c_fixed +
         static_cast<double>(g) * p.c_wireless;
}

}  // namespace mobidist::analysis
