#include "obs/events.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>
#include <utility>

namespace mobidist::obs {

namespace {

struct KindName {
  EventKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 23> kKindNames{{
    {EventKind::kSend, "send"},
    {EventKind::kRecv, "recv"},
    {EventKind::kDeliver, "deliver"},
    {EventKind::kHandoffBegin, "handoff_begin"},
    {EventKind::kHandoffEnd, "handoff_end"},
    {EventKind::kDisconnect, "disconnect"},
    {EventKind::kReconnect, "reconnect"},
    {EventKind::kSearchRound, "search_round"},
    {EventKind::kCsRequest, "cs_request"},
    {EventKind::kCsEnter, "cs_enter"},
    {EventKind::kCsExit, "cs_exit"},
    {EventKind::kTokenDepart, "token_depart"},
    {EventKind::kTokenArrive, "token_arrive"},
    {EventKind::kLocationUpdate, "location_update"},
    {EventKind::kViewChange, "view_change"},
    {EventKind::kMsgDropped, "msg_dropped"},
    {EventKind::kMsgDuplicated, "msg_duplicated"},
    {EventKind::kMssCrash, "mss_crash"},
    {EventKind::kMssRecover, "mss_recover"},
    {EventKind::kPacketSend, "packet_send"},
    {EventKind::kPacketFlush, "packet_flush"},
    {EventKind::kReqForward, "req_forward"},
    {EventKind::kPathReversal, "path_reversal"},
}};

}  // namespace

std::string_view to_string(EventKind kind) noexcept {
  for (const auto& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

std::optional<EventKind> parse_kind(std::string_view text) noexcept {
  for (const auto& entry : kKindNames) {
    if (entry.name == text) return entry.kind;
  }
  return std::nullopt;
}

std::string to_string(Entity entity) {
  switch (entity.kind) {
    case Entity::Kind::kMss: return "mss:" + std::to_string(entity.idx);
    case Entity::Kind::kMh: return "mh:" + std::to_string(entity.idx);
    case Entity::Kind::kNone: break;
  }
  return "?";
}

std::optional<Entity> parse_entity(std::string_view text) noexcept {
  if (text == "?") return Entity{};
  Entity::Kind kind = Entity::Kind::kNone;
  if (text.starts_with("mss:")) {
    kind = Entity::Kind::kMss;
    text.remove_prefix(4);
  } else if (text.starts_with("mh:")) {
    kind = Entity::Kind::kMh;
    text.remove_prefix(3);
  } else {
    return std::nullopt;
  }
  std::uint32_t idx = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), idx);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return Entity{kind, idx};
}

std::string describe(const Event& event) {
  std::ostringstream os;
  switch (event.kind) {
    case EventKind::kSend:
      os << "send " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " proto=" << event.arg;
      break;
    case EventKind::kRecv:
      os << "recv " << to_string(event.entity) << " <- " << to_string(event.peer)
         << " proto=" << event.arg;
      break;
    case EventKind::kDeliver:
      os << "deliver " << to_string(event.entity) << " <- " << to_string(event.peer)
         << " proto=" << event.arg;
      break;
    case EventKind::kHandoffBegin:
      os << "handoff mh:" << event.arg << " begin " << to_string(event.peer) << " -> "
         << to_string(event.entity);
      break;
    case EventKind::kHandoffEnd:
      os << "handoff mh:" << event.arg << " end " << to_string(event.peer) << " -> "
         << to_string(event.entity);
      break;
    case EventKind::kDisconnect:
      os << "disconnect " << to_string(event.entity) << " at " << to_string(event.peer);
      break;
    case EventKind::kReconnect:
      os << "reconnect " << to_string(event.entity) << " at " << to_string(event.peer);
      break;
    case EventKind::kSearchRound:
      os << "locating " << to_string(event.peer) << " from " << to_string(event.entity)
         << " round " << event.arg;
      break;
    case EventKind::kCsRequest:
      os << "cs request " << to_string(event.entity);
      break;
    case EventKind::kCsEnter:
      os << "cs enter " << to_string(event.entity);
      break;
    case EventKind::kCsExit:
      os << "cs exit " << to_string(event.entity);
      break;
    case EventKind::kTokenDepart:
      os << "token depart " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " val=" << event.arg;
      break;
    case EventKind::kTokenArrive:
      os << "token arrive " << to_string(event.entity) << " val=" << event.arg;
      break;
    case EventKind::kLocationUpdate:
      os << "location update " << to_string(event.entity) << " at " << to_string(event.peer);
      break;
    case EventKind::kViewChange:
      os << "view change " << to_string(event.entity) << " version " << event.arg;
      break;
    case EventKind::kMsgDropped:
      os << "drop " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " proto=" << event.arg;
      break;
    case EventKind::kMsgDuplicated:
      os << "dup " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " proto=" << event.arg;
      break;
    case EventKind::kMssCrash:
      os << "crash " << to_string(event.entity) << " down for " << event.arg;
      break;
    case EventKind::kMssRecover:
      os << "recover " << to_string(event.entity);
      break;
    case EventKind::kPacketSend:
      os << "packet send " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " msgs=" << event.arg;
      break;
    case EventKind::kPacketFlush:
      os << "packet flush " << to_string(event.entity) << " <- " << to_string(event.peer)
         << " msgs=" << event.arg;
      break;
    case EventKind::kReqForward:
      os << "claim forward " << to_string(event.entity) << " -> " << to_string(event.peer)
         << " origin=mss:" << event.arg;
      break;
    case EventKind::kPathReversal:
      os << "path reversal " << to_string(event.entity) << " father -> "
         << to_string(event.peer);
      break;
  }
  if (!event.detail.empty()) os << " [" << event.detail << "]";
  return os.str();
}

EventId EventStream::emit(sim::SimTime at, const Emit& spec) {
  // Steady state (warm interner, grown counters): stack Event, one hash
  // lookup, one 64-byte ring store — zero heap allocations.
  const std::uint16_t detail_id = interner_.intern(spec.detail);

  Event ev;
  ev.id = binlog_.head() + 1;
  ev.at = at;
  ev.kind = spec.kind;
  ev.entity = spec.entity;
  ev.peer = spec.peer;
  ev.cause = spec.cause != 0 ? spec.cause : current_cause_;
  ev.channel = spec.channel;
  ev.arg = spec.arg;
  ev.detail = interner_.view(detail_id);

  auto& st = state_of(ev.entity);
  ev.seq = ++st.seq;
  const std::uint64_t cause_clock =
      spec.cause_clock != 0 ? spec.cause_clock : lamport_of(ev.cause);
  st.clock = std::max(st.clock, cause_clock) + 1;
  ev.lamport = st.clock;

  if (sink_) sink_(ev);

  binlog_.append(encode(ev, detail_id));
  return ev.id;
}

std::vector<Event> EventStream::snapshot() const {
  std::vector<Event> out;
  const std::size_t n = retained();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(event_at(i));
  return out;
}

Event EventStream::event_at(std::size_t pos) const noexcept {
  const EventId id = binlog_.dropped() + pos + 1;
  const BinRecord& rec = binlog_.record_of(id);
  return decode(rec, id, interner_.view(rec.detail_id));
}

EventStream::EntityState& EventStream::state_of(Entity entity) {
  auto slot = [idx = entity.idx](std::vector<EntityState>& pool) -> EntityState& {
    if (idx >= pool.size()) pool.resize(idx + 1);
    return pool[idx];
  };
  switch (entity.kind) {
    case Entity::Kind::kMss: return slot(mss_state_);
    case Entity::Kind::kMh: return slot(mh_state_);
    case Entity::Kind::kNone: break;
  }
  return none_state_;
}

std::uint64_t EventStream::lamport_of(EventId id) const noexcept {
  // Eviction is oldest-first, so retained ids form the contiguous range
  // [dropped() + 1, emitted()] and mask straight into the ring.
  if (id == 0 || id <= binlog_.dropped() || id > binlog_.head()) return 0;
  return binlog_.record_of(id).lamport;
}

void EventStream::clear() {
  binlog_.clear();
  interner_.clear();
  mss_state_.clear();
  mh_state_.clear();
  none_state_ = EntityState{};
  current_cause_ = 0;
}

// --- export / import --------------------------------------------------------

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Minimal field scanner for the flat single-line objects event_json
/// produces: finds `"key":` at the top level and returns the raw value
/// text (string values come back without quotes, unescaped).
class FieldReader {
 public:
  explicit FieldReader(std::string_view line) : line_(line) {}

  std::optional<std::string> raw(std::string_view key) const {
    const std::string needle = '"' + std::string(key) + "\":";
    const auto pos = line_.find(needle);
    if (pos == std::string_view::npos) return std::nullopt;
    std::size_t i = pos + needle.size();
    if (i >= line_.size()) return std::nullopt;
    if (line_[i] == '"') {
      std::string out;
      for (++i; i < line_.size(); ++i) {
        const char c = line_[i];
        if (c == '"') return out;
        if (c == '\\' && i + 1 < line_.size()) {
          const char next = line_[++i];
          switch (next) {
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u':
              if (i + 4 < line_.size()) {
                unsigned code = 0;
                const auto* first = line_.data() + i + 1;
                std::from_chars(first, first + 4, code, 16);
                out += static_cast<char>(code);
                i += 4;
              }
              break;
            default: out += next;
          }
        } else {
          out += c;
        }
      }
      return std::nullopt;  // unterminated string
    }
    std::size_t end = i;
    while (end < line_.size() && line_[end] != ',' && line_[end] != '}') ++end;
    return std::string(line_.substr(i, end - i));
  }

  std::optional<std::uint64_t> number(std::string_view key) const {
    const auto text = raw(key);
    if (!text) return std::nullopt;
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text->data(), text->data() + text->size(), value);
    if (ec != std::errc{} || ptr != text->data() + text->size()) return std::nullopt;
    return value;
  }

 private:
  std::string_view line_;
};

}  // namespace

std::string event_json(const Event& event) {
  std::string out;
  out.reserve(160);
  out += "{\"id\":";
  out += std::to_string(event.id);
  out += ",\"t\":";
  out += std::to_string(event.at);
  out += ",\"kind\":\"";
  out += to_string(event.kind);
  out += "\",\"entity\":\"";
  out += to_string(event.entity);
  out += "\",\"peer\":\"";
  out += to_string(event.peer);
  out += "\",\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"lamport\":";
  out += std::to_string(event.lamport);
  out += ",\"cause\":";
  out += std::to_string(event.cause);
  out += ",\"channel\":";
  out += std::to_string(event.channel);
  out += ",\"arg\":";
  out += std::to_string(event.arg);
  out += ",\"detail\":";
  append_json_string(out, event.detail);
  out += '}';
  return out;
}

std::optional<Event> event_from_json(std::string_view line, InternTable& strings) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const FieldReader fields(line);
  Event ev;
  const auto id = fields.number("id");
  const auto at = fields.number("t");
  const auto kind_text = fields.raw("kind");
  const auto entity_text = fields.raw("entity");
  const auto peer_text = fields.raw("peer");
  const auto seq = fields.number("seq");
  const auto lamport = fields.number("lamport");
  const auto cause = fields.number("cause");
  const auto channel = fields.number("channel");
  const auto arg = fields.number("arg");
  auto detail = fields.raw("detail");
  if (!id || !at || !kind_text || !entity_text || !peer_text || !seq || !lamport ||
      !cause || !channel || !arg || !detail) {
    return std::nullopt;
  }
  const auto kind = parse_kind(*kind_text);
  const auto entity = parse_entity(*entity_text);
  const auto peer = parse_entity(*peer_text);
  if (!kind || !entity || !peer) return std::nullopt;
  ev.id = *id;
  ev.at = *at;
  ev.kind = *kind;
  ev.entity = *entity;
  ev.peer = *peer;
  ev.seq = *seq;
  ev.lamport = *lamport;
  ev.cause = *cause;
  ev.channel = *channel;
  ev.arg = *arg;
  // The unescaped text is a temporary: intern it so the returned view
  // outlives this call (backed by the caller's table).
  ev.detail = strings.view(strings.intern(*detail));
  return ev;
}

std::string to_jsonl(std::span<const Event> events) {
  std::string out;
  for (const auto& ev : events) {
    out += event_json(ev);
    out += '\n';
  }
  return out;
}

std::string to_jsonl(const EventStream& stream) {
  std::string out;
  stream.for_each([&out](const Event& ev) {
    out += event_json(ev);
    out += '\n';
  });
  return out;
}

namespace {

/// Chrome trace "tid": entity index + 1 so track 0 is never used (some
/// viewers hide tid 0).
std::uint32_t chrome_tid(Entity entity) { return entity.idx + 1; }
int chrome_pid(Entity entity) { return entity.kind == Entity::Kind::kMss ? 1 : 2; }

void chrome_event(std::string& out, bool& first, std::string_view body) {
  if (!first) out += ",\n";
  first = false;
  out += body;
}

std::string chrome_common(const Event& ev, char phase, std::string_view name) {
  std::string body = "{\"name\":";
  append_json_string(body, name);
  body += ",\"ph\":\"";
  body += phase;
  body += "\",\"ts\":";
  body += std::to_string(ev.at);
  body += ",\"pid\":";
  body += std::to_string(chrome_pid(ev.entity));
  body += ",\"tid\":";
  body += std::to_string(chrome_tid(ev.entity));
  return body;
}

std::string chrome_args(const Event& ev) {
  std::string args = "\"args\":{\"event_id\":";
  args += std::to_string(ev.id);
  args += ",\"lamport\":";
  args += std::to_string(ev.lamport);
  args += ",\"cause\":";
  args += std::to_string(ev.cause);
  if (ev.peer.valid()) {
    args += ",\"peer\":";
    append_json_string(args, to_string(ev.peer));
  }
  if (ev.arg != 0) {
    args += ",\"arg\":";
    args += std::to_string(ev.arg);
  }
  if (!ev.detail.empty()) {
    args += ",\"detail\":";
    append_json_string(args, ev.detail);
  }
  args += '}';
  return args;
}

}  // namespace

std::string to_chrome_trace(std::span<const Event> events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Metadata: name the two processes and one thread (track) per entity
  // that appears anywhere in the stream.
  chrome_event(out, first,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"MSS\"}}");
  chrome_event(out, first,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":{\"name\":\"MH\"}}");
  std::vector<std::uint64_t> named;
  auto name_track = [&](Entity entity) {
    if (!entity.valid()) return;
    if (std::find(named.begin(), named.end(), entity.key()) != named.end()) return;
    named.push_back(entity.key());
    std::string body = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    body += std::to_string(chrome_pid(entity));
    body += ",\"tid\":";
    body += std::to_string(chrome_tid(entity));
    body += ",\"args\":{\"name\":";
    append_json_string(body, to_string(entity));
    body += "}}";
    chrome_event(out, first, body);
  };
  for (const auto& ev : events) {
    name_track(ev.entity);
    name_track(ev.peer);
  }

  for (const auto& ev : events) {
    switch (ev.kind) {
      case EventKind::kSend:
      case EventKind::kRecv:
        // Per-message flow is too dense for a span view; the JSONL
        // export carries it, Chrome gets the state changes.
        break;
      case EventKind::kCsEnter:
        chrome_event(out, first, chrome_common(ev, 'B', "cs") + ',' + chrome_args(ev) + '}');
        break;
      case EventKind::kCsExit:
        chrome_event(out, first, chrome_common(ev, 'E', "cs") + '}');
        break;
      case EventKind::kTokenArrive:
        chrome_event(out, first,
                     chrome_common(ev, 'B', "token") + ',' + chrome_args(ev) + '}');
        break;
      case EventKind::kTokenDepart:
        chrome_event(out, first, chrome_common(ev, 'E', "token") + '}');
        break;
      case EventKind::kHandoffBegin:
      case EventKind::kHandoffEnd: {
        std::string body =
            chrome_common(ev, ev.kind == EventKind::kHandoffBegin ? 'b' : 'e', "handoff");
        body += ",\"cat\":\"handoff\",\"id\":";
        body += std::to_string(ev.arg);
        if (ev.kind == EventKind::kHandoffBegin) {
          body += ',';
          body += chrome_args(ev);
        }
        body += '}';
        chrome_event(out, first, body);
        break;
      }
      default: {
        std::string body = chrome_common(ev, 'i', to_string(ev.kind));
        body += ",\"s\":\"t\",";
        body += chrome_args(ev);
        body += '}';
        chrome_event(out, first, body);
        break;
      }
    }
  }
  out += "\n]}\n";
  return out;
}

std::string to_chrome_trace(const EventStream& stream) {
  const auto events = stream.snapshot();
  return to_chrome_trace(events);
}

}  // namespace mobidist::obs
