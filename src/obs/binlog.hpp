#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace mobidist::obs {

struct Event;
class EventStream;

/// Fixed-size binary encoding of one obs::Event (addb2-style telemetry
/// record). The event id is NOT stored: retained ids are contiguous, so
/// a record's id is derived from its ring position; `detail` is replaced
/// by a u16 id into the stream's InternTable. Exactly 64 bytes so a ring
/// slot never straddles more than one cache line, and so capacity math
/// stays trivial (capacity × 64 B of retained telemetry).
struct BinRecord {
  std::uint64_t at = 0;        ///< virtual time of emission
  std::uint64_t seq = 0;       ///< per-entity emission counter
  std::uint64_t lamport = 0;   ///< per-entity Lamport clock
  std::uint64_t cause = 0;     ///< causal parent event id
  std::uint64_t channel = 0;   ///< FIFO channel key; 0 = unordered
  std::uint64_t arg = 0;       ///< kind-specific payload
  std::uint32_t entity_idx = 0;  ///< Entity::idx of the emitter
  std::uint32_t peer_idx = 0;    ///< Entity::idx of the peer
  std::uint16_t detail_id = 0;   ///< InternTable id of the detail tag
  std::uint8_t kind = 0;         ///< EventKind as raw u8
  std::uint8_t entity_kind = 0;  ///< Entity::Kind of the emitter
  std::uint8_t peer_kind = 0;    ///< Entity::Kind of the peer
  std::uint8_t pad[3] = {0, 0, 0};  ///< explicit zero padding (file determinism)
};
static_assert(sizeof(BinRecord) == 64, "BinRecord must stay one cache line");
static_assert(std::is_trivially_copyable_v<BinRecord>,
              "BinRecord must memcpy into the binlog file");

/// Encode every Event field except the (position-derived) id.
/// `detail_id` is the interned id of event.detail.
[[nodiscard]] BinRecord encode(const Event& event, std::uint16_t detail_id) noexcept;

/// Inverse of encode: rebuild the Event for `id` whose detail text is
/// `detail` (the caller resolves record.detail_id through its table, so
/// the returned view stays valid as long as that table lives).
[[nodiscard]] Event decode(const BinRecord& record, std::uint64_t id,
                           std::string_view detail) noexcept;

/// Bounded per-stream string interner for detail tags. Emitters pay one
/// heap allocation per *distinct* tag; every later emission of the same
/// tag is a hash lookup into stable storage (zero allocations). Growth
/// is capped: once `capacity()` distinct strings are held, new tags map
/// to the reserved kOverflowId (and are counted in overflows()) instead
/// of growing without bound.
class InternTable {
 public:
  /// Id of the empty string (pre-interned; emit's fast path).
  static constexpr std::uint16_t kEmptyId = 0;
  /// Reserved id returned once the table is full; renders as
  /// kOverflowText so truncation is visible in exports, not silent.
  static constexpr std::uint16_t kOverflowId = 1;
  /// The string kOverflowId resolves to.
  static constexpr std::string_view kOverflowText = "!intern-overflow";
  /// Default cap: far above the distinct-tag count of any current
  /// workload (tens), small enough that a pathological emitter cannot
  /// balloon the table past ~a few hundred KB.
  static constexpr std::size_t kDefaultCapacity = 8192;
  /// Hard ceiling: ids are u16.
  static constexpr std::size_t kMaxCapacity = 65536;

  explicit InternTable(std::size_t capacity = kDefaultCapacity);

  InternTable(InternTable&&) = default;
  InternTable& operator=(InternTable&&) = default;
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  /// Id for `text`, inserting on first sight. Returns kOverflowId (and
  /// bumps overflows()) when the table is full and `text` is new.
  [[nodiscard]] std::uint16_t intern(std::string_view text);

  /// The string behind an id; views stay valid until clear()/destruction.
  [[nodiscard]] std::string_view view(std::uint16_t id) const noexcept;

  /// Distinct strings held, including the two reserved entries.
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  /// Maximum distinct strings (including the reserved entries).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Intern attempts that fell into kOverflowId because the table was full.
  [[nodiscard]] std::uint64_t overflows() const noexcept { return overflows_; }

  /// Drop everything but the reserved entries; invalidates all views.
  void clear();

 private:
  /// Stable storage: deque elements never move, so string_view keys in
  /// ids_ (and views handed to callers) survive growth.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, std::uint16_t> ids_;
  std::size_t capacity_;
  std::uint64_t overflows_ = 0;
};

/// Power-of-two ring of BinRecords with a monotonic head counter —
/// the in-memory telemetry sink behind EventStream (and the per-shard
/// buffer shape for the future sharded core). Appends never allocate:
/// the ring's full footprint is reserved at construction and records
/// overwrite the oldest slot once the ring is full.
class BinLog {
 public:
  explicit BinLog(std::size_t capacity);

  /// Append the record for id head()+1. Never allocates.
  void append(const BinRecord& record);

  /// Total records ever appended (== the id of the newest record).
  [[nodiscard]] std::uint64_t head() const noexcept { return head_; }
  /// Records overwritten at the tail (exact truncation count).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return head_ > capacity_ ? head_ - capacity_ : 0;
  }
  /// Records currently held: min(head, capacity).
  [[nodiscard]] std::size_t retained() const noexcept {
    return head_ > capacity_ ? capacity_ : static_cast<std::size_t>(head_);
  }
  /// Ring capacity (input rounded up to a power of two).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The record for a retained id in [dropped()+1, head()]; ids map to
  /// ring slots directly because eviction is oldest-first.
  [[nodiscard]] const BinRecord& record_of(std::uint64_t id) const noexcept {
    return ring_[static_cast<std::size_t>((id - 1) & (capacity_ - 1))];
  }

  /// Forget all records (capacity is kept).
  void clear();

 private:
  std::vector<BinRecord> ring_;
  std::size_t capacity_;  // power of two
  std::uint64_t head_ = 0;
};

// --- binlog file format -----------------------------------------------------
//
//   [u32 magic "MBLG"] [u32 version=1] [u32 record_size=64] [u32 string_count]
//   [u64 emitted] [u64 dropped] [u64 retained] [u64 intern_overflows]
//   string_count × ([u32 length] [length bytes])      — in intern-id order
//   retained × BinRecord                              — oldest first
//
// Native (little-endian) byte order; the dump tool runs on the same
// machine class as the simulator.

/// Serialize a stream's retained telemetry (header + intern table +
/// records) into the binlog file format.
[[nodiscard]] std::string serialize_binlog(const EventStream& stream);

/// A decoded binlog file. `events` hold detail views into `strings`, so
/// the struct must stay alive while the events are in use (move-only
/// for that reason — a copy would silently dangle).
struct DecodedBinlog {
  InternTable strings{InternTable::kMaxCapacity};  ///< rebuilt intern table
  std::vector<Event> events;                       ///< retained events, oldest first
  std::uint64_t emitted = 0;    ///< producer's total emitted count
  std::uint64_t dropped = 0;    ///< producer's truncation count
  std::uint64_t overflows = 0;  ///< producer's intern-table overflow count
};

/// Parse a binlog file image; nullopt on a malformed or truncated file.
[[nodiscard]] std::optional<DecodedBinlog> decode_binlog(std::string_view bytes);

/// Telemetry-sink counters surfaced in BENCH provenance.
struct BinlogStats {
  std::uint64_t emitted = 0;   ///< events ever appended
  std::uint64_t dropped = 0;   ///< events overwritten in the ring
  std::uint64_t retained = 0;  ///< events currently held
  std::uint64_t bytes = 0;     ///< retained × sizeof(BinRecord)
};

/// Snapshot the stream's binlog counters.
[[nodiscard]] BinlogStats binlog_stats(const EventStream& stream) noexcept;

}  // namespace mobidist::obs
