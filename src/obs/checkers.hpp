#pragma once

#include <span>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace mobidist::obs {

/// One invariant violation found by a checker, with enough context to
/// point at the offending event in the exported JSONL.
struct CheckFailure {
  std::string checker;     ///< which checker fired ("cs_exclusion", ...)
  EventId event = 0;       ///< the event that completed the violation
  std::string diagnostic;  ///< precise human-readable explanation
};

/// "cs_exclusion @ event 42: ..." — suitable for assertion messages.
[[nodiscard]] std::string to_string(const CheckFailure& failure);

/// All checkers are pure functions over a finished stream (oldest event
/// first). They tolerate truncated streams — a reference to an evicted
/// cause id, or state established before the retained suffix, is skipped
/// rather than reported, so bounded buffers never cause false positives.

/// At most one MH inside the critical section at any sim time, per
/// mutual-exclusion instance (instances are distinguished by the CS
/// events' `detail` label, so scenarios running several algorithms on
/// one network check each independently).
[[nodiscard]] std::vector<CheckFailure> check_cs_exclusion(std::span<const Event> events);

/// Exactly one live token per ring family between depart/arrive pairs:
/// an arrival while the family's token is already held, or a departure
/// from an entity that does not hold it, is a duplicate / forged token.
/// Families are the leading algorithm tag of `detail` ("R1", "R2").
[[nodiscard]] std::vector<CheckFailure> check_token_circulation(
    std::span<const Event> events);

/// Per-channel FIFO delivery: on every ordered channel (channel != 0),
/// recvs must consume sends in emission order. Sends whose recv never
/// appears (losses, in-flight at shutdown) are allowed to be skipped.
[[nodiscard]] std::vector<CheckFailure> check_channel_fifo(std::span<const Event> events);

/// R2'/R2'' at-most-once-per-traversal: within one token traversal
/// (identified by token_val in `arg`), no MH is granted the token twice.
/// Applies only to token departures tagged "R2'" or "R2''"; plain R2 is
/// exempt, and the two documented R2' holes emit decorated tags — "R2'!"
/// for runs with malicious reporters, "R2'~" for repeats admitted by a
/// stale access_count snapshot — so only genuinely fresh-count R2'
/// grants are held to the cap.
[[nodiscard]] std::vector<CheckFailure> check_traversal_cap(std::span<const Event> events);

/// Lamport clocks increase along every causal edge whose parent is
/// retained, and per-entity sequence numbers are strictly increasing.
[[nodiscard]] std::vector<CheckFailure> check_causal_clocks(std::span<const Event> events);

/// Fault-plane consistency: no recv may consume a send the fault plane
/// dropped (retransmissions are fresh sends with fresh ids, so a recv
/// causally parented to a dropped send means a ghost delivery), and
/// crash / recover events must alternate per MSS.
[[nodiscard]] std::vector<CheckFailure> check_fault_delivery(std::span<const Event> events);

/// Formation-layer FIFO preservation: per wired channel, packet flushes
/// (kPacketFlush) must consume packet sends (kPacketSend) in emission
/// order, each flush's cause must be a packet send on the same channel,
/// and the message count (arg) must survive the flight unchanged — a
/// packet may never reorder relative to its channel peers or lose /
/// grow messages across a flush. Together with check_channel_fifo over
/// the per-message send/recv events this guarantees no reorder across a
/// flush boundary.
[[nodiscard]] std::vector<CheckFailure> check_packet_fifo(std::span<const Event> events);

/// Run every checker; failures are concatenated in the order above.
[[nodiscard]] std::vector<CheckFailure> check_all(std::span<const Event> events);
[[nodiscard]] std::vector<CheckFailure> check_all(const EventStream& stream);

}  // namespace mobidist::obs
