#include "obs/checkers.hpp"

#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace mobidist::obs {

std::string to_string(const CheckFailure& failure) {
  std::ostringstream os;
  os << failure.checker << " @ event " << failure.event << ": " << failure.diagnostic;
  return os.str();
}

namespace {

void fail(std::vector<CheckFailure>& out, std::string checker, EventId event,
          std::string diagnostic) {
  out.push_back(CheckFailure{std::move(checker), event, std::move(diagnostic)});
}

/// Ring family of a token event: the algorithm tag up to the first
/// apostrophe/tilde decoration, so "R2", "R2'", "R2''", and "R2~" all
/// share one token.
std::string_view token_family(std::string_view detail) {
  const auto cut = detail.find_first_of("'~");
  return cut == std::string_view::npos ? detail : detail.substr(0, cut);
}

}  // namespace

std::vector<CheckFailure> check_cs_exclusion(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  // Per mutual-exclusion instance (detail label): who is inside, and the
  // enter event that put them there.
  struct Holder {
    Entity who;
    EventId since = 0;
  };
  std::map<std::string, Holder, std::less<>> holders;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kCsEnter) {
      auto [it, inserted] = holders.try_emplace(std::string(ev.detail));
      if (!inserted && it->second.since != 0) {
        std::ostringstream os;
        os << to_string(ev.entity) << " entered the CS of instance \"" << ev.detail
           << "\" at t=" << ev.at << " while " << to_string(it->second.who)
           << " still holds it (enter event " << it->second.since << ")";
        fail(failures, "cs_exclusion", ev.id, os.str());
      }
      it->second = Holder{ev.entity, ev.id};
    } else if (ev.kind == EventKind::kCsExit) {
      const auto it = holders.find(ev.detail);
      if (it == holders.end()) continue;  // enter evicted from a truncated stream
      if (it->second.since != 0 && !(it->second.who == ev.entity)) {
        std::ostringstream os;
        os << to_string(ev.entity) << " exited the CS of instance \"" << ev.detail
           << "\" at t=" << ev.at << " but " << to_string(it->second.who)
           << " is the recorded holder";
        fail(failures, "cs_exclusion", ev.id, os.str());
      }
      it->second.since = 0;
    }
  }
  return failures;
}

std::vector<CheckFailure> check_token_circulation(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  struct TokenState {
    enum class Where { kUnknown, kHeld, kInFlight } where = Where::kUnknown;
    Entity holder;        ///< valid when kHeld
    Entity depart_from;   ///< valid when kInFlight
    Entity depart_to;     ///< valid when kInFlight
    EventId last_event = 0;
  };
  std::map<std::string, TokenState, std::less<>> tokens;
  for (const auto& ev : events) {
    if (ev.kind != EventKind::kTokenDepart && ev.kind != EventKind::kTokenArrive) continue;
    auto& state = tokens[std::string(token_family(ev.detail))];
    using Where = TokenState::Where;
    if (ev.kind == EventKind::kTokenArrive) {
      switch (state.where) {
        case Where::kUnknown:
          break;  // injection, or a truncated stream's first sighting
        case Where::kHeld: {
          std::ostringstream os;
          os << "token \"" << token_family(ev.detail) << "\" arrived at "
             << to_string(ev.entity) << " at t=" << ev.at << " while already held by "
             << to_string(state.holder) << " (event " << state.last_event
             << ") -- duplicate token";
          fail(failures, "token_circulation", ev.id, os.str());
          break;
        }
        case Where::kInFlight:
          // The legal destinations are the announced peer and, when the
          // peer was unreachable, the sender itself (the bounce path).
          if (!(ev.entity == state.depart_to) && !(ev.entity == state.depart_from)) {
            std::ostringstream os;
            os << "token \"" << token_family(ev.detail) << "\" arrived at "
               << to_string(ev.entity) << " at t=" << ev.at << " but event "
               << state.last_event << " sent it from " << to_string(state.depart_from)
               << " to " << to_string(state.depart_to);
            fail(failures, "token_circulation", ev.id, os.str());
          }
          break;
      }
      state.where = Where::kHeld;
      state.holder = ev.entity;
      state.last_event = ev.id;
    } else {  // kTokenDepart
      switch (state.where) {
        case Where::kUnknown:
          break;  // the matching arrival predates the retained suffix
        case Where::kHeld:
          if (!(state.holder == ev.entity)) {
            std::ostringstream os;
            os << "token \"" << token_family(ev.detail) << "\" departed from "
               << to_string(ev.entity) << " at t=" << ev.at << " but "
               << to_string(state.holder) << " holds it (event " << state.last_event << ")";
            fail(failures, "token_circulation", ev.id, os.str());
          }
          break;
        case Where::kInFlight: {
          std::ostringstream os;
          os << "token \"" << token_family(ev.detail) << "\" departed from "
             << to_string(ev.entity) << " at t=" << ev.at
             << " while still in flight from " << to_string(state.depart_from) << " (event "
             << state.last_event << ") -- duplicate token";
          fail(failures, "token_circulation", ev.id, os.str());
          break;
        }
      }
      state.where = Where::kInFlight;
      state.depart_from = ev.entity;
      state.depart_to = ev.peer;
      state.last_event = ev.id;
    }
  }
  return failures;
}

std::vector<CheckFailure> check_channel_fifo(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  // Position of every retained send within its channel, and per channel
  // the position of the last send already consumed by a recv.
  struct SendPos {
    std::uint64_t channel = 0;
    std::uint64_t position = 0;
  };
  std::unordered_map<EventId, SendPos> send_positions;
  std::unordered_map<std::uint64_t, std::uint64_t> send_counts;
  struct Consumed {
    std::uint64_t position = 0;
    EventId recv = 0;
    EventId send = 0;
  };
  std::unordered_map<std::uint64_t, Consumed> last_consumed;
  for (const auto& ev : events) {
    if (ev.channel == 0) continue;
    if (ev.kind == EventKind::kSend) {
      send_positions[ev.id] = SendPos{ev.channel, ++send_counts[ev.channel]};
    } else if (ev.kind == EventKind::kRecv) {
      const auto sent = send_positions.find(ev.cause);
      if (sent == send_positions.end()) continue;  // send predates the suffix
      if (sent->second.channel != ev.channel) {
        std::ostringstream os;
        os << "recv at " << to_string(ev.entity) << " on channel " << ev.channel
           << " consumed send event " << ev.cause << " from channel "
           << sent->second.channel;
        fail(failures, "channel_fifo", ev.id, os.str());
        continue;
      }
      auto& consumed = last_consumed[ev.channel];
      if (consumed.recv != 0 && sent->second.position <= consumed.position) {
        std::ostringstream os;
        os << "FIFO violation on channel " << ev.channel << ": recv at "
           << to_string(ev.entity) << " t=" << ev.at << " consumed send event " << ev.cause
           << " (position " << sent->second.position << ") after recv event "
           << consumed.recv << " already consumed send event " << consumed.send
           << " (position " << consumed.position << ")";
        fail(failures, "channel_fifo", ev.id, os.str());
        continue;
      }
      consumed = Consumed{sent->second.position, ev.id, ev.cause};
    }
  }
  return failures;
}

std::vector<CheckFailure> check_traversal_cap(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  // (variant, token_val, mh) -> the grant event already charged.
  std::map<std::tuple<std::string, std::uint64_t, std::uint64_t>, EventId> grants;
  for (const auto& ev : events) {
    if (ev.kind != EventKind::kTokenDepart) continue;
    if (ev.detail != "R2'" && ev.detail != "R2''") continue;
    if (ev.peer.kind != Entity::Kind::kMh) continue;  // ring forwarding, not a grant
    const auto key = std::make_tuple(std::string(ev.detail), ev.arg,
                                     static_cast<std::uint64_t>(ev.peer.idx));
    const auto [it, inserted] = grants.try_emplace(key, ev.id);
    if (!inserted) {
      std::ostringstream os;
      os << ev.detail << " granted the token to " << to_string(ev.peer)
         << " twice in traversal token_val=" << ev.arg << " (events " << it->second
         << " and " << ev.id << ") -- stale access_count replay";
      fail(failures, "traversal_cap", ev.id, os.str());
    }
  }
  return failures;
}

std::vector<CheckFailure> check_causal_clocks(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  std::unordered_map<EventId, std::uint64_t> lamports;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, EventId>> last_seq;
  lamports.reserve(events.size());
  for (const auto& ev : events) {
    if (ev.cause != 0) {
      const auto parent = lamports.find(ev.cause);
      if (parent != lamports.end() && ev.lamport <= parent->second) {
        std::ostringstream os;
        os << "event " << ev.id << " at " << to_string(ev.entity) << " has lamport "
           << ev.lamport << " but its causal parent event " << ev.cause << " has lamport "
           << parent->second << " -- clock did not advance across the causal edge";
        fail(failures, "causal_clocks", ev.id, os.str());
      }
    }
    lamports.emplace(ev.id, ev.lamport);
    if (ev.entity.valid()) {
      const auto [it, inserted] =
          last_seq.try_emplace(ev.entity.key(), std::make_pair(ev.seq, ev.id));
      if (!inserted) {
        if (ev.seq <= it->second.first) {
          std::ostringstream os;
          os << "event " << ev.id << " at " << to_string(ev.entity) << " has seq " << ev.seq
             << " but the entity's previous event " << it->second.second << " has seq "
             << it->second.first << " -- per-entity sequence not strictly increasing";
          fail(failures, "causal_clocks", ev.id, os.str());
        }
        it->second = std::make_pair(ev.seq, ev.id);
      }
    }
  }
  return failures;
}

std::vector<CheckFailure> check_fault_delivery(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  std::unordered_set<EventId> dropped_sends;
  // Crash state per MSS entity key; entities with no retained crash
  // history are left alone (truncated streams must not false-positive).
  std::unordered_map<std::uint64_t, std::pair<bool, EventId>> down;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case EventKind::kMsgDropped:
        if (ev.cause != 0) dropped_sends.insert(ev.cause);
        break;
      case EventKind::kRecv:
        if (ev.cause != 0 && dropped_sends.contains(ev.cause)) {
          std::ostringstream os;
          os << "recv at " << to_string(ev.entity) << " t=" << ev.at
             << " consumed send event " << ev.cause
             << " that the fault plane dropped -- ghost delivery";
          fail(failures, "fault_delivery", ev.id, os.str());
        }
        break;
      case EventKind::kMssCrash: {
        const auto [it, inserted] =
            down.try_emplace(ev.entity.key(), std::make_pair(true, ev.id));
        if (!inserted) {
          if (it->second.first) {
            std::ostringstream os;
            os << to_string(ev.entity) << " crashed at t=" << ev.at
               << " while already down (event " << it->second.second << ")";
            fail(failures, "fault_delivery", ev.id, os.str());
          }
          it->second = std::make_pair(true, ev.id);
        }
        break;
      }
      case EventKind::kMssRecover: {
        const auto it = down.find(ev.entity.key());
        if (it != down.end() && !it->second.first) {
          std::ostringstream os;
          os << to_string(ev.entity) << " recovered at t=" << ev.at
             << " but was not down (event " << it->second.second << ")";
          fail(failures, "fault_delivery", ev.id, os.str());
        }
        down[ev.entity.key()] = std::make_pair(false, ev.id);
        break;
      }
      default:
        break;
    }
  }
  return failures;
}

std::vector<CheckFailure> check_packet_fifo(std::span<const Event> events) {
  std::vector<CheckFailure> failures;
  // Mirror of check_channel_fifo at the packet granularity: packet sends
  // get a per-channel position, packet flushes must consume them in
  // strictly increasing position order with an intact message count.
  struct PacketPos {
    std::uint64_t channel = 0;
    std::uint64_t position = 0;
    std::uint64_t msgs = 0;
  };
  std::unordered_map<EventId, PacketPos> packet_positions;
  std::unordered_map<std::uint64_t, std::uint64_t> packet_counts;
  struct Consumed {
    std::uint64_t position = 0;
    EventId flush = 0;
    EventId send = 0;
  };
  std::unordered_map<std::uint64_t, Consumed> last_consumed;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kPacketSend) {
      if (ev.channel == 0) {
        fail(failures, "packet_fifo", ev.id,
             "packet send from " + to_string(ev.entity) + " carries no channel key");
        continue;
      }
      packet_positions[ev.id] = PacketPos{ev.channel, ++packet_counts[ev.channel], ev.arg};
    } else if (ev.kind == EventKind::kPacketFlush) {
      const auto sent = packet_positions.find(ev.cause);
      if (sent == packet_positions.end()) continue;  // send predates the suffix
      if (sent->second.channel != ev.channel) {
        std::ostringstream os;
        os << "packet flush at " << to_string(ev.entity) << " on channel " << ev.channel
           << " consumed packet send event " << ev.cause << " from channel "
           << sent->second.channel;
        fail(failures, "packet_fifo", ev.id, os.str());
        continue;
      }
      if (sent->second.msgs != ev.arg) {
        std::ostringstream os;
        os << "packet flush event " << ev.id << " at " << to_string(ev.entity)
           << " delivered " << ev.arg << " messages but packet send event " << ev.cause
           << " carried " << sent->second.msgs << " -- messages lost or grown in flight";
        fail(failures, "packet_fifo", ev.id, os.str());
        continue;
      }
      auto& consumed = last_consumed[ev.channel];
      if (consumed.flush != 0 && sent->second.position <= consumed.position) {
        std::ostringstream os;
        os << "packet FIFO violation on channel " << ev.channel << ": flush at "
           << to_string(ev.entity) << " t=" << ev.at << " consumed packet send event "
           << ev.cause << " (position " << sent->second.position << ") after flush event "
           << consumed.flush << " already consumed packet send event " << consumed.send
           << " (position " << consumed.position << ")";
        fail(failures, "packet_fifo", ev.id, os.str());
        continue;
      }
      consumed = Consumed{sent->second.position, ev.id, ev.cause};
    }
  }
  return failures;
}

std::vector<CheckFailure> check_all(std::span<const Event> events) {
  std::vector<CheckFailure> failures = check_cs_exclusion(events);
  auto append = [&failures](std::vector<CheckFailure> more) {
    failures.insert(failures.end(), std::make_move_iterator(more.begin()),
                    std::make_move_iterator(more.end()));
  };
  append(check_token_circulation(events));
  append(check_channel_fifo(events));
  append(check_traversal_cap(events));
  append(check_causal_clocks(events));
  append(check_fault_delivery(events));
  append(check_packet_fifo(events));
  return failures;
}

std::vector<CheckFailure> check_all(const EventStream& stream) {
  // Decode once: every checker walks the same materialized snapshot
  // instead of re-decoding the ring seven times.
  const auto events = stream.snapshot();
  return check_all(events);
}

}  // namespace mobidist::obs
