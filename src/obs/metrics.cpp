#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobidist::obs {

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ != 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<std::uint64_t> latency_buckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384};
}

std::vector<std::uint64_t> count_buckets() { return {0, 1, 2, 3, 5, 8, 13, 21, 34, 55}; }

Counter& Registry::counter(std::string_view name) {
  if (const auto it = counters_.find(name); it != counters_.end()) return it->second;
  check_unique_kind(name, "counter");
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  if (const auto it = gauges_.find(name); it != gauges_.end()) return it->second;
  check_unique_kind(name, "gauge");
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  if (const auto it = histograms_.find(name); it != histograms_.end()) return it->second;
  check_unique_kind(name, "histogram");
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds))).first->second;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name) += c.value();
  for (const auto& [name, g] : other.gauges_) gauge(name).add(g.value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bounds()).merge_from(h);
  }
}

void Registry::check_unique_kind(std::string_view name, std::string_view kind) const {
  const bool taken = (kind != "counter" && counters_.contains(name)) ||
                     (kind != "gauge" && gauges_.contains(name)) ||
                     (kind != "histogram" && histograms_.contains(name));
  if (taken) {
    throw std::invalid_argument("Registry: metric name '" + std::string(name) +
                                "' already registered with a different kind");
  }
}

}  // namespace mobidist::obs
