#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/events.hpp"

namespace mobidist::obs {

// --- cross-stream cause references ------------------------------------------
//
// With one EventStream per shard, a cross-shard recv's causal parent (the
// send) lives in a *different* stream, so its plain EventId would be
// meaningless at the receiver. The sender instead hands over an encoded
// reference — bit 63 set, the sender's stream index, and the sender-local
// id — which merge_canonical() resolves to the final merged id. Encoded
// refs never collide with real ids (streams are bounded far below 2^63),
// and lamport_of() on one simply misses (returns 0), which is why
// cross-shard emits carry the parent's clock via Emit::cause_clock.

/// Marks an EventId as a cross-stream reference.
inline constexpr EventId kCrossStreamBit = EventId{1} << 63;
/// Bits reserved for the sender-local id below the stream index.
inline constexpr unsigned kCrossStreamIdBits = 40;

/// Encode (stream, local id) into a cause reference for another stream.
[[nodiscard]] constexpr EventId make_cross_ref(std::uint32_t stream,
                                               EventId local_id) noexcept {
  return kCrossStreamBit | (static_cast<EventId>(stream) << kCrossStreamIdBits) |
         (local_id & ((EventId{1} << kCrossStreamIdBits) - 1));
}
/// True for ids produced by make_cross_ref.
[[nodiscard]] constexpr bool is_cross_ref(EventId id) noexcept {
  return (id & kCrossStreamBit) != 0;
}
/// The sender's stream index of an encoded reference.
[[nodiscard]] constexpr std::uint32_t cross_ref_stream(EventId id) noexcept {
  return static_cast<std::uint32_t>((id & ~kCrossStreamBit) >> kCrossStreamIdBits);
}
/// The sender-local event id of an encoded reference.
[[nodiscard]] constexpr EventId cross_ref_id(EventId id) noexcept {
  return id & ((EventId{1} << kCrossStreamIdBits) - 1);
}

// --- canonical merge --------------------------------------------------------

/// Maps an event's entity to its lane (the unit of single-threaded
/// execution; in the net layer, the owning cell's MSS index).
using LaneOf = std::function<std::uint32_t(Entity)>;

/// Merge per-shard event streams into one canonical trace whose bytes are
/// independent of the shard count.
///
/// The only ordering the sharded engine guarantees across shard counts is
/// the *per-lane* projection: each lane's events keep their relative
/// order, while the interleaving between lanes (scheduler seq tie-breaks
/// within a shared shard) varies with the grouping. The merge therefore
/// sorts by (at, lane, position-within-lane) — a total order over events
/// that is a pure function of the per-lane sequences — then reassigns
/// dense 1-based ids and rewrites every cause (same-stream ids and
/// encoded cross-stream refs alike) through the old→new maps. Causes
/// whose parent was evicted from its ring resolve to 0.
///
/// Caveat: byte-stability across shard counts additionally requires that
/// no stream dropped events (per-shard rings fill at different rates for
/// different counts, so eviction truncates different prefixes). Callers
/// gating on byte-identity should check EventStream::dropped() == 0.
///
/// Event::detail views point into the source streams' intern tables —
/// keep the streams alive while using the result.
[[nodiscard]] std::vector<Event> merge_canonical(
    std::span<const EventStream* const> streams, const LaneOf& lane_of);

}  // namespace mobidist::obs
