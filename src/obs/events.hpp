#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/binlog.hpp"
#include "sim/time.hpp"

namespace mobidist::obs {

/// What happened. One value per paper-level event class; the substrate
/// and the algorithm layers emit these, the checkers and exporters in
/// checkers.hpp / the JSONL+Chrome writers consume them.
enum class EventKind : std::uint8_t {
  kSend,            ///< a message entered a channel (wired / downlink / uplink)
  kRecv,            ///< a message left its channel at the destination host
  kDeliver,         ///< a relay payload reached its MH agent (post-resequencing)
  kHandoffBegin,    ///< new MSS asked the previous MSS for per-MH state
  kHandoffEnd,      ///< the handoff state landed at the new MSS
  kDisconnect,      ///< a MH's "disconnected" flag was set at its cell
  kReconnect,       ///< a disconnected MH rejoined (at `peer`'s cell)
  kSearchRound,     ///< one search round resolved / was launched for a MH
  kCsRequest,       ///< a MH asked for the critical section
  kCsEnter,         ///< a MH entered the critical section
  kCsExit,          ///< a MH left the critical section
  kTokenDepart,     ///< a mutual-exclusion token left `entity` towards `peer`
  kTokenArrive,     ///< a token arrived at `entity` (first arrival = injection)
  kLocationUpdate,  ///< a group strategy recorded / propagated a member location
  kViewChange,      ///< the location-view coordinator advanced the view version
  kMsgDropped,      ///< the fault plane killed a wireless frame (cause = its send)
  kMsgDuplicated,   ///< the fault plane scheduled a link-layer copy (cause = the send)
  kMssCrash,        ///< an MSS crashed per the fault schedule; arg = down_for
  kMssRecover,      ///< a crashed MSS came back up
  kPacketSend,      ///< a formation packet entered a wired channel; arg = msg count
  kPacketFlush,     ///< a formation packet disgorged at the destination (cause = its send)
  kReqForward,      ///< a CS claim hopped from `entity` to `peer`; arg = origin MSS
  kPathReversal,    ///< `entity` re-pointed its probable-tail pointer at `peer`
};

/// Stable wire name of a kind ("send", "cs_enter", ...).
[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;
/// Inverse of to_string; nullopt on unknown text.
[[nodiscard]] std::optional<EventKind> parse_kind(std::string_view text) noexcept;

/// The emitting (or peer) entity of an event. Mirrors net::NodeRef
/// without depending on the net layer, so obs stays below net in the
/// dependency order.
struct Entity {
  /// Which of the two host classes (or none, for "no peer").
  enum class Kind : std::uint8_t { kNone, kMss, kMh };

  Kind kind = Kind::kNone;
  std::uint32_t idx = 0;

  /// The idx-th mobile support station.
  [[nodiscard]] static constexpr Entity mss(std::uint32_t idx) noexcept {
    return Entity{Kind::kMss, idx};
  }
  /// The idx-th mobile host.
  [[nodiscard]] static constexpr Entity mh(std::uint32_t idx) noexcept {
    return Entity{Kind::kMh, idx};
  }

  /// False for the default-constructed "no entity".
  [[nodiscard]] constexpr bool valid() const noexcept { return kind != Kind::kNone; }
  /// Dense map key: kind in the top bits, index below.
  [[nodiscard]] constexpr std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(kind) << 32) | idx;
  }

  friend constexpr bool operator==(Entity, Entity) = default;
};

/// "mss:3", "mh:7", or "?" for none.
[[nodiscard]] std::string to_string(Entity entity);
/// Inverse of to_string; nullopt on malformed text.
[[nodiscard]] std::optional<Entity> parse_entity(std::string_view text) noexcept;

/// Stream-unique event identifier, 1-based and dense; 0 means "none".
using EventId = std::uint64_t;

/// One structured event. Everything is a pure function of the
/// simulation, so two same-seed runs produce byte-identical streams.
/// `detail` is a non-owning view: for events decoded from a stream or a
/// binlog it points into the owning InternTable, for hand-built events
/// it is usually a string literal — either way the backing storage must
/// outlive the Event.
struct Event {
  EventId id = 0;          ///< dense, 1-based, assigned by EventStream
  sim::SimTime at = 0;     ///< virtual time of emission
  EventKind kind = EventKind::kSend;
  Entity entity;           ///< who this happened at
  Entity peer;             ///< the other endpoint, when there is one
  std::uint64_t seq = 0;     ///< per-entity emission counter (1-based)
  std::uint64_t lamport = 0; ///< per-entity Lamport clock, advanced across causes
  EventId cause = 0;       ///< causal parent (the send behind this recv, ...)
  std::uint64_t channel = 0; ///< FIFO channel key for send/recv; 0 = unordered
  std::uint64_t arg = 0;     ///< kind-specific payload (proto, token_val, round, ...)
  std::string_view detail;   ///< kind-specific tag ("R2'", "broadcast", "L2", ...)
};

/// Human-readable one-liner ("token depart mss:0 -> mh:3 val=2 [R2']");
/// this is what sim::Trace renders, making the free-text trace a thin
/// view of the event stream.
[[nodiscard]] std::string describe(const Event& event);

/// Bounded, append-only stream of structured events for one simulated
/// system. Owns id assignment, per-entity sequence numbers, and the
/// per-entity Lamport clocks (advanced past the causal parent's clock on
/// every emission). Storage is a BinLog ring of 64-byte BinRecords plus
/// an InternTable for detail tags, so the steady-state emit path — warm
/// interner, per-entity counters grown — performs zero heap allocations
/// with tracing on. The ring keeps the most recent `capacity` events;
/// overwrites are counted in dropped() so artifact consumers can see
/// truncation instead of silently trusting a partial stream.
class EventStream {
 public:
  /// 16 MiB of retained telemetry at the default: kDefaultCapacity
  /// (2^18) × sizeof(BinRecord) (64 B) — big enough for every bench
  /// scenario, small enough to stay always-on. The arithmetic is pinned
  /// by a test in tests/binlog_test.cpp.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  /// `capacity` is rounded up to the next power of two (the ring masks
  /// ids into slots).
  explicit EventStream(std::size_t capacity = kDefaultCapacity) : binlog_(capacity) {}

  /// Emission spec: everything the emitter knows. `cause` 0 means "use
  /// the ambient CauseScope cause" (the message recv being dispatched).
  /// `detail` is only read during emit (it is interned into the
  /// stream's table), so any lifetime that survives the call is fine.
  struct Emit {
    EventKind kind = EventKind::kSend;
    Entity entity;
    Entity peer{};
    EventId cause = 0;
    std::uint64_t channel = 0;
    std::uint64_t arg = 0;
    std::string_view detail{};
    /// Lamport clock of the causal parent, for causes that live in
    /// *another* stream (cross-shard sends, see obs/merge.hpp): the
    /// receiver's clock must advance past the sender's, but lamport_of()
    /// can only resolve local ids. 0 (the default) means "look the cause
    /// up locally", which is the single-stream behaviour.
    std::uint64_t cause_clock = 0;
  };

  /// Append one event; returns its id (usable as a later cause).
  EventId emit(sim::SimTime at, const Emit& spec);

  /// Ambient causal parent for emissions that do not pass one
  /// explicitly; managed by CauseScope.
  [[nodiscard]] EventId current_cause() const noexcept { return current_cause_; }

  /// Optional observer invoked for every emitted event before it is
  /// buffered (the Network uses this to render events into sim::Trace).
  /// The Event&'s detail views the stream's intern table.
  using Sink = std::function<void(const Event&)>;
  /// Install (or clear, with {}) the observer.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Decode all retained events, oldest first. Ids are contiguous:
  /// snapshot().front().id == dropped() + 1. Detail views point into
  /// the stream's intern table and stay valid until clear().
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Visit each retained event, oldest first, without materializing the
  /// vector (one stack Event per call).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = retained();
    for (std::size_t i = 0; i < n; ++i) fn(event_at(i));
  }

  /// Decode the pos-th retained event (0 = oldest).
  [[nodiscard]] Event event_at(std::size_t pos) const noexcept;

  /// Total events ever emitted (== the id of the newest event).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return binlog_.head(); }
  /// Events evicted from the ring (truncation count).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return binlog_.dropped(); }
  /// Events currently held in the ring.
  [[nodiscard]] std::size_t retained() const noexcept { return binlog_.retained(); }

  /// Lamport clock of a retained event; 0 if unknown (evicted / none).
  [[nodiscard]] std::uint64_t lamport_of(EventId id) const noexcept;

  /// The binary ring behind the stream (serialization + stats).
  [[nodiscard]] const BinLog& binlog() const noexcept { return binlog_; }
  /// The detail-tag intern table (stable views, bounded growth).
  [[nodiscard]] const InternTable& interner() const noexcept { return interner_; }

  /// Forget all events, counters, and interned tags; invalidates every
  /// previously handed-out detail view.
  void clear();

 private:
  friend class CauseScope;

  struct EntityState {
    std::uint64_t seq = 0;
    std::uint64_t clock = 0;
  };

  /// Entity indices are dense small integers, so per-entity counters
  /// live in flat vectors (grown on demand) instead of a hash map —
  /// emit() is on the simulation hot path.
  [[nodiscard]] EntityState& state_of(Entity entity);

  BinLog binlog_;
  InternTable interner_;
  std::vector<EntityState> mss_state_;
  std::vector<EntityState> mh_state_;
  EntityState none_state_;
  EventId current_cause_ = 0;
  Sink sink_;
};

/// RAII ambient-cause marker: while alive, events emitted without an
/// explicit cause inherit `cause`. The Network wraps every message
/// dispatch in one of these so algorithm-level events (CS grants, token
/// arrivals, follow-up sends) chain to the recv that triggered them.
class CauseScope {
 public:
  CauseScope(EventStream& stream, EventId cause) noexcept
      : stream_(stream), previous_(stream.current_cause_) {
    stream_.current_cause_ = cause;
  }
  ~CauseScope() { stream_.current_cause_ = previous_; }

  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  EventStream& stream_;
  EventId previous_;
};

// --- export / import --------------------------------------------------------

/// One event as a single-line JSON object with a fixed key order, so
/// same-seed runs serialize byte-identically.
[[nodiscard]] std::string event_json(const Event& event);

/// Inverse of event_json (one line, optionally with trailing newline);
/// nullopt on malformed input. The detail text is interned into
/// `strings`, which backs the returned Event's view — keep the table
/// alive as long as the events. Used by the offline trace tools.
[[nodiscard]] std::optional<Event> event_from_json(std::string_view line,
                                                   InternTable& strings);

/// Whole stream as JSON Lines (one event_json per line).
[[nodiscard]] std::string to_jsonl(std::span<const Event> events);
[[nodiscard]] std::string to_jsonl(const EventStream& stream);

/// Chrome trace-event format (loadable in Perfetto / chrome://tracing):
/// one track per entity (pid 1 = MSSs, pid 2 = MHs), B/E spans for CS
/// occupancy and token holds on the owning entity's track, async spans
/// for handoffs, instants for the remaining kinds. Virtual ticks map to
/// microseconds.
[[nodiscard]] std::string to_chrome_trace(std::span<const Event> events);
[[nodiscard]] std::string to_chrome_trace(const EventStream& stream);

}  // namespace mobidist::obs
