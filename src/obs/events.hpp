#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mobidist::obs {

/// What happened. One value per paper-level event class; the substrate
/// and the algorithm layers emit these, the checkers and exporters in
/// checkers.hpp / the JSONL+Chrome writers consume them.
enum class EventKind : std::uint8_t {
  kSend,            ///< a message entered a channel (wired / downlink / uplink)
  kRecv,            ///< a message left its channel at the destination host
  kDeliver,         ///< a relay payload reached its MH agent (post-resequencing)
  kHandoffBegin,    ///< new MSS asked the previous MSS for per-MH state
  kHandoffEnd,      ///< the handoff state landed at the new MSS
  kDisconnect,      ///< a MH's "disconnected" flag was set at its cell
  kReconnect,       ///< a disconnected MH rejoined (at `peer`'s cell)
  kSearchRound,     ///< one search round resolved / was launched for a MH
  kCsRequest,       ///< a MH asked for the critical section
  kCsEnter,         ///< a MH entered the critical section
  kCsExit,          ///< a MH left the critical section
  kTokenDepart,     ///< a mutual-exclusion token left `entity` towards `peer`
  kTokenArrive,     ///< a token arrived at `entity` (first arrival = injection)
  kLocationUpdate,  ///< a group strategy recorded / propagated a member location
  kViewChange,      ///< the location-view coordinator advanced the view version
  kMsgDropped,      ///< the fault plane killed a wireless frame (cause = its send)
  kMsgDuplicated,   ///< the fault plane scheduled a link-layer copy (cause = the send)
  kMssCrash,        ///< an MSS crashed per the fault schedule; arg = down_for
  kMssRecover,      ///< a crashed MSS came back up
  kPacketSend,      ///< a formation packet entered a wired channel; arg = msg count
  kPacketFlush,     ///< a formation packet disgorged at the destination (cause = its send)
};

[[nodiscard]] std::string_view to_string(EventKind kind) noexcept;
/// Inverse of to_string; nullopt on unknown text.
[[nodiscard]] std::optional<EventKind> parse_kind(std::string_view text) noexcept;

/// The emitting (or peer) entity of an event. Mirrors net::NodeRef
/// without depending on the net layer, so obs stays below net in the
/// dependency order.
struct Entity {
  enum class Kind : std::uint8_t { kNone, kMss, kMh };

  Kind kind = Kind::kNone;
  std::uint32_t idx = 0;

  [[nodiscard]] static constexpr Entity mss(std::uint32_t idx) noexcept {
    return Entity{Kind::kMss, idx};
  }
  [[nodiscard]] static constexpr Entity mh(std::uint32_t idx) noexcept {
    return Entity{Kind::kMh, idx};
  }

  [[nodiscard]] constexpr bool valid() const noexcept { return kind != Kind::kNone; }
  /// Dense map key: kind in the top bits, index below.
  [[nodiscard]] constexpr std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(kind) << 32) | idx;
  }

  friend constexpr bool operator==(Entity, Entity) = default;
};

/// "mss:3", "mh:7", or "?" for none.
[[nodiscard]] std::string to_string(Entity entity);
/// Inverse of to_string; nullopt on malformed text.
[[nodiscard]] std::optional<Entity> parse_entity(std::string_view text) noexcept;

/// Stream-unique event identifier, 1-based and dense; 0 means "none".
using EventId = std::uint64_t;

/// One structured event. Everything is a pure function of the
/// simulation, so two same-seed runs produce byte-identical streams.
struct Event {
  EventId id = 0;          ///< dense, 1-based, assigned by EventStream
  sim::SimTime at = 0;     ///< virtual time of emission
  EventKind kind = EventKind::kSend;
  Entity entity;           ///< who this happened at
  Entity peer;             ///< the other endpoint, when there is one
  std::uint64_t seq = 0;     ///< per-entity emission counter (1-based)
  std::uint64_t lamport = 0; ///< per-entity Lamport clock, advanced across causes
  EventId cause = 0;       ///< causal parent (the send behind this recv, ...)
  std::uint64_t channel = 0; ///< FIFO channel key for send/recv; 0 = unordered
  std::uint64_t arg = 0;     ///< kind-specific payload (proto, token_val, round, ...)
  std::string detail;      ///< kind-specific tag ("R2'", "broadcast", "L2", ...)
};

/// Human-readable one-liner ("token depart mss:0 -> mh:3 val=2 [R2']");
/// this is what sim::Trace renders, making the free-text trace a thin
/// view of the event stream.
[[nodiscard]] std::string describe(const Event& event);

/// Bounded, append-only stream of structured events for one simulated
/// system. Owns id assignment, per-entity sequence numbers, and the
/// per-entity Lamport clocks (advanced past the causal parent's clock on
/// every emission). The buffer keeps the most recent `capacity` events;
/// evictions are counted in dropped() so artifact consumers can see
/// truncation instead of silently trusting a partial stream.
class EventStream {
 public:
  /// ~26 MB of retained events at the default; big enough for every
  /// bench scenario, small enough to stay always-on.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit EventStream(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  /// Emission spec: everything the emitter knows. `cause` 0 means "use
  /// the ambient CauseScope cause" (the message recv being dispatched).
  struct Emit {
    EventKind kind = EventKind::kSend;
    Entity entity;
    Entity peer{};
    EventId cause = 0;
    std::uint64_t channel = 0;
    std::uint64_t arg = 0;
    std::string detail{};
  };

  /// Append one event; returns its id (usable as a later cause).
  EventId emit(sim::SimTime at, Emit spec);

  /// Ambient causal parent for emissions that do not pass one
  /// explicitly; managed by CauseScope.
  [[nodiscard]] EventId current_cause() const noexcept { return current_cause_; }

  /// Optional observer invoked for every emitted event before it is
  /// buffered (the Network uses this to render events into sim::Trace).
  using Sink = std::function<void(const Event&)>;
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Retained events, oldest first. Ids are contiguous:
  /// records().front().id == dropped() + 1. The view is invalidated by
  /// the next emit()/clear().
  [[nodiscard]] std::span<const Event> records() const noexcept {
    return {records_.data() + head_, records_.size() - head_};
  }
  /// Total events ever emitted (== the id of the newest event).
  [[nodiscard]] std::uint64_t emitted() const noexcept { return last_id_; }
  /// Events evicted from the front of the buffer (truncation count).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Lamport clock of a retained event; 0 if unknown (evicted / none).
  [[nodiscard]] std::uint64_t lamport_of(EventId id) const noexcept;

  void clear();

 private:
  friend class CauseScope;

  struct EntityState {
    std::uint64_t seq = 0;
    std::uint64_t clock = 0;
  };

  /// Entity indices are dense small integers, so per-entity counters
  /// live in flat vectors (grown on demand) instead of a hash map —
  /// emit() is on the simulation hot path.
  [[nodiscard]] EntityState& state_of(Entity entity);

  std::size_t capacity_;
  /// Flat storage with a dead prefix of `head_` evicted events; the
  /// prefix is compacted away once it reaches `capacity_`, so emit()
  /// performs no per-event allocation at steady state (a deque would
  /// allocate a block node every few events).
  std::vector<Event> records_;
  std::size_t head_ = 0;
  std::vector<EntityState> mss_state_;
  std::vector<EntityState> mh_state_;
  EntityState none_state_;
  std::uint64_t last_id_ = 0;
  std::uint64_t dropped_ = 0;
  EventId current_cause_ = 0;
  Sink sink_;
};

/// RAII ambient-cause marker: while alive, events emitted without an
/// explicit cause inherit `cause`. The Network wraps every message
/// dispatch in one of these so algorithm-level events (CS grants, token
/// arrivals, follow-up sends) chain to the recv that triggered them.
class CauseScope {
 public:
  CauseScope(EventStream& stream, EventId cause) noexcept
      : stream_(stream), previous_(stream.current_cause_) {
    stream_.current_cause_ = cause;
  }
  ~CauseScope() { stream_.current_cause_ = previous_; }

  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  EventStream& stream_;
  EventId previous_;
};

// --- export / import --------------------------------------------------------

/// One event as a single-line JSON object with a fixed key order, so
/// same-seed runs serialize byte-identically.
[[nodiscard]] std::string event_json(const Event& event);

/// Inverse of event_json (one line, optionally with trailing newline);
/// nullopt on malformed input. Used by the offline trace_check tool.
[[nodiscard]] std::optional<Event> event_from_json(std::string_view line);

/// Whole stream as JSON Lines (one event_json per line).
[[nodiscard]] std::string to_jsonl(std::span<const Event> events);
[[nodiscard]] std::string to_jsonl(const EventStream& stream);

/// Chrome trace-event format (loadable in Perfetto / chrome://tracing):
/// one track per entity (pid 1 = MSSs, pid 2 = MHs), B/E spans for CS
/// occupancy and token holds on the owning entity's track, async spans
/// for handoffs, instants for the remaining kinds. Virtual ticks map to
/// microseconds.
[[nodiscard]] std::string to_chrome_trace(std::span<const Event> events);
[[nodiscard]] std::string to_chrome_trace(const EventStream& stream);

}  // namespace mobidist::obs
