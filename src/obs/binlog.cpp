#include "obs/binlog.hpp"

#include <bit>
#include <cstring>

#include "obs/events.hpp"

namespace mobidist::obs {

BinRecord encode(const Event& event, std::uint16_t detail_id) noexcept {
  BinRecord rec{};
  rec.at = event.at;
  rec.seq = event.seq;
  rec.lamport = event.lamport;
  rec.cause = event.cause;
  rec.channel = event.channel;
  rec.arg = event.arg;
  rec.entity_idx = event.entity.idx;
  rec.peer_idx = event.peer.idx;
  rec.detail_id = detail_id;
  rec.kind = static_cast<std::uint8_t>(event.kind);
  rec.entity_kind = static_cast<std::uint8_t>(event.entity.kind);
  rec.peer_kind = static_cast<std::uint8_t>(event.peer.kind);
  return rec;
}

Event decode(const BinRecord& record, std::uint64_t id, std::string_view detail) noexcept {
  Event ev;
  ev.id = id;
  ev.at = record.at;
  ev.kind = static_cast<EventKind>(record.kind);
  ev.entity = Entity{static_cast<Entity::Kind>(record.entity_kind), record.entity_idx};
  ev.peer = Entity{static_cast<Entity::Kind>(record.peer_kind), record.peer_idx};
  ev.seq = record.seq;
  ev.lamport = record.lamport;
  ev.cause = record.cause;
  ev.channel = record.channel;
  ev.arg = record.arg;
  ev.detail = detail;
  return ev;
}

InternTable::InternTable(std::size_t capacity)
    : capacity_(capacity < 2 ? 2 : (capacity > kMaxCapacity ? kMaxCapacity : capacity)) {
  // Reserved entries: the empty tag (emit's fast path skips the hash
  // entirely) and the overflow marker.
  storage_.emplace_back();
  ids_.emplace(std::string_view{storage_.back()}, kEmptyId);
  storage_.emplace_back(kOverflowText);
  ids_.emplace(std::string_view{storage_.back()}, kOverflowId);
}

std::uint16_t InternTable::intern(std::string_view text) {
  if (text.empty()) return kEmptyId;
  if (const auto it = ids_.find(text); it != ids_.end()) return it->second;
  if (storage_.size() >= capacity_) {
    ++overflows_;
    return kOverflowId;
  }
  const auto id = static_cast<std::uint16_t>(storage_.size());
  storage_.emplace_back(text);
  ids_.emplace(std::string_view{storage_.back()}, id);
  return id;
}

std::string_view InternTable::view(std::uint16_t id) const noexcept {
  if (id >= storage_.size()) return kOverflowText;
  return storage_[id];
}

void InternTable::clear() {
  const std::size_t capacity = capacity_;
  *this = InternTable(capacity);
}

BinLog::BinLog(std::size_t capacity)
    : capacity_(std::bit_ceil(capacity < 1 ? std::size_t{1} : capacity)) {
  // Reserve the full ring up front: appends stay allocation-free from
  // the very first record, and untouched pages cost nothing until the
  // ring actually fills.
  ring_.reserve(capacity_);
}

void BinLog::append(const BinRecord& record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[static_cast<std::size_t>(head_ & (capacity_ - 1))] = record;
  }
  ++head_;
}

void BinLog::clear() {
  ring_.clear();
  head_ = 0;
}

// --- binlog file format -----------------------------------------------------

namespace {

constexpr std::uint32_t kMagic = 0x474C424DU;  // "MBLG" little-endian
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

/// Cursor over the file image; every read is bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool read_bytes(std::string& out, std::size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    out.assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize_binlog(const EventStream& stream) {
  const BinLog& log = stream.binlog();
  const InternTable& strings = stream.interner();
  std::string out;
  out.reserve(48 + strings.size() * 16 + log.retained() * sizeof(BinRecord));
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint32_t>(sizeof(BinRecord)));
  put(out, static_cast<std::uint32_t>(strings.size()));
  put(out, log.head());
  put(out, log.dropped());
  put(out, static_cast<std::uint64_t>(log.retained()));
  put(out, strings.overflows());
  for (std::size_t id = 0; id < strings.size(); ++id) {
    const auto text = strings.view(static_cast<std::uint16_t>(id));
    put(out, static_cast<std::uint32_t>(text.size()));
    out.append(text);
  }
  for (std::uint64_t id = log.dropped() + 1; id <= log.head(); ++id) {
    const BinRecord& rec = log.record_of(id);
    char buf[sizeof(BinRecord)];
    std::memcpy(buf, &rec, sizeof(BinRecord));
    out.append(buf, sizeof(BinRecord));
  }
  return out;
}

std::optional<DecodedBinlog> decode_binlog(std::string_view bytes) {
  ByteReader in(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t record_size = 0;
  std::uint32_t string_count = 0;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retained = 0;
  std::uint64_t overflows = 0;
  if (!in.read(magic) || !in.read(version) || !in.read(record_size) ||
      !in.read(string_count) || !in.read(emitted) || !in.read(dropped) ||
      !in.read(retained) || !in.read(overflows)) {
    return std::nullopt;
  }
  if (magic != kMagic || version != kVersion || record_size != sizeof(BinRecord)) {
    return std::nullopt;
  }
  if (string_count > InternTable::kMaxCapacity || dropped > emitted ||
      retained != emitted - dropped) {
    return std::nullopt;
  }

  DecodedBinlog decoded;
  decoded.emitted = emitted;
  decoded.dropped = dropped;
  decoded.overflows = overflows;
  std::string text;
  for (std::uint32_t id = 0; id < string_count; ++id) {
    std::uint32_t length = 0;
    if (!in.read(length) || !in.read_bytes(text, length)) return std::nullopt;
    // Re-interning in file order reproduces the producer's ids (the two
    // reserved entries lead every table); a mismatch means corruption.
    if (decoded.strings.intern(text) != id) return std::nullopt;
  }
  if (in.remaining() != retained * sizeof(BinRecord)) return std::nullopt;
  decoded.events.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = 0; i < retained; ++i) {
    BinRecord rec;
    if (!in.read(rec)) return std::nullopt;
    if (rec.detail_id >= decoded.strings.size()) return std::nullopt;
    decoded.events.push_back(
        decode(rec, dropped + i + 1, decoded.strings.view(rec.detail_id)));
  }
  return decoded;
}

BinlogStats binlog_stats(const EventStream& stream) noexcept {
  const BinLog& log = stream.binlog();
  return BinlogStats{log.head(), log.dropped(), log.retained(),
                     static_cast<std::uint64_t>(log.retained() * sizeof(BinRecord))};
}

}  // namespace mobidist::obs
