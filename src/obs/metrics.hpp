#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mobidist::obs {

/// Monotone event counter. Deliberately tiny: recording is one integer
/// increment so hooks can stay always-on in hot paths. Implicitly
/// converts to its value so registry-backed counters are drop-in
/// replacements for the plain uint64_t fields they superseded.
class Counter {
 public:
  constexpr Counter() = default;

  Counter& operator++() noexcept {
    ++value_;
    return *this;
  }
  Counter& operator+=(std::uint64_t n) noexcept {
    value_ += n;
    return *this;
  }
  /// Add `n` (default 1).
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }

  /// Current count.
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  operator std::uint64_t() const noexcept { return value_; }  // NOLINT(google-explicit-constructor)

  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.value_;
  }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can go up and down (queue depths, view sizes). Signed so
/// decrements below a baseline are representable.
class Gauge {
 public:
  constexpr Gauge() = default;

  /// Replace the value.
  void set(std::int64_t v) noexcept { value_ = v; }
  /// Adjust by a (possibly negative) delta.
  void add(std::int64_t d) noexcept { value_ += d; }
  /// set(max(current, v)) — for high-water marks.
  void set_max(std::int64_t v) noexcept {
    if (v > value_) value_ = v;
  }

  /// Current value.
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram over non-negative integer samples (virtual-time
/// latencies, retry depths, search rounds). Buckets are cumulative-style
/// upper bounds: sample v lands in the first bucket whose bound >= v;
/// larger samples land in the implicit overflow bucket. Bounds are fixed
/// at registration so identical runs produce identical bucket vectors.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> upper_bounds);

  /// Count one sample into its bucket and the summary stats.
  void record(std::uint64_t value) noexcept;

  /// Samples recorded.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Sum of all recorded samples.
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Min/max over recorded samples; 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  /// Largest recorded sample; 0 when empty.
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  /// sum()/count(); 0 when empty.
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Fold another histogram's samples into this one, bucket by bucket.
  /// The bounds must match (both sides register with the same fixed
  /// bucket layout); throws std::invalid_argument otherwise.
  void merge_from(const Histogram& other);

  /// The upper bounds fixed at construction.
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last one is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> bounds_;  ///< sorted, strictly increasing
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Power-of-two-ish bounds for virtual-time delays (queue delay, CS wait).
[[nodiscard]] std::vector<std::uint64_t> latency_buckets();
/// Small-count bounds for retries / rounds / fan-outs.
[[nodiscard]] std::vector<std::uint64_t> count_buckets();

/// Named home of every metric in one simulated system. Registration is
/// idempotent (same name + kind returns the existing instance) and
/// references stay valid for the registry's lifetime (node-based maps),
/// so subsystems grab `Counter&` once at construction and record with a
/// bare increment afterwards. Iteration order is the name order, which
/// is what makes serialized metric dumps byte-stable across runs.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The counter named `name`, registered on first use.
  Counter& counter(std::string_view name);
  /// The gauge named `name`, registered on first use.
  Gauge& gauge(std::string_view name);
  /// `bounds` are only consulted on first registration.
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// Fold another registry into this one: counters and gauges add by
  /// name, histograms merge bucket-wise (their bounds must match).
  /// Metrics unknown here are registered first, so the merged registry
  /// is a superset. The sharded engine keeps one Registry per shard for
  /// contention-free recording and folds them at snapshot time.
  void merge_from(const Registry& other);

  /// All counters, in name order.
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  /// All gauges, in name order.
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges() const noexcept {
    return gauges_;
  }
  /// All histograms, in name order.
  [[nodiscard]] const std::map<std::string, Histogram, std::less<>>& histograms()
      const noexcept {
    return histograms_;
  }

 private:
  void check_unique_kind(std::string_view name, std::string_view kind) const;

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace mobidist::obs
