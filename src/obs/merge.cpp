#include "obs/merge.hpp"

#include <algorithm>
#include <unordered_map>

namespace mobidist::obs {

std::vector<Event> merge_canonical(std::span<const EventStream* const> streams,
                                   const LaneOf& lane_of) {
  struct Rec {
    Event ev;
    std::uint32_t stream = 0;
    std::uint32_t lane = 0;
    std::uint64_t lane_pos = 0;
  };
  std::vector<Rec> recs;
  std::size_t total = 0;
  for (const auto* stream : streams) total += stream->retained();
  recs.reserve(total);

  // Per-lane positions continue across streams (scanned in stream order):
  // a lane's events normally live in exactly one stream, and any stray
  // same-(at, lane) pair still gets a unique, deterministic key.
  std::vector<std::uint64_t> lane_pos;
  for (std::uint32_t s = 0; s < streams.size(); ++s) {
    streams[s]->for_each([&](const Event& ev) {
      const std::uint32_t lane = lane_of(ev.entity);
      if (lane >= lane_pos.size()) lane_pos.resize(lane + 1, 0);
      recs.push_back(Rec{ev, s, lane, lane_pos[lane]++});
    });
  }

  // (at, lane, lane_pos) is a total order with unique keys, so std::sort
  // is deterministic; restricted to one lane it preserves emission order.
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.ev.at != b.ev.at) return a.ev.at < b.ev.at;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.lane_pos < b.lane_pos;
  });

  // Old id -> merged id, per source stream.
  std::vector<std::unordered_map<EventId, EventId>> remap(streams.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    remap[recs[i].stream].emplace(recs[i].ev.id, static_cast<EventId>(i + 1));
  }

  const auto resolve = [&](std::uint32_t stream, EventId cause) -> EventId {
    if (cause == 0) return 0;
    if (is_cross_ref(cause)) {
      const auto src = cross_ref_stream(cause);
      if (src >= remap.size()) return 0;
      stream = src;
      cause = cross_ref_id(cause);
    }
    const auto it = remap[stream].find(cause);
    return it == remap[stream].end() ? 0 : it->second;
  };

  std::vector<Event> merged;
  merged.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    Event ev = recs[i].ev;
    ev.id = static_cast<EventId>(i + 1);
    ev.cause = resolve(recs[i].stream, ev.cause);
    merged.push_back(ev);
  }
  return merged;
}

}  // namespace mobidist::obs
