#include "workload/workload.hpp"

#include <cmath>
#include <stdexcept>

namespace mobidist::workload {

void poisson_calls(net::Network& net, std::uint64_t count, double mean_gap,
                   sim::Duration start, std::function<void(std::uint64_t)> fn) {
  sim::SimTime at = net.sched().now() + start;
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    at += static_cast<sim::Duration>(net.rng().exponential(mean_gap)) + 1;
    net.sched().schedule_at(at, [fn, seq] { fn(seq); });
  }
}

void paced_calls(net::Network& net, std::uint64_t count, sim::Duration gap,
                 sim::Duration start, std::function<void(std::uint64_t)> fn) {
  sim::SimTime at = net.sched().now() + start;
  for (std::uint64_t seq = 0; seq < count; ++seq) {
    net.sched().schedule_at(at, [fn, seq] { fn(seq); });
    at += gap;
  }
}

MobMsgDriver::MobMsgDriver(net::Network& net, Config cfg,
                           std::vector<net::MssId> anchored_cells,
                           std::vector<net::MssId> fresh_cells, net::MhId rover,
                           std::function<void(std::uint64_t)> send_fn)
    : net_(net),
      cfg_(cfg),
      anchored_(std::move(anchored_cells)),
      fresh_(std::move(fresh_cells)),
      rover_(rover),
      send_fn_(std::move(send_fn)) {
  if (anchored_.size() < 2) {
    throw std::invalid_argument("MobMsgDriver: need >= 2 anchored cells");
  }
  if (fresh_.empty()) throw std::invalid_argument("MobMsgDriver: need >= 1 fresh cell");
  if (cfg_.step <= cfg_.transit) {
    throw std::invalid_argument("MobMsgDriver: step must exceed transit");
  }
}

void MobMsgDriver::start() {
  const auto total_moves =
      static_cast<std::uint64_t>(std::llround(cfg_.mob_per_msg * cfg_.messages));
  // Interleave moves and messages evenly over a shared timeline. Lay the
  // two event streams over slot indices, messages on even spacing.
  const std::uint64_t total_events = total_moves + cfg_.messages;
  std::uint64_t moves_laid = 0;
  std::uint64_t msgs_laid = 0;
  bool at_fresh = false;
  std::size_t anchor_pos = 0;
  std::size_t fresh_pos = 0;
  net::MssId planned = net_.mh(rover_).last_mss();  // rover's projected cell
  sim::SimTime at = net_.sched().now() + cfg_.step;
  for (std::uint64_t slot = 0; slot < total_events; ++slot, at += cfg_.step) {
    // Proportional interleave: emit a message when messages are behind.
    const bool emit_msg =
        msgs_laid * total_events <= slot * cfg_.messages && msgs_laid < cfg_.messages;
    if (emit_msg || moves_laid == total_moves) {
      const std::uint64_t seq = msgs_laid++;
      net_.sched().schedule_at(at, [this, seq] { send_fn_(seq); });
      ++messages_;
      continue;
    }
    // A move slot. Bresenham on the significant fraction; being parked
    // at a fresh cell forces the return leg (also significant).
    ++moves_laid;
    const bool want_significant =
        static_cast<double>(significant_ + 1) <=
        cfg_.significant_fraction * static_cast<double>(moves_laid);
    auto next_anchor = [&]() {
      net::MssId cell = anchored_[anchor_pos++ % anchored_.size()];
      if (cell == planned) cell = anchored_[anchor_pos++ % anchored_.size()];
      return cell;
    };
    net::MssId target;
    if (want_significant || at_fresh) {
      if (at_fresh) {
        target = next_anchor();
        at_fresh = false;
      } else {
        target = fresh_[fresh_pos++ % fresh_.size()];
        at_fresh = true;
      }
      ++significant_;
    } else {
      target = next_anchor();
    }
    planned = target;
    ++moves_;
    net_.sched().schedule_at(at, [this, target] {
      auto& host = net_.mh(rover_);
      if (host.connected() && host.current_mss() != target) {
        host.move_to(target, cfg_.transit);
      }
    });
  }
}

}  // namespace mobidist::workload
