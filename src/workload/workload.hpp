#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace mobidist::workload {

/// Schedule `count` invocations of `fn` with exponential inter-arrival
/// gaps (mean `mean_gap`), starting `start` ticks from now. Arrival
/// times are drawn up front from the network RNG so the schedule is
/// independent of what `fn` itself does.
void poisson_calls(net::Network& net, std::uint64_t count, double mean_gap,
                   sim::Duration start, std::function<void(std::uint64_t seq)> fn);

/// Schedule `count` invocations of `fn` at a fixed pace.
void paced_calls(net::Network& net, std::uint64_t count, sim::Duration gap,
                 sim::Duration start, std::function<void(std::uint64_t seq)> fn);

/// Round-robin chooser over a host set (benches pick "the next sender").
class RoundRobin {
 public:
  explicit RoundRobin(std::vector<net::MhId> hosts) : hosts_(std::move(hosts)) {}

  /// The next host in rotation (wraps around the set).
  net::MhId next() { return hosts_[counter_++ % hosts_.size()]; }

 private:
  std::vector<net::MhId> hosts_;
  std::size_t counter_ = 0;
};

/// E5's controlled mobility process: interleaves MOB moves and MSG
/// message-send callbacks at a fixed ratio, steering the *significant
/// fraction* f of moves for a clustered group.
///
/// Construction: `anchors` never move and pin their cells into LV(G);
/// `rover` is the member whose moves we script. A non-significant move
/// hops the rover between two anchored cells; a significant one sends it
/// to (or back from) a fresh, unanchored cell.
class MobMsgDriver {
 public:
  /// Shape of the interleaved schedule: the MOB/MSG ratio, the scripted
  /// significant fraction f, and the pacing between events.
  struct Config {
    std::uint64_t messages = 50;       ///< MSG
    double mob_per_msg = 1.0;          ///< MOB/MSG ratio
    double significant_fraction = 0.5; ///< f
    sim::Duration step = 40;           ///< gap between consecutive events
    sim::Duration transit = 3;
  };

  MobMsgDriver(net::Network& net, Config cfg, std::vector<net::MssId> anchored_cells,
               std::vector<net::MssId> fresh_cells, net::MhId rover,
               std::function<void(std::uint64_t seq)> send_fn);

  /// Lay out the whole schedule (moves interleaved with sends).
  void start();

  /// Moves laid out by start() (MOB).
  [[nodiscard]] std::uint64_t moves_scheduled() const noexcept { return moves_; }
  /// Message sends laid out by start() (MSG).
  [[nodiscard]] std::uint64_t messages_scheduled() const noexcept { return messages_; }
  /// Scheduled moves that were significant (left the anchored cells).
  [[nodiscard]] std::uint64_t significant_scheduled() const noexcept {
    return significant_;
  }

 private:
  net::Network& net_;
  Config cfg_;
  std::vector<net::MssId> anchored_;
  std::vector<net::MssId> fresh_;
  net::MhId rover_;
  std::function<void(std::uint64_t)> send_fn_;
  std::uint64_t moves_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t significant_ = 0;
};

}  // namespace mobidist::workload
