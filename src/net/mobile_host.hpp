#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "net/agent.hpp"
#include "net/envelope.hpp"
#include "net/ids.hpp"
#include "net/messages.hpp"
#include "sim/time.hpp"

namespace mobidist::net {

class Network;

/// Connectivity state of a mobile host (Section 2).
enum class MhState : std::uint8_t {
  kConnected,     ///< local to exactly one cell
  kInTransit,     ///< between leave() and join(): unreachable but will rejoin
  kDisconnected,  ///< voluntarily disconnected; may never return
};

/// A mobile host. Owns the MH side of the §2 protocol: leave(r)/join,
/// disconnect(r)/reconnect, doze mode, and the FIFO resequencer for the
/// MH-to-MH relay service. Algorithm behaviour comes from MhAgents.
class MobileHost {
 public:
  MobileHost(Network& net, MhId id);

  MobileHost(const MobileHost&) = delete;
  MobileHost& operator=(const MobileHost&) = delete;

  /// This host's identity.
  [[nodiscard]] MhId id() const noexcept { return id_; }
  /// Connectivity state (connected / in transit / disconnected).
  [[nodiscard]] MhState state() const noexcept { return state_; }
  /// Shorthand for state() == kConnected.
  [[nodiscard]] bool connected() const noexcept { return state_ == MhState::kConnected; }

  /// Current cell; kInvalidMss while in transit or disconnected.
  [[nodiscard]] MssId current_mss() const noexcept {
    return state_ == MhState::kConnected ? mss_ : kInvalidMss;
  }
  /// The cell this MH was last local to (valid while in transit /
  /// disconnected; it is where the "disconnected" flag lives).
  [[nodiscard]] MssId last_mss() const noexcept { return mss_; }

  /// Monotone count of completed joins (moves + reconnects). Protocols
  /// use it to order per-MH mobility events (e.g. the location-view
  /// coordinator discards stale view changes by this sequence).
  [[nodiscard]] std::uint64_t joins_completed() const noexcept { return joins_completed_; }

  /// Doze mode: the MH stays reachable but counts every delivery as an
  /// interruption (the R1-vs-R2 comparison metric of §3.1.2).
  void set_doze(bool dozing) noexcept { dozing_ = dozing; }
  /// True while doze mode is on.
  [[nodiscard]] bool dozing() const noexcept { return dozing_; }

  /// Register an agent for `proto`. Must happen before Network::start().
  void register_agent(ProtocolId proto, std::shared_ptr<MhAgent> agent);
  /// The agent registered for `proto`; nullptr if none.
  [[nodiscard]] MhAgent* agent(ProtocolId proto) const noexcept;

  // --- mobility (driven by mobility models / tests) -----------------------

  /// Leave the current cell and join `target` after `transit` ticks:
  /// sends leave(r), goes unreachable, then sends join(mh, prev) at the
  /// new MSS. Requires connected(). `target` may equal the current cell
  /// (coverage lost and regained without crossing a boundary — the only
  /// way a single-MSS system sees an in-transit MH).
  void move_to(MssId target, sim::Duration transit);

  /// Voluntarily disconnect: sends disconnect(r); the local MSS keeps a
  /// "disconnected" flag for this MH. Requires connected().
  void disconnect();

  /// Reconnect in `target`'s cell after `delay`. `supply_prev` mirrors
  /// the paper: if false, the reconnect() message omits the previous MSS
  /// id and the new MSS must query every fixed host to find it.
  /// Requires state() == kDisconnected.
  void reconnect_at(MssId target, sim::Duration delay, bool supply_prev = true);

  // --- substrate hooks -----------------------------------------------------

  /// Wireless downlink arrival (called by Network on delivery).
  void deliver(const Envelope& env);

  /// Send to another MH through the relay service: assigns the FIFO
  /// sequence number and ships the wrapper uplink. Used by
  /// MhAgent::send_to_mh; requires connected().
  void send_relay(MhId dst, ProtocolId inner_proto, Body body, bool fifo);

  /// Fire on_start on all registered agents (called by Network::start).
  void start_agents();

 private:
  friend class Network;
  friend class Mss;

  void complete_join(MssId at);  ///< invoked when the MSS processes our join
  void dispatch_inner(ProtocolId proto, MhId from, const Body& body);
  void accept_relay(const msg::Relay& relay);

  Network& net_;
  MhId id_;
  MhState state_ = MhState::kConnected;
  MssId mss_ = kInvalidMss;       ///< current or last cell
  MssId prev_mss_ = kInvalidMss;  ///< previous cell (handoff source)
  bool dozing_ = false;
  std::uint64_t downlink_seq_seen_ = 0;  ///< r: last downlink seq received here
  std::uint64_t joins_completed_ = 0;

  std::map<ProtocolId, std::shared_ptr<MhAgent>> agents_;

  // Relay FIFO machinery: per-destination send sequence numbers and a
  // per-source resequencing buffer (next expected seq + held payloads).
  std::map<MhId, std::uint64_t> relay_send_seq_;
  struct Resequencer {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, msg::Relay> held;
  };
  std::map<MhId, Resequencer> relay_recv_;
};

}  // namespace mobidist::net
