#include "net/mobile_host.hpp"

#include <stdexcept>
#include <utility>

#include "net/network.hpp"

namespace mobidist::net {

MobileHost::MobileHost(Network& net, MhId id) : net_(net), id_(id) {}

void MobileHost::register_agent(ProtocolId proto, std::shared_ptr<MhAgent> agent) {
  if (!agent) throw std::invalid_argument("MobileHost::register_agent: null agent");
  agent->attach(net_, id_, proto);
  if (!agents_.emplace(proto, std::move(agent)).second) {
    throw std::invalid_argument("MobileHost::register_agent: duplicate protocol " +
                                std::to_string(proto));
  }
}

MhAgent* MobileHost::agent(ProtocolId proto) const noexcept {
  const auto it = agents_.find(proto);
  return it == agents_.end() ? nullptr : it->second.get();
}

void MobileHost::start_agents() {
  for (auto& [proto, agent] : agents_) agent->on_start();
}

void MobileHost::move_to(MssId target, sim::Duration transit) {
  // Mobility re-homes the MH's lane mid-run; the sharded engine's lane
  // partition is fixed at construction, so moves are legacy-only.
  net_.require_legacy("MobileHost::move_to()");
  if (state_ != MhState::kConnected) {
    throw std::logic_error("MobileHost::move_to: " + to_string(id_) + " is not in a cell");
  }
  // leave(r): r is the last downlink sequence number received here. After
  // sending it the MH neither sends nor receives in this cell (§2).
  net_.send_wireless_uplink(
      id_, make_control(NodeRef(id_), NodeRef(mss_),
                        msg::Leave{id_, downlink_seq_seen_, joins_completed_}));
  prev_mss_ = mss_;
  state_ = MhState::kInTransit;
  downlink_seq_seen_ = 0;
  for (auto& [proto, agent] : agents_) agent->on_left_cell();
  net_.sched().schedule(transit, [this, target]() {
    net_.submit_join(id_, target, msg::Join{id_, prev_mss_, /*reconnect=*/false});
  });
}

void MobileHost::disconnect() {
  net_.require_legacy("MobileHost::disconnect()");
  if (state_ != MhState::kConnected) {
    throw std::logic_error("MobileHost::disconnect: " + to_string(id_) + " is not in a cell");
  }
  net_.send_wireless_uplink(
      id_, make_control(NodeRef(id_), NodeRef(mss_),
                        msg::Disconnect{id_, downlink_seq_seen_, joins_completed_}));
  state_ = MhState::kDisconnected;  // mss_ keeps the flag location
  downlink_seq_seen_ = 0;
  for (auto& [proto, agent] : agents_) agent->on_left_cell();
}

void MobileHost::reconnect_at(MssId target, sim::Duration delay, bool supply_prev) {
  if (state_ != MhState::kDisconnected) {
    throw std::logic_error("MobileHost::reconnect_at: " + to_string(id_) +
                           " is not disconnected");
  }
  prev_mss_ = mss_;
  const MssId prev = supply_prev ? mss_ : kInvalidMss;
  net_.sched().schedule(delay, [this, target, prev]() {
    net_.submit_join(id_, target, msg::Join{id_, prev, /*reconnect=*/true});
  });
}

void MobileHost::complete_join(MssId at) {
  state_ = MhState::kConnected;
  mss_ = at;
  downlink_seq_seen_ = 0;
  ++joins_completed_;
  for (auto& [proto, agent] : agents_) agent->on_joined_cell(at);
}

void MobileHost::send_relay(MhId dst, ProtocolId inner_proto, Body body, bool fifo) {
  if (state_ != MhState::kConnected) {
    throw std::logic_error("MobileHost::send_relay: " + to_string(id_) + " is not in a cell");
  }
  msg::Relay relay{id_, dst, inner_proto, std::move(body), 0, fifo};
  if (fifo) relay.seq = ++relay_send_seq_[dst];  // first seq is 1 = next_expected
  Envelope env;
  env.proto = protocol::kRelay;
  env.src = id_;
  env.dst = mss_;
  env.body = std::move(relay);
  env.control = false;  // uplink leg charges c_wireless
  net_.send_wireless_uplink(id_, std::move(env));
}

void MobileHost::deliver(const Envelope& env) {
  ++downlink_seq_seen_;
  if (env.proto == protocol::kRelay) {
    const auto* relay = body_as<msg::Relay>(env);
    if (relay == nullptr) throw std::logic_error("MobileHost::deliver: bad relay body");
    accept_relay(*relay);
    return;
  }
  if (auto* target = agent(env.proto)) {
    target->on_message(env);
    return;
  }
  throw std::logic_error("MobileHost::deliver: no agent for protocol " +
                         std::to_string(env.proto) + " at " + to_string(id_));
}

void MobileHost::accept_relay(const msg::Relay& relay) {
  if (!relay.fifo) {
    dispatch_inner(relay.inner_proto, relay.src_mh, relay.inner);
    return;
  }
  auto& rs = relay_recv_[relay.src_mh];
  if (relay.seq < rs.next_expected) return;  // duplicate; drop
  if (relay.seq > rs.next_expected) {
    // Out of order (the sender's earlier message is still chasing us
    // across cells): hold until the gap fills. This resequencer is the
    // "additional burden" §3.1.1 ascribes to MH-endpoint FIFO channels.
    ++net_.stats().relay_reordered;
    rs.held.emplace(relay.seq, relay);
    return;
  }
  dispatch_inner(relay.inner_proto, relay.src_mh, relay.inner);
  ++rs.next_expected;
  while (!rs.held.empty() && rs.held.begin()->first == rs.next_expected) {
    const msg::Relay next = std::move(rs.held.begin()->second);
    rs.held.erase(rs.held.begin());
    dispatch_inner(next.inner_proto, next.src_mh, next.inner);
    ++rs.next_expected;
  }
}

void MobileHost::dispatch_inner(ProtocolId proto, MhId from, const Body& body) {
  auto* target = agent(proto);
  if (target == nullptr) {
    throw std::logic_error("MobileHost: relay for unknown protocol " + std::to_string(proto) +
                           " at " + to_string(id_));
  }
  const auto deliver_id = net_.emit({.kind = obs::EventKind::kDeliver,
                                     .entity = entity_of(id_),
                                     .peer = entity_of(from),
                                     .arg = proto});
  obs::CauseScope scope(net_.events(), deliver_id);
  Envelope env;
  env.proto = proto;
  env.src = from;
  env.dst = id_;
  env.body = body;
  target->on_message(env);
}

}  // namespace mobidist::net
