#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace mobidist::net {

thread_local std::uint32_t Network::tls_shard_ = 0;

namespace {

/// A misconfigured range must fail loudly at construction: sample()
/// clamping it silently would turn every latency draw into `min` and
/// mask the config error.
void check_latency_range(const char* name, sim::Duration lo, sim::Duration hi) {
  if (lo > hi) {
    throw std::invalid_argument(std::string("Network: latency range ") + name +
                                " has min > max (" + std::to_string(lo) + " > " +
                                std::to_string(hi) + ")");
  }
}

/// Per-lane RNG stream seed: the run seed spread by the golden-ratio
/// increment (splitmix64's gamma), one stream per lane so the draw
/// sequence of each lane is a pure function of (seed, lane) — the
/// grouping-independence keystone of the sharded engine.
[[nodiscard]] std::uint64_t lane_stream_seed(std::uint64_t seed, std::uint32_t lane) {
  return seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(lane) + 1);
}

}  // namespace

namespace {

/// Trace severity of a structured event kind: mobility disruptions are
/// info, per-message flow is debug noise.
sim::TraceLevel trace_level_of(obs::EventKind kind) {
  switch (kind) {
    case obs::EventKind::kDisconnect:
    case obs::EventKind::kReconnect:
    case obs::EventKind::kMssCrash:
    case obs::EventKind::kMssRecover: return sim::TraceLevel::kInfo;
    default: return sim::TraceLevel::kDebug;
  }
}

/// Trace component tag of a structured event kind.
std::string_view trace_component_of(obs::EventKind kind) {
  switch (kind) {
    case obs::EventKind::kSend:
    case obs::EventKind::kRecv:
    case obs::EventKind::kDeliver:
    case obs::EventKind::kPacketSend:
    case obs::EventKind::kPacketFlush: return "net";
    case obs::EventKind::kHandoffBegin:
    case obs::EventKind::kHandoffEnd:
    case obs::EventKind::kDisconnect:
    case obs::EventKind::kReconnect: return "mss";
    case obs::EventKind::kSearchRound: return "search";
    case obs::EventKind::kCsRequest:
    case obs::EventKind::kCsEnter:
    case obs::EventKind::kCsExit:
    case obs::EventKind::kTokenDepart:
    case obs::EventKind::kTokenArrive: return "mutex";
    case obs::EventKind::kLocationUpdate:
    case obs::EventKind::kViewChange: return "group";
    case obs::EventKind::kMsgDropped:
    case obs::EventKind::kMsgDuplicated:
    case obs::EventKind::kMssCrash:
    case obs::EventKind::kMssRecover: return "fault";
  }
  return "net";
}

}  // namespace

Network::Network(NetConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.num_mss == 0) throw std::invalid_argument("Network: need at least one MSS");
  // Channel keys pack endpoint indices into 30-bit fields; reject id
  // spaces that could alias before allocating anything.
  if (cfg_.num_mss > kMaxEndpointIndex + 1 || cfg_.num_mh > kMaxEndpointIndex + 1) {
    throw std::invalid_argument("Network: host ids must fit in 30 bits");
  }
  check_latency_range("wired", cfg_.latency.wired_min, cfg_.latency.wired_max);
  check_latency_range("wireless", cfg_.latency.wireless_min, cfg_.latency.wireless_max);
  check_latency_range("search", cfg_.latency.search_min, cfg_.latency.search_max);
  if (sharded() && cfg_.latency.wired_min < 1) {
    // The wired-latency lower bound IS the conservative lookahead; a
    // zero-latency wire would leave no safe window to run in parallel.
    throw std::invalid_argument("Network: sharded engine requires latency.wired_min >= 1");
  }
  const std::uint32_t slice_count = sharded() ? std::min(cfg_.shards, cfg_.num_mss) : 1;
  slices_.reserve(slice_count);
  for (std::uint32_t i = 0; i < slice_count; ++i) {
    slices_.push_back(std::make_unique<ShardSlice>());
  }
  if (!cfg_.formation.passthrough()) {
    if (cfg_.formation.max_packet_msgs == 0) {
      throw std::invalid_argument("Network: formation.max_packet_msgs must be >= 1");
    }
    // One formation layer per slice, bound to that slice's scheduler:
    // a queue for (from,to) lives on from's shard, so enqueue, deadline
    // timers, and flush all run on the thread that owns the sender.
    for (auto& slice : slices_) {
      slice->formation = std::make_unique<FormationLayer>(
          cfg_.formation, slice->sched,
          [this](FormationLayer::Packet packet) { transmit_packet(std::move(packet)); });
    }
  }
  if (!sharded()) {
    // The free-text trace is a rendering of the event stream: every
    // structured event that clears the trace's level filter is formatted
    // into it, so trace text and event records can never disagree. The
    // sharded engine skips the sink (a shared text buffer would race
    // across shard threads); its canonical record is merged_events().
    slices_[0]->events.set_sink([this](const obs::Event& ev) {
      const auto level = trace_level_of(ev.kind);
      if (level < trace_.min_level()) return;  // skip the formatting work
      trace_.log(ev.at, level, trace_component_of(ev.kind), obs::describe(ev));
    });
  } else {
    lane_rngs_.reserve(cfg_.num_mss);
    for (std::uint32_t lane = 0; lane < cfg_.num_mss; ++lane) {
      lane_rngs_.emplace_back(lane_stream_seed(cfg_.seed, lane));
    }
    lane_mail_seq_.assign(cfg_.num_mss, 0);
  }
  mss_.reserve(cfg_.num_mss);
  for (std::uint32_t i = 0; i < cfg_.num_mss; ++i) {
    mss_.push_back(std::make_unique<Mss>(*this, static_cast<MssId>(i)));
  }
  mh_.reserve(cfg_.num_mh);
  for (std::uint32_t i = 0; i < cfg_.num_mh; ++i) {
    mh_.push_back(std::make_unique<MobileHost>(*this, static_cast<MhId>(i)));
  }
  // Initial placement: direct, no protocol traffic. Agents observe it in
  // on_start via Mss::local_mhs(). Placement draws from the global
  // stream even when sharded — it happens before the run, on one
  // thread, and must not depend on the shard count.
  mh_lane_.reserve(cfg_.num_mh);
  for (std::uint32_t i = 0; i < cfg_.num_mh; ++i) {
    std::uint32_t cell = 0;
    switch (cfg_.placement) {
      case InitialPlacement::kRoundRobin: cell = i % cfg_.num_mss; break;
      case InitialPlacement::kRandom:
        cell = static_cast<std::uint32_t>(rng_.below(cfg_.num_mss));
        break;
      case InitialPlacement::kAllInCell0: cell = 0; break;
    }
    mh_[i]->mss_ = static_cast<MssId>(cell);
    mh_[i]->state_ = MhState::kConnected;
    mss_[cell]->place_local(static_cast<MhId>(i));
    mh_lane_.push_back(cell);
  }
}

Network::~Network() = default;

Mss& Network::mss(MssId id) {
  assert(index(id) < mss_.size());
  return *mss_[index(id)];
}
const Mss& Network::mss(MssId id) const {
  assert(index(id) < mss_.size());
  return *mss_[index(id)];
}
MobileHost& Network::mh(MhId id) {
  assert(index(id) < mh_.size());
  return *mh_[index(id)];
}
const MobileHost& Network::mh(MhId id) const {
  assert(index(id) < mh_.size());
  return *mh_[index(id)];
}

void Network::require_legacy(const char* what) const {
  if (sharded()) {
    throw std::logic_error(std::string("Network: ") + what +
                           " is not supported on the sharded engine (cfg.shards >= 1); "
                           "sharded runs are static-topology only");
  }
}

std::uint32_t Network::lane_of(obs::Entity entity) const noexcept {
  switch (entity.kind) {
    case obs::Entity::Kind::kMss: return entity.idx;
    case obs::Entity::Kind::kMh:
      return entity.idx < mh_lane_.size() ? mh_lane_[entity.idx] : 0;
    case obs::Entity::Kind::kNone: break;
  }
  return 0;
}

std::uint64_t Network::total_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->sched.fired();
  return total;
}

bool Network::hit_event_limit() const noexcept {
  if (sharded()) return group_ != nullptr && group_->hit_event_limit();
  return slices_[0]->sched.hit_event_limit();
}

std::uint64_t Network::events_emitted() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->events.emitted();
  return total;
}

std::uint64_t Network::events_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slice : slices_) total += slice->events.dropped();
  return total;
}

std::vector<obs::Event> Network::merged_events() const {
  std::vector<const obs::EventStream*> streams;
  streams.reserve(slices_.size());
  for (const auto& slice : slices_) streams.push_back(&slice->events);
  return obs::merge_canonical(streams, [this](obs::Entity e) { return lane_of(e); });
}

fault::FaultPlane& Network::install_fault_plane(fault::FaultProfile profile) {
  require_legacy("install_fault_plane()");
  if (fault_) throw std::logic_error("Network: fault plane already installed");
  for (const auto& crash : profile.crashes) {
    if (crash.mss >= cfg_.num_mss) {
      throw std::invalid_argument("Network: crash schedule names an unknown MSS");
    }
  }
  // The plane's randomness lives on its own stream, derived from the run
  // seed but never touching rng_ (not even via Rng::split(), which
  // advances the parent): the fault-free draw sequence must be identical
  // whether or not a plane is installed.
  fault_ = std::make_unique<fault::FaultPlane>(fault::fault_stream_seed(cfg_.seed),
                                               std::move(profile));
  fault_->bind_metrics(slices_[0]->metrics);
  for (const auto& crash : fault_->profile().crashes) {
    slices_[0]->sched.schedule_at(crash.at, [this, crash]() { begin_crash(crash); });
    slices_[0]->sched.schedule_at(crash.at + crash.down_for, [this, mss = crash.mss]() {
      emit({.kind = obs::EventKind::kMssRecover, .entity = obs::Entity::mss(mss)});
    });
  }
  return *fault_;
}

void Network::begin_crash(const fault::MssCrash& crash) {
  emit({.kind = obs::EventKind::kMssCrash,
        .entity = obs::Entity::mss(crash.mss),
        .arg = crash.down_for});
  if (!fault_->profile().evacuate_on_crash || cfg_.num_mss < 2) return;
  // Coverage died with the station: connected MHs notice the dead beacon
  // and re-home to the neighbouring cell through the ordinary
  // leave/join/handoff path. Their leave frames are lost in the dead
  // cell (abandoned once the re-join lands) and the new MSS's handoff
  // request waits at the crashed station's interface until recovery, so
  // parked messages and pending grants re-home through the existing
  // handoff machinery rather than a side channel.
  const auto refuge = static_cast<MssId>((crash.mss + 1) % cfg_.num_mss);
  for (std::uint32_t i = 0; i < cfg_.num_mh; ++i) {
    auto& host = mh(static_cast<MhId>(i));
    if (host.current_mss() != static_cast<MssId>(crash.mss)) continue;
    host.move_to(refuge, fault_->draw_evacuation_transit());
  }
}

void Network::start() {
  if (started_) return;
  started_ = true;
  for (auto& station : mss_) station->start_agents();
  for (auto& host : mh_) host->start_agents();
}

std::uint64_t Network::run(std::uint64_t event_limit) {
  if (!started_) start();
  if (sharded()) return run_sharded(event_limit);
  auto& sched = slices_[0]->sched;
  sched.set_event_limit(event_limit);
  return sched.run();
}

std::uint64_t Network::run_sharded(std::uint64_t event_limit) {
  if (group_) {
    // Folding the per-shard measurement state below is a one-shot move;
    // re-running would double-count it.
    throw std::logic_error("Network: a sharded run() may only be invoked once");
  }
  std::vector<sim::Scheduler*> scheds;
  scheds.reserve(slices_.size());
  for (auto& slice : slices_) scheds.push_back(&slice->sched);
  group_ = std::make_unique<sim::ShardGroup>(
      std::move(scheds), lookahead(),
      [](std::uint32_t shard) { tls_shard_ = shard; });
  const auto fired = group_->run(event_limit);
  tls_shard_ = 0;  // the single-shard inline run reassigned the caller's slot
  // Fold every shard's measurement state into slice 0, so the ordinary
  // accessors (metrics(), ledger(), stats()) read group-wide totals
  // from the main thread after the run. Event streams stay per-shard:
  // their canonical view is merged_events().
  for (std::size_t i = 1; i < slices_.size(); ++i) {
    slices_[0]->metrics.merge_from(slices_[i]->metrics);
    slices_[0]->ledger.merge_from(slices_[i]->ledger);
  }
  return fired;
}

MssId Network::current_mss_of(MhId id) const { return mh(id).current_mss(); }
bool Network::is_disconnected(MhId id) const {
  return mh(id).state() == MhState::kDisconnected;
}
bool Network::is_in_transit(MhId id) const {
  return mh(id).state() == MhState::kInTransit;
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

sim::Duration Network::sample(std::uint32_t lane, sim::Duration lo, sim::Duration hi) {
  assert(lo <= hi);  // inverted ranges are rejected at construction
  if (hi == lo) return lo;
  return lo + run_rng(lane).below(hi - lo + 1);
}

sim::SimTime Network::fifo_arrival(ChannelType type, std::uint32_t a, std::uint32_t b,
                                   sim::Duration latency) {
  return fifo_arrival(sl().channels[channel_key(type, a, b)], type, latency);
}

sim::SimTime Network::fifo_arrival(ChannelState& ch, ChannelType type, sim::Duration latency) {
  auto& slice = sl();
  const sim::SimTime natural = slice.sched.now() + latency;
  sim::SimTime arrival = natural;
  if (arrival < ch.fifo_clock) arrival = ch.fifo_clock;  // never overtake an earlier message
  ch.fifo_clock = arrival;
  switch (type) {
    case ChannelType::kWired: slice.queue_delay_wired.record(arrival - natural); break;
    case ChannelType::kDownlink: slice.queue_delay_downlink.record(arrival - natural); break;
    case ChannelType::kUplink: slice.queue_delay_uplink.record(arrival - natural); break;
  }
  return arrival;
}

void Network::send_wired(MssId from, MssId to, Envelope env) {
  env.src = from;
  env.dst = to;
  if (from == to) {
    // Local dispatch: free, but still through the event queue so agent
    // reentrancy is impossible. Channel 0: self-sends are unordered
    // relative to wired traffic.
    const auto send_id = emit({.kind = obs::EventKind::kSend,
                               .entity = entity_of(from),
                               .peer = entity_of(to),
                               .arg = env.proto});
    sl().sched.schedule(0, [this, from, to, send_id, env = std::move(env)]() mutable {
      arrive_wired(from, to, send_id, 0, std::move(env));
    });
    return;
  }
  if (sl().formation) {
    enqueue_wired(from, to, std::move(env));
    return;
  }
  if (!env.control) sl().ledger.charge_fixed();
  auto latency = sample(index(from), cfg_.latency.wired_min, cfg_.latency.wired_max);
  if (fault_) latency += fault_->draw_wired_spike();
  const auto arrival = fifo_arrival(ChannelType::kWired, index(from), index(to), latency);
  const auto channel = channel_key(ChannelType::kWired, index(from), index(to));
  const auto send_id = emit({.kind = obs::EventKind::kSend,
                             .entity = entity_of(from),
                             .peer = entity_of(to),
                             .channel = channel,
                             .arg = env.proto});
  if (sharded()) {
    // Every cross-MSS hop rides the window mailbox — even when both
    // lanes share a shard — so the injection order (and with it the
    // receiver's event sequence) is a pure function of the mail set,
    // not of the grouping. The cause crosses streams as an encoded ref
    // plus the sender's Lamport clock (see obs/merge.hpp).
    const auto cross_cause = obs::make_cross_ref(tls_shard_, send_id);
    const auto send_clock = sl().events.lamport_of(send_id);
    post_mail(index(from), index(to), arrival,
              [this, from, to, cross_cause, channel, send_clock,
               env = std::move(env)]() mutable {
                arrive_wired(from, to, cross_cause, channel, std::move(env), send_clock);
              });
    return;
  }
  sl().sched.schedule_at(arrival, [this, from, to, send_id, channel, env = std::move(env)]() mutable {
    arrive_wired(from, to, send_id, channel, std::move(env));
  });
}

void Network::arrive_wired(MssId from, MssId to, obs::EventId send_id, std::uint64_t channel,
                           Envelope env, std::uint64_t send_clock) {
  if (fault_) {
    // A crashed (or partitioned-off) destination leaves the message
    // waiting at its network interface; re-offer it when the outage
    // window closes. Deferrals preserve per-channel FIFO order: every
    // arrival during one window reschedules to the same release instant,
    // and the scheduler breaks same-instant ties in scheduling order.
    const auto release = fault_->wired_release_at(index(from), index(to), sl().sched.now());
    if (release > sl().sched.now()) {
      fault_->count_deferral();
      sl().sched.schedule_at(release, [this, from, to, send_id, channel, send_clock,
                                       env = std::move(env)]() mutable {
        arrive_wired(from, to, send_id, channel, std::move(env), send_clock);
      });
      return;
    }
  }
  const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                             .entity = entity_of(to),
                             .peer = entity_of(from),
                             .cause = send_id,
                             .channel = channel,
                             .arg = env.proto,
                             .cause_clock = send_clock});
  obs::CauseScope scope(sl().events, recv_id);
  deliver_wired(to, std::move(env));
}

void Network::arrive_deferred(MssId from, MssId at, obs::EventId send_id,
                              std::uint64_t channel, ProtocolId proto,
                              std::string_view detail, std::function<void()> deliver) {
  if (fault_) {
    const auto release = fault_->wired_release_at(index(from), index(at), sl().sched.now());
    if (release > sl().sched.now()) {
      fault_->count_deferral();
      sl().sched.schedule_at(release, [this, from, at, send_id, channel, proto, detail,
                                       deliver = std::move(deliver)]() mutable {
        arrive_deferred(from, at, send_id, channel, proto, detail, std::move(deliver));
      });
      return;
    }
  }
  const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                             .entity = entity_of(at),
                             .peer = entity_of(from),
                             .cause = send_id,
                             .channel = channel,
                             .arg = proto,
                             .detail = detail});
  obs::CauseScope scope(sl().events, recv_id);
  deliver();
}

void Network::deliver_wired(MssId to, Envelope env) {
  if (env.control) ++sl().stats.control_msgs;
  mss(to).dispatch(env);
}

// ---------------------------------------------------------------------------
// Formation (wired batching)
// ---------------------------------------------------------------------------

void Network::enqueue_wired(MssId from, MssId to, Envelope env) {
  // The message's identity is announced now: its kSend is emitted at
  // enqueue (in program order, with the ambient cause), so per-message
  // causality and channel-FIFO checking are unchanged by batching.
  if (!env.control) sl().ledger.charge_wired_msg();
  const auto channel = channel_key(ChannelType::kWired, index(from), index(to));
  const auto send_id = emit({.kind = obs::EventKind::kSend,
                             .entity = entity_of(from),
                             .peer = entity_of(to),
                             .channel = channel,
                             .arg = env.proto});
  const auto bytes = wire_size(env);
  sl().formation->enqueue(from, to, FormationLayer::Item{std::move(env), send_id, bytes});
}

void Network::transmit_packet(FormationLayer::Packet packet) {
  assert(!packet.items.empty());
  auto& slice = sl();
  // One packet = one per-packet charge (amortized across its messages)
  // unless it carries control traffic only, which is never charged.
  bool carries_charged = false;
  for (const auto& item : packet.items) {
    if (!item.env.control) {
      carries_charged = true;
      break;
    }
  }
  if (carries_charged) slice.ledger.charge_wired_packet();
  // One latency draw and one FIFO clamp for the whole packet: the wire
  // sees a single transmission.
  auto latency = sample(index(packet.from), cfg_.latency.wired_min, cfg_.latency.wired_max);
  if (fault_) latency += fault_->draw_wired_spike();
  const auto channel =
      channel_key(ChannelType::kWired, index(packet.from), index(packet.to));
  const auto arrival =
      fifo_arrival(ChannelType::kWired, index(packet.from), index(packet.to), latency);
  const auto packet_id = emit({.kind = obs::EventKind::kPacketSend,
                               .entity = entity_of(packet.from),
                               .peer = entity_of(packet.to),
                               .cause = packet.items.front().send_id,
                               .channel = channel,
                               .arg = packet.items.size(),
                               .detail = packet.trigger});
  slice.packet_msgs.record(packet.items.size());
  const std::string_view trigger{packet.trigger};
  if (trigger == "deadline") {
    ++slice.formation_deadline_flushes;
  } else if (trigger == "barrier") {
    ++slice.formation_barrier_flushes;
  } else {
    ++slice.formation_size_flushes;
  }
  if (sharded()) {
    // The packet and each coalesced message crosses streams: rewrite
    // their ids to cross refs and carry the senders' Lamport clocks so
    // the receiving stream's clocks advance identically in every
    // grouping.
    const auto stream = tls_shard_;
    const auto packet_clock = slice.events.lamport_of(packet_id);
    std::vector<std::uint64_t> item_clocks;
    item_clocks.reserve(packet.items.size());
    for (auto& item : packet.items) {
      item_clocks.push_back(slice.events.lamport_of(item.send_id));
      item.send_id = obs::make_cross_ref(stream, item.send_id);
    }
    post_mail(index(packet.from), index(packet.to), arrival,
              [this, packet = std::move(packet),
               cross_id = obs::make_cross_ref(stream, packet_id), channel, packet_clock,
               item_clocks = std::move(item_clocks)]() mutable {
                arrive_packet(std::move(packet), cross_id, channel, packet_clock,
                              std::move(item_clocks));
              });
    return;
  }
  slice.sched.schedule_at(arrival, [this, packet = std::move(packet), packet_id,
                                    channel]() mutable {
    arrive_packet(std::move(packet), packet_id, channel);
  });
}

void Network::arrive_packet(FormationLayer::Packet packet, obs::EventId packet_id,
                            std::uint64_t channel, std::uint64_t packet_clock,
                            std::vector<std::uint64_t> item_clocks) {
  if (fault_) {
    // Same deferral rule as arrive_wired: a crashed or partitioned-off
    // destination holds the whole packet at its interface.
    const auto release =
        fault_->wired_release_at(index(packet.from), index(packet.to), sl().sched.now());
    if (release > sl().sched.now()) {
      fault_->count_deferral();
      sl().sched.schedule_at(release, [this, packet = std::move(packet), packet_id, channel,
                                       packet_clock,
                                       item_clocks = std::move(item_clocks)]() mutable {
        arrive_packet(std::move(packet), packet_id, channel, packet_clock,
                      std::move(item_clocks));
      });
      return;
    }
  }
  emit({.kind = obs::EventKind::kPacketFlush,
        .entity = entity_of(packet.to),
        .peer = entity_of(packet.from),
        .cause = packet_id,
        .channel = channel,
        .arg = packet.items.size(),
        .detail = packet.trigger,
        .cause_clock = packet_clock});
  // Disgorge in send order; each message's recv consumes its own send,
  // so the per-message FIFO history is indistinguishable from unbatched
  // delivery at the same instant.
  for (std::size_t i = 0; i < packet.items.size(); ++i) {
    auto& item = packet.items[i];
    const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                               .entity = entity_of(packet.to),
                               .peer = entity_of(packet.from),
                               .cause = item.send_id,
                               .channel = channel,
                               .arg = item.env.proto,
                               .detail = "packet",
                               .cause_clock = i < item_clocks.size() ? item_clocks[i] : 0});
    obs::CauseScope scope(sl().events, recv_id);
    deliver_wired(packet.to, std::move(item.env));
  }
}

bool Network::wireless_frame_lost(std::uint32_t cell, const char** why) {
  if (!fault_) return false;
  if (fault_->crashed(cell, sl().sched.now())) {
    // A dead station neither transmits nor hears anything: deterministic
    // loss, no randomness consumed.
    *why = "crash";
    fault_->count_crash_drop();
    return true;
  }
  if (fault_->draw_wireless_loss()) {
    *why = "loss";
    fault_->count_loss();
    return true;
  }
  return false;
}

sim::Duration Network::retransmit_backoff(std::uint32_t attempt) const {
  const auto& profile = fault_->profile();
  const sim::Duration base = profile.rto_base > 0 ? profile.rto_base : 1;
  const sim::Duration cap = std::max<sim::Duration>(profile.rto_cap, 1);
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 16);
  // `base << shift` wraps for base >= 2^(64-shift), turning a huge
  // configured RTO into a tiny (even zero) one and spamming retransmits;
  // saturate against the cap before shifting instead.
  if (base > (cap >> shift)) return cap;
  return std::max<sim::Duration>(base << shift, 1);
}

bool WseqDedup::deliver(std::uint64_t wseq) {
  if (wseq <= floor) return false;
  if (wseq == floor + 1 && above.empty()) {
    ++floor;  // in-order frame, nothing parked: no set traffic at all
    return true;
  }
  if (above.contains(wseq)) return false;
  above.insert(wseq);
  while (above.contains(floor + 1)) {
    above.erase(floor + 1);
    ++floor;
  }
  // Bound the parked set: a gap older than the retransmit window can
  // never fill (its sender abandoned the frame), so declare the oldest
  // gap lost and jump the floor to the smallest parked wseq.
  while (above.size() > kRetransmitWindow) {
    floor = *above.begin();
    above.erase(above.begin());
    while (above.contains(floor + 1)) {
      above.erase(floor + 1);
      ++floor;
    }
  }
  assert(above.size() <= kRetransmitWindow);
  return true;
}

bool Network::dedup_deliver(ChannelState& ch, std::uint64_t wseq) {
  return ch.dedup.deliver(wseq);
}

void Network::send_wireless_downlink(MssId from, Envelope env, MhId to,
                                     FailCallback on_fail) {
  downlink_attempt(from, std::move(env), to, std::move(on_fail), 0, 0);
}

void Network::downlink_attempt(MssId from, Envelope env, MhId to, FailCallback on_fail,
                               std::uint32_t attempt, std::uint64_t wseq) {
  auto& host = mh(to);
  if (host.current_mss() != from) {
    // Already gone: fail asynchronously so callers see uniform behaviour.
    // Retransmission stops here too — the sender's link layer only
    // promises delivery while the MH stays in this cell; the send_to_mh
    // chase re-searches from scratch.
    if (on_fail) {
      sl().sched.schedule(0, [on_fail = std::move(on_fail), env = std::move(env)]() {
        on_fail(env);
      });
    }
    return;
  }
  const auto channel = channel_key(ChannelType::kDownlink, index(from), index(to));
  auto& chan = sl().channels[channel];
  if (attempt == 0) wseq = ++chan.next_wseq;
  const auto send_id = emit({.kind = obs::EventKind::kSend,
                             .entity = entity_of(from),
                             .peer = entity_of(to),
                             .channel = channel,
                             .arg = env.proto,
                             .detail = attempt == 0 ? "" : "retx"});
  const char* why = nullptr;
  if (wireless_frame_lost(index(from), &why)) {
    const auto drop_id = emit({.kind = obs::EventKind::kMsgDropped,
                               .entity = entity_of(from),
                               .peer = entity_of(to),
                               .cause = send_id,
                               .channel = channel,
                               .arg = env.proto,
                               .detail = why});
    ++sl().stats.retransmissions;
    sl().delivery_retry_depth.record(attempt + 1);
    sl().sched.schedule(retransmit_backoff(attempt),
                        [this, from, to, attempt, wseq, cause = drop_id, env = std::move(env),
                         on_fail = std::move(on_fail)]() mutable {
                          obs::CauseScope scope(sl().events, cause);
                          downlink_attempt(from, std::move(env), to, std::move(on_fail),
                                           attempt + 1, wseq);
                        });
    return;
  }
  // The downlink is in-cell traffic: the MH's lane is its cell, so the
  // draw belongs to the sender MSS's lane either way.
  auto latency = sample(index(from), cfg_.latency.wireless_min, cfg_.latency.wireless_max);
  const bool duplicated = fault_ && fault_->draw_wireless_dup();
  if (fault_) latency += fault_->draw_wireless_spike();
  if (duplicated) {
    // The link layer repeats the frame: a full extra transmission with
    // its own airtime, FIFO-clamped behind the original so the receiver
    // always sees (and suppresses) the copy second.
    fault_->count_dup();
    emit({.kind = obs::EventKind::kMsgDuplicated,
          .entity = entity_of(from),
          .peer = entity_of(to),
          .cause = send_id,
          .channel = channel,
          .arg = env.proto});
  }
  const auto arrival = fifo_arrival(chan, ChannelType::kDownlink, latency);
  sl().sched.schedule_at(arrival, [this, from, to, send_id, channel, wseq, env,
                                   on_fail = std::move(on_fail)]() mutable {
    deliver_downlink_frame(from, to, send_id, channel, wseq, std::move(env),
                           std::move(on_fail));
  });
  if (duplicated) {
    const auto copy_latency =
        fault_->draw_latency(cfg_.latency.wireless_min, cfg_.latency.wireless_max);
    const auto copy_arrival = fifo_arrival(chan, ChannelType::kDownlink, copy_latency);
    // No on_fail on the copy: it is link-layer noise, and resurrecting an
    // already-delivered frame through the retry path would ghost-deliver.
    sl().sched.schedule_at(copy_arrival, [this, from, to, send_id, channel, wseq,
                                          env = std::move(env)]() mutable {
      deliver_downlink_frame(from, to, send_id, channel, wseq, std::move(env), {});
    });
  }
}

void Network::deliver_downlink_frame(MssId from, MhId to, obs::EventId send_id,
                                     std::uint64_t channel, std::uint64_t wseq, Envelope env,
                                     FailCallback on_fail) {
  auto& dest = mh(to);
  if (dest.current_mss() != from) {
    // The MH left between transmission and (would-be) reception: the
    // frame is lost in the old cell — §2's prefix-delivery rule. No
    // recv event: the send stays unconsumed in the stream.
    if (on_fail) on_fail(env);
    return;
  }
  if (!dedup_deliver(sl().channels[channel], wseq)) {
    // A link-layer copy of a frame this MH already consumed: silently
    // suppressed, its send stays unconsumed in the stream.
    ++sl().stats.dup_suppressed;
    return;
  }
  if (!env.control) sl().ledger.charge_wireless(index(to), /*mh_transmitted=*/false);
  if (env.control) ++sl().stats.control_msgs;
  if (dest.dozing()) ++sl().stats.doze_interruptions;
  const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                             .entity = entity_of(to),
                             .peer = entity_of(from),
                             .cause = send_id,
                             .channel = channel,
                             .arg = env.proto});
  obs::CauseScope scope(sl().events, recv_id);
  dest.deliver(env);
}

void Network::send_wireless_uplink(MhId from, Envelope env) {
  auto& host = mh(from);
  if (!host.connected()) {
    throw std::logic_error("send_wireless_uplink: " + to_string(from) + " is not in a cell");
  }
  const MssId target = host.current_mss();
  if (!env.control) {
    sl().ledger.charge_wireless(index(from), /*mh_transmitted=*/true);
  } else {
    ++sl().stats.control_msgs;
  }
  uplink_attempt(from, target, std::move(env), host.joins_completed(), 0, 0);
}

void Network::uplink_attempt(MhId from, MssId target, Envelope env, std::uint64_t epoch,
                             std::uint32_t attempt, std::uint64_t wseq) {
  const auto channel = channel_key(ChannelType::kUplink, index(from), index(target));
  auto& chan = sl().channels[channel];
  if (attempt == 0) wseq = ++chan.next_wseq;
  const auto send_id = emit({.kind = obs::EventKind::kSend,
                             .entity = entity_of(from),
                             .peer = entity_of(target),
                             .channel = channel,
                             .arg = env.proto,
                             .detail = attempt == 0 ? "" : "retx"});
  const char* why = nullptr;
  if (wireless_frame_lost(index(target), &why)) {
    const auto drop_id = emit({.kind = obs::EventKind::kMsgDropped,
                               .entity = entity_of(from),
                               .peer = entity_of(target),
                               .cause = send_id,
                               .channel = channel,
                               .arg = env.proto,
                               .detail = why});
    ++sl().stats.retransmissions;
    sl().delivery_retry_depth.record(attempt + 1);
    sl().sched.schedule(retransmit_backoff(attempt),
                        [this, from, target, epoch, attempt, wseq, cause = drop_id,
                         env = std::move(env)]() mutable {
                          obs::CauseScope scope(sl().events, cause);
                          // Leave/Disconnect frames describe a departure the
                          // §2 join/handoff protocol has already superseded
                          // once the MH completed another join; delivering a
                          // stale copy now could only evict a live member.
                          // Every other uplink keeps retrying: the link layer
                          // owes eventual delivery to the cell the frame was
                          // sent in, no matter where the MH went since.
                          if (env.proto == protocol::kSystem &&
                              mh(from).joins_completed() != epoch) {
                            return;
                          }
                          uplink_attempt(from, target, std::move(env), epoch, attempt + 1, wseq);
                        });
    return;
  }
  // The uplink stays inside the cell too: the target MSS's lane is the
  // MH's lane, so this is a same-lane draw in the sharded engine.
  auto latency = sample(index(target), cfg_.latency.wireless_min, cfg_.latency.wireless_max);
  const bool duplicated = fault_ && fault_->draw_wireless_dup();
  if (fault_) latency += fault_->draw_wireless_spike();
  if (duplicated) {
    fault_->count_dup();
    emit({.kind = obs::EventKind::kMsgDuplicated,
          .entity = entity_of(from),
          .peer = entity_of(target),
          .cause = send_id,
          .channel = channel,
          .arg = env.proto});
  }
  const auto arrival = fifo_arrival(chan, ChannelType::kUplink, latency);
  auto deliver = [this, from, target, send_id, channel, wseq](Envelope frame) {
    if (!dedup_deliver(sl().channels[channel], wseq)) {
      ++sl().stats.dup_suppressed;
      return;
    }
    const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                               .entity = entity_of(target),
                               .peer = entity_of(from),
                               .cause = send_id,
                               .channel = channel,
                               .arg = frame.proto});
    obs::CauseScope scope(sl().events, recv_id);
    mss(target).dispatch(frame);
  };
  sl().sched.schedule_at(arrival, [deliver, env]() mutable { deliver(std::move(env)); });
  if (duplicated) {
    const auto copy_latency =
        fault_->draw_latency(cfg_.latency.wireless_min, cfg_.latency.wireless_max);
    const auto copy_arrival = fifo_arrival(chan, ChannelType::kUplink, copy_latency);
    sl().sched.schedule_at(copy_arrival,
                           [deliver, env = std::move(env)]() mutable { deliver(std::move(env)); });
  }
}

// ---------------------------------------------------------------------------
// Locate + deliver
// ---------------------------------------------------------------------------

void Network::send_to_mh(MssId from, Envelope env, MhId to, SendPolicy policy) {
  require_legacy("send_to_mh()");
  send_to_mh_attempt(from, std::move(env), to, policy, 0);
}

void Network::send_to_mh_attempt(MssId from, Envelope env, MhId to, SendPolicy policy,
                                 std::uint32_t attempt) {
  env.dst = to;
  locate(from, to, [this, from, env = std::move(env), to, policy,
                    attempt](MssId at, bool disconnected) mutable {
    if (disconnected) {
      if (policy == SendPolicy::kNotifyIfDisconnected) {
        // The MSS holding the "disconnected" flag notifies the sender,
        // returning the undelivered body (L2's disconnect handling).
        if (trace_enabled(sim::TraceLevel::kInfo)) {
          log(sim::TraceLevel::kInfo, "search",
              to_string(to) + " unreachable (disconnected at " + to_string(at) + ")");
        }
        ++sl().stats.unreachable_notices;
        msg::UnreachableNotice notice{to, env.proto, env.body};
        send_wired(at, from, make_control(NodeRef(at), NodeRef(from), std::move(notice)));
      } else {
        ++sl().stats.queued_for_reconnect;
        parked_[to].push_back(Parked{std::move(env)});
      }
      return;
    }
    // Forward to the located MSS. In oracle mode the forward leg is part
    // of the single c_search charge; in broadcast mode it is a real
    // wired message.
    if (cfg_.search == SearchMode::kBroadcast && at != from) sl().ledger.charge_fixed();
    // The retry path re-launches from a scheduled lambda where no
    // dispatch scope is active; carry the locate resolution's cause into
    // it so retries stay on the causal chain.
    auto deliver = [this, at, env = std::move(env), to, policy, attempt,
                    cause = sl().events.current_cause()]() mutable {
      send_wireless_downlink(
          at, std::move(env), to,
          [this, at, to, policy, attempt, cause](const Envelope& failed) {
            ++sl().stats.delivery_retries;
            sl().delivery_retry_depth.record(attempt + 1);
            // Re-launch from the cell that noticed the miss: its MSS
            // searches again, as the paper's footnote 1 describes. The
            // backoff is essential: a just-departed MH can still sit in the
            // local list until its leave() lands, and an instant retry would
            // re-resolve to the same cell in the same virtual instant,
            // spinning forever without advancing time.
            const auto backoff = cfg_.latency.wireless_max + 1;
            sl().sched.schedule(backoff, [this, at, env = failed, to, policy, attempt, cause]() {
              obs::CauseScope scope(sl().events, cause);
              send_to_mh_attempt(at, env, to, policy, attempt + 1);
            });
          });
    };
    if (at == from) {
      deliver();
    } else {
      // The forward leg bypasses the formation queue (it delivers via a
      // closure, not dispatch), but shares the wired channel with it:
      // flush the pending packet first so this send cannot overtake
      // messages queued earlier on the same channel.
      if (sl().formation) sl().formation->flush_pair(from, at, "barrier");
      auto latency = sample(index(from), cfg_.latency.wired_min, cfg_.latency.wired_max);
      if (fault_) latency += fault_->draw_wired_spike();
      const auto arrival = fifo_arrival(ChannelType::kWired, index(from), index(at), latency);
      const auto channel = channel_key(ChannelType::kWired, index(from), index(at));
      const auto fwd_id = emit({.kind = obs::EventKind::kSend,
                                .entity = entity_of(from),
                                .peer = entity_of(at),
                                .channel = channel,
                                .arg = env.proto,
                                .detail = "forward"});
      sl().sched.schedule_at(arrival, [this, from, at, fwd_id, channel, proto = env.proto,
                                       deliver = std::move(deliver)]() mutable {
        arrive_deferred(from, at, fwd_id, channel, proto, "forward", std::move(deliver));
      });
    }
  });
}

void Network::relay_to_mh(MssId via, const msg::Relay& relay) {
  ++sl().stats.relay_msgs;
  Envelope env;
  env.proto = protocol::kRelay;
  env.src = relay.src_mh;
  env.dst = relay.dst_mh;
  env.body = relay;
  // Not control: the final wireless hop must charge c_wireless, giving
  // the §2 MH-to-MH total of 2*c_wireless + c_search.
  env.control = false;
  send_to_mh(via, std::move(env), relay.dst_mh, SendPolicy::kEventualDelivery);
}

void Network::locate(MssId from, MhId target, LocateCallback cb) {
  require_legacy("locate()");
  ++sl().stats.searches_started;
  switch (cfg_.search) {
    case SearchMode::kOracle: oracle_locate(from, target, std::move(cb)); return;
    case SearchMode::kBroadcast: broadcast_locate(from, target, std::move(cb)); return;
  }
}

void Network::oracle_locate(MssId from, MhId target, LocateCallback cb) {
  const bool local_hit = mh(target).current_mss() == from;
  if (cfg_.charge_search_for_local || !local_hit) sl().ledger.charge_search();
  emit({.kind = obs::EventKind::kSearchRound,
        .entity = entity_of(from),
        .peer = entity_of(target),
        .arg = 1,
        .detail = "oracle"});
  const auto delay = sample(index(from), cfg_.latency.search_min, cfg_.latency.search_max);
  sl().sched.schedule(delay, [this, from, target, cause = sl().events.current_cause(),
                              cb = std::move(cb)]() mutable {
    obs::CauseScope scope(sl().events, cause);
    auto& host = mh(target);
    switch (host.state()) {
      case MhState::kConnected:
        sl().search_rounds.record(1);
        cb(host.current_mss(), false);
        return;
      case MhState::kDisconnected:
        sl().search_rounds.record(1);
        cb(host.last_mss(), true);
        return;
      case MhState::kInTransit:
        // The model guarantees eventual delivery across moves: park the
        // resolution until the MH joins its next cell.
        ++sl().stats.searches_pended;
        pending_locates_[target].push_back(PendingLocate{from, std::move(cb)});
        return;
    }
  });
}

void Network::broadcast_locate(MssId from, MhId target, LocateCallback cb) {
  // Degenerate single-MSS system: the only cell is ours. The fast path
  // must still distinguish all three MH states — reporting an in-transit
  // target as connected would spin the downlink fail/retry loop until
  // its join lands; park the resolution like oracle_locate does instead.
  if (cfg_.num_mss == 1) {
    emit({.kind = obs::EventKind::kSearchRound,
          .entity = entity_of(from),
          .peer = entity_of(target),
          .arg = 1,
          .detail = "broadcast"});
    sl().sched.schedule(0, [this, from, target, cause = sl().events.current_cause(),
                            cb = std::move(cb)]() mutable {
      obs::CauseScope scope(sl().events, cause);
      auto& host = mh(target);
      switch (host.state()) {
        case MhState::kConnected:
          sl().search_rounds.record(1);
          cb(from, false);
          return;
        case MhState::kDisconnected:
          sl().search_rounds.record(1);
          cb(host.last_mss(), true);
          return;
        case MhState::kInTransit:
          ++sl().stats.searches_pended;
          pending_locates_[target].push_back(PendingLocate{from, std::move(cb)});
          return;
      }
    });
    return;
  }
  const std::uint64_t token = next_search_token_++;
  broadcast_[token] = BroadcastSearch{from, target, std::move(cb)};
  broadcast_round(token);
}

void Network::broadcast_round(std::uint64_t token) {
  auto it = broadcast_.find(token);
  if (it == broadcast_.end()) return;
  auto& search = it->second;
  search.replies = 0;
  ++search.round;
  search.found = false;
  search.saw_disconnected = false;
  emit({.kind = obs::EventKind::kSearchRound,
        .entity = entity_of(search.origin),
        .peer = entity_of(search.target),
        .arg = search.round,
        .detail = "broadcast"});
  // Before spraying queries, check our own cell (free).
  if (mss(search.origin).is_local(search.target)) {
    auto cb = std::move(search.cb);
    const MssId origin = search.origin;
    sl().search_rounds.record(search.round);
    broadcast_.erase(it);
    cb(origin, false);
    return;
  }
  for (std::uint32_t i = 0; i < cfg_.num_mss; ++i) {
    const auto dest = static_cast<MssId>(i);
    if (dest == search.origin) continue;
    // Queries are the paper's worst-case "contact each of the other M-1
    // MSSs": real, charged fixed-network messages.
    Envelope env =
        make_envelope(protocol::kSystem, NodeRef(search.origin), NodeRef(dest),
                      msg::SearchQuery{search.target, search.origin, token, search.round});
    send_wired(search.origin, dest, std::move(env));
  }
}

void Network::handle_search_query(MssId at, const msg::SearchQuery& query) {
  auto& station = mss(at);
  msg::SearchReply reply{query.target, at, query.token, query.round,
                         station.is_local(query.target),
                         station.has_disconnected_flag(query.target)};
  // Only the useful (positive) reply is charged; negative replies are
  // modeled as piggybacked control traffic, so one worst-case search
  // costs (M-1) queries + 1 reply + 1 forward in fixed messages.
  Envelope env;
  env.proto = protocol::kSystem;
  env.body = reply;
  env.control = !(reply.here || reply.disconnected);
  send_wired(at, query.origin, std::move(env));
}

void Network::handle_search_reply(const msg::SearchReply& reply) {
  auto it = broadcast_.find(reply.token);
  if (it == broadcast_.end()) return;  // already resolved
  auto& search = it->second;
  // A positive sighting is acted on regardless of age; negative replies
  // from superseded rounds must not count toward the current quorum
  // (double-counting them would spawn overlapping retry rounds).
  if (!reply.here && reply.round != search.round) return;
  ++search.replies;
  if (reply.here) {
    auto cb = std::move(search.cb);
    const MssId at = reply.from;
    sl().search_rounds.record(search.round);
    broadcast_.erase(it);
    cb(at, false);
    return;
  }
  if (reply.disconnected) {
    search.saw_disconnected = true;
    search.disconnected_at = reply.from;
  }
  if (search.replies >= cfg_.num_mss - 1) {
    if (search.saw_disconnected) {
      auto cb = std::move(search.cb);
      const MssId at = search.disconnected_at;
      sl().search_rounds.record(search.round);
      broadcast_.erase(it);
      cb(at, true);
      return;
    }
    // Nobody has it: target is in transit. Retry after a jittered pause
    // (a fixed period can phase-lock with a periodic mover and miss it
    // on every round).
    const std::uint64_t token = reply.token;
    const auto jitter = rng_.below(cfg_.latency.broadcast_retry / 2 + 1);
    sl().sched.schedule(cfg_.latency.broadcast_retry + jitter,
                        [this, token, cause = sl().events.current_cause()]() {
                          obs::CauseScope scope(sl().events, cause);
                          broadcast_round(token);
                        });
  }
}

void Network::submit_join(MhId from, MssId target, msg::Join join) {
  require_legacy("submit_join()");
  ++sl().stats.control_msgs;
  join_attempt(from, target, join, 0, 0);
}

void Network::join_attempt(MhId from, MssId target, msg::Join join, std::uint32_t attempt,
                           std::uint64_t wseq) {
  const auto channel = channel_key(ChannelType::kUplink, index(from), index(target));
  auto& chan = sl().channels[channel];
  if (attempt == 0) wseq = ++chan.next_wseq;
  const auto send_id = emit({.kind = obs::EventKind::kSend,
                             .entity = entity_of(from),
                             .peer = entity_of(target),
                             .channel = channel,
                             .arg = protocol::kSystem,
                             .detail = attempt == 0 ? "join" : "join retx"});
  const char* why = nullptr;
  if (wireless_frame_lost(index(target), &why)) {
    const auto drop_id = emit({.kind = obs::EventKind::kMsgDropped,
                               .entity = entity_of(from),
                               .peer = entity_of(target),
                               .cause = send_id,
                               .channel = channel,
                               .arg = protocol::kSystem,
                               .detail = why});
    ++sl().stats.retransmissions;
    sl().delivery_retry_depth.record(attempt + 1);
    sl().sched.schedule(retransmit_backoff(attempt),
                        [this, from, target, join, attempt, wseq, cause = drop_id]() {
                          obs::CauseScope scope(sl().events, cause);
                          // Joining is the one state a MH cannot leave on its
                          // own (move_to/disconnect require connectivity), so
                          // retry until the join lands.
                          if (mh(from).connected()) return;
                          join_attempt(from, target, join, attempt + 1, wseq);
                        });
    return;
  }
  auto latency = sample(index(target), cfg_.latency.wireless_min, cfg_.latency.wireless_max);
  const bool duplicated = fault_ && fault_->draw_wireless_dup();
  if (fault_) latency += fault_->draw_wireless_spike();
  if (duplicated) {
    fault_->count_dup();
    emit({.kind = obs::EventKind::kMsgDuplicated,
          .entity = entity_of(from),
          .peer = entity_of(target),
          .cause = send_id,
          .channel = channel,
          .arg = protocol::kSystem});
  }
  const auto arrival = fifo_arrival(chan, ChannelType::kUplink, latency);
  auto deliver = [this, from, target, send_id, channel, wseq, join]() {
    if (!dedup_deliver(sl().channels[channel], wseq)) {
      ++sl().stats.dup_suppressed;
      return;
    }
    const auto recv_id = emit({.kind = obs::EventKind::kRecv,
                               .entity = entity_of(target),
                               .peer = entity_of(from),
                               .cause = send_id,
                               .channel = channel,
                               .arg = protocol::kSystem,
                               .detail = "join"});
    obs::CauseScope scope(sl().events, recv_id);
    mss(target).dispatch(make_control(NodeRef(join.mh), NodeRef(target), join));
  };
  sl().sched.schedule_at(arrival, deliver);
  if (duplicated) {
    const auto copy_latency =
        fault_->draw_latency(cfg_.latency.wireless_min, cfg_.latency.wireless_max);
    const auto copy_arrival = fifo_arrival(chan, ChannelType::kUplink, copy_latency);
    sl().sched.schedule_at(copy_arrival, deliver);
  }
}

void Network::on_mh_rejoined(MhId mh_id, MssId at) {
  // Flush searches that were waiting for this MH to land.
  if (auto it = pending_locates_.find(mh_id); it != pending_locates_.end()) {
    auto waiting = std::move(it->second);
    pending_locates_.erase(it);
    for (auto& pending : waiting) pending.cb(at, false);
  }
  // Deliver messages parked while it was disconnected.
  if (auto it = parked_.find(mh_id); it != parked_.end()) {
    auto queue = std::move(it->second);
    parked_.erase(it);
    for (auto& parked : queue) {
      Envelope env = std::move(parked.env);
      send_wireless_downlink(at, std::move(env), mh_id,
                             [this, at, mh_id](const Envelope& failed) {
                               ++sl().stats.delivery_retries;
                               sl().delivery_retry_depth.record(1);
                               const auto backoff = cfg_.latency.wireless_max + 1;
                               sl().sched.schedule(backoff, [this, at, env = failed, mh_id]() {
                                 send_to_mh(at, env, mh_id, SendPolicy::kEventualDelivery);
                               });
                             });
    }
  }
}

void Network::log(sim::TraceLevel level, std::string_view component, std::string text) {
  if (sharded()) return;  // the shared text buffer is not thread-safe
  trace_.log(sl().sched.now(), level, component, std::move(text));
}

}  // namespace mobidist::net
