#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <set>
#include <vector>

#include "cost/cost_model.hpp"
#include "fault/fault_plane.hpp"
#include "net/envelope.hpp"
#include "net/formation.hpp"
#include "net/ids.hpp"
#include "net/messages.hpp"
#include "net/mobile_host.hpp"
#include "net/mss.hpp"
#include "net/search.hpp"
#include "net/stats.hpp"
#include "obs/events.hpp"
#include "obs/merge.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/shard.hpp"
#include "sim/trace.hpp"

namespace mobidist::net {

/// Map net-layer identifiers onto the obs layer's entity type (obs sits
/// below net in the dependency order, so it cannot know these ids).
[[nodiscard]] constexpr obs::Entity entity_of(MssId id) noexcept {
  return id == kInvalidMss ? obs::Entity{} : obs::Entity::mss(index(id));
}
/// MH counterpart of entity_of(MssId).
[[nodiscard]] constexpr obs::Entity entity_of(MhId id) noexcept {
  return id == kInvalidMh ? obs::Entity{} : obs::Entity::mh(index(id));
}
/// NodeRef counterpart of entity_of(MssId); kNone maps to the empty entity.
[[nodiscard]] constexpr obs::Entity entity_of(NodeRef ref) noexcept {
  switch (ref.kind) {
    case NodeRef::Kind::kMss: return obs::Entity::mss(ref.idx);
    case NodeRef::Kind::kMh: return obs::Entity::mh(ref.idx);
    case NodeRef::Kind::kNone: break;
  }
  return obs::Entity{};
}

/// Where MHs sit before the simulation starts.
enum class InitialPlacement : std::uint8_t {
  kRoundRobin,  ///< mh i starts in cell i mod M
  kRandom,      ///< uniform random cell
  kAllInCell0,  ///< everyone piled into cell 0 (stress fixture)
};

/// Static configuration of one simulated system.
struct NetConfig {
  std::uint32_t num_mss = 4;   ///< M
  std::uint32_t num_mh = 16;   ///< N (paper: N >> M)
  SearchMode search = SearchMode::kOracle;
  LatencyConfig latency;
  InitialPlacement placement = InitialPlacement::kRoundRobin;
  std::uint64_t seed = 1;
  /// Oracle mode charges c_search even when the target happens to be
  /// local to the sender, matching the paper's unconditional C_search
  /// terms. Disable for "location caching" ablations.
  bool charge_search_for_local = true;
  /// Wired-backbone batching policy. The default is passthrough
  /// (flush_deadline == 0): no formation layer, byte-identical traces to
  /// the unbatched substrate.
  FormationConfig formation;
  /// Shard count for the sharded parallel engine. 0 (the default) is
  /// the legacy single-threaded engine: one global event queue and one
  /// global RNG stream, byte-identical to every pre-sharding trace.
  /// Any value >= 1 selects the sharded engine, which partitions the
  /// MSS topology into min(shards, num_mss) localities synchronized by
  /// conservative time windows (see sim::ShardGroup). The sharded
  /// engine's per-seed results are identical for EVERY shard count —
  /// only wall-clock time changes — but differ from the legacy
  /// engine's, because each lane draws from its own RNG stream. It
  /// supports static topologies only (no mobility, no faults); the
  /// mutating entry points throw std::logic_error when sharded.
  std::uint32_t shards = 0;
};

/// Receiver-side duplicate suppression for reliable wireless channels.
///
/// Every wseq <= `floor` has been delivered; delivered wseqs above the
/// floor park in `above` until the floor catches up. A frame abandoned
/// mid-retry (its MH left the cell for good) leaves a permanent hole
/// below later deliveries, so a plain high-water mark would mis-drop
/// fresh frames — but an unbounded parked set leaks on every abandoned
/// frame. The set is therefore bounded by the retransmit window: once it
/// outgrows kRetransmitWindow, no hole that old can still fill (the
/// sender would have abandoned it), so the oldest gap is declared lost
/// and the floor jumps forward.
struct WseqDedup {
  /// Maximum parked (delivered-out-of-order) wseqs retained; generously
  /// above any plausible in-flight retransmit depth.
  static constexpr std::size_t kRetransmitWindow = 64;

  /// Highest wseq below which everything is considered delivered.
  std::uint64_t floor = 0;
  /// Delivered wseqs above the floor, waiting for the gap to fill.
  std::set<std::uint64_t> above;

  /// Record one delivered wseq; false = duplicate, suppress the frame.
  /// Postcondition: above.size() <= kRetransmitWindow.
  [[nodiscard]] bool deliver(std::uint64_t wseq);
};

/// The §2 system model in one object: M MSSs on a reliable FIFO wired
/// mesh, N MHs reachable over per-cell FIFO wireless links, the
/// join/leave/handoff/disconnect/reconnect protocol, the search
/// substrate, and the cost ledger metering it all.
///
/// Deterministic: every run is a pure function of (NetConfig,
/// registered agents, workload). The legacy engine (cfg.shards == 0) is
/// single-threaded; the sharded engine (cfg.shards >= 1) executes each
/// locality's events single-threaded on its own shard, synchronized by
/// conservative windows, and its canonical merged trace
/// (merged_events()) is byte-identical for every shard count.
class Network {
 public:
  explicit Network(NetConfig cfg);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology & components ----------------------------------------------

  /// M, the number of fixed stations.
  [[nodiscard]] std::uint32_t num_mss() const noexcept { return cfg_.num_mss; }
  /// N, the number of mobile hosts.
  [[nodiscard]] std::uint32_t num_mh() const noexcept { return cfg_.num_mh; }
  /// The configuration this system was built from.
  [[nodiscard]] const NetConfig& config() const noexcept { return cfg_; }

  /// The station with the given id (ids are dense, [0, M)).
  [[nodiscard]] Mss& mss(MssId id);
  [[nodiscard]] const Mss& mss(MssId id) const;
  /// The mobile host with the given id (ids are dense, [0, N)).
  [[nodiscard]] MobileHost& mh(MhId id);
  [[nodiscard]] const MobileHost& mh(MhId id) const;

  /// The simulation kernel driving this system. In the sharded engine
  /// this resolves to the calling shard's scheduler (the main thread
  /// sees shard 0); setup code priming per-entity events should prefer
  /// schedule_on_lane().
  [[nodiscard]] sim::Scheduler& sched() noexcept { return sl().sched; }
  [[nodiscard]] const sim::Scheduler& sched() const noexcept { return sl().sched; }
  /// The system's root deterministic RNG stream (legacy engine; the
  /// sharded engine draws from per-lane streams internally).
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }
  /// Free-text trace (a rendering of the structured event stream);
  /// empty in the sharded engine, whose canonical record is the merged
  /// event stream.
  [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }
  [[nodiscard]] const sim::Trace& trace() const noexcept { return trace_; }
  /// Guard for log() call sites that build their text with string
  /// concatenation: skip the formatting entirely when `level` is muted.
  [[nodiscard]] bool trace_enabled(sim::TraceLevel level) const noexcept {
    return !sharded() && trace_.enabled(level);
  }
  /// The cost ledger metering every charged hop (the paper's C_* terms).
  /// Shard-local while a sharded run is in flight; after run() returns,
  /// every shard's charges are folded into the slice this returns.
  [[nodiscard]] cost::CostLedger& ledger() noexcept { return sl().ledger; }
  [[nodiscard]] const cost::CostLedger& ledger() const noexcept { return sl().ledger; }
  /// Substrate protocol-event counters (joins, handoffs, retries, ...).
  [[nodiscard]] NetStats& stats() noexcept { return sl().stats; }
  [[nodiscard]] const NetStats& stats() const noexcept { return sl().stats; }
  /// Per-system metric registry: every NetStats counter plus the latency
  /// histograms recorded by the substrate and the algorithm layers.
  /// Shard-local during a sharded run, folded on completion (like
  /// ledger()).
  [[nodiscard]] obs::Registry& metrics() noexcept { return sl().metrics; }
  [[nodiscard]] const obs::Registry& metrics() const noexcept { return sl().metrics; }
  /// Structured causal event stream: every message hop, mobility event,
  /// CS transition, and token movement, with Lamport clocks and causal
  /// parent ids. The calling shard's stream; merged_events() is the
  /// canonical whole-system view.
  [[nodiscard]] obs::EventStream& events() noexcept { return sl().events; }
  [[nodiscard]] const obs::EventStream& events() const noexcept { return sl().events; }
  /// Emit an event stamped with the current sim time; cause defaults to
  /// the recv being dispatched (see obs::CauseScope).
  obs::EventId emit(obs::EventStream::Emit spec) {
    auto& s = sl();
    return s.events.emit(s.sched.now(), std::move(spec));
  }

  // --- sharded engine -------------------------------------------------------

  /// True when this system runs on the sharded engine (cfg.shards >= 1).
  [[nodiscard]] bool sharded() const noexcept { return cfg_.shards > 0; }
  /// Localities actually created: min(cfg.shards, num_mss) when
  /// sharded, 1 for the legacy engine.
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(slices_.size());
  }
  /// The conservative window width the sharded engine synchronizes
  /// with: the wired-latency lower bound, the cheapest any cross-shard
  /// message can travel.
  [[nodiscard]] sim::Duration lookahead() const noexcept { return cfg_.latency.wired_min; }
  /// The lane (unit of single-threaded execution) owning an entity: an
  /// MSS's own index, a MH's (initial) cell. Lane 0 for the empty
  /// entity.
  [[nodiscard]] std::uint32_t lane_of(obs::Entity entity) const noexcept;
  /// Which shard executes a lane.
  [[nodiscard]] std::uint32_t shard_of(std::uint32_t lane) const noexcept {
    return lane % shard_count();
  }
  /// Schedule setup work on the scheduler owning `lane`. Workloads
  /// priming per-entity events before run() must use this instead of
  /// sched(): in the legacy engine it is the global scheduler either
  /// way, in the sharded engine each event lands on the shard that owns
  /// its entity.
  template <typename Fn>
  void schedule_on_lane(std::uint32_t lane, sim::SimTime at, Fn&& fn) {
    slices_[shard_of(lane)]->sched.schedule_at(at, std::forward<Fn>(fn));
  }
  /// Events fired across all shards (== sched().fired() in legacy).
  [[nodiscard]] std::uint64_t total_fired() const noexcept;
  /// True if the last run() stopped on the safety event limit.
  [[nodiscard]] bool hit_event_limit() const noexcept;
  /// Structured events emitted, summed across shards.
  [[nodiscard]] std::uint64_t events_emitted() const noexcept;
  /// Structured events evicted by ring wraparound, summed across shards.
  [[nodiscard]] std::uint64_t events_dropped() const noexcept;
  /// The canonical whole-system trace: all shards' streams merged into
  /// the shard-count-independent order (see obs::merge_canonical).
  /// Byte-identical across shard counts only while events_dropped() is
  /// zero — ring eviction is per-slice, so once any ring wraps the
  /// retained prefix depends on how emits were grouped.
  /// Detail views point into the shard streams' intern tables — they
  /// stay valid for the Network's lifetime. In the legacy engine this
  /// is simply a renumbered snapshot of the single stream.
  [[nodiscard]] std::vector<obs::Event> merged_events() const;

  // --- fault injection ------------------------------------------------------

  /// Install a deterministic fault plane driving wireless loss /
  /// duplication / delay spikes, MSS crash-recover schedules, and cell
  /// partitions. Call once, before running the scheduler. The plane
  /// draws from its own RNG stream (fault::fault_stream_seed(cfg.seed)),
  /// never from rng_, so a zero-probability profile leaves the run
  /// byte-identical to one without a plane. Legacy engine only.
  fault::FaultPlane& install_fault_plane(fault::FaultProfile profile);
  /// The installed fault plane; nullptr when the run has none.
  [[nodiscard]] fault::FaultPlane* fault_plane() noexcept { return fault_.get(); }
  [[nodiscard]] const fault::FaultPlane* fault_plane() const noexcept { return fault_.get(); }

  /// Fire on_start on every registered agent (MSS agents first, then MH
  /// agents, each in id order). Call after registering all agents and
  /// before running the scheduler.
  void start();

  /// Convenience: run the scheduler until it drains (with a safety event
  /// limit) and return events fired. A sharded run may be invoked only
  /// once per Network (its measurement state folds into shard 0 on
  /// completion).
  std::uint64_t run(std::uint64_t event_limit = 50'000'000);

  // --- ground truth (setup & verification; does not charge costs) ---------

  /// Current MSS of a connected MH; kInvalidMss otherwise.
  [[nodiscard]] MssId current_mss_of(MhId id) const;
  /// True while `id` is voluntarily disconnected.
  [[nodiscard]] bool is_disconnected(MhId id) const;
  /// True while `id` is between leave() and its next join.
  [[nodiscard]] bool is_in_transit(MhId id) const;

  // --- messaging (used by agents via the helpers in agent.hpp) ------------

  /// Wired MSS -> MSS send. FIFO per ordered pair; charges the wired
  /// cost terms unless control or self-addressed. With batching enabled
  /// (NetConfig::formation) the message parks in a formation queue and
  /// rides a coalesced packet; in passthrough it goes straight to the
  /// wire as its own packet. In the sharded engine cross-MSS sends ride
  /// the conservative-window mailbox.
  void send_wired(MssId from, MssId to, Envelope env);

  /// The calling shard's formation (batching) layer; nullptr in
  /// passthrough mode.
  [[nodiscard]] FormationLayer* formation() noexcept { return sl().formation.get(); }
  [[nodiscard]] const FormationLayer* formation() const noexcept {
    return sl().formation.get();
  }

  /// Failure callback for a wireless downlink: receives the undelivered
  /// envelope. Taking the envelope as an argument (instead of capturing
  /// it) keeps happy-path callbacks small enough for std::function's
  /// inline buffer — no heap traffic per send.
  using FailCallback = std::function<void(const Envelope&)>;

  /// Wireless downlink to a MH that is local to `from` right now. If the
  /// MH leaves before the frame lands, the sending agent's
  /// on_local_send_failed is NOT invoked (there is none); instead the
  /// optional `on_fail` runs with the undelivered envelope. Charges
  /// c_wireless + rx energy only on successful delivery.
  void send_wireless_downlink(MssId from, Envelope env, MhId to, FailCallback on_fail = {});

  /// Wireless uplink from a connected MH to its current MSS. Always
  /// delivered (the MSS does not move). Charges c_wireless + tx energy
  /// unless control.
  void send_wireless_uplink(MhId from, Envelope env);

  /// Locate a MH (oracle or broadcast per config) and deliver `env` over
  /// the final wireless hop, retrying across moves. See SendPolicy for
  /// disconnect behaviour. `env.dst` must be the MH. Legacy engine only.
  void send_to_mh(MssId from, Envelope env, MhId to, SendPolicy policy);

  /// MH-to-MH relay entry point (wireless uplink leg is charged by the
  /// caller path); invoked by Mss when a kRelay envelope arrives.
  void relay_to_mh(MssId via, const msg::Relay& relay);

  /// Resolve a MH's current MSS. The callback receives (mss,
  /// disconnected): `mss` is the current cell, or the cell holding the
  /// "disconnected" flag when `disconnected` is true. Searches for
  /// in-transit MHs resolve when the MH joins its next cell.
  using LocateCallback = std::function<void(MssId, bool disconnected)>;
  /// Start a location search from `from` for `target` (mode chosen by
  /// NetConfig::search_mode); `cb` fires when the search resolves.
  /// Legacy engine only.
  void locate(MssId from, MhId target, LocateCallback cb);

  /// MH -> MSS join/reconnect transmission in the *new* cell (the MH is
  /// not yet local there, so this cannot ride the normal uplink).
  /// Legacy engine only.
  void submit_join(MhId from, MssId target, msg::Join join);

  /// Broadcast-search protocol handlers (invoked by Mss::dispatch).
  void handle_search_query(MssId at, const msg::SearchQuery& query);
  /// Reply leg of the broadcast search; resolves the pending locate().
  void handle_search_reply(const msg::SearchReply& reply);

  // --- FIFO channel identity ----------------------------------------------

  /// Ordered channels get their own virtual FIFO clock, keyed by
  /// (channel type, endpoint a, endpoint b).
  enum class ChannelType : std::uint8_t { kWired, kDownlink, kUplink };

  /// Endpoint indices must fit in 30 bits so the packed channel key's
  /// fields cannot alias; the constructor rejects larger id spaces.
  static constexpr std::uint32_t kMaxEndpointIndex = (1u << 30) - 1;

  /// Collision-free packed key: 4-bit type | 30-bit a | 30-bit b, each
  /// field explicitly masked to its own bit range.
  [[nodiscard]] static constexpr std::uint64_t channel_key(ChannelType type, std::uint32_t a,
                                                           std::uint32_t b) noexcept {
    static_assert(static_cast<std::uint8_t>(ChannelType::kUplink) < 16,
                  "ChannelType must fit the 4-bit type field");
    return (static_cast<std::uint64_t>(type) << 60) |
           (static_cast<std::uint64_t>(a & kMaxEndpointIndex) << 30) |
           static_cast<std::uint64_t>(b & kMaxEndpointIndex);
  }

 private:
  friend class Mss;
  friend class MobileHost;

  struct PendingLocate {
    MssId from;
    LocateCallback cb;
  };
  struct BroadcastSearch {
    MssId origin;
    MhId target;
    LocateCallback cb;
    std::uint32_t replies = 0;
    std::uint64_t round = 0;
    bool found = false;
    bool saw_disconnected = false;
    MssId disconnected_at = kInvalidMss;
  };

  /// Everything keyed by channel lives in one map so the per-message
  /// hot path does a single hash lookup. `fifo_clock` clamps arrivals
  /// (never decrease per ordered channel); `next_wseq` is the
  /// sender-side logical frame number for wireless channels; `dedup` is
  /// the receiver-side duplicate suppression window (see WseqDedup).
  struct ChannelState {
    sim::SimTime fifo_clock = 0;
    std::uint64_t next_wseq = 0;
    WseqDedup dedup;
  };

  /// Everything one shard owns and touches from its own thread during a
  /// run: event queue, measurement state (ledger / metrics / stats /
  /// event ring), FIFO channel clocks, and the formation queues of the
  /// MSSs it hosts. The legacy engine is exactly one slice driven by
  /// the calling thread; the sharded engine is min(shards, num_mss)
  /// slices driven by sim::ShardGroup. Per-slice ownership is what
  /// makes emit and every cost charge allocation- and contention-free
  /// under parallel execution.
  struct ShardSlice {
    sim::Scheduler sched;
    cost::CostLedger ledger;
    obs::Registry metrics;  ///< must precede every member referencing it
    NetStats stats{metrics};
    obs::EventStream events;
    // Always-on substrate histograms (virtual-time units; zero-cost when
    // nothing records). Queue delay is the FIFO clamp each channel kind
    // added on top of the sampled latency.
    obs::Histogram& queue_delay_wired =
        metrics.histogram("net.queue_delay.wired", obs::latency_buckets());
    obs::Histogram& queue_delay_downlink =
        metrics.histogram("net.queue_delay.downlink", obs::latency_buckets());
    obs::Histogram& queue_delay_uplink =
        metrics.histogram("net.queue_delay.uplink", obs::latency_buckets());
    obs::Histogram& search_rounds =
        metrics.histogram("net.search_rounds", obs::count_buckets());
    obs::Histogram& delivery_retry_depth =
        metrics.histogram("net.delivery_retry_depth", obs::count_buckets());
    // Formation-layer instrumentation (all zero in passthrough mode).
    obs::Histogram& packet_msgs =
        metrics.histogram("net.formation.packet_msgs", obs::count_buckets());
    obs::Counter& formation_size_flushes = metrics.counter("net.formation.size_flushes");
    obs::Counter& formation_deadline_flushes =
        metrics.counter("net.formation.deadline_flushes");
    obs::Counter& formation_barrier_flushes =
        metrics.counter("net.formation.barrier_flushes");
    std::unordered_map<std::uint64_t, ChannelState> channels;
    /// Wired batching queues of this slice's MSSs; null in passthrough
    /// mode so the unbatched wire path never even consults it.
    std::unique_ptr<FormationLayer> formation;
  };

  /// The calling thread's slice. Worker threads of a sharded run bind
  /// their shard index here (via ShardGroup's on_worker hook); every
  /// other thread — including the legacy engine's only thread — reads
  /// slice 0.
  [[nodiscard]] ShardSlice& sl() noexcept { return *slices_[tls_shard_]; }
  [[nodiscard]] const ShardSlice& sl() const noexcept { return *slices_[tls_shard_]; }

  /// Throw std::logic_error unless on the legacy engine: `what` names
  /// the unsupported entry point.
  void require_legacy(const char* what) const;

  /// The RNG stream for work owned by `lane`: the lane's own stream in
  /// the sharded engine, the global stream in the legacy engine — which
  /// is what keeps every legacy draw sequence byte-identical.
  [[nodiscard]] sim::Rng& run_rng(std::uint32_t lane) noexcept {
    return sharded() ? lane_rngs_[lane] : rng_;
  }

  /// Post a cross-lane action into the conservative-window mailbox
  /// (sharded engine only). `at` must be >= the current window horizon,
  /// which every wired arrival satisfies (latency >= lookahead()).
  template <typename Fn>
  void post_mail(std::uint32_t src_lane, std::uint32_t dst_lane, sim::SimTime at, Fn&& fn) {
    group_->post(shard_of(src_lane),
                 sim::ShardGroup::Mail{at, shard_of(dst_lane), src_lane,
                                       ++lane_mail_seq_[src_lane],
                                       sim::SmallFn(std::forward<Fn>(fn))});
  }

  std::uint64_t run_sharded(std::uint64_t event_limit);

  // FIFO clamping: per ordered channel, arrivals never decrease.
  [[nodiscard]] sim::SimTime fifo_arrival(ChannelType type, std::uint32_t a, std::uint32_t b,
                                          sim::Duration latency);
  /// Same, against an already-looked-up channel state (one hash lookup
  /// per message instead of one per bookkeeping field).
  [[nodiscard]] sim::SimTime fifo_arrival(ChannelState& ch, ChannelType type,
                                          sim::Duration latency);

  /// One latency draw from the stream owned by `lane` (the sender's
  /// lane, so the draw sequence is a per-lane pure function).
  [[nodiscard]] sim::Duration sample(std::uint32_t lane, sim::Duration lo, sim::Duration hi);

  /// send_to_mh with the retry depth threaded through, so the retry
  /// histogram sees how deep each delivery's chase went.
  void send_to_mh_attempt(MssId from, Envelope env, MhId to, SendPolicy policy,
                          std::uint32_t attempt);

  void deliver_wired(MssId to, Envelope env);

  // --- formation (wired batching) -------------------------------------------

  /// Batched wire path: emit the per-message kSend, charge the
  /// per-message cost share, and park the message on the formation
  /// queue for (from,to).
  void enqueue_wired(MssId from, MssId to, Envelope env);
  /// Transmit callback handed to the FormationLayer: charge the packet,
  /// sample one latency for the whole packet and schedule its arrival
  /// (via the window mailbox when sharded).
  void transmit_packet(FormationLayer::Packet packet);
  /// Packet arrival: honour crash/partition deferral, emit kPacketFlush,
  /// then deliver the coalesced messages in send order. In the sharded
  /// engine `packet_id` and every item's send_id arrive as cross-stream
  /// refs, with the senders' Lamport clocks carried alongside.
  void arrive_packet(FormationLayer::Packet packet, obs::EventId packet_id,
                     std::uint64_t channel, std::uint64_t packet_clock = 0,
                     std::vector<std::uint64_t> item_clocks = {});

  // --- reliable wireless hop (ack/retransmit + dedup) -----------------------
  //
  // Each logical frame gets a per-channel sequence number (wseq) at its
  // first transmission; every retransmission attempt emits a fresh kSend
  // so the physical channel history stays FIFO-checkable, while the
  // receiver suppresses duplicate wseqs. Loss is decided at send time by
  // the fault plane (implicit ack: the sender knows ground truth), so a
  // dropped attempt schedules the next one after a capped exponential
  // backoff.

  void downlink_attempt(MssId from, Envelope env, MhId to, FailCallback on_fail,
                        std::uint32_t attempt, std::uint64_t wseq);
  void deliver_downlink_frame(MssId from, MhId to, obs::EventId send_id,
                              std::uint64_t channel, std::uint64_t wseq, Envelope env,
                              FailCallback on_fail);
  void uplink_attempt(MhId from, MssId target, Envelope env, std::uint64_t epoch,
                      std::uint32_t attempt, std::uint64_t wseq);
  void join_attempt(MhId from, MssId target, msg::Join join, std::uint32_t attempt,
                    std::uint64_t wseq);

  /// Consult the fault plane for this wireless frame; on loss, `why` is
  /// set to "crash" (dead cell) or "loss" (random drop).
  [[nodiscard]] bool wireless_frame_lost(std::uint32_t cell, const char** why);
  [[nodiscard]] sim::Duration retransmit_backoff(std::uint32_t attempt) const;

  /// Wired arrival with crash/partition deferral: a message reaching a
  /// crashed (or partitioned-off) MSS waits at its interface and is
  /// re-offered when the outage window closes; the recv event fires only
  /// at actual delivery. `send_clock` carries the sender's Lamport clock
  /// when `send_id` is a cross-stream ref (sharded engine).
  void arrive_wired(MssId from, MssId to, obs::EventId send_id, std::uint64_t channel,
                    Envelope env, std::uint64_t send_clock = 0);
  /// Same deferral for the send_to_mh forward leg, which delivers via a
  /// closure instead of dispatch. `detail` must be a static-lifetime tag
  /// (callers pass literals): the view is captured across deferrals.
  void arrive_deferred(MssId from, MssId at, obs::EventId send_id, std::uint64_t channel,
                       ProtocolId proto, std::string_view detail,
                       std::function<void()> deliver);

  void begin_crash(const fault::MssCrash& crash);

  void oracle_locate(MssId from, MhId target, LocateCallback cb);
  void broadcast_locate(MssId from, MhId target, LocateCallback cb);
  void broadcast_round(std::uint64_t token);

  /// Join bookkeeping shared by Mss::handle_join: flush searches pending
  /// on this MH and deliver messages parked while it was disconnected.
  void on_mh_rejoined(MhId mh, MssId at);

  void log(sim::TraceLevel level, std::string_view component, std::string text);

  NetConfig cfg_;
  sim::Rng rng_;
  sim::Trace trace_;
  /// One slice for the legacy engine, min(shards, num_mss) for the
  /// sharded one. unique_ptr so slice addresses (and the Counter&/
  /// Histogram& members inside) never move.
  std::vector<std::unique_ptr<ShardSlice>> slices_;
  /// The calling thread's shard index (0 everywhere except inside a
  /// sharded run's worker threads). static: a thread belongs to at most
  /// one running Network at a time.
  static thread_local std::uint32_t tls_shard_;
  /// Conservative-window coordinator; created by run_sharded().
  std::unique_ptr<sim::ShardGroup> group_;
  /// Sharded engine: one RNG stream per lane, seeded as a pure function
  /// of (cfg.seed, lane) so draw sequences are grouping-independent.
  std::vector<sim::Rng> lane_rngs_;
  /// Sharded engine: per-lane mailbox sequence for the canonical
  /// injection order (each lane is written by exactly one thread).
  std::vector<std::uint64_t> lane_mail_seq_;
  /// Lane of each MH: its (initial) cell.
  std::vector<std::uint32_t> mh_lane_;

  std::vector<std::unique_ptr<Mss>> mss_;
  std::vector<std::unique_ptr<MobileHost>> mh_;

  std::map<MhId, std::vector<PendingLocate>> pending_locates_;
  /// Messages awaiting a disconnected MH's reconnect (eventual-delivery
  /// policy). Keyed by MH; delivered via its new MSS on rejoin.
  struct Parked {
    Envelope env;
  };
  std::map<MhId, std::vector<Parked>> parked_;
  std::map<std::uint64_t, BroadcastSearch> broadcast_;
  std::uint64_t next_search_token_ = 1;
  bool started_ = false;

  std::unique_ptr<fault::FaultPlane> fault_;

  [[nodiscard]] ChannelState& channel_state(std::uint64_t key) { return sl().channels[key]; }
  /// Receiver-side duplicate suppression; true = first delivery of wseq.
  [[nodiscard]] static bool dedup_deliver(ChannelState& ch, std::uint64_t wseq);
};

}  // namespace mobidist::net
